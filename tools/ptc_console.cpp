// Operator console for the photonic tensor core serving simulator.
//
// Attaches an SCPI-style command interpreter to a live Server +
// Accelerator (the built-in multi-tenant demo scenario) and answers
// queries from its telemetry: latency percentiles, per-tenant cost
// attribution, SLO burn rates, per-core device state, trace dumps.
//
// Run it:
//   ./ptc_console                      interactive REPL (type HELP)
//   ./ptc_console --script ops.scpi    run a command script, echo + replies
//   ./ptc_console --socket /tmp/ptc    line-oriented AF_UNIX server
//   echo 'SNAP?' | ./ptc_console -     read commands from stdin (pipe mode)
//
// Exit status is the number of commands that failed (capped at 125), so a
// scripted session doubles as a check.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "console/console.hpp"
#include "console/demo.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

int capped(std::size_t errors) {
  return static_cast<int>(errors > 125 ? 125 : errors);
}

#ifndef _WIN32
/// Minimal line-oriented AF_UNIX server: one client at a time, one command
/// per line, one reply per command (multi-line replies end with a blank
/// line so clients can frame them).  `EXIT` closes the session and the
/// server.  socat readline UNIX-CONNECT:<path> makes a fine client.
int serve_socket(ptc::console::Console& console, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long: " << path << "\n";
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listener, 1) < 0) {
    std::cerr << "bind/listen " << path << ": " << std::strerror(errno)
              << "\n";
    ::close(listener);
    return 1;
  }
  std::cout << "listening on " << path << " (connect: socat readline"
            << " UNIX-CONNECT:" << path << ")\n";

  std::size_t errors = 0;
  while (!console.exit_requested()) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) break;
    std::string buffer;
    char chunk[512];
    for (;;) {
      const ssize_t n = ::read(client, chunk, sizeof(chunk));
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t eol;
      while ((eol = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, eol);
        buffer.erase(0, eol + 1);
        std::string reply = console.eval(line);
        if (reply.rfind("ERR:", 0) == 0) ++errors;
        if (reply.empty()) continue;
        const bool multiline = reply.find('\n') != std::string::npos;
        reply += multiline ? "\n\n" : "\n";
        std::size_t off = 0;
        while (off < reply.size()) {
          const ssize_t wrote =
              ::write(client, reply.data() + off, reply.size() - off);
          if (wrote <= 0) break;
          off += static_cast<std::size_t>(wrote);
        }
      }
      if (console.exit_requested()) break;
    }
    ::close(client);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return capped(errors);
}
#endif

}  // namespace

int main(int argc, char** argv) {
  ptc::console::DemoScenario scenario;
  ptc::console::Console console = scenario.make_console();

  std::string script_path;
  std::string socket_path;
  bool pipe_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--script" && i + 1 < argc) {
      script_path = argv[++i];
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "-") {
      pipe_mode = true;
    } else {
      std::cerr << "usage: ptc_console [--script <path> | --socket <path> |"
                << " -]\n";
      return 2;
    }
  }

  if (!script_path.empty()) {
    std::ifstream script(script_path);
    if (!script) {
      std::cerr << "cannot open script: " << script_path << "\n";
      return 2;
    }
    return capped(console.run_stream(script, std::cout, {.echo = true}));
  }
  if (!socket_path.empty()) {
#ifndef _WIN32
    return serve_socket(console, socket_path);
#else
    std::cerr << "--socket is not supported on this platform\n";
    return 2;
#endif
  }
  if (pipe_mode) {
    return capped(console.run_stream(std::cin, std::cout, {.echo = true}));
  }

  std::cout << "photonic tensor core operator console (HELP for commands,"
            << " EXIT to leave)\n";
  return capped(
      console.run_stream(std::cin, std::cout, {.prompt = true}));
}
