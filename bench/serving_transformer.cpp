// The transformer serving frontier: token-level decoding of a registered
// decoder-only transformer swept over sequence length x scheduling policy
// (static padded batches vs continuous batching) through the deterministic
// TokenServer event loop on a photonic fleet.
//
// The point of the sweep: under a saturated queue with mixed generation
// lengths, a static batch holds its freed slots hostage until the longest
// request drains, so queued requests pay the straggler's tail; continuous
// batching refills every token step, which compresses p99 and lifts
// tokens/sec while the per-token energy barely moves (the same tokens run
// either way — only *when* they run changes).  Decode arithmetic is
// per-request, so both policies emit bit-identical token streams; the
// schedulers reorder time, never results.
//
// Exit status is the acceptance gate: at the longest (saturating) sequence
// row, continuous batching must beat static on p99 and on tokens/sec, the
// two policies must produce identical token streams, and the gated row's
// report must be byte-identical across 1/2/8 host threads — or the sweep
// is not exercising continuous batching.
//
// Emits BENCH_transformer.json (telemetry::BenchReport) on *modeled* time —
// deterministic across hosts, so the gates carry tight tolerances.  The
// --quick flag drops the intermediate sequence row (CI smoke); every row is
// an independent run, so the gated numbers are identical either way.
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nn/transformer.hpp"
#include "runtime/accelerator.hpp"
#include "serve/model_registry.hpp"
#include "serve/token_server.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace ptc;
using namespace ptc::serve;

constexpr std::size_t kCores = 32;  // holds the model's 26 static weight
                                    // tiles, so back-to-back steps run warm
constexpr std::size_t kRequests = 24;
constexpr std::size_t kMaxBatch = 8;

nn::TransformerConfig model_config() {
  nn::TransformerConfig config;
  config.vocab = 16;
  config.d_model = 8;
  config.heads = 2;
  config.layers = 2;
  config.d_ff = 12;
  config.max_seq = 24;
  return config;
}

/// Saturating load at one target sequence length: every request arrives
/// within a few ns (decode steps are ns-scale), prompts and generation
/// lengths drawn around seq/2 so total contexts land near `seq` with the
/// mixed-drain imbalance static batching suffers from.
std::vector<TokenRequest> make_requests(std::size_t seq) {
  const nn::TransformerConfig config = model_config();
  std::vector<TokenRequest> requests;
  Rng load(72 + seq);
  for (std::size_t i = 0; i < kRequests; ++i) {
    TokenRequest request;
    request.id = i;
    request.tenant = i % 3 == 0 ? "acme" : (i % 3 == 1 ? "globex" : "initech");
    request.model = "tf";
    request.arrival = static_cast<double>(i) * 1e-9;
    const std::size_t prompt_len = 1 + load.below(seq / 2);
    for (std::size_t t = 0; t < prompt_len; ++t) {
      request.prompt.push_back(load.below(config.vocab));
    }
    const std::size_t room = config.max_seq - prompt_len;
    request.max_new = 1 + load.below(std::min(seq, room));
    requests.push_back(std::move(request));
  }
  return requests;
}

/// One independent run: fresh fleet, fresh registry, same seeded weights.
TokenServeReport run_row(std::size_t seq, TokenPolicy::Schedule schedule,
                         std::size_t threads) {
  runtime::AcceleratorConfig config;
  config.cores = kCores;
  config.threads = threads;
  config.variation.seed = 7;
  runtime::Accelerator accelerator(config);
  ModelRegistry registry(accelerator);
  Rng rng(71);
  registry.add_transformer("tf",
                           nn::TransformerModel::random(model_config(), rng));
  TokenServer server(registry);
  TokenPolicy policy;
  policy.schedule = schedule;
  policy.max_batch = kMaxBatch;
  return server.run(make_requests(seq), policy);
}

/// Token streams keyed by request id — the bit-identity cross-check.
std::map<std::size_t, std::vector<std::size_t>> streams(
    const TokenServeReport& report) {
  std::map<std::size_t, std::vector<std::size_t>> out;
  for (const TokenRequestRecord& record : report.requests) {
    out[record.id] = record.tokens;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  constexpr double kTightTolerance = 1e-6;
  telemetry::BenchReport bench("serving_transformer");
  bench.set_meta("cores", static_cast<double>(kCores));
  bench.set_meta("requests", static_cast<double>(kRequests));
  bench.set_meta("max_batch", static_cast<double>(kMaxBatch));

  std::cout << "transformer serving frontier: " << kCores
            << "-core fleet, decoder-only transformer (2 layers, 2 heads, "
               "d_model 8), "
            << kRequests << " requests, batch " << kMaxBatch
            << (quick ? " (quick grid)" : "") << "\n\n";

  TablePrinter table({"seq", "policy", "steps", "tokens", "p99", "first-token"
                                                                 " p99",
                      "tokens/s", "energy/token", "warm", "makespan"});

  std::vector<std::size_t> seq_lengths = {6, 12, 24};
  if (quick) seq_lengths = {6, 24};
  const std::size_t gated_seq = seq_lengths.back();

  double static_p99 = 0.0;
  double continuous_p99 = 0.0;
  double static_tps = 0.0;
  double continuous_tps = 0.0;
  double continuous_ept = 0.0;
  bool streams_identical = true;
  for (const std::size_t seq : seq_lengths) {
    TokenServeReport static_report =
        run_row(seq, TokenPolicy::Schedule::kStatic, 0);
    TokenServeReport continuous_report =
        run_row(seq, TokenPolicy::Schedule::kContinuous, 0);
    // The schedulers may only reorder time: identical streams per request.
    if (streams(static_report) != streams(continuous_report)) {
      streams_identical = false;
    }
    const struct {
      const char* label;
      const char* key;
      const TokenServeReport* report;
    } rows[] = {{"static", "static", &static_report},
                {"continuous", "continuous", &continuous_report}};
    for (const auto& row : rows) {
      const TokenServeReport& report = *row.report;
      table.add_row({std::to_string(seq), row.label,
                     std::to_string(report.steps),
                     std::to_string(report.tokens),
                     units::si_format(report.total.p99, "s"),
                     units::si_format(report.first_token.p99, "s"),
                     units::si_format(report.tokens_per_second(), "tok/s"),
                     units::si_format(report.energy_per_token(), "J"),
                     TablePrinter::num(report.warm_fraction(), 3),
                     units::si_format(report.makespan, "s")});
      const std::string key =
          std::string(row.key) + "_seq" + std::to_string(seq);
      bench.add_info("p99_" + key, report.total.p99, "s");
      bench.add_info("first_token_p99_" + key, report.first_token.p99, "s");
      bench.add_info("tokens_per_s_" + key, report.tokens_per_second(),
                     "tok/s");
      bench.add_info("energy_per_token_" + key, report.energy_per_token(),
                     "J");
      bench.add_info("warm_fraction_" + key, report.warm_fraction(), "frac");
      bench.add_info("makespan_" + key, report.makespan, "s");
    }
    if (seq == gated_seq) {
      static_p99 = static_report.total.p99;
      continuous_p99 = continuous_report.total.p99;
      static_tps = static_report.tokens_per_second();
      continuous_tps = continuous_report.tokens_per_second();
      continuous_ept = continuous_report.energy_per_token();
    }
  }
  table.print(std::cout);

  // Host-thread byte-identity at the gated row: the modeled report is a
  // pure function of (requests, policy, fleet config).
  const TokenServeReport t1 =
      run_row(gated_seq, TokenPolicy::Schedule::kContinuous, 1);
  const TokenServeReport t2 =
      run_row(gated_seq, TokenPolicy::Schedule::kContinuous, 2);
  const TokenServeReport t8 =
      run_row(gated_seq, TokenPolicy::Schedule::kContinuous, 8);
  const bool thread_stable =
      t1.makespan == t2.makespan && t1.makespan == t8.makespan &&
      t1.energy == t2.energy && t1.energy == t8.energy &&
      t1.total.p99 == t2.total.p99 && t1.total.p99 == t8.total.p99 &&
      t1.tokens == t2.tokens && t1.tokens == t8.tokens &&
      streams(t1) == streams(t2) && streams(t1) == streams(t8);

  const double p99_speedup =
      continuous_p99 > 0.0 ? static_p99 / continuous_p99 : 0.0;
  const double tps_speedup =
      static_tps > 0.0 ? continuous_tps / static_tps : 0.0;
  std::cout << "\nacceptance at seq " << gated_seq << ": static p99 "
            << units::si_format(static_p99, "s") << ", continuous p99 "
            << units::si_format(continuous_p99, "s") << " (speedup "
            << TablePrinter::num(p99_speedup, 3)
            << ", bar > 1), tokens/s speedup "
            << TablePrinter::num(tps_speedup, 3)
            << " (bar > 1), streams identical "
            << (streams_identical ? "yes" : "NO") << ", thread-stable "
            << (thread_stable ? "yes" : "NO") << "\n";

  bench.add_metric("continuous_p99_speedup", p99_speedup, "x",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("continuous_tokens_per_s", continuous_tps, "tok/s",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("continuous_energy_per_token", continuous_ept, "J",
                   telemetry::Direction::kLowerIsBetter, kTightTolerance);
  bench.add_info("static_p99", static_p99, "s");
  bench.add_info("continuous_p99", continuous_p99, "s");
  bench.add_info("tokens_per_s_speedup", tps_speedup, "x");
  bench.write("BENCH_transformer.json");
  std::cout << "wrote BENCH_transformer.json\n";

  if (!streams_identical) {
    std::cout << "FAIL: the schedulers changed a token stream — continuous "
                 "batching must be bit-identical to static\n";
    return 1;
  }
  if (!thread_stable) {
    std::cout << "FAIL: the gated row is not byte-identical across 1/2/8 "
                 "host threads\n";
    return 1;
  }
  if (p99_speedup <= 1.0) {
    std::cout << "FAIL: continuous batching does not beat static on p99 at "
                 "the saturating sequence length\n";
    return 1;
  }
  if (tps_speedup <= 1.0) {
    std::cout << "FAIL: continuous batching does not beat static on "
                 "tokens/sec at the saturating sequence length\n";
    return 1;
  }
  std::cout << "PASS: continuous batching beats static on p99 and tokens/sec "
               "at saturation with bit-identical token streams\n";
  return 0;
}
