// Serving-style batched inference, now driven through the serve-layer
// subsystem: an open-loop Poisson request stream flows through the
// RequestQueue -> DynamicBatcher -> 8-core Accelerator fleet, and the
// latency/throughput/energy trade-off is measured per *request* (queueing
// included) instead of per hand-fed batch.
//
// Part 1 pins the fixed-batch serving curve: under a saturating arrival
// rate, a kNoTimeout policy forms exactly the batch sizes the original
// hand-rolled bench fed, so service-per-batch reproduces that table.
// Part 2 holds the arrival rate fixed and varies the batching policy,
// exposing what the fixed-batch table hides: the p99 a real request
// stream pays for amortizing the 20 GHz pSRAM reloads.
//
// All times are modeled hardware time (ADC sample windows + pSRAM reload
// slots on the critical-path core), so every number here is deterministic.
//
// Set PTC_TRACE=/path/to/trace.json to re-run the batch<=32 dynamic policy
// with a span tracer attached and write the serving run as a Chrome trace.
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "telemetry/trace.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::serve;

  constexpr std::size_t kCores = 8;
  runtime::Accelerator accelerator({.cores = kCores});
  ModelRegistry registry(accelerator);
  Rng rng(777);
  // The same 128 -> 64 -> 10 classifier as before: 32 + 4 weight tiles per
  // batch, now forwarded through the shared nn::Mlp activation path.
  registry.add("mlp", nn::Mlp(128, 64, 10, rng));
  Server server(registry);

  std::cout << "serving-style batched inference: " << kCores
            << "-core fleet, 128-64-10 model, quantized eoADC readout, "
               "open-loop Poisson arrivals\n\n"
            << "fixed-batch policies under a saturating request stream "
               "(max_wait = inf):\n";

  TablePrinter fixed({"batch", "service/batch", "service/request",
                      "requests/s", "utilization", "p99 latency",
                      "energy/request"});
  for (const std::size_t batch : {1, 4, 16, 64}) {
    const LoadGenerator generator(
        {{.name = "t", .model = "mlp", .rate = 40e9, .requests = 64}}, 42);
    const ServeReport report =
        server.run(generator.generate(registry),
                   {.max_batch = batch, .max_wait = BatchPolicy::kNoTimeout});
    const double service_per_batch = report.service.mean;
    fixed.add_row(
        {std::to_string(batch), units::si_format(service_per_batch, "s"),
         units::si_format(service_per_batch / static_cast<double>(batch), "s"),
         units::si_format(report.throughput(), "req/s"),
         TablePrinter::num(report.utilization(), 4),
         units::si_format(report.total.p99, "s"),
         units::si_format(report.energy_per_request(), "J")});
  }
  fixed.print(std::cout);

  std::cout << "\ndynamic batching at a fixed 300 Mreq/s arrival rate "
               "(batch closes at max_batch or max_wait):\n";
  TablePrinter dynamic({"policy", "mean batch", "requests/s", "p50 latency",
                        "p99 latency", "utilization", "energy/request"});
  struct PolicyRow {
    std::string label;
    BatchPolicy policy;
  };
  const PolicyRow rows[] = {
      {"batch=1 (no batching)", {.max_batch = 1, .max_wait = 0.0}},
      {"batch<=8, wait 10 ns", {.max_batch = 8, .max_wait = 10e-9}},
      {"batch<=32, wait 50 ns", {.max_batch = 32, .max_wait = 50e-9}},
      {"batch=32 fixed",
       {.max_batch = 32, .max_wait = BatchPolicy::kNoTimeout}},
  };
  for (const PolicyRow& row : rows) {
    const LoadGenerator generator(
        {{.name = "t", .model = "mlp", .rate = 300e6, .requests = 96}}, 42);
    const ServeReport report =
        server.run(generator.generate(registry), row.policy);
    dynamic.add_row({row.label, TablePrinter::num(report.mean_batch(), 3),
                     units::si_format(report.throughput(), "req/s"),
                     units::si_format(report.total.p50, "s"),
                     units::si_format(report.total.p99, "s"),
                     TablePrinter::num(report.utilization(), 4),
                     units::si_format(report.energy_per_request(), "J")});
  }
  dynamic.print(std::cout);

  std::cout
      << "\nsmall batches are reload-bound (each of the 36 weight tiles "
         "serves few samples); larger batches amortize the 20 GHz pSRAM "
         "reloads over more 8 GS/s compute windows, multiplying fleet "
         "throughput — but under a real request stream the fixed-batch "
         "policy buys that throughput with queue-fill latency, while the "
         "max-wait bound caps the tail: the dynamic rows hold p99 within "
         "the wait budget and still close near-full batches at this rate\n";

  const char* trace_path = telemetry::trace_path_from_env();
  if (trace_path != nullptr) {
    telemetry::Tracer tracer;
    server.set_tracer(&tracer);
    const LoadGenerator generator(
        {{.name = "t", .model = "mlp", .rate = 300e6, .requests = 96}}, 42);
    const ServeReport traced = server.run(
        generator.generate(registry), {.max_batch = 32, .max_wait = 50e-9});
    server.set_tracer(nullptr);
    tracer.write_chrome_json_file(trace_path);
    std::cout << "\nwrote Chrome trace (" << tracer.size() << " events, "
              << traced.completed << " requests, batch<=32 wait 50 ns) to "
              << trace_path << "\n";
  }
  return 0;
}
