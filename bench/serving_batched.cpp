// Serving-style batched inference on the multi-tile runtime: an 8-core
// accelerator fleet serves a two-layer model under different request
// batch sizes, exposing the latency/throughput/energy trade-off that
// production batching policies navigate.
//
// Latency here is modeled hardware time per batch (reloads + ADC sample
// windows on the critical-path core); throughput is requests per modeled
// second across the fleet.
#include <algorithm>
#include <iostream>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "runtime/accelerator.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::runtime;

  constexpr std::size_t kCores = 8;
  Rng rng(777);
  // A 128 -> 64 -> 10 classifier: 32 + 4 weight tiles per request batch.
  const Matrix w1 = random_signed(128, 64, rng);
  const Matrix w2 = random_signed(64, 10, rng);

  std::cout << "serving-style batched inference: " << kCores
            << "-core fleet, 128-64-10 model, quantized eoADC readout\n\n";

  TablePrinter table({"batch", "latency/batch", "latency/request",
                      "requests/s", "fleet TOPS", "utilization",
                      "reload share", "energy/request"});
  for (const std::size_t batch : {1, 4, 16, 64}) {
    Accelerator accelerator({.cores = kCores});
    const Matrix x = random_activations(batch, 128, rng);

    const Matrix h = accelerator.matmul(x, w1);
    Matrix h_relu = h;
    for (double& v : h_relu.data()) v = std::max(0.0, v);
    accelerator.matmul(h_relu, w2);

    const AcceleratorStats stats = accelerator.stats();
    const double latency = stats.makespan;
    const double per_request = latency / static_cast<double>(batch);
    table.add_row(
        {std::to_string(batch), units::si_format(latency, "s"),
         units::si_format(per_request, "s"),
         units::si_format(static_cast<double>(batch) / latency, "req/s"),
         TablePrinter::num(stats.throughput_ops() / 1e12, 4),
         TablePrinter::num(stats.utilization(), 4),
         TablePrinter::num(100.0 * stats.reload_fraction(), 3) + " %",
         units::si_format(stats.energy / static_cast<double>(batch), "J")});
  }
  table.print(std::cout);

  std::cout << "\nsmall batches are reload-bound (each of the 36 weight "
               "tiles serves few samples); larger batches amortize the "
               "20 GHz pSRAM reloads over more 8 GS/s compute windows, "
               "multiplying fleet throughput at the cost of per-batch "
               "latency — the classic serving batching curve, with the "
               "reload/compute split the paper's weight-streaming argument "
               "predicts (energy per request stays flat: the ledger is "
               "dominated by static power over the fixed per-request sample "
               "count)\n";
  return 0;
}
