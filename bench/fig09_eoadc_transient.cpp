// Reproduces paper Fig. 9: transient verification of the eoADC for the three
// input settings the paper shows — 0.72 V (B2 -> 001), 3.3 V (B7 -> 110) and
// 2.0 V (boundary: B4 and B5 both activate, ceiling decoder emits 100).
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/eoadc.hpp"

namespace {

std::string code_bits(unsigned code) {
  std::string s = "000";
  for (int b = 0; b < 3; ++b) {
    if (code & (1u << b)) s[2 - b] = '1';
  }
  return s;
}

}  // namespace

int main() {
  using namespace ptc;
  using namespace ptc::core;

  EoAdc adc;
  std::cout << "Fig. 9 reproduction: eoADC transients at 8 GS/s "
               "(125 ps conversion window)\n\n";

  TablePrinter table({"V_IN [V]", "activated blocks", "decoded code",
                      "decision time", "paper expectation"});
  struct Case {
    double v;
    const char* expectation;
  };
  const Case cases[] = {{0.72, "B2 -> 001"},
                        {3.30, "B7 -> 110"},
                        {2.00, "B4+B5 boundary -> 100 (ceiling)"}};

  for (const auto& c : cases) {
    sim::TraceSet traces;
    const auto result = adc.convert_transient(c.v, &traces);
    std::string blocks;
    for (std::size_t ch = 0; ch < result.conversion.active.size(); ++ch) {
      if (result.conversion.active[ch]) {
        if (!blocks.empty()) blocks += "+";
        blocks += "B";
        blocks += std::to_string(ch + 1);
      }
    }
    table.add_row({TablePrinter::num(c.v, 3), blocks,
                   code_bits(result.conversion.code),
                   units::si_format(result.decision_time, "s"),
                   c.expectation});
    char name[64];
    std::snprintf(name, sizeof name, "fig09_eoadc_transient_%.2fV.csv", c.v);
    traces.write_csv(name);
  }
  table.print(std::cout);

  std::cout << "\nall conversions complete within the "
            << units::si_format(1.0 / adc.sample_rate(), "s")
            << " sampling window (8 GS/s, ~125 ps clock period)\n"
            << "Qp / B waveforms written to fig09_eoadc_transient_*.csv\n";
  return 0;
}
