// Reproduces paper Fig. 3(a): eoADC microring thru-port transmission spectra
// as a function of the pn-junction voltage.  Three bias conditions
// (V_REF1 > V_REF2 > V_REF3 at the p-terminal, V_IN fixed at V_REF2) produce
// a notch exactly on the input wavelength only when V_pn = 0; the other two
// biases red-/blue-shift the notch off the input wavelength.
#include <iostream>

#include "common/csv.hpp"
#include "common/interp.hpp"
#include "common/table.hpp"
#include "core/tech.hpp"
#include "optics/microring.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::optics;

  const double lambda_in = core::tech_adc_wavelength;
  const double vref2 = 2.0;                   // = V_IN: on-resonance case
  const double vref1 = 2.5, vref3 = 1.5;      // +-1 LSB away
  const double v_in = vref2;

  Microring ring(core::adc_ring_config());
  std::cout << "Fig. 3(a) reproduction: MRR thru spectra vs pn-junction"
               " voltage\n"
            << "input wavelength 1310.5 nm; V_IN = " << v_in << " V\n\n";

  TablePrinter table({"detune [pm]", "T(Vpn=+0.5V) [VREF1]",
                      "T(Vpn=0V) [VREF2]", "T(Vpn=-0.5V) [VREF3]"});
  CsvWriter csv({"detune_pm", "t_vref1", "t_vref2", "t_vref3"});
  for (double detune_pm : linspace(-40.0, 40.0, 33)) {
    const double lambda = lambda_in + detune_pm * 1e-12;
    std::vector<double> row{detune_pm};
    std::vector<std::string> cells{TablePrinter::num(detune_pm)};
    for (double vref : {vref1, vref2, vref3}) {
      ring.set_bias(vref - v_in);
      const double t = ring.thru_transmission(lambda);
      row.push_back(t);
      cells.push_back(TablePrinter::num(t, 3));
    }
    csv.add_row(row);
    table.add_row(cells);
  }
  table.print(std::cout);
  csv.write_file("fig03_mrr_spectra.csv");

  // Headline checks mirroring the paper's description.
  ring.set_bias(0.0);
  const double on_res = ring.thru_transmission(lambda_in);
  ring.set_bias(0.5);
  const double red = ring.thru_transmission(lambda_in);
  ring.set_bias(-0.5);
  const double blue = ring.thru_transmission(lambda_in);
  std::cout << "\nsummary: T(lambda_IN) at Vpn=0: " << on_res
            << "  (paper: minimum / notch)\n"
            << "         T(lambda_IN) at Vpn=+-0.5 V: " << red << " / " << blue
            << "  (paper: > P_REF, off resonance)\n"
            << "data written to fig03_mrr_spectra.csv\n";
  return 0;
}
