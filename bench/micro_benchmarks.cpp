// google-benchmark microbenchmarks of the simulator itself: per-query device
// evaluation costs and end-to-end tensor-core operations.  These measure the
// *simulator's* speed (host CPU), not the modelled hardware.
#include <benchmark/benchmark.h>

#include "core/eoadc.hpp"
#include "core/psram_bitcell.hpp"
#include "core/tech.hpp"
#include "core/tensor_core.hpp"
#include "core/vector_macro.hpp"
#include "optics/microring.hpp"

namespace {

void bm_ring_transmission(benchmark::State& state) {
  ptc::optics::Microring ring(ptc::core::compute_ring_config(0, 0.0));
  double lambda = 1310e-9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.thru_transmission(lambda));
    lambda += 1e-15;
  }
}
BENCHMARK(bm_ring_transmission);

void bm_psram_device_write(benchmark::State& state) {
  ptc::core::PsramBitcell cell;
  bool value = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.write(value));
    value = !value;
  }
}
BENCHMARK(bm_psram_device_write);

void bm_eoadc_static_convert(benchmark::State& state) {
  ptc::core::EoAdc adc;
  double v = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc.code(v));
    v += 0.001;
    if (v > 3.9) v = 0.1;
  }
}
BENCHMARK(bm_eoadc_static_convert);

void bm_eoadc_transient_convert(benchmark::State& state) {
  ptc::core::EoAdc adc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc.convert_transient(2.0));
  }
}
BENCHMARK(bm_eoadc_transient_convert);

void bm_vector_macro_multiply(benchmark::State& state) {
  ptc::core::VectorComputeMacro macro;
  macro.load_weights({7, 3, 5, 1});
  const std::vector<double> in{1.0, 0.5, 0.25, 0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(macro.multiply(in));
  }
}
BENCHMARK(bm_vector_macro_multiply);

void bm_tensor_core_multiply(benchmark::State& state) {
  ptc::core::TensorCore core;
  std::vector<std::vector<std::uint32_t>> w(
      16, std::vector<std::uint32_t>(16, 5));
  core.load_weights(w);
  const std::vector<double> input(16, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.multiply(input));
  }
}
BENCHMARK(bm_tensor_core_multiply);

void bm_tensor_core_weight_reload(benchmark::State& state) {
  ptc::core::TensorCore core;
  std::vector<std::vector<std::uint32_t>> a(
      16, std::vector<std::uint32_t>(16, 1));
  std::vector<std::vector<std::uint32_t>> b(
      16, std::vector<std::uint32_t>(16, 6));
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.load_weights(flip ? a : b));
    flip = !flip;
  }
}
BENCHMARK(bm_tensor_core_weight_reload);

}  // namespace

BENCHMARK_MAIN();
