// CI regression gate over the in-repo perf trajectory: diffs freshly
// produced BENCH_*.json artifacts against the committed baselines and
// fails (nonzero exit) when any gated metric regressed beyond its
// baseline-declared tolerance.
//
// Usage: bench_compare <baseline.json> <current.json> [<baseline> <current> ...]
//
// Gating is read from the *baseline*: the committed trajectory owns the
// bar, so a current run cannot loosen its own gates.  Informational
// metrics print in the diff table but never gate.  See docs/telemetry.md
// for the artifact schema and the baseline-update workflow.
#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace ptc;

bool compare_pair(const std::string& baseline_path,
                  const std::string& current_path) {
  const telemetry::BenchComparison comparison =
      telemetry::compare_bench_files(baseline_path, current_path);

  std::cout << baseline_path << " vs " << current_path << ":\n";
  for (const std::string& problem : comparison.problems) {
    std::cout << "  problem: " << problem << "\n";
  }
  TablePrinter table({"metric", "baseline", "current", "ratio", "verdict"});
  for (const telemetry::MetricComparison& m : comparison.metrics) {
    table.add_row({m.name, TablePrinter::num(m.baseline, 6),
                   TablePrinter::num(m.current, 6),
                   TablePrinter::num(m.ratio, 4), m.note});
  }
  table.print(std::cout);
  std::cout << (comparison.pass ? "PASS" : "FAIL") << "\n\n";
  return comparison.pass;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || (argc - 1) % 2 != 0) {
    std::cerr << "usage: " << argv[0]
              << " <baseline.json> <current.json> [<baseline> <current> ...]\n";
    return 2;
  }
  bool pass = true;
  for (int i = 1; i + 1 < argc; i += 2) {
    pass = compare_pair(argv[i], argv[i + 1]) && pass;
  }
  std::cout << (pass ? "all benches within tolerance of their baselines"
                     : "regression detected: some gated metric exceeded its "
                       "baseline tolerance")
            << "\n";
  return pass ? 0 : 1;
}
