// CI regression gate over the in-repo perf trajectory: diffs freshly
// produced BENCH_*.json artifacts against the committed baselines and
// fails (nonzero exit) when any gated metric regressed beyond its
// baseline-declared tolerance.
//
// Usage: bench_compare <baseline.json> <current.json> [<baseline> <current> ...]
//
// Gating is read from the *baseline*: the committed trajectory owns the
// bar, so a current run cannot loosen its own gates.  Informational
// metrics print in the diff table but never gate.  Every pair is compared
// and every failure listed before the nonzero exit, so one CI run shows
// the full regression surface.  See docs/telemetry.md for the artifact
// schema and the baseline-update workflow.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace ptc;

/// One regressed metric, kept for the end-of-run failure summary.
struct Failure {
  std::string pair;
  telemetry::MetricComparison metric;
};

std::string tol_cell(const telemetry::MetricComparison& m) {
  if (!m.gated) return "-";
  return TablePrinter::num(100.0 * m.tolerance, 4) + " %";
}

std::string bound_cell(const telemetry::MetricComparison& m) {
  if (!m.gated) return "-";
  return TablePrinter::num(m.bound, 6);
}

bool compare_pair(const std::string& baseline_path,
                  const std::string& current_path,
                  std::vector<Failure>& failures) {
  const telemetry::BenchComparison comparison =
      telemetry::compare_bench_files(baseline_path, current_path);
  const std::string pair = baseline_path + " vs " + current_path;

  std::cout << pair << ":\n";
  for (const std::string& problem : comparison.problems) {
    std::cout << "  problem: " << problem << "\n";
  }
  TablePrinter table(
      {"metric", "baseline", "current", "ratio", "tolerance", "bound",
       "verdict"});
  for (const telemetry::MetricComparison& m : comparison.metrics) {
    table.add_row({m.name, TablePrinter::num(m.baseline, 6),
                   TablePrinter::num(m.current, 6),
                   TablePrinter::num(m.ratio, 4), tol_cell(m), bound_cell(m),
                   m.note});
    if (m.regressed) failures.push_back({pair, m});
  }
  table.print(std::cout);
  std::cout << (comparison.pass ? "PASS" : "FAIL") << "\n\n";
  return comparison.pass;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || (argc - 1) % 2 != 0) {
    std::cerr << "usage: " << argv[0]
              << " <baseline.json> <current.json> [<baseline> <current> ...]\n";
    return 2;
  }
  bool pass = true;
  std::vector<Failure> failures;
  for (int i = 1; i + 1 < argc; i += 2) {
    pass = compare_pair(argv[i], argv[i + 1], failures) && pass;
  }
  if (pass) {
    std::cout << "all benches within tolerance of their baselines\n";
    return 0;
  }
  std::cout << "regression detected: " << failures.size()
            << " gated metric(s) exceeded their baseline tolerance\n";
  for (const Failure& failure : failures) {
    std::cout << "  " << failure.pair << ": " << failure.metric.name
              << " baseline " << TablePrinter::num(failure.metric.baseline, 6)
              << " current " << TablePrinter::num(failure.metric.current, 6)
              << " (allowed " << tol_cell(failure.metric) << ", bound "
              << bound_cell(failure.metric) << ")\n";
  }
  return 1;
}
