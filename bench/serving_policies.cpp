// The serving-policy frontier: arrival rate x {max_batch, max_wait} swept
// through the discrete-event Server, printing the saturation / tail-latency
// trade-off a production deployment navigates.
//
// Two regimes bound the design space:
//  - streaming regime (model tiles > fleet cores): every batch pays its
//    pSRAM reloads, so dynamic batching is the whole game — it must sustain
//    multiples of the batch=1 throughput while the max-wait bound keeps the
//    p99 finite even past batch=1 saturation;
//  - resident regime (model fits the fleet): consecutive batches reuse the
//    resident weight tiles and skip reloads entirely, the serving-side
//    payoff of the paper's 20 GHz weight-streaming argument.
//
// Emits BENCH_serving.json (telemetry::BenchReport): modeled-time results
// are bit-deterministic, so the gated metrics carry tight tolerances.  The
// closing multi-tenant section mixes all three tenants through one fleet;
// with PTC_TRACE=<path> it attaches a span tracer, prints each model's
// compiled pass schedule (graph::schedule_dump), writes the Chrome trace,
// and verifies the trace's span counts against the ServeReport — the
// end-to-end observability check CI's bench-smoke job runs.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "graph/models.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace ptc;
using namespace ptc::serve;

struct PolicyRow {
  std::string label;
  BatchPolicy policy;
};

ServeReport run_once(Server& server, ModelRegistry& registry,
                     const std::string& model, double rate,
                     std::size_t requests, const BatchPolicy& policy) {
  const LoadGenerator generator(
      {{.name = "t", .model = model, .rate = rate, .requests = requests}},
      1234);
  return server.run(generator.generate(registry), policy);
}

}  // namespace

int main() {
  constexpr std::size_t kCores = 8;
  runtime::Accelerator accelerator({.cores = kCores});
  ModelRegistry registry(accelerator);
  Rng rng(99);
  registry.add("stream", nn::Mlp(64, 32, 10, rng));    // 10 tiles > 8 cores
  registry.add("resident", nn::Mlp(32, 16, 10, rng));  // 3 tiles <= 8 cores
  // Compiled CNN tenant: conv(4ch) -> pool -> dense, 5 tiles <= 8 cores,
  // but the conv step streams 36 im2col rows per request.
  registry.add_graph(
      "cnn", graph::cnn_graph(8, 8, graph::edge_kernel_bank(4), 3, 2,
                              random_signed(36, 16, rng),
                              std::vector<double>(16, 0.0),
                              random_signed(16, 10, rng),
                              std::vector<double>(10, 0.0)));
  Server server(registry);

  std::cout << "serving-policy sweep: " << kCores
            << "-core fleet, open-loop Poisson arrivals, 96 requests per "
               "point, modeled hardware time\n\n"
            << "streaming regime (64-32-10 model, 10 weight tiles: every "
               "batch reloads):\n";

  const PolicyRow policies[] = {
      {"batch=1", {.max_batch = 1, .max_wait = 0.0}},
      {"b<=16, w=20ns", {.max_batch = 16, .max_wait = 20e-9}},
      {"b<=32, w=100ns", {.max_batch = 32, .max_wait = 100e-9}},
      {"b=32 fixed", {.max_batch = 32, .max_wait = BatchPolicy::kNoTimeout}},
  };

  TablePrinter table({"arrival rate", "policy", "mean batch", "requests/s",
                      "p50", "p99", "utilization", "energy/request"});
  double batch1_throughput = 0.0;
  ServeReport best_dynamic;
  for (const double rate : {50e6, 200e6, 1.2e9}) {
    for (const PolicyRow& row : policies) {
      const ServeReport report =
          run_once(server, registry, "stream", rate, 96, row.policy);
      table.add_row({units::si_format(rate, "req/s"), row.label,
                     TablePrinter::num(report.mean_batch(), 3),
                     units::si_format(report.throughput(), "req/s"),
                     units::si_format(report.total.p50, "s"),
                     units::si_format(report.total.p99, "s"),
                     TablePrinter::num(report.utilization(), 4),
                     units::si_format(report.energy_per_request(), "J")});
      if (rate == 1.2e9 && row.label == std::string("batch=1")) {
        batch1_throughput = report.throughput();
      }
      if (rate == 1.2e9 && row.label == std::string("b<=32, w=100ns")) {
        best_dynamic = report;
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nsaturation frontier at 1.2 Greq/s: dynamic batching "
               "(b<=32, w=100ns) sustains "
            << TablePrinter::num(best_dynamic.throughput() /
                                     batch1_throughput,
                                 3)
            << "x the throughput of batch=1 with a bounded p99 of "
            << units::si_format(best_dynamic.total.p99, "s") << " ("
            << units::si_format(best_dynamic.throughput(), "req/s")
            << " vs "
            << units::si_format(batch1_throughput, "req/s") << ")\n";

  std::cout << "\nresident regime (32-16-10 model, 3 weight tiles: "
               "consecutive batches reuse residencies) at 2 Greq/s:\n";
  TablePrinter resident({"policy", "mean batch", "warm passes", "requests/s",
                         "p99", "energy/request"});
  for (const PolicyRow& row :
       {PolicyRow{"batch=1", {.max_batch = 1, .max_wait = 0.0}},
        PolicyRow{"b=16 fixed",
                  {.max_batch = 16, .max_wait = BatchPolicy::kNoTimeout}}}) {
    const ServeReport report =
        run_once(server, registry, "resident", 2e9, 96, row.policy);
    resident.add_row(
        {row.label, TablePrinter::num(report.mean_batch(), 3),
         TablePrinter::num(100.0 * report.warm_fraction(), 3) + " %",
         units::si_format(report.throughput(), "req/s"),
         units::si_format(report.total.p99, "s"),
         units::si_format(report.energy_per_request(), "J")});
  }
  resident.print(std::cout);

  std::cout << "\ncompiled-CNN tenant (conv->pool->dense via the graph "
               "compiler, 5 weight tiles resident on 8 cores, conv streams "
               "36 im2col rows per request):\n";
  TablePrinter cnn_table({"arrival rate", "policy", "mean batch",
                          "requests/s", "p50", "p99", "warm passes",
                          "energy/request"});
  for (const double rate : {50e6, 200e6, 1.2e9}) {
    for (const PolicyRow& row : policies) {
      const ServeReport report =
          run_once(server, registry, "cnn", rate, 96, row.policy);
      cnn_table.add_row(
          {units::si_format(rate, "req/s"), row.label,
           TablePrinter::num(report.mean_batch(), 3),
           units::si_format(report.throughput(), "req/s"),
           units::si_format(report.total.p50, "s"),
           units::si_format(report.total.p99, "s"),
           TablePrinter::num(100.0 * report.warm_fraction(), 3) + " %",
           units::si_format(report.energy_per_request(), "J")});
    }
  }
  cnn_table.print(std::cout);

  // --- multi-tenant closing section -----------------------------------
  // All three tenants share the fleet under one dynamic policy: the
  // scenario the telemetry subsystem instruments end to end (request
  // lifecycles, batch windows, per-core passes, queue depth).
  std::cout << "\nmulti-tenant mix (alpha->stream, beta->resident, "
               "gamma->cnn on one fleet, b<=16, w=50ns):\n";
  telemetry::Tracer tracer;
  telemetry::MetricsRegistry metrics;
  const char* trace_path = telemetry::trace_path_from_env();
  if (trace_path != nullptr) {
    server.set_tracer(&tracer);
    server.set_metrics(&metrics);
    for (const char* name : {"stream", "resident", "cnn"}) {
      std::cout << "\ncompiled schedule [" << name << "]:\n"
                << registry.schedule_dump(name);
    }
  }
  const LoadGenerator mixed(
      {{.name = "alpha", .model = "stream", .rate = 120e6, .requests = 40},
       {.name = "beta", .model = "resident", .rate = 300e6, .requests = 32},
       {.name = "gamma", .model = "cnn", .rate = 80e6, .requests = 24}},
      777);
  const BatchPolicy mixed_policy{.max_batch = 16, .max_wait = 50e-9};
  const ServeReport mixed_report =
      server.run(mixed.generate(registry), mixed_policy);
  server.set_tracer(nullptr);
  server.set_metrics(nullptr);

  TablePrinter mixed_table({"tenant", "count", "p50", "p99"});
  for (const char* tenant : {"alpha", "beta", "gamma"}) {
    const LatencyStats stats = mixed_report.tenant_total(tenant);
    mixed_table.add_row({tenant, std::to_string(stats.count),
                         units::si_format(stats.p50, "s"),
                         units::si_format(stats.p99, "s")});
  }
  mixed_table.print(std::cout);
  std::cout << "fleet: " << units::si_format(mixed_report.throughput(),
                                             "req/s")
            << ", p99 " << units::si_format(mixed_report.total.p99, "s")
            << ", mean batch "
            << TablePrinter::num(mixed_report.mean_batch(), 3)
            << ", warm "
            << TablePrinter::num(100.0 * mixed_report.warm_fraction(), 3)
            << " %\n";

  if (trace_path != nullptr) {
    tracer.write_chrome_json_file(trace_path);
    // The acceptance check: every request contributes one async begin/end
    // pair and every dispatched batch one "batch" span — the trace and the
    // report must agree exactly.
    const std::size_t request_spans =
        tracer.count(telemetry::TraceEvent::Phase::kAsyncBegin, "request");
    const std::size_t batch_spans =
        tracer.count(telemetry::TraceEvent::Phase::kComplete, "batch");
    std::cout << "\nPTC_TRACE: wrote " << tracer.size() << " events to "
              << trace_path << " (" << request_spans << " request spans, "
              << batch_spans << " batch spans)\n";
    if (request_spans != mixed_report.completed ||
        batch_spans != mixed_report.dispatched_batches) {
      std::cout << "FAIL: trace span counts disagree with the report ("
                << mixed_report.completed << " requests, "
                << mixed_report.dispatched_batches << " batches)\n";
      return 1;
    }
    std::cout << "\nmetrics exposition:\n" << metrics.prometheus_text();
  }

  telemetry::BenchReport bench("serving_policies");
  bench.set_meta("cores", static_cast<double>(kCores));
  bench.set_meta("requests_per_point", 96.0);
  constexpr double kTightTolerance = 1e-6;
  bench.add_metric("dynamic_speedup_vs_batch1",
                   best_dynamic.throughput() / batch1_throughput, "x",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("dynamic_throughput", best_dynamic.throughput(), "req/s",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("dynamic_p99", best_dynamic.total.p99, "s",
                   telemetry::Direction::kLowerIsBetter, kTightTolerance);
  bench.add_metric("mixed_throughput", mixed_report.throughput(), "req/s",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("mixed_p99", mixed_report.total.p99, "s",
                   telemetry::Direction::kLowerIsBetter, kTightTolerance);
  bench.add_info("batch1_throughput", batch1_throughput, "req/s");
  bench.add_info("mixed_warm_fraction", mixed_report.warm_fraction(), "frac");
  bench.add_info("mixed_mean_batch", mixed_report.mean_batch(), "count");
  bench.write("BENCH_serving.json");
  std::cout << "\nwrote BENCH_serving.json\n";

  std::cout << "\nin the streaming regime the batcher earns its keep: past "
               "batch=1 saturation the queue grows without bound, while the "
               "max-wait policy closes near-full batches and holds the tail; "
               "in the resident regime even unbatched requests ride warm "
               "tiles, so the 20 GHz reload path only matters when the "
               "working set exceeds the fleet — exactly the paper's "
               "weight-streaming amortization argument, restated as a "
               "serving policy (energy/request is execution energy and is "
               "not credited for skipped reloads; the static-power-dominated "
               "ledger keeps it flat across policies); the CNN tenant sits "
               "between the regimes — its 5 tiles ride warm like the "
               "resident MLP, but every request streams 36 conv rows, so "
               "service time (and the batch=1 saturation point) is set by "
               "compute, not reloads\n";
  return 0;
}
