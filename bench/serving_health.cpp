// The oracle-free recalibration frontier: who pulls the re-lock trigger —
// the simulator's ground-truth detuning oracle, the pilot-tone drift
// *estimate*, or the anomaly detector riding the same probe channels —
// swept through the discrete-event Server on a variation-aware fleet.
//
// Real hardware has no oracle.  The estimated / anomaly rows read only
// FleetHealthMonitor state (probe transmission inverted through the ring
// model, EWMA-smoothed), pay for every probe sweep through the fleet
// attribution row, and still have to match the oracle row's served
// accuracy.  The gap between "oracle drift > 0.10K" and "estimated drift
// > 0.10K" is the price of observability; the probe-overhead column is the
// price of the sensor data itself.
//
// Exit status is the acceptance gate: at sigma = 1.0 K the estimated
// trigger must recover >= 95% of the oracle-triggered accuracy while
// spending <= 2% of the makespan on probe sweeps — and the
// no-recalibration row must degrade, or the sweep is not exercising drift.
//
// Emits BENCH_health.json (telemetry::BenchReport) on *modeled* time —
// deterministic across hosts, so the gates carry tight tolerances; any
// drift there is a behavior change, not runner noise.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace ptc;
using namespace ptc::serve;

struct PolicyRow {
  std::string label;
  const char* key;  // stable metric-name key for the BENCH artifact
  BatchPolicy policy;
};

}  // namespace

int main() {
  constexpr std::size_t kCores = 8;
  constexpr std::size_t kRequests = 256;
  constexpr double kRate = 100e6;    // ~2.6 us horizon: a few drift tau
  constexpr double kProbe = 30e-9;   // sweep latency 0.4 ns -> ~1.3% duty

  // Same fleet as the drift frontier (6-bit weights, variation seed 42,
  // OU tau = 4 us) so the oracle rows here line up with BENCH_drift.json.
  const PolicyRow policies[] = {
      {"no recalibration", "none", {.max_batch = 8, .max_wait = 20e-9}},
      {"oracle drift > 0.10K",
       "oracle",
       {.max_batch = 8, .max_wait = 20e-9, .drift_threshold = 0.10}},
      {"estimated drift > 0.10K",
       "estimated",
       {.max_batch = 8,
        .max_wait = 20e-9,
        .probe_period = kProbe,
        .estimated_drift_threshold = 0.10}},
      {"anomaly triggered",
       "anomaly",
       {.max_batch = 8,
        .max_wait = 20e-9,
        .probe_period = kProbe,
        .recalibrate_on_anomaly = true}},
  };

  constexpr double kTightTolerance = 1e-6;
  telemetry::BenchReport bench("serving_health");
  bench.set_meta("cores", static_cast<double>(kCores));
  bench.set_meta("requests", static_cast<double>(kRequests));
  bench.set_meta("rate_req_per_s", kRate);
  bench.set_meta("probe_period_s", kProbe);

  std::cout << "serving-health frontier: " << kCores
            << "-core variation-aware fleet, 6-bit weights, OU drift "
               "(tau = 4 us), pilot-tone probes every "
            << units::si_format(kProbe, "s") << ", " << kRequests
            << " requests at " << units::si_format(kRate, "req/s") << "\n\n";

  TablePrinter table({"drift sigma [K]", "policy", "accuracy", "p99",
                      "recals", "probes", "probe ovh", "lag p50", "alerts",
                      "max |detuning| [K]"});

  double oracle_accuracy = 0.0;
  double estimated_accuracy = 0.0;
  double estimated_overhead = 0.0;
  double no_recal_accuracy = 0.0;
  for (const double sigma : {0.5, 1.0}) {
    runtime::AcceleratorConfig config;
    config.cores = kCores;
    config.core.weight_bits = 6;
    config.variation.seed = 42;
    config.drift.sigma = sigma;
    config.drift.tau = 4e-6;
    runtime::Accelerator accelerator(config);

    nn::PhotonicBackendOptions options;
    options.quantize_output = false;
    options.differential_weights = true;
    ModelRegistry registry(accelerator, options);
    Rng rng(7);
    registry.add("mlp", nn::Mlp(32, 16, 10, rng));  // 6 tiles <= 8 cores
    Server server(registry);

    const LoadGenerator generator(
        {{.name = "t", .model = "mlp", .rate = kRate, .requests = kRequests}},
        1234);
    const std::vector<Request> requests = generator.generate(registry);

    for (const PolicyRow& row : policies) {
      const ServeReport report = server.run(requests, row.policy);
      {
        std::ostringstream key;
        key << row.key << "_sigma" << TablePrinter::num(sigma, 2);
        bench.add_info("accuracy_" + key.str(), report.accuracy(), "frac");
        bench.add_info("p99_" + key.str(), report.total.p99, "s");
        bench.add_info("recals_" + key.str(),
                       static_cast<double>(report.recalibrations), "count");
        bench.add_info("probe_overhead_" + key.str(), report.probe_overhead(),
                       "frac");
        bench.add_info("trigger_lag_p50_" + key.str(), report.trigger_lag.p50,
                       "s");
      }
      table.add_row(
          {TablePrinter::num(sigma, 2), row.label,
           TablePrinter::num(report.accuracy(), 3),
           units::si_format(report.total.p99, "s"),
           std::to_string(report.recalibrations),
           std::to_string(report.probes),
           TablePrinter::num(report.probe_overhead(), 4),
           units::si_format(report.trigger_lag.p50, "s"),
           std::to_string(report.health_alerts),
           TablePrinter::num(report.max_abs_detuning, 3)});
      if (sigma == 1.0) {
        if (row.key == std::string("none")) {
          no_recal_accuracy = report.accuracy();
        } else if (row.key == std::string("oracle")) {
          oracle_accuracy = report.accuracy();
        } else if (row.key == std::string("estimated")) {
          estimated_accuracy = report.accuracy();
          estimated_overhead = report.probe_overhead();
        }
      }
    }
  }
  table.print(std::cout);

  const double recovery =
      oracle_accuracy > 0.0 ? estimated_accuracy / oracle_accuracy : 0.0;
  std::cout << "\nacceptance at sigma = 1.0 K: oracle-triggered accuracy "
            << TablePrinter::num(oracle_accuracy, 3) << ", estimated-trigger "
            << TablePrinter::num(estimated_accuracy, 3) << " (recovery "
            << TablePrinter::num(recovery, 3) << ", bar 0.95), probe overhead "
            << TablePrinter::num(estimated_overhead, 4) << " (bar 0.02)\n";

  bench.add_metric("recovery_ratio", recovery, "frac",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("estimated_accuracy", estimated_accuracy, "frac",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("probe_overhead", estimated_overhead, "frac",
                   telemetry::Direction::kLowerIsBetter, kTightTolerance);
  bench.add_info("oracle_accuracy", oracle_accuracy, "frac");
  bench.add_info("no_recal_accuracy", no_recal_accuracy, "frac");
  bench.write("BENCH_health.json");
  std::cout << "wrote BENCH_health.json\n";

  if (recovery < 0.95) {
    std::cout << "FAIL: the estimated trigger does not recover 95% of the "
                 "oracle-triggered accuracy\n";
    return 1;
  }
  if (estimated_overhead > 0.02) {
    std::cout << "FAIL: probe sweeps cost more than 2% of the makespan\n";
    return 1;
  }
  if (no_recal_accuracy >= 0.95 * oracle_accuracy) {
    std::cout << "FAIL: the no-recalibration row does not degrade — the "
                 "sweep is not exercising drift\n";
    return 1;
  }
  std::cout << "PASS: oracle-free estimated trigger recovers >= 95% of the "
               "oracle accuracy at <= 2% probe overhead\n";
  return 0;
}
