// The drift/recalibration frontier: thermal drift rate x recalibration
// policy swept through the discrete-event Server on a variation-aware
// fleet, printing the accuracy / tail-latency / downtime trade-off that
// decides how a production deployment schedules re-locks.
//
// Physics of the sweep: every core is a distinct fabricated die
// (core::VariationModel), so its rings sit at slightly different points on
// their resonance flanks.  A common-mode thermal detuning therefore strikes
// every ring differently — the heterogeneous gain error that corrupts
// logits — and the cached fast path tracks the drifting device, so served
// accuracy decays as the OU detuning wanders.  Recalibration re-locks the
// heaters (detuning -> 0) and re-freezes the gains, at the price of modeled
// fleet downtime billed through the same batch_cost model serving batches
// use.
//
// Exit status is the acceptance gate: at the highest drift rate the best
// recalibration policy must recover >= 90% of the drift-free accuracy while
// the no-recalibration row degrades below that bar.
//
// Emits BENCH_drift.json (telemetry::BenchReport): every swept point's
// accuracy / p99 / downtime on *modeled* time — deterministic across hosts,
// so the regression gates carry tight tolerances; any drift there is a
// behavior change, not runner noise.
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace ptc;
using namespace ptc::serve;

struct PolicyRow {
  std::string label;
  BatchPolicy policy;
};

}  // namespace

int main() {
  constexpr std::size_t kCores = 8;
  constexpr std::size_t kRequests = 256;
  constexpr double kRate = 100e6;  // ~2.6 us horizon: a few drift tau

  // 6-bit weights keep the quantization floor out of the way (drift-free
  // accuracy vs the float reference ~0.98), and the variation seed makes
  // the pool a heterogeneous fabricated fleet — the precondition for
  // common-mode drift to corrupt logits instead of rescaling them.
  const PolicyRow policies[] = {
      {"no recalibration", {.max_batch = 8, .max_wait = 20e-9}},
      {"periodic 150ns",
       {.max_batch = 8, .max_wait = 20e-9, .recalibration_period = 150e-9}},
      {"drift > 0.10K",
       {.max_batch = 8, .max_wait = 20e-9, .drift_threshold = 0.10}},
  };
  // Stable per-policy metric-name keys for the BENCH artifact.
  const char* policy_keys[] = {"none", "periodic", "threshold"};

  // Modeled-time results are bit-deterministic: the gates tolerate only
  // float formatting slack, so any serving-layer behavior change shows up
  // as a bench_compare failure (regenerate the committed baseline with the
  // diff in review, like the golden tests).
  constexpr double kTightTolerance = 1e-6;
  telemetry::BenchReport bench("serving_drift");
  bench.set_meta("cores", static_cast<double>(kCores));
  bench.set_meta("requests", static_cast<double>(kRequests));
  bench.set_meta("rate_req_per_s", kRate);

  std::cout << "serving-drift frontier: " << kCores
            << "-core variation-aware fleet, 6-bit weights, analog "
               "readout, differential encoding, OU drift (tau = 4 us), "
            << kRequests << " requests at " << units::si_format(kRate, "req/s")
            << "\n\n";

  TablePrinter table({"drift sigma [K]", "policy", "accuracy", "p50", "p99",
                      "warm frac", "recals", "downtime frac",
                      "max |detuning| [K]"});

  double drift_free_accuracy = 0.0;
  double no_recal_accuracy = 0.0;
  double best_recal_accuracy = 0.0;
  for (const double sigma : {0.0, 0.25, 0.5, 1.0}) {
    runtime::AcceleratorConfig config;
    config.cores = kCores;
    config.core.weight_bits = 6;
    config.variation.seed = 42;
    config.drift.sigma = sigma;
    config.drift.tau = 4e-6;
    runtime::Accelerator accelerator(config);

    nn::PhotonicBackendOptions options;
    options.quantize_output = false;
    options.differential_weights = true;
    ModelRegistry registry(accelerator, options);
    Rng rng(7);
    registry.add("mlp", nn::Mlp(32, 16, 10, rng));  // 6 tiles <= 8 cores
    Server server(registry);

    const LoadGenerator generator(
        {{.name = "t", .model = "mlp", .rate = kRate, .requests = kRequests}},
        1234);
    const std::vector<Request> requests = generator.generate(registry);

    for (std::size_t p = 0; p < 3; ++p) {
      const PolicyRow& row = policies[p];
      const ServeReport report = server.run(requests, row.policy);
      const double downtime_fraction =
          report.makespan > 0.0 ? report.recalibration_time / report.makespan
                                : 0.0;
      {
        std::ostringstream key;
        key << policy_keys[p] << "_sigma" << TablePrinter::num(sigma, 2);
        bench.add_info("accuracy_" + key.str(), report.accuracy(), "frac");
        bench.add_info("p99_" + key.str(), report.total.p99, "s");
        bench.add_info("downtime_" + key.str(), downtime_fraction, "frac");
        bench.add_info("recals_" + key.str(),
                       static_cast<double>(report.recalibrations), "count");
      }
      table.add_row({TablePrinter::num(sigma, 2), row.label,
                     TablePrinter::num(report.accuracy(), 3),
                     units::si_format(report.total.p50, "s"),
                     units::si_format(report.total.p99, "s"),
                     TablePrinter::num(report.warm_fraction(), 3),
                     std::to_string(report.recalibrations),
                     TablePrinter::num(downtime_fraction, 4),
                     TablePrinter::num(report.max_abs_detuning, 3)});
      if (sigma == 0.0 && row.label == std::string("no recalibration")) {
        drift_free_accuracy = report.accuracy();
      }
      if (sigma == 1.0) {
        if (row.label == std::string("no recalibration")) {
          no_recal_accuracy = report.accuracy();
        } else {
          best_recal_accuracy =
              std::max(best_recal_accuracy, report.accuracy());
        }
      }
    }
  }
  table.print(std::cout);

  const double bar = 0.9 * drift_free_accuracy;
  std::cout << "\nacceptance at sigma = 1.0 K: drift-free accuracy "
            << TablePrinter::num(drift_free_accuracy, 3)
            << ", no-recalibration "
            << TablePrinter::num(no_recal_accuracy, 3)
            << ", best recalibrated "
            << TablePrinter::num(best_recal_accuracy, 3) << " (bar "
            << TablePrinter::num(bar, 3) << ")\n";

  bench.add_metric("drift_free_accuracy", drift_free_accuracy, "frac",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("best_recal_accuracy", best_recal_accuracy, "frac",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  // Low on purpose — the sweep must show uncompensated drift degrading.
  bench.add_info("no_recal_accuracy", no_recal_accuracy, "frac");
  bench.write("BENCH_drift.json");
  std::cout << "wrote BENCH_drift.json\n";

  if (best_recal_accuracy < bar) {
    std::cout << "FAIL: recalibration does not recover 90% of the "
                 "drift-free accuracy\n";
    return 1;
  }
  if (no_recal_accuracy >= bar) {
    std::cout << "FAIL: the no-recalibration row does not degrade — the "
                 "sweep is not exercising drift\n";
    return 1;
  }
  std::cout << "PASS: recalibration recovers >= 90% of drift-free accuracy "
               "while uncompensated drift degrades\n";
  return 0;
}
