// Wall-clock throughput of the calibrated fast path vs the spectral physics
// walk across fleet sizes and batch sizes, on the serving-style matmul the
// request scheduler dispatches all day: (batch x 128) * (128 x 64) with the
// default hardware options (3-bit eoADC readout, offset weight encoding).
//
// Unlike the other benches, the metric here is *simulation* wall-clock —
// samples simulated per host second — because simulation speed, not modeled
// hardware time, is what bounds how large a fleet / how much traffic the
// serving and scaling studies can sweep.  Both paths produce bit-identical
// results (asserted per row); the fast path just replays the calibrated
// per-weight-load gains instead of re-deriving static device physics per
// sample.
//
// Emits BENCH_perf.json (telemetry::BenchReport — the in-repo perf
// trajectory bench/bench_compare gates CI against) and exits nonzero if the
// acceptance row (8 cores, batch 256) speeds up less than 5x.  The gated
// speedup metric carries a wide tolerance (it is a wall-clock ratio on a
// shared CI runner); per-row samples/s are informational.  With PTC_TRACE
// set, one acceptance-point dispatch is traced to that path.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "runtime/accelerator.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace ptc;
using namespace ptc::runtime;

constexpr std::size_t kInner = 128;    // k: 8 input tiles
constexpr std::size_t kOutputs = 64;   // m: 4 output tiles
constexpr std::size_t kAcceptCores = 8;
constexpr std::size_t kAcceptBatch = 256;
constexpr double kAcceptSpeedup = 5.0;
// Wall-clock ratios on a shared runner are noisy: the regression gate only
// trips when the speedup drops 40% below the committed baseline — wide
// enough for runner noise, tight enough that a 2x slowdown of the fast
// path demonstrably fails.
constexpr double kSpeedupTolerance = 0.4;

struct Row {
  std::size_t cores = 0;
  std::size_t batch = 0;
  bool quantize = true;
  double fast_samples_per_s = 0.0;
  double physics_samples_per_s = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Steady-state samples/s of repeated matmul dispatches.  A batch-1
/// warm-up dispatch populates the weight-plan cache and per-core
/// calibrations so the timed dispatches measure serving steady-state.
double measure(Accelerator& accelerator, const Matrix& x, const Matrix& w,
               const nn::PhotonicBackendOptions& options, Matrix* result,
               double min_time_s) {
  Matrix warm_x(1, x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) warm_x(0, c) = x(0, c);
  accelerator.matmul(warm_x, w, options);
  std::size_t reps = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    *result = accelerator.matmul(x, w, options);
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < min_time_s);
  return static_cast<double>(x.rows() * reps) / elapsed;
}

Row run_config(std::size_t cores, std::size_t batch, bool quantize,
               const Matrix& w) {
  Rng rng(7 + batch);
  const Matrix x = random_activations(batch, kInner, rng);
  nn::PhotonicBackendOptions options;
  options.quantize_output = quantize;

  AcceleratorConfig fast_config{.cores = cores};
  AcceleratorConfig physics_config{.cores = cores};
  physics_config.core.fast_path = false;
  Accelerator fast(fast_config);
  Accelerator physics(physics_config);

  Row row;
  row.cores = cores;
  row.batch = batch;
  row.quantize = quantize;
  Matrix y_fast, y_physics;
  row.fast_samples_per_s = measure(fast, x, w, options, &y_fast, 0.2);
  // The physics walk is orders of magnitude slower; a single timed
  // dispatch after warm-up is representative (no allocation jitter left).
  row.physics_samples_per_s = measure(physics, x, w, options, &y_physics, 0.0);
  row.speedup = row.fast_samples_per_s / row.physics_samples_per_s;
  row.bit_identical = y_fast.max_abs_diff(y_physics) == 0.0;
  return row;
}

std::string row_suffix(const Row& row) {
  return "c" + std::to_string(row.cores) + "_b" + std::to_string(row.batch) +
         (row.quantize ? "" : "_analog");
}

/// One traced dispatch at the acceptance point: the per-core pass/reload
/// spans of a single fleet matmul, written as Chrome trace JSON.
void write_trace(const std::string& path, const Matrix& w) {
  Rng rng(7 + kAcceptBatch);
  const Matrix x = random_activations(kAcceptBatch, kInner, rng);
  Accelerator accelerator({.cores = kAcceptCores});
  telemetry::Tracer tracer;
  accelerator.set_tracer(&tracer);
  accelerator.matmul(x, w, {});
  tracer.write_chrome_json_file(path);
  std::cout << "\nPTC_TRACE: wrote " << tracer.size() << " events to " << path
            << " (one " << kAcceptCores << "-core dispatch, batch "
            << kAcceptBatch << ")\n";
}

}  // namespace

int main() {
  Rng w_rng(2026);
  const Matrix w = random_signed(kInner, kOutputs, w_rng);

  std::cout << "fast path vs physics path, (batch x " << kInner << ") * ("
            << kInner << " x " << kOutputs << "), wall-clock samples/s\n\n";

  std::vector<Row> rows;
  TablePrinter table({"cores", "batch", "readout", "fast samp/s",
                      "physics samp/s", "speedup", "bit-identical"});
  for (const std::size_t cores : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}}) {
    for (const std::size_t batch : {std::size_t{16}, std::size_t{64},
                                    std::size_t{256}}) {
      rows.push_back(run_config(cores, batch, /*quantize=*/true, w));
    }
  }
  // One analog-readout row at the acceptance point: with the eoADC walk out
  // of the loop the linearized core shows its full depth.
  rows.push_back(run_config(kAcceptCores, kAcceptBatch, /*quantize=*/false, w));

  bool all_identical = true;
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.cores), std::to_string(row.batch),
                   row.quantize ? "eoADC" : "analog",
                   TablePrinter::num(row.fast_samples_per_s, 6),
                   TablePrinter::num(row.physics_samples_per_s, 6),
                   TablePrinter::num(row.speedup, 4),
                   row.bit_identical ? "yes" : "NO"});
    all_identical = all_identical && row.bit_identical;
  }
  table.print(std::cout);

  double accept_speedup = 0.0;
  for (const Row& row : rows) {
    if (row.cores == kAcceptCores && row.batch == kAcceptBatch &&
        row.quantize) {
      accept_speedup = row.speedup;
    }
  }
  const bool pass = all_identical && accept_speedup >= kAcceptSpeedup;
  std::cout << "\nacceptance (" << kAcceptCores << " cores, batch "
            << kAcceptBatch << ", eoADC): " << TablePrinter::num(accept_speedup, 4)
            << "x (need >= " << kAcceptSpeedup << "x, bit-identical): "
            << (pass ? "PASS" : "FAIL") << "\n";

  telemetry::BenchReport report("perf_matmul");
  report.set_meta("k", static_cast<double>(kInner));
  report.set_meta("m", static_cast<double>(kOutputs));
  report.set_meta("acceptance_cores", static_cast<double>(kAcceptCores));
  report.set_meta("acceptance_batch", static_cast<double>(kAcceptBatch));
  report.add_metric("accept_speedup", accept_speedup, "x",
                    telemetry::Direction::kHigherIsBetter, kSpeedupTolerance);
  report.add_metric("all_bit_identical", all_identical ? 1.0 : 0.0, "bool",
                    telemetry::Direction::kHigherIsBetter, 0.0);
  for (const Row& row : rows) {
    const std::string suffix = row_suffix(row);
    report.add_info("fast_samples_per_s_" + suffix, row.fast_samples_per_s,
                    "samples/s");
    report.add_info("physics_samples_per_s_" + suffix,
                    row.physics_samples_per_s, "samples/s");
    report.add_info("speedup_" + suffix, row.speedup, "x");
  }
  report.write("BENCH_perf.json");
  std::cout << "wrote BENCH_perf.json\n";

  if (const char* trace_path = telemetry::trace_path_from_env()) {
    write_trace(trace_path, w);
  }

  return pass ? 0 : 1;
}
