// Fabrication/thermal variation ablation: Monte-Carlo yield of the eoADC's
// 1-hot quantization under ring resonance errors, and the thermal
// sensitivity that motivates the paper's integrated-heater stabilization
// (Sec. I, refs [37], [38]).
#include <iostream>

#include "common/table.hpp"
#include "core/eoadc.hpp"
#include "sim/montecarlo.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  std::cout << "Variation ablation: eoADC linearity vs ring resonance "
               "error (Monte-Carlo, 40 trials per point)\n\n";

  // Ring resonance error expressed through the reference-voltage ladder:
  // a resonance error d_lambda is equivalent to a reference shift
  // d_lambda / (17.65 pm/V).  We sweep the equivalent sigma.
  TablePrinter table({"resonance sigma [pm]", "equiv. V_REF sigma [mV]",
                      "mean max|DNL| [LSB]", "worst max|DNL| [LSB]",
                      "yield (no missing codes)"});
  for (double sigma_pm : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double sigma_v = sigma_pm * 1e-12 / 17.65e-12;
    const auto summary = sim::run_monte_carlo(
        40, 1234 + static_cast<std::uint64_t>(sigma_pm * 10),
        [&](Rng& rng) {
          EoAdcConfig config;
          config.vref_mismatch_sigma = sigma_v;
          config.mismatch_seed = rng.next_u64();
          EoAdc adc(config);
          const auto lin = adc.linearity();
          return lin.missing_codes ? 10.0 : lin.max_abs_dnl;
        },
        [](double dnl) { return dnl < 0.5; });
    table.add_row({TablePrinter::num(sigma_pm, 3),
                   TablePrinter::num(sigma_v * 1e3, 3),
                   TablePrinter::num(summary.mean, 3),
                   TablePrinter::num(summary.max, 3),
                   TablePrinter::num(100.0 * summary.yield, 4) + " %"});
  }
  table.print(std::cout);

  std::cout << "\nthermal sensitivity: the 70 pm/K silicon thermo-optic "
               "coefficient means ~0.06 K of uncompensated drift eats one "
               "ADC code edge (4.3 pm) — hence the paper's reliance on "
               "integrated heaters for stabilization.\n";
  return 0;
}
