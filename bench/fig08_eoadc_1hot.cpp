// Reproduces paper Fig. 8: eoADC microring thru-port power versus the analog
// input voltage for all eight reference voltages — the 1-hot encoding
// characteristic.  Exactly one ring dips below the 18 uW reference power in
// each LSB-wide input window.
#include <iostream>

#include "common/csv.hpp"
#include "common/interp.hpp"
#include "common/table.hpp"
#include "core/eoadc.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  EoAdc adc;
  std::cout << "Fig. 8 reproduction: ring thru power vs V_IN per V_REF\n"
            << "200 uW input/ring, 18 uW reference, V_FS = 4 V\n\n";

  std::vector<std::string> headers{"V_IN [V]"};
  for (std::size_t ch = 0; ch < 8; ++ch) {
    std::string header = "M";
    header += std::to_string(ch + 1);
    header += " [uW]";
    headers.push_back(std::move(header));
  }
  headers.push_back("active set");
  TablePrinter table(headers);

  std::vector<std::string> csv_cols{"v_in"};
  for (std::size_t ch = 0; ch < 8; ++ch)
    csv_cols.push_back("p_m" + std::to_string(ch + 1) + "_uw");
  CsvWriter csv(csv_cols);

  for (double v : linspace(0.0, 4.0, 81)) {
    std::vector<std::string> cells{TablePrinter::num(v, 3)};
    std::vector<double> row{v};
    std::string active;
    for (std::size_t ch = 0; ch < 8; ++ch) {
      const double p_uw = adc.channel_thru_power(ch, v) * 1e6;
      cells.push_back(TablePrinter::num(p_uw, 3));
      row.push_back(p_uw);
      if (p_uw < 18.0 * adc.config().trip_offset_ratio) {
        if (!active.empty()) active += "+";
        active += "B";
        active += std::to_string(ch + 1);
      }
    }
    cells.push_back(active.empty() ? "-" : active);
    table.add_row(cells);
    csv.add_row(row);
  }
  table.print(std::cout);
  csv.write_file("fig08_eoadc_1hot.csv");

  // 1-hot property summary over a fine ramp.
  std::size_t single = 0, adjacent_pair = 0, faults = 0, total = 0;
  for (double v = 0.0; v <= 4.0; v += 0.002) {
    const auto conv = adc.convert(v);
    ++total;
    std::size_t n = 0;
    for (bool a : conv.active) n += a ? 1 : 0;
    if (n == 1) ++single;
    if (conv.boundary) ++adjacent_pair;
    if (conv.fault) ++faults;
  }
  std::cout << "\n1-hot summary over " << total << " input points: "
            << single << " single activations, " << adjacent_pair
            << " adjacent-pair (bin-boundary) activations, " << faults
            << " faults\n"
            << "paper: only one transmission spectrum produces power lower "
               "than the reference per input code width\n"
            << "data written to fig08_eoadc_1hot.csv\n";
  return 0;
}
