// WDM channel-spacing ablation (paper Sec. III): with a 9.36 nm FSR and
// ~2.33 nm spacing four channels fit without side-channel interference, and
// "channel spacing can further be lowered ... depending on the MRR
// transmission characteristics".  This bench quantifies that trade-off:
// multiply accuracy vs channel spacing (via the dL step).
#include <cmath>
#include <iostream>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "core/tech.hpp"
#include "core/vector_macro.hpp"
#include "optics/microring.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/sweep.hpp"

namespace {

// Worst-case multiply error across a set of weight/input patterns for a
// macro whose channels are spaced by `spacing_nm`.
double worst_error_at_spacing(double spacing_nm) {
  using namespace ptc;
  using namespace ptc::core;
  using namespace ptc::optics;

  // Channel wavelengths at the requested spacing.
  std::vector<double> lambdas(4);
  std::vector<Microring> rings;
  for (std::size_t ch = 0; ch < 4; ++ch) {
    lambdas[ch] = tech_lambda_base + spacing_nm * 1e-9 * ch;
    // dL scaled to land the resonance on the new grid.
    MicroringConfig config = compute_ring_config(0, 0.0);
    config.dl = tech_dl_step * (spacing_nm / 2.33) * static_cast<double>(ch);
    rings.emplace_back(config);
  }

  // Direct spectral evaluation of a 1-bit x 4-channel multiply row.
  Rng rng(11);
  double worst = 0.0;
  for (int trial = 0; trial < 24; ++trial) {
    std::vector<bool> weights(4);
    std::vector<double> inputs(4);
    for (std::size_t ch = 0; ch < 4; ++ch) {
      weights[ch] = rng.bernoulli(0.5);
      inputs[ch] = rng.uniform();
      rings[ch].set_bias(weights[ch] ? tech_vdd : 0.0);
    }
    double measured = 0.0, ideal = 0.0;
    for (std::size_t ch = 0; ch < 4; ++ch) {
      double transmission = 1.0;
      for (const auto& ring : rings) {
        transmission *= ring.thru_transmission(lambdas[ch]);
      }
      measured += inputs[ch] * transmission;
      ideal += weights[ch] ? inputs[ch] : 0.0;
    }
    worst = std::max(worst, std::fabs(measured - ideal) / 4.0);
  }
  return worst;
}

}  // namespace

int main() {
  using ptc::TablePrinter;

  std::cout << "WDM spacing ablation: normalized multiply error vs channel "
               "spacing (4 channels, 1-bit row)\n\n";
  TablePrinter table({"spacing [nm]", "channels per 9.36 nm FSR",
                      "worst normalized error", "verdict vs 3-bit LSB (1/16)"});
  // Every grid point builds its own rings and Rng, so the sweep fans out
  // across the runtime thread pool; results come back in grid order.
  ptc::runtime::ThreadPool pool;
  const auto points = ptc::sim::sweep_1d_parallel(
      pool, {2.33, 1.8, 1.2, 0.8, 0.5, 0.3, 0.15}, worst_error_at_spacing);
  for (const auto& point : points) {
    const int channels = static_cast<int>(9.36 / point.parameter);
    table.add_row({TablePrinter::num(point.parameter, 3),
                   std::to_string(channels), TablePrinter::num(point.value, 3),
                   point.value < 1.0 / 16.0 ? "ok" : "interferes"});
  }
  table.print(std::cout);

  std::cout << "\npaper:    four channels at ~2.33 nm spacing are safe; "
               "tighter spacing is possible until the ring linewidth "
               "(~158 pm FWHM) causes side-channel interference\n"
            << "measured: errors stay far below one weight LSB down to "
               "sub-nm spacing and blow up near the linewidth scale — the "
               "paper's design point has ample margin\n";
  return 0;
}
