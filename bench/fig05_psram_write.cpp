// Reproduces paper Fig. 5: pSRAM weight-configuration transient.  A 50 ps /
// 0 dBm optical pulse on WBL (then WBLB) flips the storage nodes; the bench
// prints the optical inputs and Q/QB waveforms plus the paper's summary
// metrics (20 GHz update rate, ~0.5 pJ per switching event).
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/psram_bitcell.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  PsramBitcell cell;
  cell.initialize(false);

  sim::TraceSet traces;
  const auto write1 = cell.write(true, &traces);
  traces.write_csv("fig05_psram_write_q1.csv");

  sim::TraceSet traces0;
  const auto write0 = cell.write(false, &traces0);
  traces0.write_csv("fig05_psram_write_q0.csv");

  std::cout << "Fig. 5 reproduction: pSRAM write transients\n"
            << "write pulse: 0 dBm (1 mW), 50 ps; bias: -20 dBm (10 uW)\n\n";

  TablePrinter table({"t [ps]", "WBL [mW]", "WBLB [mW]", "Q [V]", "QB [V]"});
  for (double t_ps = 2.0; t_ps <= 80.0; t_ps += 2.0) {
    const double t = t_ps * 1e-12;
    table.add_row({TablePrinter::num(t_ps),
                   TablePrinter::num(traces.get("wbl").value_at(t) * 1e3),
                   TablePrinter::num(traces.get("wblb").value_at(t) * 1e3),
                   TablePrinter::num(traces.get("q").value_at(t), 3),
                   TablePrinter::num(traces.get("qb").value_at(t), 3)});
  }
  table.print(std::cout);

  std::cout << "\nwrite 0->1: success=" << write1.success
            << "  settle=" << units::si_format(write1.settle_time, "s")
            << "  energy=" << units::si_format(write1.total_energy(), "J")
            << " (laser " << units::si_format(write1.laser_energy, "J")
            << " + driver " << units::si_format(write1.driver_energy, "J")
            << ")\n";
  std::cout << "write 1->0: success=" << write0.success
            << "  settle=" << units::si_format(write0.settle_time, "s")
            << "  energy=" << units::si_format(write0.total_energy(), "J")
            << "\n";
  std::cout << "\npaper:    20 GHz update rate, ~0.5 pJ per switching event\n"
            << "measured: " << (write1.settle_time < 50e-12 ? ">= 20 GHz"
                                                            : "< 20 GHz")
            << " capable (settles within the 50 ps slot), "
            << units::si_format(write1.total_energy(), "J")
            << " per switching event\n"
            << "waveforms written to fig05_psram_write_q{0,1}.csv\n";
  return 0;
}
