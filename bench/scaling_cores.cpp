// Multi-tile scaling study: strong and weak scaling of the accelerator
// runtime over 1-16 photonic tensor cores on a batched matmul workload.
//
// All scaling numbers are *modeled hardware time* (8 GS/s ADC windows,
// 20 GHz pSRAM reloads) so they measure the tile scheduler's ability to
// keep a fleet of cores fed — they are deterministic and independent of
// host thread count.  Host wall time is reported alongside to show the
// thread pool at work.
// Set PTC_TRACE=/path/to/trace.json to capture the 16-core weak-scaling
// matmul as a Chrome trace: per-core tile-pass and reload spans on the
// modeled hardware clock, one track per core.
#include <chrono>
#include <iostream>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "runtime/accelerator.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace ptc;

double wall_ms(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace ptc::runtime;

  Rng rng(2026);
  // 128x128 weights = 64 pSRAM tiles; every tile residency streams the full
  // input batch, so one matmul is 64 equal passes to spread across cores.
  const Matrix w = random_signed(128, 128, rng);
  const Matrix x = random_activations(32, 128, rng);
  const std::size_t core_counts[] = {1, 2, 4, 8, 16};

  std::cout << "strong scaling: fixed batched matmul (32 x 128) * (128 x 128),"
            << " 64 weight tiles\n\n";
  TablePrinter strong({"cores", "modeled makespan", "aggregate TOPS",
                       "speedup", "efficiency", "utilization", "TOPS/W",
                       "host wall [ms]"});
  double t1 = 0.0;
  double speedup_at_8 = 0.0;
  for (const std::size_t cores : core_counts) {
    Accelerator accelerator({.cores = cores});
    const auto t0 = std::chrono::steady_clock::now();
    accelerator.matmul(x, w);
    const double wall = wall_ms(t0);
    const AcceleratorStats stats = accelerator.stats();
    if (cores == 1) t1 = stats.makespan;
    const double speedup = t1 / stats.makespan;
    if (cores == 8) speedup_at_8 = speedup;
    strong.add_row({std::to_string(cores),
                    units::si_format(stats.makespan, "s"),
                    TablePrinter::num(stats.throughput_ops() / 1e12, 4),
                    TablePrinter::num(speedup, 4),
                    TablePrinter::num(speedup / static_cast<double>(cores), 4),
                    TablePrinter::num(stats.utilization(), 4),
                    TablePrinter::num(stats.tops_per_watt() / 1e12, 4),
                    TablePrinter::num(wall, 4)});
  }
  strong.print(std::cout);
  std::cout << "\nspeedup at 8 cores vs 1 core: "
            << TablePrinter::num(speedup_at_8, 4)
            << "x (target: >= 6x)\n";

  std::cout << "\nweak scaling: batch grows with the fleet (8 inputs per "
               "core), same 128x128 weights\n\n";
  TablePrinter weak({"cores", "batch", "modeled makespan", "aggregate TOPS",
                     "speedup vs 1 core", "reload overhead"});
  ptc::telemetry::Tracer tracer;
  const char* trace_path = ptc::telemetry::trace_path_from_env();
  double weak_t1 = 0.0;
  for (const std::size_t cores : core_counts) {
    Accelerator accelerator({.cores = cores});
    // Trace the largest fleet: the 16-track schedule is the one worth
    // looking at in Perfetto.
    if (trace_path != nullptr && cores == 16) accelerator.set_tracer(&tracer);
    const Matrix xb = random_activations(8 * cores, 128, rng);
    accelerator.matmul(xb, w);
    const AcceleratorStats stats = accelerator.stats();
    if (cores == 1) weak_t1 = stats.makespan;
    weak.add_row({std::to_string(cores), std::to_string(8 * cores),
                  units::si_format(stats.makespan, "s"),
                  TablePrinter::num(stats.throughput_ops() / 1e12, 4),
                  TablePrinter::num(weak_t1 / stats.makespan, 4),
                  TablePrinter::num(100.0 * stats.reload_fraction(), 3) +
                      " %"});
  }
  weak.print(std::cout);

  std::cout << "\none 16x16 core peaks at 4.10 TOPS (paper Sec. IV-D); the "
               "runtime's static tile schedule holds near-ideal efficiency "
               "through 16 cores because every pass costs the same and the "
               "batch amortizes each 20 GHz reload over 8 GS/s samples\n";
  if (trace_path != nullptr) {
    tracer.write_chrome_json_file(trace_path);
    std::cout << "\nwrote Chrome trace (" << tracer.size()
              << " events, 16-core weak-scaling matmul) to " << trace_path
              << "\n";
  }
  return 0;
}
