// Reproduces paper Fig. 10: eoADC transfer function (left subplot) and
// differential nonlinearity (right subplot).  The paper reports code widths
// closely matching the ideal with no missing codes (no DNL of -1 LSB); we
// print both the ideal reference ladder and a mismatched one.
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/eoadc.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  std::cout << "Fig. 10 reproduction: ADC transfer function and DNL\n\n";

  // Transfer staircase.
  EoAdc adc;
  CsvWriter staircase({"v_in", "code"});
  for (double v = 0.0; v <= 4.0; v += 0.005) {
    staircase.add_row({v, static_cast<double>(adc.code(v))});
  }
  staircase.write_file("fig10_transfer_function.csv");

  TablePrinter edges_table({"transition", "edge [V]", "bin width [LSB]",
                            "DNL [LSB]", "INL [LSB]"});
  const auto lin = adc.linearity();
  for (std::size_t k = 0; k < lin.code_edges.size(); ++k) {
    const std::string width =
        k + 1 < lin.code_edges.size()
            ? TablePrinter::num(
                  (lin.code_edges[k + 1] - lin.code_edges[k]) / adc.lsb(), 4)
            : "-";
    const std::string dnl =
        k < lin.dnl.size() ? TablePrinter::num(lin.dnl[k], 3) : "-";
    edges_table.add_row({std::to_string(k) + "->" + std::to_string(k + 1),
                         TablePrinter::num(lin.code_edges[k], 4), width, dnl,
                         TablePrinter::num(lin.inl[k], 3)});
  }
  edges_table.print(std::cout);
  std::cout << "\nideal ladder:      max |DNL| = "
            << TablePrinter::num(lin.max_abs_dnl, 3) << " LSB, max |INL| = "
            << TablePrinter::num(lin.max_abs_inl, 3)
            << " LSB, missing codes: " << (lin.missing_codes ? "YES" : "no")
            << "\n";

  // With reference-ladder mismatch (realistic DNL, still no missing codes).
  EoAdcConfig mismatched;
  mismatched.vref_mismatch_sigma = 8e-3;
  mismatched.mismatch_seed = 5;
  EoAdc adc_mm(mismatched);
  const auto lin_mm = adc_mm.linearity();
  std::cout << "8 mV ladder sigma: max |DNL| = "
            << TablePrinter::num(lin_mm.max_abs_dnl, 3) << " LSB, max |INL| = "
            << TablePrinter::num(lin_mm.max_abs_inl, 3)
            << " LSB, missing codes: " << (lin_mm.missing_codes ? "YES" : "no")
            << "\n";

  std::cout << "\npaper:    code width closely matches the ideal, no missing "
               "codes (no DNL of -1 LSB)\n"
            << "measured: agrees — see table above; staircase written to "
               "fig10_transfer_function.csv\n";
  return 0;
}
