// ADC architecture ablation (paper Sec. II-C / IV-C): the 1-hot eoADC with
// and without its TIA/amplifier chain, the paper's proposed time-interleaved
// extension, and the conventional electrical flash ADC it is contrasted
// against.
#include <iostream>

#include "adc/cascaded.hpp"
#include "adc/flash_adc.hpp"
#include "adc/time_interleaved.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/eoadc.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;
  using namespace ptc::adc;

  std::cout << "ADC ablation: 1-hot eoADC vs variants vs electrical flash\n\n";

  TablePrinter table({"architecture", "rate", "electrical power",
                      "total power (incl. lasers)", "energy/conversion",
                      "active blocks/conv"});

  const EoAdc eoadc;
  table.add_row({"eoADC (TIA + amp, paper)",
                 units::si_format(eoadc.sample_rate(), "S/s"),
                 units::si_format(eoadc.electrical_power(), "W"),
                 units::si_format(eoadc.total_power(), "W"),
                 units::si_format(eoadc.energy_per_conversion(), "J"), "1"});

  EoAdcConfig no_amp;
  no_amp.use_amplifier_chain = false;
  const EoAdc eoadc_slow(no_amp);
  table.add_row({"eoADC (amplifier-less)",
                 units::si_format(eoadc_slow.sample_rate(), "S/s"),
                 units::si_format(eoadc_slow.electrical_power(), "W"),
                 units::si_format(eoadc_slow.total_power(), "W"),
                 units::si_format(eoadc_slow.energy_per_conversion(), "J"),
                 "1"});

  TimeInterleavedConfig ti2;
  ti2.slices = 2;
  const TimeInterleavedEoAdc ti(ti2);
  table.add_row({"eoADC x2 time-interleaved",
                 units::si_format(ti.sample_rate(), "S/s"), "-",
                 units::si_format(ti.total_power(), "W"),
                 units::si_format(ti.energy_per_conversion(), "J"), "1/slice"});

  CascadedEoAdc cascaded;
  table.add_row({"eoADC cascaded 3+3 bit (shift-and-add)",
                 units::si_format(cascaded.sample_rate(), "S/s"), "-",
                 units::si_format(cascaded.total_power(), "W"),
                 units::si_format(cascaded.energy_per_conversion(), "J"),
                 "1/slice"});

  const FlashAdc flash;
  table.add_row({"electrical flash (refs [39],[40])",
                 units::si_format(flash.sample_rate(), "S/s"),
                 units::si_format(flash.electrical_power(), "W"),
                 units::si_format(flash.electrical_power(), "W"),
                 units::si_format(flash.energy_per_conversion(), "J"),
                 std::to_string(flash.activations_per_conversion())});
  table.print(std::cout);

  const double reduction =
      1.0 - eoadc_slow.electrical_power() / eoadc.electrical_power();
  std::cout << "\npaper:    removing TIAs/amplifiers -> 416.7 MS/s at 58% "
               "less electrical power\n"
            << "measured: " << units::si_format(eoadc_slow.sample_rate(), "S/s")
            << " at " << TablePrinter::num(100.0 * reduction, 3)
            << "% less electrical power\n";

  std::cout << "\nactivation scaling (dynamic thresholding work per "
               "conversion):\n";
  TablePrinter scaling({"bits", "eoADC active blocks", "flash comparators"});
  for (unsigned bits = 2; bits <= 8; ++bits) {
    scaling.add_row({std::to_string(bits), "1",
                     std::to_string((1u << bits) - 1)});
  }
  scaling.print(std::cout);
  return 0;
}
