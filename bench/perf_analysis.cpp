// Reproduces the paper's Sec. IV-D performance analysis: the 16x16, 3-bit,
// 768-bitcell photonic tensor core reaching 4.10 TOPS at 3.02 TOPS/W, with
// the full per-component power breakdown and scaling sweeps.
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/performance.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  const PerformanceModel model;
  std::cout << "Sec. IV-D reproduction: 16x16 photonic tensor core\n\n";

  TablePrinter summary({"metric", "paper", "measured"});
  summary.add_row({"pSRAM bitcells", "768",
                   std::to_string(model.bitcell_count())});
  summary.add_row({"ops per ADC sample", "512 (16 x 32)",
                   TablePrinter::num(model.ops_per_sample())});
  summary.add_row({"ADC sample rate", "8 GS/s",
                   units::si_format(model.sample_rate(), "S/s")});
  summary.add_row({"throughput", "4.10 TOPS",
                   TablePrinter::num(model.throughput_ops() / 1e12, 3) +
                       " TOPS"});
  summary.add_row({"total power", "~1.36 W (4.10/3.02)",
                   units::si_format(model.power(), "W")});
  summary.add_row({"power efficiency", "3.02 TOPS/W",
                   TablePrinter::num(model.tops_per_watt() / 1e12, 3) +
                       " TOPS/W"});
  summary.add_row({"weight update rate", "20 GHz",
                   units::si_format(model.config().psram.write_rate, "Hz")});
  summary.add_row({"full weight reload", "-",
                   units::si_format(model.weight_reload_time(), "s")});
  summary.print(std::cout);

  std::cout << "\npower breakdown (calibration documented in DESIGN.md):\n";
  TablePrinter breakdown({"component", "power", "share"});
  for (const auto& [name, watts] : model.power_table()) {
    breakdown.add_row({name, units::si_format(watts, "W"),
                       TablePrinter::num(100.0 * watts / model.power(), 3) +
                           " %"});
  }
  breakdown.print(std::cout);

  std::cout << "\nscaling sweep (same device models, varying array size):\n";
  TablePrinter scaling({"array", "bitcells", "TOPS", "W", "TOPS/W"});
  for (std::size_t n : {4, 8, 16, 32, 64}) {
    TensorCoreConfig config;
    config.rows = n;
    config.cols = n;
    const PerformanceModel m(config);
    scaling.add_row({std::to_string(n) + "x" + std::to_string(n),
                     std::to_string(m.bitcell_count()),
                     TablePrinter::num(m.throughput_ops() / 1e12, 3),
                     TablePrinter::num(m.power(), 3),
                     TablePrinter::num(m.tops_per_watt() / 1e12, 3)});
  }
  scaling.print(std::cout);

  std::cout << "\nnote: the ADC limits the sample rate (paper: \"latency "
               "from the electro-optic ADC limits the overall speed\"); "
               "efficiency improves with array size because ADC/TIA power "
               "is amortized over N^2 MACs.\n";
  return 0;
}
