// Reproduces paper Table I: performance comparison of photonic IMC macros.
// Baseline rows come from the behavioral architecture models in
// src/baseline; the "This Work" row is computed by the performance model of
// the simulated 16x16 tensor core.
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "baseline/comparison.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::baseline;

  std::cout << "Table I reproduction: photonic IMC macro comparison\n\n";

  TablePrinter table({"Reference", "Throughput (TOPS)",
                      "Power Efficiency (TOPS/W)", "Weight Update (Speed)",
                      "Update mechanism"});
  for (const auto& row : table1_rows()) {
    table.add_row(
        {row.name,
         row.throughput_tops > 0.0 ? TablePrinter::num(row.throughput_tops, 3)
                                   : "-",
         row.efficiency_tops_w > 0.0
             ? TablePrinter::num(row.efficiency_tops_w, 3)
             : "-",
         units::si_format(row.weight_update_hz, "Hz"), row.update_note});
  }
  table.print(std::cout);

  std::cout << "\npaper Table I:  [33] 0.12 TOPS / 60 GHz;  [48] 0.93 TOPS, "
               "0.83 TOPS/W, <0.5 GHz;\n"
               "                [49] 11.0 TOPS / 2 Hz;  [50] 10 TOPS/W / "
               "~1 GHz;  [51] 3.98 TOPS, 1.97 TOPS/W, <0.5 GHz;\n"
               "                This Work 4.10 TOPS, 3.02 TOPS/W, 20 GHz\n";
  return 0;
}
