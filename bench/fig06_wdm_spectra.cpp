// Reproduces paper Fig. 6: compute-MRR transmission spectra as a function of
// the ring adjustment length dL in {0, 68, 136, 204} nm.  The bench verifies
// the paper's headline numbers: FSR = 9.36 nm and 2.33 nm channel spacing.
#include <iostream>

#include "common/csv.hpp"
#include "common/interp.hpp"
#include "common/table.hpp"
#include "core/tech.hpp"
#include "optics/microring.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::optics;
  using namespace ptc::core;

  std::cout << "Fig. 6 reproduction: MRR spectra vs ring adjustment length\n"
            << "7.5 um radius, 200 nm gaps, add-drop\n\n";

  std::vector<Microring> rings;
  for (std::size_t ch = 0; ch < 4; ++ch) {
    rings.emplace_back(compute_ring_config(ch, 0.0));
  }

  CsvWriter csv({"lambda_nm", "t_dl0", "t_dl68", "t_dl136", "t_dl204"});
  for (double lambda_nm : linspace(1308.0, 1320.0, 481)) {
    std::vector<double> row{lambda_nm};
    for (const auto& ring : rings) {
      row.push_back(ring.thru_transmission(lambda_nm * 1e-9));
    }
    csv.add_row(row);
  }
  csv.write_file("fig06_wdm_spectra.csv");

  TablePrinter table({"dL [nm]", "resonance [nm]", "spacing to prev [nm]",
                      "FSR [nm]", "FWHM [pm]"});
  double prev = 0.0;
  for (std::size_t ch = 0; ch < 4; ++ch) {
    const double expected = channel_wavelength(ch);
    const double res = rings[ch].resonance_near(expected);
    table.add_row({TablePrinter::num(68.0 * static_cast<double>(ch)),
                   TablePrinter::num(res * 1e9, 6),
                   ch == 0 ? "-" : TablePrinter::num((res - prev) * 1e9, 4),
                   TablePrinter::num(rings[ch].fsr(res) * 1e9, 4),
                   TablePrinter::num(rings[ch].fwhm(res) * 1e12, 4)});
    prev = res;
  }
  table.print(std::cout);

  std::cout << "\npaper:    FSR 9.36 nm, wavelength separation 2.33 nm\n"
            << "measured: FSR " << TablePrinter::num(rings[0].fsr(1310e-9) * 1e9, 4)
            << " nm, separation "
            << TablePrinter::num(
                   (rings[1].resonance_near(channel_wavelength(1)) -
                    rings[0].resonance_near(channel_wavelength(0))) * 1e9, 4)
            << " nm\nspectra written to fig06_wdm_spectra.csv\n";
  return 0;
}
