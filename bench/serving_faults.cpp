// The hard-fault serving frontier: a deterministic Poisson fault process
// (dead ring clusters, stuck heaters, dead ADC ladders) replayed on modeled
// time against three reactions — no mitigation, FAILED-core eviction, and
// eviction plus degraded-capacity load shedding — swept through the
// discrete-event Server on a variation-aware fleet.
//
// The point of the sweep: a FAILED core that stays in the rotation keeps
// corrupting every batch that touches its tiles, so the no-mitigation row
// collapses below the accuracy budget; evicting it costs capacity (and,
// with shedding, availability) but holds served accuracy near the
// fault-free fleet, because the surviving cores' schedule is bit-identical
// to a healthy fleet of that size.
//
// Exit status is the acceptance gate: at the gated fault rate the eviction
// policy must hold >= 90% of the fault-free accuracy, the shedding policy
// must keep availability >= 95%, and the no-mitigation row must collapse —
// or the sweep is not exercising faults.
//
// Emits BENCH_faults.json (telemetry::BenchReport) on *modeled* time —
// deterministic across hosts, so the gates carry tight tolerances.  The
// --quick flag drops the intermediate fault rate (CI smoke); every row is
// an independent run, so the gated numbers are identical either way.
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/fault.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace ptc;
using namespace ptc::serve;

struct PolicyRow {
  std::string label;
  const char* key;  // stable metric-name key for the BENCH artifact
  BatchPolicy policy;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  constexpr std::size_t kCores = 8;
  constexpr std::size_t kRequests = 256;
  constexpr double kRate = 100e6;       // ~2.6 us horizon
  constexpr double kHorizon = 2.0e-6;   // fault window, inside the makespan
  constexpr double kGatedRate = 6e6;    // ~12 expected faults over the window
  constexpr std::uint64_t kFaultSeed = 905;
  constexpr std::size_t kDeadRings = 64;  // well past the FAILED threshold

  const PolicyRow policies[] = {
      {"no mitigation", "none", {.max_batch = 8, .max_wait = 20e-9}},
      {"evict FAILED",
       "evict",
       {.max_batch = 8,
        .max_wait = 20e-9,
        .evict_on_fault = true,
        .recalibrate_on_fault = true}},
      {"evict + shed",
       "evict_shed",
       {.max_batch = 8,
        .max_wait = 20e-9,
        .evict_on_fault = true,
        .recalibrate_on_fault = true,
        .degraded_queue_limit = 6}},
  };

  constexpr double kTightTolerance = 1e-6;
  telemetry::BenchReport bench("serving_faults");
  bench.set_meta("cores", static_cast<double>(kCores));
  bench.set_meta("requests", static_cast<double>(kRequests));
  bench.set_meta("rate_req_per_s", kRate);
  bench.set_meta("gated_fault_rate_per_s", kGatedRate);
  bench.set_meta("fault_seed", static_cast<double>(kFaultSeed));

  std::cout << "serving-fault frontier: " << kCores
            << "-core variation-aware fleet, 6-bit weights, Poisson hard "
               "faults over "
            << units::si_format(kHorizon, "s") << ", " << kRequests
            << " requests at " << units::si_format(kRate, "req/s")
            << (quick ? " (quick grid)" : "") << "\n\n";

  TablePrinter table({"fault rate [/s]", "policy", "faults", "evicted",
                      "readmits", "accuracy", "availability", "shed", "p99",
                      "fault downtime"});

  std::vector<double> fault_rates = {0.0, 1e6, kGatedRate};
  if (quick) fault_rates = {0.0, kGatedRate};

  double fault_free_accuracy = 0.0;
  double none_accuracy = 0.0;
  double evict_accuracy = 0.0;
  double evict_availability = 0.0;
  double shed_accuracy = 0.0;
  double shed_availability = 0.0;
  for (const double fault_rate : fault_rates) {
    runtime::AcceleratorConfig config;
    config.cores = kCores;
    config.core.weight_bits = 6;
    config.variation.seed = 42;
    runtime::Accelerator accelerator(config);

    nn::PhotonicBackendOptions options;
    options.quantize_output = false;
    options.differential_weights = true;
    ModelRegistry registry(accelerator, options);
    Rng rng(7);
    registry.add("mlp", nn::Mlp(32, 16, 10, rng));  // 6 tiles <= 8 cores
    Server server(registry);

    const LoadGenerator generator(
        {{.name = "t", .model = "mlp", .rate = kRate, .requests = kRequests}},
        1234);
    const std::vector<Request> requests = generator.generate(registry);

    // One deterministic fault draw per rate, shared by every policy row —
    // the policies face the same strikes, so the columns compare reactions,
    // not luck.  Dead-ring clusters are bumped to a count that reliably
    // classifies FAILED (the self-test fail bar sits near 24 rings).
    std::vector<runtime::FaultEvent> schedule = runtime::poisson_fault_schedule(
        fault_rate, kHorizon, kCores, kFaultSeed);
    for (runtime::FaultEvent& event : schedule) {
      if (event.kind == runtime::FaultEvent::Kind::kDeadRings) {
        event.count = kDeadRings;
      }
    }

    for (const PolicyRow& row : policies) {
      server.set_fault_schedule(schedule);
      const ServeReport report = server.run(requests, row.policy);
      {
        std::ostringstream key;
        key << row.key << "_rate" << static_cast<int>(fault_rate / 1e6) << "M";
        bench.add_info("accuracy_" + key.str(), report.accuracy(), "frac");
        bench.add_info("availability_" + key.str(), report.availability(),
                       "frac");
        bench.add_info("faults_" + key.str(),
                       static_cast<double>(report.faults), "count");
        bench.add_info("evictions_" + key.str(),
                       static_cast<double>(report.core_evictions), "count");
        bench.add_info("shed_" + key.str(), static_cast<double>(report.shed),
                       "count");
        bench.add_info("p99_" + key.str(), report.total.p99, "s");
        bench.add_info("fault_time_" + key.str(), report.fault_time, "s");
      }
      table.add_row({units::si_format(fault_rate, ""), row.label,
                     std::to_string(report.faults),
                     std::to_string(report.core_evictions),
                     std::to_string(report.core_readmissions),
                     TablePrinter::num(report.accuracy(), 3),
                     TablePrinter::num(report.availability(), 3),
                     std::to_string(report.shed),
                     units::si_format(report.total.p99, "s"),
                     units::si_format(report.fault_time, "s")});
      if (fault_rate == 0.0 && row.key == std::string("none")) {
        fault_free_accuracy = report.accuracy();
      }
      if (fault_rate == kGatedRate) {
        if (row.key == std::string("none")) {
          none_accuracy = report.accuracy();
        } else if (row.key == std::string("evict")) {
          evict_accuracy = report.accuracy();
          evict_availability = report.availability();
        } else if (row.key == std::string("evict_shed")) {
          shed_accuracy = report.accuracy();
          shed_availability = report.availability();
        }
      }
    }
  }
  table.print(std::cout);

  const double evict_ratio =
      fault_free_accuracy > 0.0 ? evict_accuracy / fault_free_accuracy : 0.0;
  const double none_ratio =
      fault_free_accuracy > 0.0 ? none_accuracy / fault_free_accuracy : 0.0;
  std::cout << "\nacceptance at fault rate "
            << units::si_format(kGatedRate, "/s") << ": fault-free accuracy "
            << TablePrinter::num(fault_free_accuracy, 3)
            << ", eviction-policy accuracy "
            << TablePrinter::num(evict_accuracy, 3) << " (ratio "
            << TablePrinter::num(evict_ratio, 3)
            << ", bar 0.90), shed availability "
            << TablePrinter::num(shed_availability, 3)
            << " (bar 0.95), no-mitigation ratio "
            << TablePrinter::num(none_ratio, 3) << " (must sit below 0.90)\n";

  bench.add_metric("evict_accuracy_ratio", evict_ratio, "frac",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("shed_availability", shed_availability, "frac",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_metric("evict_accuracy", evict_accuracy, "frac",
                   telemetry::Direction::kHigherIsBetter, kTightTolerance);
  bench.add_info("fault_free_accuracy", fault_free_accuracy, "frac");
  bench.add_info("none_accuracy", none_accuracy, "frac");
  bench.add_info("none_accuracy_ratio", none_ratio, "frac");
  bench.add_info("evict_availability", evict_availability, "frac");
  bench.add_info("shed_accuracy", shed_accuracy, "frac");
  bench.write("BENCH_faults.json");
  std::cout << "wrote BENCH_faults.json\n";

  if (evict_ratio < 0.90) {
    std::cout << "FAIL: the eviction policy does not hold 90% of the "
                 "fault-free accuracy\n";
    return 1;
  }
  if (shed_availability < 0.95) {
    std::cout << "FAIL: shedding drops availability below 95%\n";
    return 1;
  }
  if (none_ratio >= 0.90) {
    std::cout << "FAIL: the no-mitigation row does not collapse — the sweep "
                 "is not exercising hard faults\n";
    return 1;
  }
  std::cout << "PASS: FAILED-core eviction holds >= 90% of fault-free "
               "accuracy at >= 95% availability under the gated fault rate\n";
  return 0;
}
