// Reproduces paper Fig. 7: multiplication of two 1x4 vectors with 3-bit
// weight precision over four WDM channels.  The normalized photodiode
// current is plotted against the ideal vector product; the paper's claim is
// a linear relationship, which we quantify with a least-squares fit.
#include <iostream>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "core/vector_macro.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  std::cout << "Fig. 7 reproduction: 1x4 vector multiply, 3-bit weights, "
               "4 WDM channels (crosstalk included)\n\n";

  VectorComputeMacro macro;
  Rng rng(7);

  TablePrinter table({"case", "weights", "inputs", "ideal", "measured",
                      "error"});
  CsvWriter csv({"ideal", "measured"});
  std::vector<double> ideals, measured;

  auto run_case = [&](int id, const std::vector<std::uint32_t>& w,
                      const std::vector<double>& in) {
    macro.load_weights(w);
    const double ideal = macro.ideal_normalized(in);
    const double out = macro.multiply(in).normalized;
    ideals.push_back(ideal);
    measured.push_back(out);
    csv.add_row({ideal, out});
    char wbuf[32], ibuf[48];
    std::snprintf(wbuf, sizeof wbuf, "[%u %u %u %u]", w[0], w[1], w[2], w[3]);
    std::snprintf(ibuf, sizeof ibuf, "[%.2f %.2f %.2f %.2f]", in[0], in[1],
                  in[2], in[3]);
    table.add_row({TablePrinter::num(id), wbuf, ibuf,
                   TablePrinter::num(ideal, 4), TablePrinter::num(out, 4),
                   TablePrinter::num(out - ideal, 2)});
  };

  int id = 0;
  run_case(id++, {0, 0, 0, 0}, {1.0, 1.0, 1.0, 1.0});
  run_case(id++, {7, 7, 7, 7}, {1.0, 1.0, 1.0, 1.0});
  run_case(id++, {7, 3, 5, 1}, {1.0, 0.5, 0.25, 0.8});
  run_case(id++, {1, 2, 4, 7}, {0.3, 0.9, 0.2, 0.6});
  for (; id < 24; ++id) {
    std::vector<std::uint32_t> w(4);
    std::vector<double> in(4);
    for (auto& v : w) v = static_cast<std::uint32_t>(rng.below(8));
    for (auto& v : in) v = rng.uniform();
    run_case(id, w, in);
  }
  table.print(std::cout);
  csv.write_file("fig07_vector_multiply.csv");

  const auto fit = linear_fit(ideals, measured);
  std::cout << "\npaper:    simulated outputs follow the ideal linear trend\n"
            << "measured: slope " << TablePrinter::num(fit.slope, 4)
            << ", intercept " << TablePrinter::num(fit.intercept, 3)
            << ", R^2 " << TablePrinter::num(fit.r_squared, 6) << "\n"
            << "data written to fig07_vector_multiply.csv\n";
  return 0;
}
