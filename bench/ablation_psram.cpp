// pSRAM write-margin ablation (paper Sec. II-A): "the write optical power
// must exceed the input bias laser power for successful data flipping".
// This bench maps the write success boundary over write power and pulse
// width, and the energy cost along the success frontier.
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/psram_bitcell.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  std::cout << "pSRAM write margin: flip success vs write power and pulse "
               "width (bias: -20 dBm = 10 uW)\n\n";

  const double widths_ps[] = {25.0, 50.0, 100.0};
  TablePrinter table({"write power", "vs bias", "25 ps pulse", "50 ps pulse",
                      "100 ps pulse", "energy @50ps"});

  for (double power_dbm : {-23.0, -20.0, -17.0, -14.0, -10.0, -6.0, -3.0,
                           0.0, 3.0}) {
    const double power_w = units::dbm_to_watt(power_dbm);
    std::vector<std::string> cells{
        units::si_format(power_w, "W"),
        TablePrinter::num(power_dbm + 20.0, 3) + " dB"};
    std::string energy_cell = "-";
    for (double width : widths_ps) {
      PsramConfig config;
      config.write_power = power_w;
      config.write_pulse_width = width * 1e-12;
      PsramBitcell cell(config);
      cell.initialize(false);
      const auto result = cell.write(true);
      cells.push_back(result.success ? "flip" : "FAIL");
      if (width == 50.0 && result.success) {
        energy_cell = units::si_format(result.total_energy(), "J");
      }
    }
    cells.push_back(energy_cell);
    table.add_row(cells);
  }
  table.print(std::cout);

  std::cout << "\npaper:    write power must exceed the bias power; the "
               "demonstrated point is 0 dBm / 50 ps at ~0.5 pJ\n"
            << "measured: writes at or below the bias level fail; the "
               "success frontier sits a few dB above the bias, and the "
               "paper's 0 dBm point carries a wide margin\n";
  return 0;
}
