// Multi-tenant serving through the ModelRegistry: two tenants with their
// own models share one accelerator fleet, and the dynamic batcher decides
// which model's batch dispatches next — preferring the model whose weight
// tiles are already resident, so fewer 20 GHz pSRAM reloads are paid.
//
// Run it:  ./example_multi_tenant
//
// Set PTC_TRACE=/path/to/trace.json to capture the whole serving run as a
// Chrome trace (open it in Perfetto / chrome://tracing): request lifetimes,
// batch dispatches, per-core tile passes and weight reloads, all on the
// modeled hardware clock.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "telemetry/trace.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::serve;

  runtime::Accelerator accelerator({.cores = 8});
  ModelRegistry registry(accelerator);
  Rng rng(2025);
  // "vision" streams 10 weight tiles per batch (never fully resident on 8
  // cores); "keyword" fits in 3 tiles, so its back-to-back batches run warm.
  registry.add("vision", nn::Mlp(64, 32, 10, rng));
  registry.add("keyword", nn::Mlp(32, 16, 4, rng));
  Server server(registry);

  telemetry::Tracer tracer;
  const char* trace_path = telemetry::trace_path_from_env();
  if (trace_path != nullptr) server.set_tracer(&tracer);

  const LoadGenerator generator(
      {{.name = "alice", .model = "vision", .rate = 40e6, .requests = 48},
       {.name = "bob", .model = "keyword", .rate = 800e6, .requests = 240}},
      7);
  const BatchPolicy policy{.max_batch = 16, .max_wait = 25e-9};
  const ServeReport report = server.run(generator.generate(registry), policy);

  std::cout << "multi-tenant serving: 8-core fleet, two models, one queue\n"
            << "  alice -> vision (64-32-10, 10 tiles) at 40 Mreq/s\n"
            << "  bob   -> keyword (32-16-4, 3 tiles) at 800 Mreq/s\n"
            << "  policy: batch <= 16, max wait 25 ns\n\n";

  TablePrinter table({"tenant", "requests", "p50", "p95", "p99", "max"});
  for (const char* tenant : {"alice", "bob"}) {
    const LatencyStats stats = report.tenant_total(tenant);
    table.add_row({tenant, std::to_string(stats.count),
                   units::si_format(stats.p50, "s"),
                   units::si_format(stats.p95, "s"),
                   units::si_format(stats.p99, "s"),
                   units::si_format(stats.max, "s")});
  }
  table.print(std::cout);

  std::cout << "\nfleet totals: "
            << units::si_format(report.throughput(), "req/s") << " over "
            << report.batches.size() << " batches (mean size "
            << TablePrinter::num(report.mean_batch(), 3) << "), "
            << TablePrinter::num(100.0 * report.warm_fraction(), 3)
            << " % of tile passes served from resident weights, "
            << units::si_format(report.energy_per_request(), "J")
            << " per request\n\n"
            << "the batcher keeps the two tenants' batches apart (a batch "
               "is always one model) but lets keyword's small working set "
               "stay resident between its dispatches; vision pays its "
               "reloads every time, which is why its tail is wider than "
               "its rate alone would predict\n";

  if (trace_path != nullptr) {
    tracer.write_chrome_json_file(trace_path);
    std::cout << "\nwrote Chrome trace (" << tracer.size() << " events) to "
              << trace_path << "\nschedule for \"vision\":\n"
              << registry.schedule_dump("vision");
  }
  return 0;
}
