// Digit classification on the photonic tensor core: train a small MLP in
// float on the synthetic glyph dataset, then run inference through the
// photonic backend and compare accuracy across readout fidelities — the
// workload class (AI/ML inference) that motivates the paper's introduction.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/tensor_core.hpp"
#include "nn/backend.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::nn;

  Rng rng(2025);
  const Dataset train = make_dataset(600, rng, 0.12);
  const Dataset test = make_dataset(200, rng, 0.12);

  std::cout << "training a 64-24-10 MLP in float on " << train.size()
            << " synthetic glyphs...\n";
  Mlp mlp(glyph_pixels, 24, glyph_classes, rng);
  for (int epoch = 0; epoch < 40; ++epoch) {
    const double loss = mlp.train_epoch(train, 0.1, 16, rng);
    if (epoch % 10 == 9) {
      std::cout << "  epoch " << epoch + 1 << ": loss "
                << TablePrinter::num(loss, 4) << "\n";
    }
  }

  FloatBackend reference;
  core::TensorCore core;

  PhotonicBackendOptions analog;
  analog.quantize_output = false;
  analog.differential_weights = true;
  PhotonicBackend photonic_analog(core, analog);

  PhotonicBackendOptions quantized;
  quantized.quantize_output = true;
  quantized.differential_weights = true;
  // Row-TIA ranging: glyph activations are sparse, so the dot products sit
  // low in the ADC range without a readout gain.
  quantized.adc_range_gain = 8.0;
  PhotonicBackend photonic_quantized(core, quantized);

  std::cout << "\nrunning inference on " << test.size() << " samples...\n\n";
  TablePrinter table({"backend", "weights", "readout", "accuracy"});
  table.add_row({"float reference", "fp64", "exact",
                 TablePrinter::num(100.0 * mlp.accuracy(reference, test), 4) +
                     " %"});
  table.add_row({"photonic (analog readout)", "3-bit pSRAM",
                 "ideal high-res ADC",
                 TablePrinter::num(
                     100.0 * mlp.accuracy(photonic_analog, test), 4) +
                     " %"});
  table.add_row({"photonic (full hardware path)", "3-bit pSRAM",
                 "3-bit 1-hot eoADC",
                 TablePrinter::num(
                     100.0 * mlp.accuracy(photonic_quantized, test), 4) +
                     " %"});

  // The same MLP on a 4-core accelerator fleet, unchanged: the backend
  // interface hides the tile scheduler, and with identical dies the
  // accuracy matches the single core bit for bit.
  runtime::Accelerator accelerator({.cores = 4});
  runtime::AcceleratorBackend accelerated(accelerator, quantized);
  table.add_row({"4-core accelerator runtime", "3-bit pSRAM",
                 "3-bit 1-hot eoADC",
                 TablePrinter::num(
                     100.0 * mlp.accuracy(accelerated, test), 4) +
                     " %"});
  table.print(std::cout);

  const auto fleet = accelerator.stats();
  std::cout << "\nfleet: " << fleet.cores << " cores, "
            << fleet.tile_loads << " tile residencies, modeled speedup "
            << TablePrinter::num(fleet.busy_time / fleet.makespan, 3)
            << "x over one core at "
            << TablePrinter::num(100.0 * fleet.utilization(), 3)
            << " % utilization\n";

  std::cout << "\nweight tiles streamed through the pSRAM: "
            << photonic_quantized.tile_loads() << " loads, total reload time "
            << TablePrinter::num(photonic_quantized.reload_time() * 1e9, 4)
            << " ns (20 GHz optical writes)\n";
  return 0;
}
