// Weight streaming: the paper's motivating big-data scenario (Sec. I,
// contribution 2) — datasets exceed the 16x16 array, so weight tiles are
// streamed through the pSRAM at the 20 GHz update rate while inputs flow at
// the 8 GS/s compute rate.  The example processes a large matrix in tiles
// and reports the update-vs-compute time budget, then contrasts the same
// schedule on the PCM-crossbar baseline.
#include <cstdint>
#include <iostream>

#include "baseline/pcm_crossbar.hpp"
#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/tensor_core.hpp"
#include "runtime/accelerator.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  TensorCore core;
  Rng rng(77);

  // A 128x128 weight matrix: 64 tiles of 16x16.
  constexpr std::size_t big = 128;
  constexpr std::size_t tile = 16;
  constexpr std::size_t tiles_per_side = big / tile;
  constexpr std::size_t batch = 256;  // input vectors per tile residency

  std::cout << "streaming a " << big << "x" << big << " weight matrix ("
            << tiles_per_side * tiles_per_side << " tiles) with a batch of "
            << batch << " inputs per tile\n\n";

  double reload_total = 0.0;
  double compute_total = 0.0;
  std::size_t multiplies = 0;
  for (std::size_t tr = 0; tr < tiles_per_side; ++tr) {
    for (std::size_t tc = 0; tc < tiles_per_side; ++tc) {
      std::vector<std::vector<std::uint32_t>> weights(
          tile, std::vector<std::uint32_t>(tile));
      for (auto& row : weights)
        for (auto& w : row) w = static_cast<std::uint32_t>(rng.below(8));
      reload_total += core.load_weights(weights);

      std::vector<double> input(tile);
      for (std::size_t s = 0; s < batch; ++s) {
        for (auto& v : input) v = rng.uniform();
        core.multiply(input);
        ++multiplies;
      }
      compute_total += static_cast<double>(batch) / 8e9;
    }
  }

  TablePrinter table({"quantity", "value"});
  table.add_row({"tiles streamed",
                 std::to_string(tiles_per_side * tiles_per_side)});
  table.add_row({"matrix-vector products", std::to_string(multiplies)});
  table.add_row({"weight reload time (total)",
                 units::si_format(reload_total, "s")});
  table.add_row({"compute time (total)",
                 units::si_format(compute_total, "s")});
  table.add_row({"update overhead",
                 TablePrinter::num(100.0 * reload_total /
                                       (reload_total + compute_total), 3) +
                     " %"});
  table.add_row({"pSRAM write energy",
                 units::si_format(
                     core.psram().ledger().energy("psram_write"), "J")});
  table.print(std::cout);

  // The same streaming schedule on the PCM baseline.
  baseline::PcmCrossbar pcm;
  double pcm_reload = 0.0;
  for (std::size_t t = 0; t < tiles_per_side * tiles_per_side; ++t) {
    Matrix w(tile, tile);
    for (double& v : w.data()) v = rng.uniform();
    pcm_reload += pcm.program(w);
  }
  std::cout << "\nsame schedule on the PCM-crossbar baseline: reload time "
            << units::si_format(pcm_reload, "s") << " ("
            << TablePrinter::num(pcm_reload / reload_total, 3)
            << "x slower), endurance consumed: "
            << pcm.max_cell_updates() << " of "
            << pcm.config().endurance << " writes per cell\n"
            << "\nthe 20 GHz pSRAM update keeps streaming overhead at the "
               "single-digit-percent level (and it amortizes further with "
               "batch size) — the paper's core argument for photonic SRAM "
               "over PCM weights\n";

  // Scale-out: the same streamed matmul on an 8-core accelerator fleet —
  // the tile scheduler spreads the 64 residencies across cores, dividing
  // the modeled streaming time by the fleet size.
  runtime::Accelerator accelerator({.cores = 8});
  const Matrix x = random_activations(batch, big, rng);
  const Matrix w = random_signed(big, big, rng);
  accelerator.matmul(x, w);
  const auto fleet = accelerator.stats();
  std::cout << "\nsame " << big << "x" << big << " workload on an 8-core "
            << "accelerator runtime: " << fleet.tile_loads
            << " tile residencies, modeled makespan "
            << units::si_format(fleet.makespan, "s") << " vs "
            << units::si_format(fleet.busy_time, "s")
            << " single-core ("
            << TablePrinter::num(fleet.busy_time / fleet.makespan, 3)
            << "x), utilization "
            << TablePrinter::num(100.0 * fleet.utilization(), 3) << " %\n";
  return 0;
}
