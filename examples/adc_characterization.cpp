// eoADC characterization walkthrough: quantization geometry, transfer
// function, linearity, conversion energy, and a sine-wave capture that
// estimates the effective number of bits (ENOB) of the 3-bit converter.
#include <cmath>
#include <iostream>
#include <numbers>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/eoadc.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  EoAdc adc;
  std::cout << "eoADC characterization (3-bit, 1-hot encoding)\n\n";

  TablePrinter geometry({"parameter", "value"});
  geometry.add_row({"resolution", std::to_string(adc.bits()) + " bits"});
  geometry.add_row({"full scale", TablePrinter::num(
                                      adc.config().v_full_scale, 3) + " V"});
  geometry.add_row({"LSB", TablePrinter::num(adc.lsb(), 3) + " V"});
  geometry.add_row({"sample rate", units::si_format(adc.sample_rate(), "S/s")});
  geometry.add_row({"energy/conversion",
                    units::si_format(adc.energy_per_conversion(), "J")});
  geometry.add_row({"optical wall power",
                    units::si_format(adc.optical_wall_power(), "W")});
  geometry.add_row({"electrical power",
                    units::si_format(adc.electrical_power(), "W")});
  geometry.print(std::cout);

  const auto lin = adc.linearity();
  std::cout << "\nlinearity: max |DNL| "
            << TablePrinter::num(lin.max_abs_dnl, 3) << " LSB, max |INL| "
            << TablePrinter::num(lin.max_abs_inl, 3) << " LSB, missing codes: "
            << (lin.missing_codes ? "YES" : "no") << "\n";

  // Sine capture -> SNDR -> ENOB.  Quantize a full-scale sine and compare
  // against the bin-centre reconstruction.
  const std::size_t n = 4096;
  std::vector<double> error;
  std::vector<double> signal;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase =
        2.0 * std::numbers::pi * 17.0 * static_cast<double>(i) /
        static_cast<double>(n);  // 17 cycles, coherent sampling
    const double v = 2.0 + 1.9 * std::sin(phase);
    const unsigned code = adc.code(v);
    const double reconstructed =
        (static_cast<double>(code) + 0.5) * adc.lsb();
    signal.push_back(v - 2.0);
    error.push_back(reconstructed - v);
  }
  const double signal_rms = rms(signal);
  const double noise_rms = rms(error);
  const double sndr_db = 20.0 * std::log10(signal_rms / noise_rms);
  const double enob = (sndr_db - 1.76) / 6.02;
  std::cout << "\nsine capture: SNDR " << TablePrinter::num(sndr_db, 4)
            << " dB -> ENOB " << TablePrinter::num(enob, 3)
            << " bits (ideal 3-bit converter: ~3.0)\n";

  // Mode comparison.
  EoAdcConfig no_amp;
  no_amp.use_amplifier_chain = false;
  const EoAdc slow(no_amp);
  std::cout << "\namplifier-less mode: "
            << units::si_format(slow.sample_rate(), "S/s") << " at "
            << units::si_format(slow.electrical_power(), "W")
            << " electrical ("
            << TablePrinter::num(
                   100.0 * (1.0 - slow.electrical_power() /
                                      adc.electrical_power()), 3)
            << "% lower than the full-speed mode)\n";
  return 0;
}
