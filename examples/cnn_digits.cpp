// CNN digit classification through the graph compiler: the first non-MLP
// workload.  A conv -> pool -> dense network runs on the accelerator fleet
// as a compiled schedule — the frozen 3x3 feature bank does inference-only
// convolution on the photonic substrate (im2col lowered into tiled
// matmuls), while the dense head is trained in float on the extracted
// features, the standard split when the analog hardware serves inference.
//
// Set PTC_TRACE=/path/to/trace.json to capture the fleet's inference
// passes (analog + quantized backends) as a Chrome trace.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/compile.hpp"
#include "graph/executor.hpp"
#include "graph/models.hpp"
#include "nn/backend.hpp"
#include "nn/dataset.hpp"
#include "nn/layers.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace ptc;

double accuracy(const graph::CompiledGraph& compiled,
                nn::MatmulBackend& backend, const nn::Dataset& data) {
  const Matrix logits = graph::run(compiled, backend, data.inputs);
  const auto predicted = nn::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t s = 0; s < data.size(); ++s)
    if (predicted[s] == data.labels[s]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace

int main() {
  using namespace ptc;

  Rng rng(2025);
  const nn::Dataset train = nn::make_dataset(600, rng, 0.12);
  const nn::Dataset test = nn::make_dataset(200, rng, 0.12);

  // Frozen feature extractor: 6 oriented-edge/blob kernels, relu, 2x2 pool.
  constexpr std::size_t kChannels = 6;
  constexpr std::size_t kKernel = 3;
  constexpr std::size_t kPool = 2;
  const Matrix bank = graph::edge_kernel_bank(kChannels);

  graph::Graph features;
  {
    auto v = features.input(
        graph::Shape{{nn::glyph_side, nn::glyph_side, 1}});
    v = features.conv2d(v, bank, kKernel);
    v = features.relu(v);
    v = features.maxpool(v, kPool);
    features.flatten(v);
  }
  const graph::CompiledGraph feature_schedule = graph::compile(features);
  const std::size_t feature_width = feature_schedule.output_size();

  // Train the dense head in float on the extracted features.
  nn::FloatBackend reference;
  nn::Dataset train_features{
      graph::run(feature_schedule, reference, train.inputs), train.labels};
  std::cout << "training a conv(" << kChannels << "ch)->pool->dense("
            << feature_width << "-32-10) head in float on " << train.size()
            << " synthetic glyphs...\n";
  nn::Mlp head(feature_width, 32, nn::glyph_classes, rng);
  for (int epoch = 0; epoch < 40; ++epoch) {
    const double loss = head.train_epoch(train_features, 0.1, 16, rng);
    if (epoch % 10 == 9) {
      std::cout << "  epoch " << epoch + 1 << ": loss "
                << TablePrinter::num(loss, 4) << "\n";
    }
  }

  // Assemble the full CNN and lower it once.
  const graph::Graph cnn = graph::cnn_graph(
      nn::glyph_side, nn::glyph_side, bank, kKernel, kPool, head.layer1().w,
      head.layer1().b, head.layer2().w, head.layer2().b);
  const graph::CompiledGraph compiled = graph::compile(cnn);

  constexpr std::size_t kCores = 8;
  nn::PhotonicBackendOptions analog;
  analog.quantize_output = false;
  analog.differential_weights = true;
  runtime::Accelerator accelerator({.cores = kCores});
  runtime::AcceleratorBackend fleet_analog(accelerator, analog);

  nn::PhotonicBackendOptions quantized = analog;
  quantized.quantize_output = true;
  quantized.adc_range_gain = 8.0;
  runtime::AcceleratorBackend fleet_quantized(accelerator, quantized);

  const core::TensorCore& probe = accelerator.core(0);
  std::cout << "\ncompiled CNN schedule (" << kCores << "-core fleet, "
            << probe.rows() << "x" << probe.cols()
            << " tiles, differential weights):\n"
            << compiled.schedule_dump(probe.rows(), probe.cols(),
                                      analog.differential_weights);

  std::cout << "\nrunning inference on " << test.size() << " samples...\n\n";
  telemetry::Tracer tracer;
  const char* trace_path = telemetry::trace_path_from_env();
  if (trace_path != nullptr) accelerator.set_tracer(&tracer);
  TablePrinter table({"backend", "weights", "readout", "accuracy"});
  table.add_row({"float reference", "fp64", "exact",
                 TablePrinter::num(100.0 * accuracy(compiled, reference, test),
                                   4) +
                     " %"});
  table.add_row(
      {"fleet (analog readout)", "3-bit pSRAM", "ideal high-res ADC",
       TablePrinter::num(100.0 * accuracy(compiled, fleet_analog, test), 4) +
           " %"});
  table.add_row(
      {"fleet (3-bit eoADC, gain 8)", "3-bit pSRAM", "3-bit eoADC",
       TablePrinter::num(100.0 * accuracy(compiled, fleet_quantized, test),
                         4) +
           " %"});
  table.print(std::cout);

  const runtime::AcceleratorStats stats = accelerator.stats();
  std::cout << "\nfleet after inference: " << stats.tile_loads
            << " tile loads, reload time "
            << TablePrinter::num(stats.reload_time * 1e6, 4)
            << " us, modeled makespan "
            << TablePrinter::num(stats.makespan * 1e6, 4)
            << " us\nthe conv step streams "
            << compiled.pass_profile(probe.rows(), probe.cols(), true)
                   .steps.front()
                   .rows_per_sample
            << " im2col rows per image through each kernel-tile residency — "
               "the reload amortization the 20 GHz weight streaming buys\n";
  if (trace_path != nullptr) {
    accelerator.set_tracer(nullptr);
    tracer.write_chrome_json_file(trace_path);
    std::cout << "\nwrote Chrome trace (" << tracer.size()
              << " events, analog + quantized inference) to " << trace_path
              << "\n";
  }
  return 0;
}
