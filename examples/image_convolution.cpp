// Image convolution through the graph compiler: Sobel edge detection over a
// synthetic scene, expressed as a one-node conv2d graph (both Sobel kernels
// as output channels) and lowered onto the accelerator fleet — im2col
// gathers every output position into a single stacked matmul, so the whole
// image streams through each kernel-tile residency in one pass (paper refs
// [30], [49]).
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "graph/compile.hpp"
#include "graph/executor.hpp"
#include "graph/ir.hpp"
#include "nn/backend.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"

namespace {

void print_ascii(const ptc::Matrix& m, const char* title) {
  std::cout << title << "\n";
  double max_abs = 1e-12;
  for (double v : m.data()) max_abs = std::max(max_abs, std::fabs(v));
  const char* shades = " .:-=+*#%@";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::cout << "  ";
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const auto level = static_cast<std::size_t>(
          std::min(9.0, std::fabs(m(i, j)) / max_abs * 9.0));
      std::cout << shades[level];
    }
    std::cout << "\n";
  }
}

/// Channel `ch` of a flattened {h, w, c} graph output row, as an h x w image.
ptc::Matrix channel(const ptc::Matrix& row, const ptc::graph::Shape& shape,
                    std::size_t ch) {
  ptc::Matrix out(shape.height(), shape.width());
  for (std::size_t i = 0; i < out.rows(); ++i)
    for (std::size_t j = 0; j < out.cols(); ++j)
      out(i, j) =
          row(0, (i * shape.width() + j) * shape.channels() + ch);
  return out;
}

}  // namespace

int main() {
  using namespace ptc;

  // Synthetic scene: a bright box on a dark background.
  constexpr std::size_t kSide = 12;
  const graph::Shape input_shape{{kSide, kSide, 1}};
  Matrix img(1, kSide * kSide, 0.05);
  for (std::size_t i = 3; i < 9; ++i)
    for (std::size_t j = 4; j < 10; ++j) img(0, i * kSide + j) = 0.9;
  print_ascii(channel(img, input_shape, 0), "input image (12x12)");

  // Both Sobel kernels as the two output channels of one conv2d node,
  // flattened (di, dj) into the im2col weight layout.
  const double sobel_x[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  const double sobel_y[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
  Matrix kernels(9, 2);
  for (std::size_t i = 0; i < 9; ++i) {
    kernels(i, 0) = sobel_x[i];
    kernels(i, 1) = sobel_y[i];
  }

  graph::Graph g;
  g.conv2d(g.input(input_shape), kernels, 3);
  const graph::CompiledGraph compiled = graph::compile(g);

  nn::PhotonicBackendOptions options;
  options.quantize_output = false;
  options.differential_weights = true;

  runtime::Accelerator accelerator({.cores = 4});
  runtime::AcceleratorBackend fleet(accelerator, options);
  nn::FloatBackend reference;

  const Matrix ref = graph::run(compiled, reference, img);
  const Matrix pho = graph::run(compiled, fleet, img);
  // Snapshot the fleet stats so the printed counts cover one frame only.
  const runtime::AcceleratorStats frame_stats = accelerator.stats();

  // Energy accrues on the eoADC sampling path, so run the full hardware
  // readout (3-bit conversions) once for the energy accounting.
  nn::PhotonicBackendOptions quantized = options;
  quantized.quantize_output = true;
  runtime::AcceleratorBackend fleet_quantized(accelerator, quantized);
  const double energy_before = accelerator.fleet_ledger().total_energy();
  graph::run(compiled, fleet_quantized, img);
  const double energy =
      accelerator.fleet_ledger().total_energy() - energy_before;

  const graph::Shape& out_shape = compiled.output_shape;
  const Matrix gx = channel(pho, out_shape, 0);
  const Matrix gy = channel(pho, out_shape, 1);
  print_ascii(gx, "\nphotonic Sobel-X response");
  print_ascii(gy, "\nphotonic Sobel-Y response");

  // Gradient magnitude from the photonic passes.
  Matrix magnitude(gx.rows(), gx.cols());
  for (std::size_t i = 0; i < magnitude.rows(); ++i)
    for (std::size_t j = 0; j < magnitude.cols(); ++j)
      magnitude(i, j) = std::hypot(gx(i, j), gy(i, j));
  print_ascii(magnitude, "\nphotonic gradient magnitude (edges)");

  const core::TensorCore& probe = accelerator.core(0);
  std::cout << "\ncompiled schedule ("
            << accelerator.core_count() << "-core fleet, " << probe.rows()
            << "x" << probe.cols() << " tiles, differential weights):\n"
            << compiled.schedule_dump(probe.rows(), probe.cols(),
                                      options.differential_weights);

  std::cout << "\nphotonic vs float Sobel max deviation: "
            << TablePrinter::num(ref.max_abs_diff(pho), 3)
            << " (3-bit weight quantization)\n"
            << "weight tiles loaded per frame: " << frame_stats.tile_loads
            << ", total pSRAM reload time "
            << TablePrinter::num(frame_stats.reload_time * 1e9, 4)
            << " ns\nfull hardware path (3-bit eoADC readout): "
            << TablePrinter::num(energy * 1e9, 4)
            << " nJ per frame ("
            << TablePrinter::num(energy * 1e12 /
                                     static_cast<double>(out_shape.size()),
                                 4)
            << " pJ per output value)\n";
  return 0;
}
