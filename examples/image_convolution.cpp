// Image convolution on the photonic tensor core: Sobel edge detection over a
// synthetic scene via im2col + tiled photonic matmuls, compared against the
// float reference — the convolutional-processing use case of photonic tensor
// cores (paper refs [30], [49]).
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "core/tensor_core.hpp"
#include "nn/backend.hpp"
#include "nn/layers.hpp"

namespace {

void print_ascii(const ptc::Matrix& m, const char* title) {
  std::cout << title << "\n";
  double max_abs = 1e-12;
  for (double v : m.data()) max_abs = std::max(max_abs, std::fabs(v));
  const char* shades = " .:-=+*#%@";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::cout << "  ";
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const auto level = static_cast<std::size_t>(
          std::min(9.0, std::fabs(m(i, j)) / max_abs * 9.0));
      std::cout << shades[level];
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  using namespace ptc;
  using namespace ptc::nn;

  // Synthetic scene: a bright box on a dark background.
  Matrix img(12, 12, 0.05);
  for (std::size_t i = 3; i < 9; ++i)
    for (std::size_t j = 4; j < 10; ++j) img(i, j) = 0.9;
  print_ascii(img, "input image (12x12)");

  const Matrix sobel_x{{-1.0, 0.0, 1.0}, {-2.0, 0.0, 2.0}, {-1.0, 0.0, 1.0}};
  const Matrix sobel_y{{-1.0, -2.0, -1.0}, {0.0, 0.0, 0.0}, {1.0, 2.0, 1.0}};

  FloatBackend reference;
  core::TensorCore core;
  PhotonicBackendOptions options;
  options.quantize_output = false;
  options.differential_weights = true;
  PhotonicBackend photonic(core, options);

  const Matrix gx_ref = conv2d(reference, img, sobel_x);
  const Matrix gx_pho = conv2d(photonic, img, sobel_x);
  const Matrix gy_pho = conv2d(photonic, img, sobel_y);

  print_ascii(gx_pho, "\nphotonic Sobel-X response");
  print_ascii(gy_pho, "\nphotonic Sobel-Y response");

  // Gradient magnitude from the photonic passes.
  Matrix magnitude(gx_pho.rows(), gx_pho.cols());
  for (std::size_t i = 0; i < magnitude.rows(); ++i)
    for (std::size_t j = 0; j < magnitude.cols(); ++j)
      magnitude(i, j) = std::hypot(gx_pho(i, j), gy_pho(i, j));
  print_ascii(magnitude, "\nphotonic gradient magnitude (edges)");

  std::cout << "\nphotonic vs float Sobel-X max deviation: "
            << TablePrinter::num(gx_ref.max_abs_diff(gx_pho), 3)
            << " (3-bit weight quantization)\n"
            << "weight tiles loaded: " << photonic.tile_loads()
            << ", total pSRAM reload time "
            << TablePrinter::num(photonic.reload_time() * 1e9, 4) << " ns\n";
  return 0;
}
