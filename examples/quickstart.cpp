// Quickstart: build the paper's 16x16 mixed-signal photonic tensor core,
// load a 3-bit weight matrix through the optical write path, multiply an
// input vector, and read back the eoADC codes together with the performance
// metrics.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/tensor_core.hpp"

int main() {
  using namespace ptc;
  using namespace ptc::core;

  // 1. Instantiate the core with the paper's default configuration:
  //    16x16, 3-bit pSRAM weights, four WDM channels per macro, one 1-hot
  //    eoADC per row.
  TensorCore core;
  std::cout << "photonic tensor core: " << core.rows() << "x" << core.cols()
            << ", " << core.weight_bits() << "-bit weights, "
            << core.bitcell_count() << " pSRAM bitcells\n";

  // 2. Load weights.  Each entry is an integer in [0, 7]; the write uses
  //    50 ps differential optical pulses at the 20 GHz update rate.
  std::vector<std::vector<std::uint32_t>> weights(
      core.rows(), std::vector<std::uint32_t>(core.cols()));
  for (std::size_t r = 0; r < core.rows(); ++r) {
    for (std::size_t c = 0; c < core.cols(); ++c) {
      weights[r][c] = static_cast<std::uint32_t>((r + c) % 8);
    }
  }
  const double reload = core.load_weights(weights);
  std::cout << "weights loaded in " << units::si_format(reload, "s")
            << " (optical write bitlines, 20 GHz)\n\n";

  // 3. Multiply: the input vector is intensity-encoded on the WDM comb
  //    lines (values normalized to [0, 1]).
  std::vector<double> input(core.cols());
  for (std::size_t c = 0; c < core.cols(); ++c) {
    input[c] = static_cast<double>(c + 1) / static_cast<double>(core.cols());
  }
  const auto codes = core.multiply(input);
  const auto reference = core.reference(input);

  TablePrinter table({"row", "ADC code", "analog reference", "ideal code"});
  for (std::size_t r = 0; r < core.rows(); ++r) {
    table.add_row({std::to_string(r), std::to_string(codes[r]),
                   TablePrinter::num(reference[r], 4),
                   TablePrinter::num(reference[r] * 8.0, 3)});
  }
  table.print(std::cout);

  // 4. Performance metrics (paper Sec. IV-D).
  std::cout << "\nthroughput:        "
            << TablePrinter::num(core.throughput_ops() / 1e12, 3) << " TOPS\n"
            << "power:             " << units::si_format(core.power(), "W")
            << "\n"
            << "power efficiency:  "
            << TablePrinter::num(core.tops_per_watt() / 1e12, 3)
            << " TOPS/W\n"
            << "weight update:     "
            << units::si_format(core.weight_update_rate(), "Hz") << "\n";
  return 0;
}
