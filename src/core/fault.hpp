#ifndef PTC_CORE_FAULT_HPP
#define PTC_CORE_FAULT_HPP

#include <cstdint>
#include <vector>

/// Hard-fault model for the photonic tensor core.
///
/// The variation model (core/variation.hpp) covers *parametric* spread —
/// every device works, just not identically.  This layer covers *hard*
/// faults: devices that stop responding to their control inputs entirely.
/// Four mechanisms, matching the failure surface of the paper's stack:
///
///  - dead multiply rings: the pSRAM drive line to one ring latches, so the
///    ring sits permanently on resonance (stuck-ON, always strips its
///    wavelength) or permanently off (stuck-OFF, always passes);
///  - stuck heater channels: the thermal tuner servo loses authority, the
///    detuning freezes at its current value, and recalibration cannot
///    re-lock the core;
///  - failed ADC ladders: one row's flash converter reads out all-zero
///    codes regardless of the photocurrent;
///  - pSRAM endurance: bitcells wear out after a sampled number of
///    switching events and hold their last value forever.
///
/// Everything is seeded and deterministic.  Faults are applied at the ring
/// *bias* level (see VectorComputeMacro::set_ring_fault), so the fast path
/// and the physics oracle — which share chain_transmission() — stay
/// bit-identical under any fault set.
namespace ptc::core {

/// How a dead ring is stuck.  kStuckOn parks the ring on resonance (bias 0:
/// it always strips its channel, as if the weight bit were 1); kStuckOff
/// latches the drive at VDD (the ring always passes, weight bit reads 0).
enum class RingFaultKind : std::uint8_t {
  kNone = 0,
  kStuckOn,
  kStuckOff,
};

/// One faulted multiply ring, addressed the way TensorCore sees the array:
/// output row, input column, weight-bit row (0 = MSB).
struct RingFaultSite {
  std::size_t row = 0;
  std::size_t col = 0;
  unsigned bit = 0;
  RingFaultKind kind = RingFaultKind::kStuckOn;
};

/// Seeds and budgets for the sampled parts of the fault model.  seed = 0
/// disables endurance sampling entirely (cells never wear out), which is
/// the default: faults are opt-in.
struct FaultConfig {
  std::uint64_t seed = 0;
  /// Median bitcell switching events to failure; 0 = unlimited endurance
  /// even when seed != 0.
  double psram_endurance_median = 0.0;
  /// Lognormal spread of the per-cell endurance limit (sigma of ln-limit).
  double psram_endurance_spread = 0.25;
};

class FaultModel {
 public:
  explicit FaultModel(const FaultConfig& config = {});

  const FaultConfig& config() const { return config_; }
  bool endurance_enabled() const {
    return config_.seed != 0 && config_.psram_endurance_median > 0.0;
  }

  /// Per-cell endurance limits (switching events to failure), sampled
  /// lognormally around the median in a fixed cell order.  Empty when
  /// endurance is disabled.
  std::vector<double> cell_limits(std::size_t cells) const;

  /// Deterministically samples `count` distinct ring-fault sites for a
  /// rows x cols x bits array.  Alternates stuck-ON / stuck-OFF so a fault
  /// cluster corrupts in both directions.
  static std::vector<RingFaultSite> sample_ring_faults(std::size_t rows,
                                                       std::size_t cols,
                                                       unsigned bits,
                                                       std::size_t count,
                                                       std::uint64_t seed);

 private:
  FaultConfig config_;
};

}  // namespace ptc::core

#endif  // PTC_CORE_FAULT_HPP
