#ifndef PTC_CORE_TECH_HPP
#define PTC_CORE_TECH_HPP

#include <cstddef>

#include "optics/microring.hpp"

/// GF45SPCLO-like technology defaults shared by the core blocks.
///
/// The paper's device models come from GlobalFoundries' proprietary
/// monolithic 45SPCLO PDK; this header centralizes the calibrated behavioral
/// equivalents (see DESIGN.md section 3).  Every number below is either
/// stated in the paper or back-derived from a number stated in the paper:
///
///  * compute/pSRAM ring: 7.5 um radius, 200 nm gaps (paper Sec. IV-B)
///    -> with group index 3.8907 the FSR is the paper's 9.36 nm;
///    -> the dL section index 4.7957 makes dL = 68 nm shift the resonance by
///       the paper's 2.33 nm channel spacing;
///    -> a 340 pm/V high-efficiency junction gives a 448 pm shift at
///       VDD = 1.8 V (~2.8 linewidths), a -30 dB on-state and 97% off-state
///       thru transmission — the 1-bit multiply contrast of Fig. 2.
///  * eoADC ring: 10 um radius, 250 nm gap (paper Sec. IV-C), 8 dB/cm doped
///    ring loss puts the ring near critical coupling (T_min ~ 4e-4);
///    a 17.65 pm/V depletion efficiency places the activation threshold
///    (thru power == 18 uW reference at 200 uW input) exactly +-LSB/2 = 0.25 V
///    from each reference voltage, the paper's quantization geometry.
namespace ptc::core {

/// Supply voltage [V] (paper Sec. IV-C: 1.8 V analog and digital supplies).
inline constexpr double tech_vdd = 1.8;

/// Laser wall-plug efficiency (paper ref. [47]).
inline constexpr double tech_wall_plug = 0.23;

/// Base WDM wavelength, channel 0 [m].
inline constexpr double tech_lambda_base = 1310e-9;

/// WDM channel spacing [m] (paper Sec. IV-B: 2.33 nm).
inline constexpr double tech_channel_spacing = 2.33e-9;

/// Ring length adjustment step per channel [m] (paper Fig. 6: 68 nm).
inline constexpr double tech_dl_step = 68e-9;

/// Number of WDM channels per vector compute macro (paper Sec. III).
inline constexpr std::size_t tech_wdm_channels = 4;

/// eoADC input wavelength [m] (paper Sec. IV-C: 1310.5 nm).
inline constexpr double tech_adc_wavelength = 1310.5e-9;

/// Compute/pSRAM microring (add-drop, 7.5 um, 200 nm gaps) tuned to WDM
/// channel `channel` via the ring-length adjustment.  `pin_bias` selects the
/// bias voltage at which the ring sits exactly on its channel resonance
/// (0 V for multiply rings, VDD for the pSRAM latch rings).
optics::MicroringConfig compute_ring_config(std::size_t channel,
                                            double pin_bias);

/// eoADC microring (all-pass, 10 um, 250 nm gap, near-critical coupling).
/// The resonance is pinned at the ADC input wavelength for zero junction
/// voltage, i.e. when V_IN equals the channel's reference voltage.
optics::MicroringConfig adc_ring_config();

/// Wavelength of WDM channel `channel` [m].
double channel_wavelength(std::size_t channel);

}  // namespace ptc::core

#endif  // PTC_CORE_TECH_HPP
