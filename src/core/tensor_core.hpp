#ifndef PTC_CORE_TENSOR_CORE_HPP
#define PTC_CORE_TENSOR_CORE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/energy.hpp"
#include "circuit/tia.hpp"
#include "common/linalg.hpp"
#include "core/eoadc.hpp"
#include "core/psram_array.hpp"
#include "core/vector_macro.hpp"

/// Mixed-signal multi-bit scalable 2D photonic tensor core — paper Fig. 4 /
/// Sec. III & IV-D.
///
/// The core tiles the 1x4 WDM vector-multiply macro: each of the `rows`
/// output rows holds cols/4 macros whose photocurrents sum on the row's
/// readout node, pass through a high-bandwidth TIA (ref. [52]) and are
/// digitized by that row's eoADC.  Input vectors are broadcast to all rows;
/// weights live in the embedded pSRAM array (16 x 16 x 3 bits = 768 bitcells
/// in the paper's configuration) and update at 20 GHz.
///
/// Ops accounting follows the paper: one ADC sample completes `rows` dot
/// products of length `cols`, i.e. rows * (cols multiplies + cols adds)
/// operations; at 8 GS/s (ADC-limited) the 16x16 core reaches
/// 16 * 32 * 8e9 = 4.10 TOPS.
namespace ptc::core {

struct TensorCoreConfig {
  std::size_t rows = 16;
  std::size_t cols = 16;
  unsigned weight_bits = 3;
  VectorMacroConfig macro{};
  EoAdcConfig adc{};
  PsramArrayConfig psram{};  ///< geometry fields are overridden to match
  circuit::LinearTiaConfig row_tia{};  ///< 42 GHz-class readout TIA [52]
  /// Average fraction of write bandwidth in use (weight streaming duty).
  double weight_update_duty = 0.66;
  /// Digital control + clock distribution power [W].
  double control_power = 160e-3;
  double wall_plug_efficiency = tech_wall_plug;
  /// Calibrated fast path: at load_weights time the core freezes every
  /// macro's ring-chain transmissions (they only change at weight load) and
  /// multiply_analog replays the photocurrent sum over the cached gains
  /// instead of re-walking the spectral physics per sample.  The replay uses
  /// the identical floating-point operation sequence, so results are
  /// bit-identical to the physics walk (which remains available as the
  /// reference oracle when this is false).
  bool fast_path = true;
  /// Per-die fabrication/drive-level variation (see core/variation.hpp).
  /// variation.seed == 0 is the pristine design die; a nonzero seed derives
  /// an independent child stream per macro (and per row eoADC when
  /// variation.adc_vref_sigma > 0), so every ring of the core is a distinct
  /// fabricated device.  The full-scale calibration probe stays pristine:
  /// variation manifests as a deviation from design, which the calibrated
  /// fast path freezes and recalibrate() re-freezes.
  VariationConfig variation{};
  /// Hard-fault model seeds/budgets (core/fault.hpp); forwarded into the
  /// pSRAM array's endurance sampler.  Disabled by default.
  FaultConfig fault{};
};

class TensorCore {
 public:
  explicit TensorCore(const TensorCoreConfig& config = {});

  std::size_t rows() const { return config_.rows; }
  std::size_t cols() const { return config_.cols; }
  unsigned weight_bits() const { return config_.weight_bits; }
  std::uint32_t max_weight() const { return (1u << config_.weight_bits) - 1; }
  std::size_t bitcell_count() const { return psram_.bitcell_count(); }
  std::size_t macros_per_row() const;

  /// Loads an integer weight matrix (rows x cols, entries in [0, 2^n - 1])
  /// into the pSRAM array and programs the multiply rings.
  /// Returns the reload latency [s].
  double load_weights(const std::vector<std::vector<std::uint32_t>>& weights);

  /// Convenience: quantizes a real-valued weight matrix in [0, 1] to n bits
  /// and loads it.
  double load_weights_normalized(const Matrix& weights);

  /// Multiplies the loaded weight matrix by one normalized input vector
  /// (cols entries in [0, 1]); returns the per-row ADC output codes.
  std::vector<unsigned> multiply(const std::vector<double>& input);

  /// Programmable readout (row-TIA) gain applied before the eoADC.  Sparse
  /// workloads use it to occupy the full ADC range; digital consumers divide
  /// the codes by the same gain.  Must be > 0; default 1.
  void set_readout_gain(double gain);
  double readout_gain() const { return readout_gain_; }

  /// Analog row values before quantization (normalized to [0, 1]);
  /// useful for accuracy analysis.
  std::vector<double> multiply_analog(const std::vector<double>& input);

  /// Batched multiply: each row of `inputs` (n_samples x cols) is one input
  /// vector; returns n_samples x rows of ADC codes scaled to [0, 1].
  Matrix multiply_batch(const Matrix& inputs);

  /// Batched analog multiply: each row of `inputs` (n_samples x cols) is one
  /// input vector; returns n_samples x rows of normalized analog row values.
  /// Like multiply_analog, this does not advance the sample/energy ledger.
  Matrix multiply_analog_batch(const Matrix& inputs);

  /// True when the calibrated fast path is armed (config.fast_path and
  /// weights have been loaded since).
  bool fast_path_active() const { return fast_.valid; }

  // --- thermal drift / online recalibration ---------------------------------
  /// Ambient thermal detuning from the calibrated operating point [K]:
  /// every multiply ring is detuned through its own (variation-spread)
  /// thermo-optic sensitivity, and the cached fast-path gains are refreshed
  /// through the spectral walk at the new operating point — the fast path
  /// stays bit-identical to the physics walk at every detuning.  Costs one
  /// weight-load-grade calibration walk when the fast path is armed.
  void set_thermal_detuning(double delta_kelvin);
  double thermal_detuning() const { return detuning_; }

  /// Heater re-lock: pulls every ring back to the calibrated operating
  /// point (detuning -> 0), re-freezes the fast-path gains there, and opens
  /// a new calibration epoch.  The modeled downtime of the fleet-level
  /// recalibration is billed by runtime::Accelerator::recalibrate().
  void recalibrate();

  /// Number of recalibrations performed (epoch 0 = as-constructed).
  std::size_t calibration_epoch() const { return calibration_epoch_; }

  /// Rewinds the epoch counter to 0 (as-constructed).  Part of
  /// runtime::Accelerator::reset_drift's run-to-run determinism contract;
  /// does not touch weights, detuning, or gains.
  void reset_calibration_epoch() { calibration_epoch_ = 0; }

  // --- fleet-health sensor channels -----------------------------------------
  /// Pilot-tone probe transmission through the reserved calibration row: a
  /// spare row of multiply macros (not part of the compute array) holds
  /// all-zero weights, parking every probe ring *on* resonance — the
  /// steepest, most detuning-sensitive operating point.  The reading is the
  /// row's photocurrent under an all-ones input, normalized to the same
  /// measurement at the calibration point, so it reads exactly 1 when the
  /// core is locked and rises as drift walks the rings off resonance.  This
  /// is a real measurable (photocurrent ratio), computed through the same
  /// spectral physics as the compute rows — the oracle-free signal
  /// fleet::DriftEstimator inverts back to kelvin.
  double probe_transmission() const;

  /// Characterization sweep for estimator calibration: the probe row alone
  /// is stepped through each detuning [K] and its transmission ratio
  /// recorded; the probe is restored to the core's current detuning before
  /// returning.  The compute rows are never touched, so sweeping is free of
  /// side effects on results.
  std::vector<double> probe_response_curve(
      const std::vector<double>& detunings);

  /// eoADC conversions performed (one per row per quantized sample) and how
  /// many of them clipped at full scale — the saturation-rate sensor
  /// channel (readout gain mis-set, or drift pushing rows out of range).
  std::uint64_t adc_conversions() const { return adc_conversions_; }
  std::uint64_t adc_saturations() const { return adc_saturations_; }
  double adc_saturation_rate() const {
    return adc_conversions_ > 0
               ? static_cast<double>(adc_saturations_) /
                     static_cast<double>(adc_conversions_)
               : 0.0;
  }

  /// Digital reference: exact dot products of the *stored* integer weights
  /// with the inputs, normalized like the analog path.
  std::vector<double> reference(const std::vector<double>& input) const;

  // --- hard-fault injection (core/fault.hpp) --------------------------------
  /// Latches one multiply ring's drive line.  (row, col) address the weight
  /// matrix entry, bit the weight-bit row (0 = MSB).  The fault is applied
  /// at the ring-bias level and the fast path is recalibrated through the
  /// same spectral walk, so fast path and physics oracle stay bit-identical
  /// under the fault.
  void inject_ring_fault(std::size_t row, std::size_t col, unsigned bit,
                         RingFaultKind kind);
  void inject_ring_faults(const std::vector<RingFaultSite>& sites);

  /// Freezes the thermal tuner at the current detuning: further
  /// set_thermal_detuning calls (including recalibrate's re-lock) are
  /// ignored until the fault is cleared.
  void inject_stuck_heater();
  bool heater_stuck() const { return heater_stuck_; }

  /// Kills row `row`'s flash ladder: quantized multiplies read out code 0
  /// for that row regardless of the photocurrent.  The analog taps
  /// (multiply_analog*) bypass the ADC and are unaffected.
  void inject_adc_fault(std::size_t row);
  bool adc_faulted(std::size_t row) const;
  std::size_t adc_fault_count() const;

  std::size_t ring_fault_count() const;

  /// Releases every injected fault (rings, heater, ADC ladders) and
  /// restores weight-driven biases.  pSRAM endurance wear is physical
  /// damage and persists.  The frozen detuning also persists until the
  /// caller re-locks (see runtime::Accelerator::inject).
  void clear_faults();

  // --- built-in self-test ----------------------------------------------------
  /// Deterministic BIST: streams `samples` seeded probe vectors through the
  /// array, comparing the analog path against the digital reference and
  /// watching each row's ADC codes.  Loads a checkerboard test pattern
  /// first if no weights are resident.  The probes run through multiply()
  /// and so cost real samples/energy — runtime::Accelerator bills the
  /// downtime.
  struct SelfTestResult {
    double max_row_error = 0.0;  ///< max |analog - reference| over probes
    std::size_t stuck_adc_rows = 0;
    std::size_t psram_failed_cells = 0;
    double endurance_remaining = 1.0;
    bool heater_locked = true;
  };
  SelfTestResult self_test(std::size_t samples, std::uint64_t seed);

  // --- performance (Sec. IV-D) ----------------------------------------------
  /// Operations per ADC sample: rows * 2 * cols.
  double ops_per_sample() const;
  /// Peak computational throughput [op/s] (paper: 4.10 TOPS).
  double throughput_ops() const;
  /// Total power [W]; see breakdown().
  double power() const;
  /// throughput / power [op/s/W] (paper: 3.02 TOPS/W).
  double tops_per_watt() const;
  /// Weight update rate [Hz] (paper: 20 GHz).
  double weight_update_rate() const { return config_.psram.write_rate; }

  struct PowerBreakdown {
    double adc = 0.0;        ///< 16 eoADCs (optical + electrical)
    double row_tia = 0.0;    ///< readout TIAs
    double comb_laser = 0.0; ///< input comb lines (wall plug)
    double psram_hold = 0.0; ///< bitcell bias lasers (wall plug)
    double weight_update = 0.0;  ///< write lasers + drivers at duty
    double control = 0.0;    ///< digital control + clocks
    double total() const {
      return adc + row_tia + comb_laser + psram_hold + weight_update + control;
    }
  };
  PowerBreakdown breakdown() const;

  /// Cumulative energy ledger for the operations performed so far.
  const circuit::EnergyLedger& ledger() const { return ledger_; }

  /// Number of multiply() calls performed.
  std::size_t samples_processed() const { return samples_; }

  const TensorCoreConfig& config() const { return config_; }
  const PsramArray& psram() const { return psram_; }
  EoAdc& adc(std::size_t row);

 private:
  /// Weight-load-time linearization of the analog multiply.  The physics
  /// walk per sample is (per macro): encode the comb lines, split them into
  /// binary-weighted bit-row taps, and attenuate each tap channel by the
  /// transmission of the whole ring chain of that bit row.  Every factor in
  /// that chain except the input itself is frozen between weight loads, so
  /// it is cached here and replayed per sample with the identical
  /// floating-point operation sequence (canonical channel-, bit-row-,
  /// tile-order summation) — bit-identical to the physics walk by
  /// construction.
  struct FastGains {
    bool valid = false;
    double comb_power = 0.0;     ///< per-line comb power [W]
    double encoder_loss = 0.0;   ///< encoder insertion loss (power ratio)
    double encoder_floor = 0.0;  ///< finite-extinction leakage floor
    double tap_factor = 0.0;     ///< per-splitter-stage factor (0.5 * excess)
    double responsivity = 0.0;   ///< photodiode responsivity [A/W]
    /// Ring-chain transmissions, [row][tile][bit_row][channel] flattened.
    /// Shared with the calibration memo — treat as immutable.
    std::shared_ptr<const std::vector<double>> chain;
  };

  /// One memoized calibration: the integer weight words that were loaded,
  /// the thermal detuning they were calibrated at, and the chain
  /// transmissions they produce.  Serving steady-state reloads the same few
  /// blocks on the same core every dispatch, so the spectral calibration
  /// walk runs once per distinct (block, detuning), not per pass — under
  /// active drift the detuning key misses and every reload pays the walk,
  /// which is exactly the modeled cost of serving through drift.
  struct CalibrationEntry {
    std::vector<std::uint32_t> words;
    double detuning = 0.0;
    std::shared_ptr<const std::vector<double>> chain;
  };

  /// Rebuilds (or recalls) the cached gains for the loaded weight words.
  void calibrate_fast_path(const std::vector<std::uint32_t>& words);

  /// Drops the calibration memo and re-freezes the fast path after a fault
  /// set change (the memo keys on (words, detuning) only, so entries built
  /// under a different fault set would be stale).
  void refresh_fast_path();

  /// The expensive spectral product over the currently-programmed rings at
  /// the current detuning (every ring of a bit row evaluated at every
  /// channel wavelength — the crosstalk walk).
  std::shared_ptr<const std::vector<double>> build_chain() const;

  /// Normalized analog row values for one sample: fast replay when armed,
  /// full spectral walk otherwise.  `input` has cols() entries; `out` has
  /// rows() entries.
  void analog_row_values(const double* input, double* out);

  /// The per-sample physics walk (reference oracle).
  void analog_row_values_physics(const double* input, double* out);

  TensorCoreConfig config_;
  PsramArray psram_;
  /// macros_[row][tile]: each macro covers channels_per_macro columns.
  std::vector<std::vector<VectorComputeMacro>> macros_;
  /// Reserved calibration row (one macro per tile, all-zero weights) — the
  /// pilot-tone probe path.  Variation child seeds follow the compute
  /// macros' and row ADCs', so adding the row never perturbs their streams.
  std::vector<VectorComputeMacro> probe_macros_;
  double probe_reference_ = 0.0;    ///< probe photocurrent at detuning 0 [A]
  std::vector<double> probe_input_; ///< all-ones pilot tone
  std::uint64_t adc_conversions_ = 0;
  std::uint64_t adc_saturations_ = 0;
  std::vector<EoAdc> adcs_;
  circuit::LinearTia row_tia_;
  double full_scale_row_current_ = 0.0;
  double readout_gain_ = 1.0;
  circuit::EnergyLedger ledger_;
  std::size_t samples_ = 0;
  FastGains fast_;
  std::vector<CalibrationEntry> calibrations_;  ///< MRU-first memo
  /// Words the pSRAM actually *stores* after the last load (worn cells may
  /// refuse bits, so this can differ from the requested payload) — the
  /// quantity the rings are programmed from and the memo keys on.
  std::vector<std::uint32_t> loaded_words_;
  /// Per-row dead ADC ladders; empty-equivalent (all zero) when healthy.
  std::vector<std::uint8_t> adc_dead_;
  bool heater_stuck_ = false;
  double detuning_ = 0.0;                ///< thermal detuning [K]
  std::size_t calibration_epoch_ = 0;    ///< recalibrate() count
  std::vector<double> tap_scratch_;    ///< per-sample tap powers, reused
  std::vector<double> input_scratch_;  ///< physics-path tile slice, reused
};

}  // namespace ptc::core

#endif  // PTC_CORE_TENSOR_CORE_HPP
