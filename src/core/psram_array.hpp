#ifndef PTC_CORE_PSRAM_ARRAY_HPP
#define PTC_CORE_PSRAM_ARRAY_HPP

#include <cstdint>
#include <vector>

#include "circuit/energy.hpp"
#include "core/fault.hpp"
#include "core/tech.hpp"

/// Array-scale photonic SRAM.
///
/// The device-level PsramBitcell integrates ~10^3 ODE steps per write, which
/// is the right tool for Fig. 5 but not for a 768-bitcell tensor core.  The
/// array therefore uses a *behavioral* cell calibrated against the device
/// model (write energy, write latency, hold power — see
/// tests/test_psram.cpp, which asserts the two levels agree) and tracks
/// energy/latency through an EnergyLedger.
///
/// Write scheduling follows the paper's Sec. III organisation: every row has
/// its own write port, and the cells of a row are written one per 20 GHz
/// write slot (50 ps), so a full reload of an r x c x n-bit array costs
/// (c * n) slots.
namespace ptc::core {

struct PsramArrayConfig {
  std::size_t rows = 16;
  std::size_t words_per_row = 16;  ///< weights per row
  unsigned bits_per_word = 3;      ///< weight precision (n)
  double write_rate = 20e9;        ///< per-cell update rate [Hz] (paper: 20 GHz)
  double write_energy = 0.493e-12; ///< per switching event [J] (paper: ~0.5 pJ)
  double hold_bias_power = 10e-6;  ///< CW optical bias per cell [W] (-20 dBm)
  double wall_plug_efficiency = tech_wall_plug;
  /// Write-endurance budget (hard-fault model).  With fault.seed != 0 and
  /// fault.psram_endurance_median > 0, every bitcell gets a lognormally
  /// sampled limit on its switching events; a cell at its limit holds its
  /// last value forever (writes to it silently fail and cost no energy).
  FaultConfig fault{};
};

class PsramArray {
 public:
  explicit PsramArray(const PsramArrayConfig& config = {});

  std::size_t rows() const { return config_.rows; }
  std::size_t words_per_row() const { return config_.words_per_row; }
  unsigned bits_per_word() const { return config_.bits_per_word; }

  /// Total number of bitcells (rows * words * bits); 768 for the paper's
  /// 16 x 16 x 3-bit configuration.
  std::size_t bitcell_count() const;

  /// Maximum storable weight value, 2^bits - 1.
  std::uint32_t max_weight() const;

  /// Writes one weight word; bits that actually flip cost write energy and
  /// one write slot each.  Returns the number of flipped bits.
  std::size_t write_word(std::size_t row, std::size_t index,
                         std::uint32_t value);

  /// Writes a full weight matrix (row-major, rows x words_per_row).
  /// All rows are written in parallel; returns the reload latency [s].
  double write_matrix(const std::vector<std::uint32_t>& values);

  std::uint32_t word(std::size_t row, std::size_t index) const;

  /// Individual stored bit (bit b of word (row, index)); this is the line
  /// that drives a multiply ring.
  bool bit(std::size_t row, std::size_t index, unsigned b) const;

  /// Static hold power: per-cell optical bias at wall-plug efficiency [W].
  double hold_wall_power() const;

  /// Time to write one word (bits_per_word write slots) [s].
  double word_write_time() const;

  /// Cumulative write energy ledger.
  const circuit::EnergyLedger& ledger() const { return ledger_; }
  circuit::EnergyLedger& ledger() { return ledger_; }

  // --- write-endurance counters (fleet-health sensor channels) --------------
  /// Word writes performed since construction (including no-flip writes).
  std::uint64_t word_writes() const { return word_writes_; }
  /// Bitcell switching events since construction — the wear quantity an
  /// endurance budget is written against.
  std::uint64_t bit_flips() const { return bit_flips_; }
  /// Switching events of the most-worn bitcell — the wear-leveling view an
  /// endurance monitor alarms on.
  std::uint64_t max_cell_flips() const;

  // --- endurance hard faults -------------------------------------------------
  bool endurance_enabled() const { return !cell_limits_.empty(); }
  /// Bitcells worn past their sampled endurance limit (stuck at their last
  /// held value).  Always 0 when endurance is disabled.
  std::size_t failed_cells() const;
  /// Remaining endurance fraction of the *most-worn* cell, in [0, 1]; 1.0
  /// when endurance is disabled.  This is the sensor channel the fleet
  /// endurance alarm rides.
  double endurance_remaining() const;
  /// Requested bit toggles that a worn cell refused — the write-verify
  /// error count a BIST reads back.
  std::uint64_t write_errors() const { return write_errors_; }

 private:
  PsramArrayConfig config_;
  std::vector<std::uint32_t> words_;  // row-major
  circuit::EnergyLedger ledger_;
  std::uint64_t word_writes_ = 0;
  std::uint64_t bit_flips_ = 0;
  /// Per-bitcell switching counts, [word][bit] flattened like words_.
  std::vector<std::uint32_t> cell_flips_;
  /// Sampled per-cell endurance limits, same indexing as cell_flips_;
  /// empty when the endurance budget is disabled.
  std::vector<double> cell_limits_;
  std::uint64_t write_errors_ = 0;
};

}  // namespace ptc::core

#endif  // PTC_CORE_PSRAM_ARRAY_HPP
