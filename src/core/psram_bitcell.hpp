#ifndef PTC_CORE_PSRAM_BITCELL_HPP
#define PTC_CORE_PSRAM_BITCELL_HPP

#include <optional>

#include "circuit/driver.hpp"
#include "core/tech.hpp"
#include "optics/microring.hpp"
#include "optics/photodiode.hpp"
#include "sim/trace.hpp"

/// Cross-coupled differential photonic SRAM (pSRAM) bitcell — paper Fig. 1.
///
/// Two add-drop microrings (M1 driven by storage node Q, M2 by QB) steer a
/// CW optical bias between four photodiodes:
///
///   M1 thru -> P1 (pulls QB toward VDD)     M1 drop -> P2 (pulls QB to GND)
///   M2 thru -> P3 (pulls Q  toward VDD)     M2 drop -> P4 (pulls Q  to GND)
///
/// The rings resonate at the bias wavelength when driven to VDD, so a stored
/// "1" on Q puts M1 on resonance (dropping light into P2, holding QB low)
/// while QB = 0 leaves M2 off resonance (passing light to P3, holding Q
/// high) — an electro-optic positive feedback latch.
///
/// Writes apply a strong optical pulse on the write bitlines:
///   WBL  illuminates P3 and P2  (drives Q -> 1, QB -> 0)
///   WBLB illuminates P1 and P4  (drives Q -> 0, QB -> 1)
/// The write power must exceed the holding photocurrents to flip the cell
/// (paper Sec. II-A); the paper demonstrates 50 ps / 0 dBm pulses at a
/// 20 GHz update rate costing ~0.5 pJ per switching event (Sec. IV-A).
///
/// The model integrates the two storage nodes (C dV/dt = I_up - I_down with
/// rail clamping), first-order ring-driver and photodiode dynamics, and a
/// weak node leakage that makes the cell lose state when the optical bias is
/// removed — pSRAM is volatile, like its electrical namesake.
namespace ptc::core {

struct PsramConfig {
  double vdd = tech_vdd;
  /// CW optical hold bias into PS1 [W] (paper: -20 dBm = 10 uW).
  double bias_power = 10e-6;
  /// WDM channel this cell's rings are tuned to (sets the bias wavelength).
  std::size_t channel = 0;
  /// Write pulse peak power [W] (paper: 0 dBm = 1 mW).
  double write_power = 1e-3;
  /// Write pulse width [s] (paper: 50 ps -> 20 GHz updates).
  double write_pulse_width = 50e-12;
  /// Storage node capacitance [F].
  double node_capacitance = 5e-15;
  /// Node leakage current toward ground [A]; sets the (short) retention time
  /// once the optical/electrical bias is removed.
  double leakage_current = 50e-9;
  /// Splitter excess loss [dB] for PS1..PS3.
  double splitter_excess_db = 0.1;
  optics::PhotodiodeConfig photodiode{};
  circuit::RingDriverConfig driver{};
  double wall_plug_efficiency = tech_wall_plug;
  /// Transient timestep [s].
  double dt = 0.25e-12;
};

/// Result of a device-level transient write.
struct WriteResult {
  bool success = false;        ///< the latch holds the target value afterwards
  double settle_time = 0.0;    ///< time from pulse start until both nodes are
                               ///< within 10% of their target rails [s]
  double laser_energy = 0.0;   ///< wall-plug write-laser energy [J]
  double driver_energy = 0.0;  ///< ring-driver CV^2 energy [J]
  double total_energy() const { return laser_energy + driver_energy; }
};

class PsramBitcell {
 public:
  explicit PsramBitcell(const PsramConfig& config = {});

  /// Places the latch directly into the steady hold state for `value`
  /// (voltages at the rails, ring drivers settled).
  void initialize(bool value);

  /// Device-level transient write of `value` via the write bitlines.
  /// Runs from pulse start until the latch settles (or `timeout`).
  /// Waveforms are recorded into `traces` when provided (columns: wbl, wblb
  /// [W], q, qb [V]) — this is the Fig. 5 experiment.
  WriteResult write(bool value, sim::TraceSet* traces = nullptr,
                    double timeout = 400e-12);

  /// Advances the latch under hold bias only (no write light).  With
  /// `bias_on == false` the optical bias is removed and leakage discharges
  /// the nodes — the retention experiment.
  void hold(double duration, bool bias_on = true);

  /// Stored value (Q above VDD/2).
  bool q() const { return v_q_ > 0.5 * config_.vdd; }
  double q_voltage() const { return v_q_; }
  double qb_voltage() const { return v_qb_; }

  /// True when Q/QB are complementary and both within 10% of the rails.
  bool is_stable() const;

  /// Largest symmetric voltage perturbation (applied toward the metastable
  /// point on both nodes) from which the latch still recovers, found by
  /// bisection — an operational static-noise-margin measure [V].
  double recovery_margin(double resolution = 0.01);

  /// Hold-state optical wall-plug power of the bias laser [W].
  double hold_wall_power() const;

  const PsramConfig& config() const { return config_; }

 private:
  /// One transient step with the given write powers [W] on each bitline.
  void step_once(double p_wbl, double p_wblb, bool bias_on);

  PsramConfig config_;
  optics::Microring ring_m1_;  ///< driven by Q
  optics::Microring ring_m2_;  ///< driven by QB
  optics::Photodiode pd_;
  circuit::RingDriver driver_d2_;  ///< Q -> M1 (paper's D2)
  circuit::RingDriver driver_d1_;  ///< QB -> M2 (paper's D1)
  circuit::FirstOrderLag pd_lag_p1_;
  circuit::FirstOrderLag pd_lag_p2_;
  circuit::FirstOrderLag pd_lag_p3_;
  circuit::FirstOrderLag pd_lag_p4_;
  double v_q_ = 0.0;
  double v_qb_ = 0.0;
  double ring_input_power_ = 0.0;  ///< per-ring CW bias after PS1
};

}  // namespace ptc::core

#endif  // PTC_CORE_PSRAM_BITCELL_HPP
