#include "core/eoadc.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace ptc::core {

EoAdc::EoAdc(const EoAdcConfig& config)
    : config_(config),
      photodiode_(config.photodiode),
      decoder_(config.bits, config.rom) {
  expects(config.bits >= 1 && config.bits <= 4,
          "eoADC supports 1..4 bits (2^p rings)");
  expects(config.v_full_scale > 0.0, "full scale must be positive");
  expects(config.input_power_per_ring > 0.0, "input power must be positive");
  expects(config.reference_power > 0.0, "reference power must be positive");
  expects(config.trip_offset_ratio >= 1.0,
          "trip offset must be >= 1 (window overlap, not dead zones)");
  expects(config.qp_capacitance > 0.0, "Qp capacitance must be positive");

  Rng mismatch_rng(config.mismatch_seed);
  const std::size_t n = channel_count();
  // The base ring is calibrated for the 3-bit LSB of 0.5 V (activation
  // threshold at +-LSB/2).  Finer LSBs need proportionally higher tuning
  // efficiency — the paper's "optimizing devices, such as using high-Q
  // MRRs" path to higher precision (Sec. II-C).
  optics::MicroringConfig ring_config = adc_ring_config();
  ring_config.junction.efficiency *= 0.5 / lsb();
  rings_.reserve(n);
  vref_.reserve(n);
  for (std::size_t ch = 0; ch < n; ++ch) {
    rings_.emplace_back(ring_config);
    double vref = (static_cast<double>(ch) + 0.5) * lsb();
    if (config.vref_mismatch_sigma > 0.0) {
      vref += mismatch_rng.normal(0.0, config.vref_mismatch_sigma);
    }
    vref_.push_back(vref);
  }
}

double EoAdc::lsb() const {
  return config_.v_full_scale / static_cast<double>(channel_count());
}

double EoAdc::reference_voltage(std::size_t ch) const {
  expects(ch < vref_.size(), "channel index out of range");
  return vref_[ch];
}

double EoAdc::ring_thru_transmission(std::size_t ch, double v_in) const {
  // The junction sees V_pn = V_REF - V_IN (p-terminal at the reference,
  // n-terminal at the input, paper Sec. II-C).
  rings_[ch].set_bias(vref_[ch] - v_in);
  return rings_[ch].thru_transmission(tech_adc_wavelength);
}

double EoAdc::channel_thru_power(std::size_t ch, double v_in) const {
  expects(ch < rings_.size(), "channel index out of range");
  return config_.input_power_per_ring * ring_thru_transmission(ch, v_in);
}

double EoAdc::activation_threshold_power() const {
  return config_.trip_offset_ratio * config_.reference_power;
}

std::vector<bool> EoAdc::channel_activations(double v_in) const {
  std::vector<bool> active(channel_count());
  for (std::size_t ch = 0; ch < channel_count(); ++ch) {
    active[ch] = channel_thru_power(ch, v_in) < activation_threshold_power();
  }
  return active;
}

EoAdc::Conversion EoAdc::convert(double v_in) {
  Conversion out;
  out.active = channel_activations(v_in);
  const auto decode = decoder_.decode(out.active);
  out.any_active = decode.any_active;
  out.boundary = decode.boundary;
  out.fault = decode.fault;
  if (decode.any_active) {
    out.code = decode.code;
  } else {
    // Out-of-range or (mis-calibrated) dead zone: fall back to the channel
    // with the deepest dip — the physically nearest code.
    std::size_t best = 0;
    double best_power = channel_thru_power(0, v_in);
    for (std::size_t ch = 1; ch < channel_count(); ++ch) {
      const double p = channel_thru_power(ch, v_in);
      if (p < best_power) {
        best_power = p;
        best = ch;
      }
    }
    out.code = static_cast<unsigned>(best);
  }
  return out;
}

unsigned EoAdc::code(double v_in) { return convert(v_in).code; }

EoAdc::TransientResult EoAdc::convert_transient(double v_in,
                                                sim::TraceSet* traces) {
  const std::size_t n = channel_count();
  const double dt = config_.dt;
  const double vdd = config_.tia.vdd;
  const double bias = config_.tia.bias_point;
  // Keeper current realizing the trip asymmetry: at the exact balance point
  // (P_thru == P_ref) the node drifts low, so boundary channels activate.
  const double keeper = (config_.trip_offset_ratio - 1.0) *
                        photodiode_.config().responsivity *
                        config_.reference_power;

  const double window = config_.use_amplifier_chain
                            ? 1.0 / config_.sample_rate_with_amps
                            : 1.0 / sample_rate();

  // Per-channel dynamic state.
  std::vector<circuit::FirstOrderLag> ring_lag;
  std::vector<circuit::FirstOrderLag> pd_lag;
  std::vector<double> v_qp(n, bias);
  std::vector<circuit::InverterTia> tias;
  std::vector<circuit::VoltageAmplifier> amps;
  ring_lag.reserve(n);
  pd_lag.reserve(n);
  tias.reserve(n);
  amps.reserve(n);
  for (std::size_t ch = 0; ch < n; ++ch) {
    // The junction tracks V_REF - V_IN during the acquisition phase, so the
    // conversion window starts from the settled electro-optic operating
    // point; what remains is the Qp / TIA / amplifier decision dynamics.
    const double v_pn0 = vref_[ch] - v_in;
    ring_lag.emplace_back(rings_[ch].junction().config().response_time, v_pn0);
    pd_lag.emplace_back(photodiode_.response_time_constant(),
                        config_.input_power_per_ring *
                            ring_thru_transmission(ch, v_in));
    tias.emplace_back(config_.tia);
    amps.emplace_back(config_.amplifier);
  }

  TransientResult result;
  std::vector<bool> active(n, false);
  unsigned last_code = 0;
  double last_change = 0.0;
  const double responsivity = photodiode_.config().responsivity;

  for (double t = dt; t <= window + 0.5 * dt; t += dt) {
    for (std::size_t ch = 0; ch < n; ++ch) {
      // Junction voltage settles with the depletion response time.
      const double v_pn = ring_lag[ch].step(vref_[ch] - v_in, dt);
      auto& ring = rings_[ch];
      ring.set_bias(v_pn);
      const double p_thru_inst =
          config_.input_power_per_ring *
          ring.thru_transmission(tech_adc_wavelength);
      const double p_thru = pd_lag[ch].step(p_thru_inst, dt);
      // Balanced PD: top (thru) charges Qp, bottom (reference) + keeper
      // discharge it.
      const double i_net =
          responsivity * (p_thru - config_.reference_power) - keeper;
      v_qp[ch] = std::clamp(v_qp[ch] + i_net * dt / config_.qp_capacitance,
                            0.0, vdd);
      if (config_.use_amplifier_chain) {
        const double tia_out = tias[ch].step(v_qp[ch], dt);
        const double amp_out = amps[ch].step(tia_out, dt);
        active[ch] = amp_out > 0.5 * vdd;
      } else {
        active[ch] = v_qp[ch] < config_.no_amp_low_level;
      }
      if (traces != nullptr) {
        const std::string suffix = std::to_string(ch);
        traces->at("qp" + suffix).record(t, v_qp[ch]);
        traces->at("b" + suffix).record(t, active[ch] ? vdd : 0.0);
      }
    }
    const auto decode = decoder_.decode(active);
    const unsigned code_now = decode.any_active ? decode.code : last_code;
    if (code_now != last_code) {
      last_code = code_now;
      last_change = t;
    }
  }

  const auto decode = decoder_.decode(active);
  result.conversion.active = active;
  result.conversion.any_active = decode.any_active;
  result.conversion.boundary = decode.boundary;
  result.conversion.fault = decode.fault;
  result.conversion.code = decode.any_active ? decode.code : last_code;
  result.decision_time = last_change;
  result.completed = decode.any_active;
  return result;
}

std::vector<double> EoAdc::code_edges() {
  std::vector<double> edges;
  edges.reserve(channel_count() - 1);
  for (unsigned target = 1; target < channel_count(); ++target) {
    // Bisect the lowest input voltage whose code is >= target.
    double lo = 0.0;
    double hi = config_.v_full_scale;
    if (code(lo) >= target) {
      edges.push_back(lo);
      continue;
    }
    if (code(hi) < target) {
      edges.push_back(hi);
      continue;
    }
    for (int i = 0; i < 50; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (code(mid) >= target) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    edges.push_back(0.5 * (lo + hi));
  }
  return edges;
}

EoAdc::Linearity EoAdc::linearity() {
  Linearity lin;
  lin.code_edges = code_edges();
  const std::size_t n_edges = lin.code_edges.size();
  ensures(n_edges >= 2, "need at least two edges for linearity");

  // Endpoint-fit LSB from the measured first/last edges.
  const double lsb_fit = (lin.code_edges.back() - lin.code_edges.front()) /
                         static_cast<double>(n_edges - 1);
  ensures(lsb_fit > 0.0, "transfer function is not monotonic");

  lin.dnl.reserve(n_edges - 1);
  for (std::size_t k = 0; k + 1 < n_edges; ++k) {
    const double width = lin.code_edges[k + 1] - lin.code_edges[k];
    lin.dnl.push_back(width / lsb_fit - 1.0);
  }
  lin.inl.reserve(n_edges);
  for (std::size_t k = 0; k < n_edges; ++k) {
    const double ideal = lin.code_edges.front() +
                         static_cast<double>(k) * lsb_fit;
    lin.inl.push_back((lin.code_edges[k] - ideal) / lsb_fit);
  }
  for (double d : lin.dnl)
    lin.max_abs_dnl = std::max(lin.max_abs_dnl, std::fabs(d));
  for (double i : lin.inl)
    lin.max_abs_inl = std::max(lin.max_abs_inl, std::fabs(i));
  // A missing code shows up as a bin of (near-)zero width: DNL -> -1.
  lin.missing_codes =
      std::any_of(lin.dnl.begin(), lin.dnl.end(),
                  [](double d) { return d <= -0.99; });
  return lin;
}

double EoAdc::optical_power_delivered() const {
  return static_cast<double>(channel_count()) *
         (config_.input_power_per_ring + config_.reference_power);
}

double EoAdc::optical_wall_power() const {
  return optical_power_delivered() / config_.wall_plug_efficiency;
}

double EoAdc::electrical_power() const {
  const double per_channel =
      config_.use_amplifier_chain
          ? config_.tia.power + config_.amplifier.power
          : 0.0;
  return static_cast<double>(channel_count()) * per_channel +
         config_.decoder_static_power + config_.clock_power;
}

double EoAdc::total_power() const {
  return optical_wall_power() + electrical_power();
}

double EoAdc::sample_rate() const {
  if (config_.use_amplifier_chain) return config_.sample_rate_with_amps;
  // Amplifier-less: Qp itself slews to a logic level.  Worst-case in-bin
  // discharge current is the balanced current at a code centre.
  const double responsivity = photodiode_.config().responsivity;
  const double p_thru_min =
      config_.input_power_per_ring * ring_thru_transmission(0, vref_[0]);
  const double keeper = (config_.trip_offset_ratio - 1.0) * responsivity *
                        config_.reference_power;
  const double i_discharge =
      responsivity * (config_.reference_power - p_thru_min) + keeper;
  const double swing = config_.tia.bias_point - config_.no_amp_low_level;
  const double t_conv =
      config_.qp_capacitance * swing / i_discharge * config_.no_amp_margin;
  return 1.0 / t_conv;
}

double EoAdc::energy_per_conversion() const {
  return total_power() / sample_rate();
}

}  // namespace ptc::core
