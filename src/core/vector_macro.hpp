#ifndef PTC_CORE_VECTOR_MACRO_HPP
#define PTC_CORE_VECTOR_MACRO_HPP

#include <cstdint>
#include <vector>

#include "core/fault.hpp"
#include "core/tech.hpp"
#include "core/variation.hpp"
#include "optics/frequency_comb.hpp"
#include "optics/microring.hpp"
#include "optics/photodiode.hpp"
#include "optics/splitter.hpp"

/// Mixed-signal multi-bit photonic vector-multiply compute core — paper
/// Fig. 2 / Sec. II-B.
///
/// The macro multiplies an analog intensity-encoded input vector
/// IN = [IN_1 .. IN_m] (one WDM channel per element) by an n-bit digital
/// weight vector stored in pSRAM:
///
///  * a frequency comb + intensity encoders produce the WDM input bundle;
///  * a cascade of n 50:50 splitters creates binary-scaled copies IN/2,
///    IN/4, ..., IN/2^n — one per weight bit, MSB row first;
///  * bit row b carries m microrings, ring (b, k) tuned to channel k and
///    driven by weight bit w_k[n-1-b]: on resonance (bit = 0) it strips the
///    channel from the bus, off resonance (bit = 1) it passes it;
///  * each bit row terminates in a photodiode; the n photocurrents sum on a
///    shared node, yielding  I ~ sum_k IN_k * W_k / 2^n.
///
/// The spectral evaluation includes inter-channel crosstalk: every ring's
/// transfer function is evaluated at *every* channel wavelength, exactly the
/// methodology the paper describes in Sec. IV-B.
namespace ptc::core {

struct VectorMacroConfig {
  std::size_t channels = tech_wdm_channels;  ///< m (vector length per macro)
  unsigned weight_bits = 3;                  ///< n
  double comb_power_per_line = 2.2e-3;       ///< [W] per WDM channel
  double encoder_insertion_loss_db = 0.5;
  double encoder_extinction_db = 25.0;
  double splitter_excess_db = 0.1;
  optics::PhotodiodeConfig photodiode{};
  double wall_plug_efficiency = tech_wall_plug;
  /// Per-device fabrication/drive-level variation; variation.seed == 0 is
  /// the pristine design device.  A TensorCore derives one child seed per
  /// macro, so every macro of a varied core is a distinct device.
  VariationConfig variation{};
};

class VectorComputeMacro {
 public:
  explicit VectorComputeMacro(const VectorMacroConfig& config = {});

  std::size_t channels() const { return config_.channels; }
  unsigned weight_bits() const { return config_.weight_bits; }
  std::uint32_t max_weight() const { return (1u << config_.weight_bits) - 1; }

  /// Loads the n-bit weights (one per channel); weights drive the multiply
  /// rings' bias lines (plus each ring's static pSRAM drive-level offset
  /// when variation is enabled).
  void load_weights(const std::vector<std::uint32_t>& weights);

  /// Ambient temperature deviation from the calibrated operating point [K],
  /// applied to every multiply ring.  Each ring responds through its own
  /// (variation-spread) thermo-optic sensitivity, so a common-mode drift
  /// still detunes the rings heterogeneously.
  void set_temperature_offset(double delta_kelvin);
  double temperature_offset() const { return temperature_offset_; }

  const std::vector<std::uint32_t>& weights() const { return weights_; }

  struct Result {
    double photocurrent = 0.0;  ///< summed photodiode current [A]
    double normalized = 0.0;    ///< photocurrent / full-scale photocurrent
    std::vector<double> per_bit_current;  ///< one entry per bit row [A]
  };

  /// Multiplies the loaded weights by the normalized analog inputs
  /// (values in [0, 1], one per channel).
  Result multiply(const std::vector<double>& inputs) const;

  /// Ideal (error-free) normalized result for comparison:
  /// sum_k in_k * w_k / (m * (2^n - 1)).
  double ideal_normalized(const std::vector<double>& inputs) const;

  /// Full-scale photocurrent (all inputs 1, all weights max) [A].
  double full_scale_current() const { return full_scale_current_; }

  /// Transmission of channel `channel` through bit-row `bit_row`'s ring
  /// chain, given current weights — exposes crosstalk for tests/benches.
  double chain_transmission(std::size_t bit_row, std::size_t channel) const;

  // --- hard faults -----------------------------------------------------------
  /// Latches one multiply ring's drive line: from now on the ring ignores
  /// its weight bit (and drive-level offset) and sits at the stuck bias.
  /// Takes effect immediately on the currently loaded weights, and flows
  /// through chain_transmission(), so the physics walk and the fast path
  /// see the identical faulted device.
  void set_ring_fault(unsigned bit_row, std::size_t channel,
                      RingFaultKind kind);
  /// Releases every latched ring and restores the weight-driven biases.
  void clear_ring_faults();
  std::size_t ring_fault_count() const { return ring_fault_count_; }

  /// Optical wall-plug power of the macro's comb lines [W].
  double comb_wall_power() const;

  const VectorMacroConfig& config() const { return config_; }

 private:
  double compute_current(const std::vector<double>& inputs,
                         std::vector<double>* per_bit) const;
  void apply_weight_biases();

  VectorMacroConfig config_;
  optics::IntensityEncoder encoder_;
  optics::Photodiode photodiode_;
  /// rings_[bit_row][channel]; bit_row 0 = MSB (receives IN/2).
  std::vector<std::vector<optics::Microring>> rings_;
  /// Static per-ring pSRAM drive-level offsets [V], same indexing as
  /// rings_; empty when variation is disabled.
  std::vector<std::vector<double>> bias_offsets_;
  std::vector<std::uint32_t> weights_;
  /// Per-ring stuck-at states, [bit_row][channel] flattened; empty until
  /// the first fault is injected (the common, healthy case stays free).
  std::vector<std::uint8_t> ring_faults_;
  std::size_t ring_fault_count_ = 0;
  double full_scale_current_ = 0.0;
  double temperature_offset_ = 0.0;
};

}  // namespace ptc::core

#endif  // PTC_CORE_VECTOR_MACRO_HPP
