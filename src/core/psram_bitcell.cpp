#include "core/psram_bitcell.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "common/units.hpp"

namespace ptc::core {

namespace {

optics::MicroringConfig latch_ring(const PsramConfig& config) {
  // Latch rings resonate when driven to VDD (paper Sec. II-A: "lambda_IN is
  // selected to resonate with the MRRs when a voltage VDD is applied").
  return compute_ring_config(config.channel, config.vdd);
}

}  // namespace

PsramBitcell::PsramBitcell(const PsramConfig& config)
    : config_(config),
      ring_m1_(latch_ring(config)),
      ring_m2_(latch_ring(config)),
      pd_(config.photodiode),
      driver_d2_(config.driver),
      driver_d1_(config.driver),
      pd_lag_p1_(pd_.response_time_constant()),
      pd_lag_p2_(pd_.response_time_constant()),
      pd_lag_p3_(pd_.response_time_constant()),
      pd_lag_p4_(pd_.response_time_constant()) {
  expects(config.bias_power >= 0.0, "bias power must be >= 0");
  expects(config.write_power > 0.0, "write power must be positive");
  expects(config.write_pulse_width > 0.0, "pulse width must be positive");
  expects(config.node_capacitance > 0.0, "node capacitance must be positive");
  expects(config.dt > 0.0 && config.dt <= 1e-12 * 2.0,
          "timestep must be positive and <= 2 ps for stability");
  // PS1 splits the bias laser between the two rings.
  ring_input_power_ = 0.5 * config.bias_power *
                      units::db_to_ratio(-config.splitter_excess_db);
  initialize(false);
}

void PsramBitcell::initialize(bool value) {
  v_q_ = value ? config_.vdd : 0.0;
  v_qb_ = value ? 0.0 : config_.vdd;
  driver_d2_.reset(v_q_);
  driver_d1_.reset(v_qb_);
  ring_m1_.set_bias(v_q_);
  ring_m2_.set_bias(v_qb_);
  pd_lag_p1_.reset(0.0);
  pd_lag_p2_.reset(0.0);
  pd_lag_p3_.reset(0.0);
  pd_lag_p4_.reset(0.0);
}

void PsramBitcell::step_once(double p_wbl, double p_wblb, bool bias_on) {
  const double dt = config_.dt;
  const double lambda = channel_wavelength(config_.channel);

  // Ring drivers buffer the storage nodes onto the ring junctions.
  ring_m1_.set_bias(driver_d2_.step(v_q_, dt));
  ring_m2_.set_bias(driver_d1_.step(v_qb_, dt));

  // Quasi-static optics: the ring response time is absorbed in the driver
  // and photodiode lags.
  const double p_in = bias_on ? ring_input_power_ : 0.0;
  const double thru1 = p_in * ring_m1_.thru_transmission(lambda);
  const double drop1 = p_in * ring_m1_.drop_transmission(lambda);
  const double thru2 = p_in * ring_m2_.thru_transmission(lambda);
  const double drop2 = p_in * ring_m2_.drop_transmission(lambda);

  // Write light: WBL illuminates P3 (Q up) and P2 (QB down); WBLB
  // illuminates P1 (QB up) and P4 (Q down).  Each bitline splits 50:50
  // between its two photodiodes.
  const double split = 0.5 * units::db_to_ratio(-config_.splitter_excess_db);
  const double p1 = pd_lag_p1_.step(thru1 + p_wblb * split, dt);
  const double p2 = pd_lag_p2_.step(drop1 + p_wbl * split, dt);
  const double p3 = pd_lag_p3_.step(thru2 + p_wbl * split, dt);
  const double p4 = pd_lag_p4_.step(drop2 + p_wblb * split, dt);

  const double i_qb = pd_.current(p1) - pd_.current(p2) - config_.leakage_current;
  const double i_q = pd_.current(p3) - pd_.current(p4) - config_.leakage_current;

  v_qb_ = std::clamp(v_qb_ + i_qb * dt / config_.node_capacitance, 0.0,
                     config_.vdd);
  v_q_ = std::clamp(v_q_ + i_q * dt / config_.node_capacitance, 0.0,
                    config_.vdd);
}

WriteResult PsramBitcell::write(bool value, sim::TraceSet* traces,
                                double timeout) {
  const double pulse = config_.write_pulse_width;
  const double driver_energy_before =
      driver_d1_.consumed_energy() + driver_d2_.consumed_energy();

  const double target_q = value ? config_.vdd : 0.0;
  const double target_qb = value ? 0.0 : config_.vdd;
  const double rail_tol = 0.1 * config_.vdd;

  WriteResult result;
  double settle = -1.0;
  double t = 0.0;
  while (t < timeout) {
    const bool in_pulse = t < pulse;
    const double p_wbl = (in_pulse && value) ? config_.write_power : 0.0;
    const double p_wblb = (in_pulse && !value) ? config_.write_power : 0.0;
    step_once(p_wbl, p_wblb, /*bias_on=*/true);
    t += config_.dt;
    if (traces != nullptr) {
      traces->at("wbl").record(t, p_wbl);
      traces->at("wblb").record(t, p_wblb);
      traces->at("q").record(t, v_q_);
      traces->at("qb").record(t, v_qb_);
    }
    const bool settled = std::fabs(v_q_ - target_q) < rail_tol &&
                         std::fabs(v_qb_ - target_qb) < rail_tol;
    if (settled && settle < 0.0) settle = t;
    if (!settled) settle = -1.0;
    // Stop early once the pulse has ended and the latch has been settled for
    // a hold-feedback time constant.
    if (t > pulse && settle > 0.0 && t - settle > 50e-12) break;
  }

  result.success = settle > 0.0 && q() == value && is_stable();
  result.settle_time = settle > 0.0 ? settle : timeout;
  result.laser_energy =
      config_.write_power * pulse / config_.wall_plug_efficiency;
  result.driver_energy = driver_d1_.consumed_energy() +
                         driver_d2_.consumed_energy() - driver_energy_before;
  return result;
}

void PsramBitcell::hold(double duration, bool bias_on) {
  expects(duration >= 0.0, "duration must be >= 0");
  for (double t = 0.0; t < duration; t += config_.dt) {
    step_once(0.0, 0.0, bias_on);
  }
}

bool PsramBitcell::is_stable() const {
  const double tol = 0.1 * config_.vdd;
  const bool q_high = v_q_ > config_.vdd - tol && v_qb_ < tol;
  const bool q_low = v_q_ < tol && v_qb_ > config_.vdd - tol;
  return q_high || q_low;
}

double PsramBitcell::recovery_margin(double resolution) {
  expects(resolution > 0.0, "resolution must be positive");
  const bool original = q();
  double lo = 0.0;                 // recovers
  double hi = 0.5 * config_.vdd;   // flips (metastable point)
  while (hi - lo > resolution) {
    const double perturb = 0.5 * (lo + hi);
    initialize(original);
    // Push both nodes toward the metastable point.
    v_q_ = original ? config_.vdd - perturb : perturb;
    v_qb_ = original ? perturb : config_.vdd - perturb;
    hold(3e-9);
    const bool recovered = q() == original && is_stable();
    if (recovered) {
      lo = perturb;
    } else {
      hi = perturb;
    }
  }
  initialize(original);
  return lo;
}

double PsramBitcell::hold_wall_power() const {
  return config_.bias_power / config_.wall_plug_efficiency;
}

}  // namespace ptc::core
