#include "core/tech.hpp"

#include "common/expects.hpp"

namespace ptc::core {

optics::MicroringConfig compute_ring_config(std::size_t channel,
                                            double pin_bias) {
  expects(channel < 8, "compute rings support at most 8 channels per FSR");
  optics::MicroringConfig config;
  config.radius = 7.5e-6;
  config.dl = tech_dl_step * static_cast<double>(channel);
  config.coupling_gap_thru = 200e-9;
  config.coupling_gap_drop = 200e-9;
  config.add_drop = true;
  config.design_wavelength = tech_lambda_base;
  config.pin_bias = pin_bias;
  config.n_eff = 2.4;
  config.n_g = 3.8907;
  config.n_section = 4.7957;
  config.loss_db_per_cm = 3.0;
  config.junction.efficiency = 340e-12;   // high-efficiency phase shifter
  config.junction.built_in_potential = 0.9;
  config.junction.junction_capacitance = 22e-15;
  config.junction.response_time = 5e-12;
  return config;
}

optics::MicroringConfig adc_ring_config() {
  optics::MicroringConfig config;
  config.radius = 10e-6;
  config.dl = 0.0;
  config.coupling_gap_thru = 250e-9;
  config.add_drop = false;
  config.design_wavelength = tech_adc_wavelength;
  config.pin_bias = 0.0;  // resonates when V_pn = V_REF - V_IN = 0
  config.n_eff = 2.4;
  config.n_g = 3.8907;
  config.loss_db_per_cm = 8.0;            // doped junction ring
  config.junction.efficiency = 17.65e-12; // depletion-mode (fast, small)
  config.junction.built_in_potential = 0.9;
  config.junction.junction_capacitance = 15e-15;
  config.junction.response_time = 2e-12;
  return config;
}

double channel_wavelength(std::size_t channel) {
  expects(channel < 8, "at most 8 channels per FSR");
  return tech_lambda_base + tech_channel_spacing * static_cast<double>(channel);
}

}  // namespace ptc::core
