#include "core/psram_array.hpp"

#include <bit>

#include "common/expects.hpp"

namespace ptc::core {

PsramArray::PsramArray(const PsramArrayConfig& config) : config_(config) {
  expects(config.rows >= 1 && config.words_per_row >= 1,
          "array must have at least one word");
  expects(config.bits_per_word >= 1 && config.bits_per_word <= 16,
          "bits per word must be in [1, 16]");
  expects(config.write_rate > 0.0, "write rate must be positive");
  words_.assign(config.rows * config.words_per_row, 0);
  cell_flips_.assign(words_.size() * config.bits_per_word, 0);
  cell_limits_ = FaultModel(config.fault).cell_limits(cell_flips_.size());
}

std::size_t PsramArray::bitcell_count() const {
  return config_.rows * config_.words_per_row * config_.bits_per_word;
}

std::uint32_t PsramArray::max_weight() const {
  return (1u << config_.bits_per_word) - 1;
}

std::size_t PsramArray::write_word(std::size_t row, std::size_t index,
                                   std::uint32_t value) {
  expects(row < config_.rows && index < config_.words_per_row,
          "word coordinates out of range");
  expects(value <= max_weight(), "weight exceeds the word precision");
  const std::size_t word_index = row * config_.words_per_row + index;
  std::uint32_t& word = words_[word_index];
  std::uint32_t applied = value;
  if (!cell_limits_.empty()) {
    for (unsigned b = 0; b < config_.bits_per_word; ++b) {
      const std::size_t cell = word_index * config_.bits_per_word + b;
      if ((((applied ^ word) >> b) & 1u) != 0u &&
          static_cast<double>(cell_flips_[cell]) >= cell_limits_[cell]) {
        // Worn cell: the toggle silently fails and the bit holds its last
        // value.  No switching event, no write energy — write-verify (the
        // write_errors counter) is how a BIST finds out.
        applied = (applied & ~(1u << b)) | (word & (1u << b));
        ++write_errors_;
      }
    }
  }
  const std::uint32_t flips = word ^ applied;
  word = applied;
  const auto flipped = static_cast<std::size_t>(std::popcount(flips));
  ++word_writes_;
  bit_flips_ += flipped;
  for (unsigned b = 0; b < config_.bits_per_word; ++b) {
    if ((flips >> b) & 1u) {
      ++cell_flips_[word_index * config_.bits_per_word + b];
    }
  }
  ledger_.add_energy("psram_write",
                     static_cast<double>(flipped) * config_.write_energy);
  return flipped;
}

double PsramArray::write_matrix(const std::vector<std::uint32_t>& values) {
  expects(values.size() == words_.size(),
          "matrix size must match the array geometry");
  for (std::size_t row = 0; row < config_.rows; ++row) {
    for (std::size_t index = 0; index < config_.words_per_row; ++index) {
      write_word(row, index, values[row * config_.words_per_row + index]);
    }
  }
  // Rows update in parallel; each row streams words bit-serially at the
  // write rate.
  const double slots = static_cast<double>(config_.words_per_row) *
                       static_cast<double>(config_.bits_per_word);
  return slots / config_.write_rate;
}

std::uint32_t PsramArray::word(std::size_t row, std::size_t index) const {
  expects(row < config_.rows && index < config_.words_per_row,
          "word coordinates out of range");
  return words_[row * config_.words_per_row + index];
}

bool PsramArray::bit(std::size_t row, std::size_t index, unsigned b) const {
  expects(b < config_.bits_per_word, "bit index out of range");
  return (word(row, index) >> b) & 1u;
}

double PsramArray::hold_wall_power() const {
  return static_cast<double>(bitcell_count()) * config_.hold_bias_power /
         config_.wall_plug_efficiency;
}

std::uint64_t PsramArray::max_cell_flips() const {
  std::uint32_t worst = 0;
  for (const std::uint32_t flips : cell_flips_) {
    if (flips > worst) worst = flips;
  }
  return worst;
}

double PsramArray::word_write_time() const {
  return static_cast<double>(config_.bits_per_word) / config_.write_rate;
}

std::size_t PsramArray::failed_cells() const {
  if (cell_limits_.empty()) return 0;
  std::size_t failed = 0;
  for (std::size_t cell = 0; cell < cell_flips_.size(); ++cell) {
    if (static_cast<double>(cell_flips_[cell]) >= cell_limits_[cell]) ++failed;
  }
  return failed;
}

double PsramArray::endurance_remaining() const {
  if (cell_limits_.empty()) return 1.0;
  double worst = 1.0;
  for (std::size_t cell = 0; cell < cell_flips_.size(); ++cell) {
    const double remaining =
        1.0 - static_cast<double>(cell_flips_[cell]) / cell_limits_[cell];
    if (remaining < worst) worst = remaining;
  }
  return worst < 0.0 ? 0.0 : worst;
}

}  // namespace ptc::core
