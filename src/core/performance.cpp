#include "core/performance.hpp"

namespace ptc::core {

PerformanceModel::PerformanceModel(const TensorCoreConfig& config)
    : config_([&] {
        TensorCoreConfig c = config;
        c.psram.rows = c.rows;
        c.psram.words_per_row = c.cols;
        c.psram.bits_per_word = c.weight_bits;
        return c;
      }()),
      adc_(config_.adc) {}

double PerformanceModel::ops_per_sample() const {
  return static_cast<double>(config_.rows) * 2.0 *
         static_cast<double>(config_.cols);
}

double PerformanceModel::sample_rate() const { return adc_.sample_rate(); }

double PerformanceModel::throughput_ops() const {
  return ops_per_sample() * sample_rate();
}

double PerformanceModel::power() const {
  double total = 0.0;
  for (const auto& [name, watts] : power_table()) total += watts;
  return total;
}

double PerformanceModel::tops_per_watt() const {
  return throughput_ops() / power();
}

std::size_t PerformanceModel::bitcell_count() const {
  return config_.rows * config_.cols * config_.weight_bits;
}

double PerformanceModel::weight_reload_time() const {
  return static_cast<double>(config_.cols) *
         static_cast<double>(config_.weight_bits) / config_.psram.write_rate;
}

std::vector<std::pair<std::string, double>> PerformanceModel::power_table()
    const {
  const auto rows = static_cast<double>(config_.rows);
  std::vector<std::pair<std::string, double>> table;
  table.emplace_back("eoADC (optical wall-plug)",
                     rows * adc_.optical_wall_power());
  table.emplace_back("eoADC (electrical)", rows * adc_.electrical_power());
  table.emplace_back("row readout TIA [52]", rows * config_.row_tia.power);
  table.emplace_back("input comb laser (wall-plug)",
                     static_cast<double>(config_.cols) *
                         config_.macro.comb_power_per_line /
                         config_.wall_plug_efficiency);
  table.emplace_back("pSRAM hold bias (wall-plug)",
                     static_cast<double>(bitcell_count()) *
                         config_.psram.hold_bias_power /
                         config_.psram.wall_plug_efficiency);
  table.emplace_back("weight streaming (lasers + drivers)",
                     rows * config_.psram.write_rate *
                         config_.weight_update_duty *
                         config_.psram.write_energy);
  table.emplace_back("digital control + clocks", config_.control_power);
  return table;
}

PerformanceReport PerformanceModel::report() const {
  PerformanceReport r;
  r.name = "This Work";
  r.throughput_tops = throughput_ops() / 1e12;
  r.efficiency_tops_w = tops_per_watt() / 1e12;
  r.weight_update_hz = config_.psram.write_rate;
  r.update_note = "differential optical write, 50 ps pulse";
  return r;
}

}  // namespace ptc::core
