#include "core/fault.hpp"

#include <cmath>
#include <unordered_set>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace ptc::core {

FaultModel::FaultModel(const FaultConfig& config) : config_(config) {
  expects(config.psram_endurance_median >= 0.0,
          "endurance median must be non-negative");
  expects(config.psram_endurance_spread >= 0.0,
          "endurance spread must be non-negative");
}

std::vector<double> FaultModel::cell_limits(std::size_t cells) const {
  if (!endurance_enabled()) return {};
  // Fixed draw order (cell 0, 1, ...) keeps the limits a pure function of
  // (seed, cell count): the same array geometry always wears out the same
  // way.  Limits are clamped to >= 1 so a cell survives at least one flip.
  Rng rng(config_.seed);
  std::vector<double> limits(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    const double limit = config_.psram_endurance_median *
                         std::exp(config_.psram_endurance_spread * rng.normal());
    limits[i] = limit < 1.0 ? 1.0 : limit;
  }
  return limits;
}

std::vector<RingFaultSite> FaultModel::sample_ring_faults(std::size_t rows,
                                                          std::size_t cols,
                                                          unsigned bits,
                                                          std::size_t count,
                                                          std::uint64_t seed) {
  expects(rows >= 1 && cols >= 1 && bits >= 1, "array must be non-empty");
  const std::size_t total = rows * cols * bits;
  if (count > total) count = total;
  Rng rng(seed);
  std::unordered_set<std::size_t> used;
  std::vector<RingFaultSite> sites;
  sites.reserve(count);
  while (sites.size() < count) {
    const std::size_t flat = rng.below(total);
    if (!used.insert(flat).second) continue;
    RingFaultSite site;
    site.bit = static_cast<unsigned>(flat % bits);
    site.col = (flat / bits) % cols;
    site.row = flat / (bits * cols);
    site.kind = (sites.size() % 2 == 0) ? RingFaultKind::kStuckOn
                                        : RingFaultKind::kStuckOff;
    sites.push_back(site);
  }
  return sites;
}

}  // namespace ptc::core
