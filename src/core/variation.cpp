#include "core/variation.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace ptc::core {

VariationModel::VariationModel(const VariationConfig& config)
    : config_(config) {
  expects(config.resonance_sigma >= 0.0, "resonance sigma must be >= 0");
  expects(config.q_spread >= 0.0, "Q spread must be >= 0");
  expects(config.coupling_spread >= 0.0, "coupling spread must be >= 0");
  expects(config.psram_level_sigma >= 0.0, "pSRAM level sigma must be >= 0");
  expects(config.thermal_sensitivity_spread >= 0.0,
          "thermal sensitivity spread must be >= 0");
  expects(config.adc_vref_sigma >= 0.0, "ADC vref sigma must be >= 0");
}

VariationModel::RingDeviation VariationModel::sample_ring(Rng& rng) const {
  RingDeviation d;
  // Fixed draw order; every field draws even when its sigma is zero so the
  // stream alignment (and thus every other field's value) is independent of
  // which sigmas are enabled.
  d.resonance_error = rng.normal(0.0, config_.resonance_sigma);
  d.loss_scale = std::max(0.05, rng.normal(1.0, config_.q_spread));
  d.coupling_scale = std::max(0.5, rng.normal(1.0, config_.coupling_spread));
  d.bias_offset = rng.normal(0.0, config_.psram_level_sigma);
  d.thermal_scale =
      std::max(0.1, rng.normal(1.0, config_.thermal_sensitivity_spread));
  return d;
}

std::uint64_t VariationModel::child_seed(std::size_t index) const {
  const std::uint64_t raw = Rng(config_.seed).split(index).next_u64();
  return raw != 0 ? raw : 1;
}

}  // namespace ptc::core
