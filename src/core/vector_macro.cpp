#include "core/vector_macro.hpp"

#include <cmath>

#include "common/expects.hpp"
#include "common/units.hpp"

namespace ptc::core {

VectorComputeMacro::VectorComputeMacro(const VectorMacroConfig& config)
    : config_(config),
      encoder_(config.encoder_insertion_loss_db, config.encoder_extinction_db),
      photodiode_(config.photodiode) {
  expects(config.channels >= 1 && config.channels <= tech_wdm_channels * 2,
          "channel count exceeds the usable FSR window");
  expects(config.weight_bits >= 1 && config.weight_bits <= 8,
          "weight precision must be in [1, 8] bits");
  expects(config.comb_power_per_line > 0.0, "comb power must be positive");

  const VariationModel variation(config.variation);
  Rng variation_rng(config.variation.seed);
  rings_.resize(config.weight_bits);
  if (variation.enabled()) bias_offsets_.resize(config.weight_bits);
  for (unsigned row = 0; row < config.weight_bits; ++row) {
    rings_[row].reserve(config.channels);
    if (variation.enabled()) bias_offsets_[row].reserve(config.channels);
    for (std::size_t ch = 0; ch < config.channels; ++ch) {
      // Multiply rings sit on resonance at 0 V (weight bit 0 strips the
      // channel) and shift off resonance at VDD (bit 1 passes it).
      optics::MicroringConfig ring = compute_ring_config(ch, /*pin_bias=*/0.0);
      if (variation.enabled()) {
        // Per-ring fabrication spread, drawn in (bit_row, channel) order.
        const auto d = variation.sample_ring(variation_rng);
        ring.loss_db_per_cm *= d.loss_scale;
        ring.coupling_gap_thru *= d.coupling_scale;
        ring.coupling_gap_drop *= d.coupling_scale;
        ring.dlambda_dt *= d.thermal_scale;
        rings_[row].emplace_back(ring);
        rings_[row].back().set_resonance_error(d.resonance_error);
        bias_offsets_[row].push_back(d.bias_offset);
      } else {
        rings_[row].emplace_back(ring);
      }
    }
  }
  weights_.assign(config.channels, 0);

  // Calibrate the full-scale photocurrent: all inputs at 1, all weights max.
  load_weights(std::vector<std::uint32_t>(config.channels, max_weight()));
  full_scale_current_ =
      compute_current(std::vector<double>(config.channels, 1.0), nullptr);
  ensures(full_scale_current_ > 0.0, "full-scale calibration failed");
  load_weights(std::vector<std::uint32_t>(config.channels, 0));
}

void VectorComputeMacro::load_weights(const std::vector<std::uint32_t>& weights) {
  expects(weights.size() == config_.channels,
          "need exactly one weight per channel");
  for (std::uint32_t w : weights) {
    expects(w <= max_weight(), "weight exceeds the configured precision");
  }
  weights_ = weights;
  apply_weight_biases();
}

void VectorComputeMacro::apply_weight_biases() {
  for (unsigned row = 0; row < config_.weight_bits; ++row) {
    // Bit row 0 is the MSB (significance 2^(n-1)).
    const unsigned bit_index = config_.weight_bits - 1 - row;
    for (std::size_t ch = 0; ch < config_.channels; ++ch) {
      const bool bit = (weights_[ch] >> bit_index) & 1u;
      const double offset =
          bias_offsets_.empty() ? 0.0 : bias_offsets_[row][ch];
      double bias = (bit ? tech_vdd : 0.0) + offset;
      if (!ring_faults_.empty()) {
        // A latched drive line pins the ring regardless of the stored bit:
        // stuck-ON parks it on resonance (permanent bit 0, channel always
        // stripped), stuck-OFF latches it at VDD (permanent bit 1).
        switch (static_cast<RingFaultKind>(
            ring_faults_[row * config_.channels + ch])) {
          case RingFaultKind::kStuckOn:
            bias = 0.0;
            break;
          case RingFaultKind::kStuckOff:
            bias = tech_vdd;
            break;
          case RingFaultKind::kNone:
            break;
        }
      }
      rings_[row][ch].set_bias(bias);
    }
  }
}

void VectorComputeMacro::set_ring_fault(unsigned bit_row, std::size_t channel,
                                        RingFaultKind kind) {
  expects(bit_row < config_.weight_bits, "bit row out of range");
  expects(channel < config_.channels, "channel out of range");
  if (ring_faults_.empty()) {
    ring_faults_.assign(
        static_cast<std::size_t>(config_.weight_bits) * config_.channels, 0);
  }
  std::uint8_t& slot = ring_faults_[bit_row * config_.channels + channel];
  if (slot == static_cast<std::uint8_t>(RingFaultKind::kNone) &&
      kind != RingFaultKind::kNone) {
    ++ring_fault_count_;
  } else if (slot != static_cast<std::uint8_t>(RingFaultKind::kNone) &&
             kind == RingFaultKind::kNone) {
    --ring_fault_count_;
  }
  slot = static_cast<std::uint8_t>(kind);
  apply_weight_biases();
}

void VectorComputeMacro::clear_ring_faults() {
  if (ring_faults_.empty()) return;
  ring_faults_.clear();
  ring_fault_count_ = 0;
  apply_weight_biases();
}

void VectorComputeMacro::set_temperature_offset(double delta_kelvin) {
  temperature_offset_ = delta_kelvin;
  for (auto& row : rings_) {
    for (auto& ring : row) {
      ring.set_temperature_offset(delta_kelvin);
    }
  }
}

double VectorComputeMacro::chain_transmission(std::size_t bit_row,
                                              std::size_t channel) const {
  expects(bit_row < rings_.size(), "bit row out of range");
  expects(channel < config_.channels, "channel out of range");
  const double lambda = channel_wavelength(channel);
  double transmission = 1.0;
  for (const auto& ring : rings_[bit_row]) {
    transmission *= ring.thru_transmission(lambda);
  }
  return transmission;
}

double VectorComputeMacro::compute_current(const std::vector<double>& inputs,
                                           std::vector<double>* per_bit) const {
  expects(inputs.size() == config_.channels,
          "need exactly one input per channel");

  // Comb + encoders produce the WDM input bundle.
  std::vector<double> wavelengths(config_.channels);
  for (std::size_t ch = 0; ch < config_.channels; ++ch) {
    wavelengths[ch] = channel_wavelength(ch);
  }
  optics::FrequencyComb comb(optics::WavelengthGrid(wavelengths),
                             config_.comb_power_per_line,
                             config_.wall_plug_efficiency);
  const optics::WdmSignal encoded = encoder_.encode(comb.emit(), inputs);

  // Binary-weighted splitter cascade: tap k carries IN / 2^(k+1).
  const optics::BinaryWeightedTaps taps(config_.weight_bits,
                                        config_.splitter_excess_db);
  const std::vector<optics::WdmSignal> bit_inputs = taps.split(encoded);

  if (per_bit != nullptr) per_bit->assign(config_.weight_bits, 0.0);
  double total_power_on_pds = 0.0;
  for (unsigned row = 0; row < config_.weight_bits; ++row) {
    double row_power = 0.0;
    for (std::size_t ch = 0; ch < config_.channels; ++ch) {
      // Channel ch passes through every ring of the row — this is where
      // inter-channel crosstalk enters.
      row_power +=
          bit_inputs[row].channel(ch).power * chain_transmission(row, ch);
    }
    if (per_bit != nullptr)
      (*per_bit)[row] = photodiode_.config().responsivity * row_power;
    total_power_on_pds += row_power;
  }
  return photodiode_.config().responsivity * total_power_on_pds;
}

VectorComputeMacro::Result VectorComputeMacro::multiply(
    const std::vector<double>& inputs) const {
  Result result;
  result.photocurrent = compute_current(inputs, &result.per_bit_current);
  result.normalized = result.photocurrent / full_scale_current_;
  return result;
}

double VectorComputeMacro::ideal_normalized(
    const std::vector<double>& inputs) const {
  expects(inputs.size() == config_.channels,
          "need exactly one input per channel");
  double acc = 0.0;
  for (std::size_t ch = 0; ch < config_.channels; ++ch) {
    acc += inputs[ch] * static_cast<double>(weights_[ch]);
  }
  return acc / (static_cast<double>(config_.channels) *
                static_cast<double>(max_weight()));
}

double VectorComputeMacro::comb_wall_power() const {
  return config_.comb_power_per_line * static_cast<double>(config_.channels) /
         config_.wall_plug_efficiency;
}

}  // namespace ptc::core
