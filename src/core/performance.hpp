#ifndef PTC_CORE_PERFORMANCE_HPP
#define PTC_CORE_PERFORMANCE_HPP

#include <string>
#include <vector>

#include "core/tensor_core.hpp"

/// Closed-form performance roll-up of Sec. IV-D, kept separate from the
/// simulating TensorCore so benches can sweep architectural parameters
/// (rows, precision, ADC rate) without instantiating photonics.
namespace ptc::core {

/// One row of the Table I comparison (and of the Sec. IV-D analysis).
struct PerformanceReport {
  std::string name;
  double throughput_tops = 0.0;     ///< tera-operations per second
  double efficiency_tops_w = 0.0;   ///< TOPS per watt (0 = not reported)
  double weight_update_hz = 0.0;    ///< weight refresh rate
  std::string update_note;          ///< provenance of the update-rate figure
};

/// Evaluates the paper's metrics for a given tensor-core configuration.
class PerformanceModel {
 public:
  explicit PerformanceModel(const TensorCoreConfig& config = {});

  /// Operations per ADC sample (rows * 2 * cols).
  double ops_per_sample() const;

  /// ADC-limited sample rate [Hz].
  double sample_rate() const;

  /// Peak throughput [op/s]; 4.096e12 for the default 16x16 core.
  double throughput_ops() const;

  /// Total power [W]; ~1.356 W for the default configuration.
  double power() const;

  /// TOPS per watt; ~3.02 for the default configuration.
  double tops_per_watt() const;

  /// Number of pSRAM bitcells (768 for 16x16x3b).
  std::size_t bitcell_count() const;

  /// Latency to reload the full weight array [s].
  double weight_reload_time() const;

  /// Per-component power table (category, watts).
  std::vector<std::pair<std::string, double>> power_table() const;

  /// The "This Work" row of Table I.
  PerformanceReport report() const;

  const TensorCoreConfig& config() const { return config_; }

 private:
  TensorCoreConfig config_;
  EoAdc adc_;  ///< reference ADC instance for rate/power queries
};

}  // namespace ptc::core

#endif  // PTC_CORE_PERFORMANCE_HPP
