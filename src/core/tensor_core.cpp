#include "core/tensor_core.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace ptc::core {

TensorCore::TensorCore(const TensorCoreConfig& config)
    : config_([&] {
        TensorCoreConfig c = config;
        // The pSRAM geometry always mirrors the compute geometry.
        c.psram.rows = c.rows;
        c.psram.words_per_row = c.cols;
        c.psram.bits_per_word = c.weight_bits;
        c.psram.fault = c.fault;
        c.macro.weight_bits = c.weight_bits;
        return c;
      }()),
      psram_(config_.psram),
      row_tia_(config_.row_tia) {
  expects(config_.rows >= 1, "core needs at least one row");
  expects(config_.cols >= 1, "core needs at least one column");
  expects(config_.cols % config_.macro.channels == 0,
          "cols must be a multiple of the macro channel count");

  const VariationModel variation(config_.variation);
  macros_.resize(config_.rows);
  const std::size_t tiles = macros_per_row();
  for (std::size_t row = 0; row < config_.rows; ++row) {
    macros_[row].reserve(tiles);
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      VectorMacroConfig macro_config = config_.macro;
      if (variation.enabled()) {
        // Every macro is a distinct fabricated device on this die.
        macro_config.variation = config_.variation;
        macro_config.variation.seed = variation.child_seed(row * tiles + tile);
      }
      macros_[row].emplace_back(macro_config);
    }
  }
  adc_dead_.assign(config_.rows, 0);
  adcs_.reserve(config_.rows);
  for (std::size_t row = 0; row < config_.rows; ++row) {
    EoAdcConfig adc_config = config_.adc;
    if (variation.enabled() && config_.variation.adc_vref_sigma > 0.0) {
      // Per-row reference ladders mismatch independently.
      adc_config.vref_mismatch_sigma = config_.variation.adc_vref_sigma;
      adc_config.mismatch_seed =
          variation.child_seed(config_.rows * tiles + row);
    }
    adcs_.emplace_back(adc_config);
  }

  // Reserved calibration row: one macro per tile, weights all zero so every
  // probe ring sits on resonance — the steepest flank of its transfer
  // function, where a common-mode detuning moves the summed photocurrent
  // the most.  Child seeds continue past the compute macros' and row ADCs'
  // so the probe row never disturbs their variation streams.
  probe_macros_.reserve(tiles);
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    VectorMacroConfig probe_macro_config = config_.macro;
    if (variation.enabled()) {
      probe_macro_config.variation = config_.variation;
      probe_macro_config.variation.seed =
          variation.child_seed(config_.rows * tiles + config_.rows + tile);
    }
    probe_macros_.emplace_back(probe_macro_config);
    probe_macros_.back().load_weights(
        std::vector<std::uint32_t>(config_.macro.channels, 0));
  }
  probe_input_.assign(config_.macro.channels, 1.0);
  probe_reference_ = 0.0;
  for (const VectorComputeMacro& macro : probe_macros_) {
    probe_reference_ += macro.multiply(probe_input_).photocurrent;
  }
  ensures(probe_reference_ > 0.0, "probe row calibration failed");

  // Full-scale row current: all inputs 1, all weights max across every tile.
  // The probe is the *design* device (variation stripped): a varied die's
  // deviation from this full scale is exactly the accuracy error the
  // variation/recalibration studies measure.
  VectorMacroConfig probe_config = config_.macro;
  probe_config.variation = VariationConfig{};
  VectorComputeMacro probe(probe_config);
  probe.load_weights(
      std::vector<std::uint32_t>(config_.macro.channels, probe.max_weight()));
  const auto fs =
      probe.multiply(std::vector<double>(config_.macro.channels, 1.0));
  full_scale_row_current_ = fs.photocurrent * static_cast<double>(tiles);
  ensures(full_scale_row_current_ > 0.0, "row full-scale calibration failed");

  const auto power_parts = breakdown();
  ledger_.add_static_power("adc", power_parts.adc);
  ledger_.add_static_power("row_tia", power_parts.row_tia);
  ledger_.add_static_power("comb_laser", power_parts.comb_laser);
  ledger_.add_static_power("psram_hold", power_parts.psram_hold);
  ledger_.add_static_power("weight_update", power_parts.weight_update);
  ledger_.add_static_power("control", power_parts.control);
}

std::size_t TensorCore::macros_per_row() const {
  return config_.cols / config_.macro.channels;
}

double TensorCore::load_weights(
    const std::vector<std::vector<std::uint32_t>>& weights) {
  expects(weights.size() == config_.rows, "weight matrix row count mismatch");
  std::vector<std::uint32_t> flat;
  flat.reserve(config_.rows * config_.cols);
  for (const auto& row : weights) {
    expects(row.size() == config_.cols, "weight matrix column count mismatch");
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const double latency = psram_.write_matrix(flat);
  if (psram_.endurance_enabled()) {
    // Worn cells may have refused bit toggles; from here on everything —
    // ring biases, the digital reference, and the fast-path memo key —
    // must see what the array actually *stores*, not what was requested.
    for (std::size_t row = 0; row < config_.rows; ++row) {
      for (std::size_t col = 0; col < config_.cols; ++col) {
        flat[row * config_.cols + col] = psram_.word(row, col);
      }
    }
  }

  // The stored bits drive the multiply rings tile by tile.
  const std::size_t m = config_.macro.channels;
  for (std::size_t row = 0; row < config_.rows; ++row) {
    for (std::size_t tile = 0; tile < macros_per_row(); ++tile) {
      std::vector<std::uint32_t> tile_weights(m);
      for (std::size_t ch = 0; ch < m; ++ch) {
        tile_weights[ch] = psram_.word(row, tile * m + ch);
      }
      macros_[row][tile].load_weights(tile_weights);
    }
  }
  loaded_words_ = flat;
  if (config_.fast_path) {
    calibrate_fast_path(flat);
  } else {
    fast_.valid = false;
  }
  return latency;
}

void TensorCore::calibrate_fast_path(const std::vector<std::uint32_t>& words) {
  // Constants of the per-sample walk, computed exactly as the physics path
  // computes them (same functions, same inputs -> same doubles).
  fast_.comb_power = config_.macro.comb_power_per_line;
  fast_.encoder_loss =
      units::db_to_ratio(-config_.macro.encoder_insertion_loss_db);
  fast_.encoder_floor = units::db_to_ratio(-config_.macro.encoder_extinction_db);
  // Each 50:50 splitter stage multiplies the remainder by excess * 0.5.
  fast_.tap_factor = units::db_to_ratio(-config_.macro.splitter_excess_db) * 0.5;
  fast_.responsivity = config_.macro.photodiode.responsivity;

  // The chain transmissions are a pure function of (loaded weight words,
  // thermal detuning), and a serving fleet reloads the same few blocks on
  // the same core every dispatch — recall the memoized calibration when
  // both match.  Under drift the detuning key misses and the walk re-runs:
  // the modeled cost of serving on a drifting device.
  for (std::size_t i = 0; i < calibrations_.size(); ++i) {
    if (calibrations_[i].detuning == detuning_ &&
        calibrations_[i].words == words) {
      fast_.chain = calibrations_[i].chain;
      if (i != 0) std::rotate(calibrations_.begin(),
                              calibrations_.begin() + i,
                              calibrations_.begin() + i + 1);
      fast_.valid = true;
      return;
    }
  }

  // Ring-chain transmissions: the expensive spectral product (every ring of
  // a bit row evaluated at every channel wavelength — the crosstalk walk)
  // only changes when the multiply rings are re-biased or detuned, i.e.
  // here or in set_thermal_detuning.
  fast_.chain = build_chain();
  calibrations_.insert(calibrations_.begin(),
                       CalibrationEntry{words, detuning_, fast_.chain});
  fast_.valid = true;
  // Enough slots for every block of a resident model shard plus headroom.
  // Evict drifted (nonzero-detuning) entries first: a wandering detuning
  // key almost never recurs, while the detuning-0 entries are exactly what
  // every post-re-lock reload hits again.
  constexpr std::size_t kMaxCalibrations = 64;
  if (calibrations_.size() > kMaxCalibrations) {
    for (auto it = calibrations_.rbegin(); it != calibrations_.rend(); ++it) {
      if (it->detuning != 0.0) {
        calibrations_.erase(std::next(it).base());
        return;
      }
    }
    calibrations_.pop_back();
  }
}

std::shared_ptr<const std::vector<double>> TensorCore::build_chain() const {
  const std::size_t bits = config_.weight_bits;
  const std::size_t m = config_.macro.channels;
  const std::size_t tiles = macros_per_row();
  auto chain =
      std::make_shared<std::vector<double>>(config_.rows * tiles * bits * m);
  std::size_t idx = 0;
  for (std::size_t row = 0; row < config_.rows; ++row) {
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      for (std::size_t bit = 0; bit < bits; ++bit) {
        for (std::size_t ch = 0; ch < m; ++ch) {
          (*chain)[idx++] = macros_[row][tile].chain_transmission(bit, ch);
        }
      }
    }
  }
  return chain;
}

void TensorCore::set_thermal_detuning(double delta_kelvin) {
  // A stuck heater has no tuning authority: the detuning stays frozen at
  // whatever value it had when the fault hit, and recalibrate() cannot
  // re-lock the core until the fault is cleared.
  if (heater_stuck_) return;
  detuning_ = delta_kelvin;
  for (auto& row : macros_) {
    for (auto& macro : row) {
      macro.set_temperature_offset(delta_kelvin);
    }
  }
  // The probe row shares the die, so ambient drift detunes it identically —
  // that coupling is exactly what makes its transmission a drift sensor.
  for (auto& macro : probe_macros_) {
    macro.set_temperature_offset(delta_kelvin);
  }
  // Refresh the armed fast path at the new operating point so it stays
  // bit-identical to the physics walk (same chain function, same state).
  if (fast_.valid) {
    calibrate_fast_path(loaded_words_);
  }
}

void TensorCore::recalibrate() {
  set_thermal_detuning(0.0);
  ++calibration_epoch_;
}

double TensorCore::probe_transmission() const {
  double current = 0.0;
  for (const VectorComputeMacro& macro : probe_macros_) {
    current += macro.multiply(probe_input_).photocurrent;
  }
  return current / probe_reference_;
}

std::vector<double> TensorCore::probe_response_curve(
    const std::vector<double>& detunings) {
  std::vector<double> out;
  out.reserve(detunings.size());
  for (const double k : detunings) {
    for (auto& macro : probe_macros_) macro.set_temperature_offset(k);
    out.push_back(probe_transmission());
  }
  for (auto& macro : probe_macros_) macro.set_temperature_offset(detuning_);
  return out;
}

double TensorCore::load_weights_normalized(const Matrix& weights) {
  expects(weights.rows() == config_.rows && weights.cols() == config_.cols,
          "weight matrix shape mismatch");
  const double scale = static_cast<double>(max_weight());
  std::vector<std::vector<std::uint32_t>> quantized(
      config_.rows, std::vector<std::uint32_t>(config_.cols));
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      const double w = weights(r, c);
      expects(w >= 0.0 && w <= 1.0, "normalized weights must be in [0, 1]");
      quantized[r][c] = static_cast<std::uint32_t>(std::lround(w * scale));
    }
  }
  return load_weights(quantized);
}

void TensorCore::analog_row_values_physics(const double* input, double* out) {
  const std::size_t m = config_.macro.channels;
  input_scratch_.resize(m);
  for (std::size_t row = 0; row < config_.rows; ++row) {
    double current = 0.0;
    for (std::size_t tile = 0; tile < macros_per_row(); ++tile) {
      input_scratch_.assign(input + tile * m, input + (tile + 1) * m);
      current += macros_[row][tile].multiply(input_scratch_).photocurrent;
    }
    out[row] = current / full_scale_row_current_;
  }
}

void TensorCore::analog_row_values(const double* input, double* out) {
  if (!fast_.valid) {
    analog_row_values_physics(input, out);
    return;
  }

  // Per-sample tap powers q[tile][bit_row][ch]: the encoded channel power
  // after the binary-weighted splitter cascade.  These replay the physics
  // walk's exact operation sequence — encoder transmission, one multiply
  // per splitter stage — and are shared by every output row.
  const std::size_t bits = config_.weight_bits;
  const std::size_t m = config_.macro.channels;
  const std::size_t tiles = macros_per_row();
  tap_scratch_.resize(tiles * bits * m);
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    for (std::size_t ch = 0; ch < m; ++ch) {
      const double x = input[tile * m + ch];
      // Same input-domain contract the physics walk's encoder enforces.
      expects(x >= 0.0 && x <= 1.0,
              "encoded values must be normalized to [0, 1]");
      const double transmission =
          fast_.encoder_floor + (1.0 - fast_.encoder_floor) * x;
      double p = fast_.comb_power * (fast_.encoder_loss * transmission);
      for (std::size_t bit = 0; bit < bits; ++bit) {
        p *= fast_.tap_factor;
        tap_scratch_[(tile * bits + bit) * m + ch] = p;
      }
    }
  }

  // Canonical-order photocurrent sum: channels within a bit row, bit rows
  // within a macro, macro tiles along the row — the same nesting the
  // spectral walk uses, so the accumulation is bit-identical.
  for (std::size_t row = 0; row < config_.rows; ++row) {
    const double* gains = fast_.chain->data() + row * tiles * bits * m;
    double current = 0.0;
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      double power_on_pds = 0.0;
      for (std::size_t bit = 0; bit < bits; ++bit) {
        const double* q = tap_scratch_.data() + (tile * bits + bit) * m;
        const double* g = gains + (tile * bits + bit) * m;
        double row_power = 0.0;
        for (std::size_t ch = 0; ch < m; ++ch) row_power += q[ch] * g[ch];
        power_on_pds += row_power;
      }
      current += fast_.responsivity * power_on_pds;
    }
    out[row] = current / full_scale_row_current_;
  }
}

std::vector<double> TensorCore::multiply_analog(
    const std::vector<double>& input) {
  expects(input.size() == config_.cols, "input length must equal cols");
  std::vector<double> row_values(config_.rows, 0.0);
  analog_row_values(input.data(), row_values.data());
  return row_values;
}

std::vector<unsigned> TensorCore::multiply(const std::vector<double>& input) {
  const std::vector<double> analog = multiply_analog(input);
  std::vector<unsigned> codes(config_.rows, 0);
  for (std::size_t row = 0; row < config_.rows; ++row) {
    // Row TIA maps the full-scale current range onto the ADC input range,
    // scaled by the programmable readout gain.
    const double v_adc =
        analog[row] * readout_gain_ * config_.adc.v_full_scale;
    // A dead ladder clocks its conversion but reads out all-zero codes.
    codes[row] = adc_dead_[row] != 0 ? 0u : adcs_[row].code(v_adc);
    ++adc_conversions_;
    if (codes[row] == adcs_[row].max_code()) ++adc_saturations_;
  }
  ++samples_;
  // One ADC sample window of static power is burned per multiply.
  ledger_.accrue_static(1.0 / adcs_.front().sample_rate());
  return codes;
}

Matrix TensorCore::multiply_analog_batch(const Matrix& inputs) {
  expects(inputs.cols() == config_.cols, "input width must equal cols");
  Matrix out(inputs.rows(), config_.rows);
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    // Matrix storage is row-major, so a sample is a contiguous slice; the
    // analog values land directly in the output row — no per-sample copies.
    analog_row_values(inputs.data().data() + s * inputs.cols(),
                      out.data().data() + s * out.cols());
  }
  return out;
}

Matrix TensorCore::multiply_batch(const Matrix& inputs) {
  expects(inputs.cols() == config_.cols, "input width must equal cols");
  Matrix out(inputs.rows(), config_.rows);
  const double scale = static_cast<double>(adcs_.front().max_code());
  std::vector<double> analog(config_.rows, 0.0);
  const double sample_window = 1.0 / adcs_.front().sample_rate();
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    analog_row_values(inputs.data().data() + s * inputs.cols(), analog.data());
    for (std::size_t r = 0; r < config_.rows; ++r) {
      const double v_adc =
          analog[r] * readout_gain_ * config_.adc.v_full_scale;
      const unsigned code = adc_dead_[r] != 0 ? 0u : adcs_[r].code(v_adc);
      ++adc_conversions_;
      if (code == adcs_[r].max_code()) ++adc_saturations_;
      out(s, r) = static_cast<double>(code) / scale;
    }
    ++samples_;
    ledger_.accrue_static(sample_window);
  }
  return out;
}

std::vector<double> TensorCore::reference(
    const std::vector<double>& input) const {
  expects(input.size() == config_.cols, "input length must equal cols");
  std::vector<double> out(config_.rows, 0.0);
  const double denom = static_cast<double>(config_.cols) *
                       static_cast<double>(max_weight());
  for (std::size_t row = 0; row < config_.rows; ++row) {
    double acc = 0.0;
    for (std::size_t col = 0; col < config_.cols; ++col) {
      acc += input[col] * static_cast<double>(psram_.word(row, col));
    }
    out[row] = acc / denom;
  }
  return out;
}

double TensorCore::ops_per_sample() const {
  // rows dot products of length cols: cols multiplies + cols additions each.
  return static_cast<double>(config_.rows) * 2.0 *
         static_cast<double>(config_.cols);
}

double TensorCore::throughput_ops() const {
  return ops_per_sample() * adcs_.front().sample_rate();
}

TensorCore::PowerBreakdown TensorCore::breakdown() const {
  PowerBreakdown b;
  const auto rows = static_cast<double>(config_.rows);
  b.adc = rows * adcs_.front().total_power();
  b.row_tia = rows * config_.row_tia.power;
  // Comb lines are broadcast across rows: one line per column channel.
  b.comb_laser = static_cast<double>(config_.cols) *
                 config_.macro.comb_power_per_line /
                 config_.wall_plug_efficiency;
  b.psram_hold = psram_.hold_wall_power();
  // Weight streaming: all rows write in parallel, one cell per slot each.
  const double write_events_per_second =
      rows * config_.psram.write_rate * config_.weight_update_duty;
  b.weight_update = write_events_per_second * config_.psram.write_energy;
  b.control = config_.control_power;
  return b;
}

double TensorCore::power() const { return breakdown().total(); }

double TensorCore::tops_per_watt() const {
  return throughput_ops() / power();
}

void TensorCore::set_readout_gain(double gain) {
  expects(gain > 0.0, "readout gain must be positive");
  readout_gain_ = gain;
}

EoAdc& TensorCore::adc(std::size_t row) {
  expects(row < adcs_.size(), "row index out of range");
  return adcs_[row];
}

void TensorCore::refresh_fast_path() {
  calibrations_.clear();
  if (config_.fast_path && !loaded_words_.empty()) {
    calibrate_fast_path(loaded_words_);
  }
}

void TensorCore::inject_ring_fault(std::size_t row, std::size_t col,
                                   unsigned bit, RingFaultKind kind) {
  expects(row < config_.rows && col < config_.cols,
          "ring coordinates out of range");
  const std::size_t m = config_.macro.channels;
  macros_[row][col / m].set_ring_fault(bit, col % m, kind);
  refresh_fast_path();
}

void TensorCore::inject_ring_faults(const std::vector<RingFaultSite>& sites) {
  const std::size_t m = config_.macro.channels;
  for (const RingFaultSite& site : sites) {
    expects(site.row < config_.rows && site.col < config_.cols,
            "ring coordinates out of range");
    macros_[site.row][site.col / m].set_ring_fault(site.bit, site.col % m,
                                                   site.kind);
  }
  refresh_fast_path();
}

void TensorCore::inject_stuck_heater() { heater_stuck_ = true; }

void TensorCore::inject_adc_fault(std::size_t row) {
  expects(row < config_.rows, "row index out of range");
  adc_dead_[row] = 1;
}

bool TensorCore::adc_faulted(std::size_t row) const {
  expects(row < config_.rows, "row index out of range");
  return adc_dead_[row] != 0;
}

std::size_t TensorCore::adc_fault_count() const {
  std::size_t count = 0;
  for (const std::uint8_t dead : adc_dead_) count += dead != 0 ? 1 : 0;
  return count;
}

std::size_t TensorCore::ring_fault_count() const {
  std::size_t count = 0;
  for (const auto& row : macros_) {
    for (const VectorComputeMacro& macro : row) {
      count += macro.ring_fault_count();
    }
  }
  return count;
}

void TensorCore::clear_faults() {
  for (auto& row : macros_) {
    for (VectorComputeMacro& macro : row) macro.clear_ring_faults();
  }
  std::fill(adc_dead_.begin(), adc_dead_.end(), 0);
  heater_stuck_ = false;
  refresh_fast_path();
}

TensorCore::SelfTestResult TensorCore::self_test(std::size_t samples,
                                                 std::uint64_t seed) {
  expects(samples >= 1, "self-test needs at least one probe vector");
  if (loaded_words_.empty()) {
    // Nothing resident: program a checkerboard BIST pattern so the probes
    // exercise every ring row in both bit polarities.
    std::vector<std::vector<std::uint32_t>> pattern(
        config_.rows, std::vector<std::uint32_t>(config_.cols));
    for (std::size_t r = 0; r < config_.rows; ++r) {
      for (std::size_t c = 0; c < config_.cols; ++c) {
        pattern[r][c] = (r + c) % 2 == 0 ? max_weight() : max_weight() >> 1;
      }
    }
    load_weights(pattern);
  }

  SelfTestResult result;
  Rng rng(seed);
  std::vector<double> input(config_.cols);
  std::vector<unsigned> row_max_code(config_.rows, 0);
  std::vector<double> row_max_analog(config_.rows, 0.0);
  for (std::size_t s = 0; s < samples; ++s) {
    for (double& x : input) x = rng.uniform();
    const std::vector<double> analog = multiply_analog(input);
    const std::vector<unsigned> codes = multiply(input);
    const std::vector<double> ref = reference(input);
    for (std::size_t r = 0; r < config_.rows; ++r) {
      const double err = std::abs(analog[r] - ref[r]);
      if (err > result.max_row_error) result.max_row_error = err;
      if (codes[r] > row_max_code[r]) row_max_code[r] = codes[r];
      if (analog[r] > row_max_analog[r]) row_max_analog[r] = analog[r];
    }
  }
  // A ladder is stuck when its codes pin at zero while the analog value it
  // should quantize clears 1.5 LSB — beyond any healthy quantization floor
  // or reference-ladder mismatch.
  const double lsb =
      1.0 / static_cast<double>(adcs_.front().max_code()) / readout_gain_;
  for (std::size_t r = 0; r < config_.rows; ++r) {
    if (row_max_code[r] == 0 && row_max_analog[r] > 1.5 * lsb) {
      ++result.stuck_adc_rows;
    }
  }
  result.psram_failed_cells = psram_.failed_cells();
  result.endurance_remaining = psram_.endurance_remaining();
  result.heater_locked = !heater_stuck_;
  return result;
}

}  // namespace ptc::core
