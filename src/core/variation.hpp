#ifndef PTC_CORE_VARIATION_HPP
#define PTC_CORE_VARIATION_HPP

#include <cstdint>

#include "common/rng.hpp"

/// Device-to-device variation model for the photonic tensor core.
///
/// A fabricated fleet is never a pool of identical dies: microring radius /
/// sidewall roughness spread the resonance wavelengths, etch depth spreads
/// the coupling gaps, loss spreads the loaded Q, the pSRAM drive levels
/// carry per-cell offsets, and the eoADC reference ladders mismatch.  The
/// Monte-Carlo ablation (`bench/ablation_variation`) samples these effects
/// one device at a time; this header is the *fleet-scale* counterpart: a
/// seeded, reproducible sampler that perturbs every ring of every macro of
/// every core at construction, so the runtime and the serving loop operate
/// on a realistically heterogeneous pool instead of a cloned ideal device.
///
/// Seeding discipline (see common/rng.hpp): one fleet-level seed fans out
/// through Rng::split into per-core streams, which fan out into per-macro
/// streams; each ring then draws its deviations in a fixed order.  Equal
/// seeds therefore reproduce the exact same fleet on every platform, and
/// distinct cores/macros are statistically independent.
namespace ptc::core {

/// Spreads are fractional (dimensionless 1-sigma) unless a unit is given.
/// A zero `seed` disables variation entirely — the pristine design device.
struct VariationConfig {
  std::uint64_t seed = 0;        ///< 0 = pristine device, no variation
  /// Fabrication resonance error of each multiply ring, 1-sigma [m]
  /// (radius / sidewall spread expressed as a resonance shift; the paper's
  /// heater trim budget is a few tens of pm).
  double resonance_sigma = 2e-12;
  /// Fractional spread of the propagation loss — spreads the loaded Q.
  double q_spread = 0.02;
  /// Fractional spread of the coupling gaps (etch depth variation).
  double coupling_spread = 0.01;
  /// pSRAM drive-level noise seen by each multiply ring's bias line,
  /// 1-sigma [V] (stored-level + DAC offsets).
  double psram_level_sigma = 5e-3;
  /// Fractional spread of each ring's thermo-optic sensitivity
  /// (dlambda/dT); makes thermal drift strike every ring differently.
  double thermal_sensitivity_spread = 0.05;
  /// eoADC reference-ladder mismatch, 1-sigma [V]; forwarded into
  /// EoAdcConfig::vref_mismatch_sigma with a per-row seed.
  double adc_vref_sigma = 0.0;
};

/// Seeded sampler of per-ring deviations.  Pure: the same (config, rng
/// state) always yields the same deviations.
class VariationModel {
 public:
  explicit VariationModel(const VariationConfig& config);

  /// One multiply ring's sampled deviation from design.
  struct RingDeviation {
    double resonance_error = 0.0;  ///< [m], added to the ring's fab error
    double loss_scale = 1.0;       ///< multiplies loss_db_per_cm (Q spread)
    double coupling_scale = 1.0;   ///< multiplies both coupling gaps
    double bias_offset = 0.0;      ///< [V], static pSRAM drive-level error
    double thermal_scale = 1.0;    ///< multiplies dlambda_dt
  };

  /// Draws the next ring's deviation from `rng` (fixed draw order — five
  /// normals — so streams stay aligned across platforms).  Scale factors
  /// are clamped away from zero so an extreme tail cannot produce an
  /// unphysical device.
  RingDeviation sample_ring(Rng& rng) const;

  bool enabled() const { return config_.seed != 0; }
  const VariationConfig& config() const { return config_; }

  /// Child seed for stream `index` of the fleet/device seeded by
  /// `config.seed` — per-core streams at the accelerator level, per-macro
  /// and per-row-ADC streams inside a core.  Never zero, so a varied
  /// parent cannot spawn a pristine child by accident.
  std::uint64_t child_seed(std::size_t index) const;

 private:
  VariationConfig config_;
};

}  // namespace ptc::core

#endif  // PTC_CORE_VARIATION_HPP
