#ifndef PTC_CORE_EOADC_HPP
#define PTC_CORE_EOADC_HPP

#include <cstdint>
#include <vector>

#include "circuit/amplifier.hpp"
#include "circuit/rom_decoder.hpp"
#include "circuit/tia.hpp"
#include "core/tech.hpp"
#include "optics/microring.hpp"
#include "optics/photodiode.hpp"
#include "sim/trace.hpp"

/// 1-hot encoding electro-optic ADC (eoADC) — paper Sec. II-C / Figs. 3, 8,
/// 9, 10.
///
/// A p-bit converter uses 2^p microrings.  Ring k's pn junction sees
/// V_pn = V_REF,k - V_IN with V_REF,k = (k + 1/2) * LSB, so ring k sits on
/// resonance at the input wavelength exactly when V_IN is inside bin k.  A
/// balanced photodiode compares each ring's thru power against an 18 uW
/// reference: on resonance the thru power collapses below the reference and
/// the summing node Qp discharges — only *one* thresholding block activates
/// per conversion (1-hot), the property that lets the eoADC avoid the
/// 2^p - 1 simultaneous comparator firings of a thermometer-coded flash.
///
/// An inverter-based TIA plus a cascaded voltage amplifier restore Qp's
/// small swing to a rail-to-rail level within the 125 ps conversion window
/// (8 GS/s); removing them leaves Qp to slew the full logic swing itself,
/// reproducing the paper's amplifier-less operating point (416.7 MS/s at 58%
/// lower electrical power).  A ceiling-priority ROM decoder resolves the
/// deliberate overlap between adjacent activation windows (paper Fig. 9,
/// V_IN = 2 V activates B4 *and* B5, decoded as 100).
///
/// Quantization geometry (derived in DESIGN.md from the paper's transient
/// cases): V_FS = 4.0 V, LSB = 0.5 V; activation window half-width
/// ~0.26 V > LSB/2, so windows overlap only at bin boundaries.
namespace ptc::core {

struct EoAdcConfig {
  unsigned bits = 3;
  double v_full_scale = 4.0;            ///< [V] (see DESIGN.md)
  double input_power_per_ring = 200e-6; ///< [W] (paper: 200 uW)
  double reference_power = 18e-6;       ///< [W] per channel (paper: 18 uW)
  /// Deliberate sense asymmetry: a channel activates when its thru power is
  /// below trip_offset_ratio * reference_power.  >1 guarantees adjacent
  /// double-activation at exact bin boundaries (resolved by the ceiling
  /// decoder) instead of dead zones.
  double trip_offset_ratio = 1.08;
  double qp_capacitance = 50e-15;       ///< balanced-PD summing node [F]
  /// Qp logic-low level that the amplifier-less mode must reach [V].
  double no_amp_low_level = 0.1;
  /// Conversion-window safety margin for the amplifier-less mode.
  double no_amp_margin = 1.18;
  optics::PhotodiodeConfig photodiode{};
  circuit::InverterTiaConfig tia{};        ///< 0.5 mW/channel default
  circuit::VoltageAmpConfig amplifier{};   ///< 0.3 mW/channel default
  circuit::RomDecoderConfig rom{};
  double decoder_static_power = 1.62e-3;   ///< [W]
  double clock_power = 3.0e-3;             ///< S/H + clock distribution [W]
  bool use_amplifier_chain = true;         ///< false = low-power slow mode
  double sample_rate_with_amps = 8e9;      ///< [Hz] (paper: 8 GS/s)
  /// Reference-ladder mismatch (std-dev, volts); 0 = ideal ladder.
  double vref_mismatch_sigma = 0.0;
  std::uint64_t mismatch_seed = 1;
  double wall_plug_efficiency = tech_wall_plug;
  double dt = 0.25e-12;                    ///< transient timestep [s]
};

class EoAdc {
 public:
  explicit EoAdc(const EoAdcConfig& config = {});

  unsigned bits() const { return config_.bits; }
  std::size_t channel_count() const { return std::size_t{1} << config_.bits; }
  double lsb() const;
  unsigned max_code() const { return (1u << config_.bits) - 1; }

  /// Reference voltage of channel `ch` (bin centre), including any sampled
  /// ladder mismatch [V].
  double reference_voltage(std::size_t ch) const;

  /// Thru-port optical power of channel `ch`'s ring for a given input [W]
  /// (the Fig. 8 characteristic).
  double channel_thru_power(std::size_t ch, double v_in) const;

  /// Channel activation pattern for a given input (static model).
  std::vector<bool> channel_activations(double v_in) const;

  struct Conversion {
    unsigned code = 0;
    bool any_active = false;
    bool boundary = false;  ///< two adjacent channels fired (ceiling applied)
    bool fault = false;
    std::vector<bool> active;
  };

  /// Static (settled) conversion.
  Conversion convert(double v_in);

  /// Shorthand for convert(v).code.
  unsigned code(double v_in);

  struct TransientResult {
    Conversion conversion;
    double decision_time = 0.0;  ///< time until the output code is final [s]
    bool completed = false;      ///< decided within the conversion window
  };

  /// Full transient conversion: ring/PD dynamics, Qp integration, TIA +
  /// amplifier chain, ROM decode at the end of the sampling window.
  /// Waveforms (qp_k, b_k) are recorded when `traces` is given (Fig. 9).
  TransientResult convert_transient(double v_in,
                                    sim::TraceSet* traces = nullptr);

  /// Code transition voltages (2^p - 1 edges), located by bisection on the
  /// static conversion.
  std::vector<double> code_edges();

  struct Linearity {
    std::vector<double> code_edges;
    std::vector<double> dnl;  ///< per inner code, in LSB
    std::vector<double> inl;  ///< per edge, in LSB (endpoint-fit)
    double max_abs_dnl = 0.0;
    double max_abs_inl = 0.0;
    bool missing_codes = false;
  };

  /// Transfer-function linearity (Fig. 10): DNL/INL from measured edges.
  Linearity linearity();

  // --- power / energy -------------------------------------------------------
  /// Optical power delivered on chip: 2^p * (input + reference) [W].
  double optical_power_delivered() const;
  /// Wall-plug optical power [W] (paper: 7.58 mW).
  double optical_wall_power() const;
  /// Electrical power in the current mode [W] (paper: 11 mW with amps).
  double electrical_power() const;
  /// optical_wall_power + electrical_power [W].
  double total_power() const;
  /// Sample rate in the current mode [Hz].
  double sample_rate() const;
  /// total_power / sample_rate [J] (paper: 2.32 pJ with amps).
  double energy_per_conversion() const;

  const EoAdcConfig& config() const { return config_; }

 private:
  double ring_thru_transmission(std::size_t ch, double v_in) const;
  double activation_threshold_power() const;

  EoAdcConfig config_;
  /// Bias is evaluation scratch state (set per query from V_REF - V_IN), so
  /// spectral queries remain logically const.
  mutable std::vector<optics::Microring> rings_;
  std::vector<double> vref_;
  optics::Photodiode photodiode_;
  circuit::CeilingRomDecoder decoder_;
};

}  // namespace ptc::core

#endif  // PTC_CORE_EOADC_HPP
