#include "sim/montecarlo.hpp"

#include "common/expects.hpp"
#include "common/statistics.hpp"

namespace ptc::sim {

MonteCarloSummary run_monte_carlo(std::size_t n, std::uint64_t base_seed,
                                  const std::function<double(Rng&)>& trial,
                                  const std::function<bool(double)>& pass) {
  expects(n >= 1, "monte carlo requires at least one trial");
  expects(static_cast<bool>(trial), "trial function must be callable");

  MonteCarloSummary summary;
  summary.trials = n;
  summary.samples.reserve(n);
  std::size_t passed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Decorrelate per-trial streams with a SplitMix-style seed scramble.
    Rng rng(base_seed + 0x9e3779b97f4a7c15ull * (i + 1));
    const double metric = trial(rng);
    summary.samples.push_back(metric);
    if (!pass || pass(metric)) ++passed;
  }
  summary.mean = mean(summary.samples);
  summary.std_dev = summary.samples.size() >= 2 ? stddev(summary.samples) : 0.0;
  summary.min = min_of(summary.samples);
  summary.max = max_of(summary.samples);
  summary.yield = static_cast<double>(passed) / static_cast<double>(n);
  return summary;
}

}  // namespace ptc::sim
