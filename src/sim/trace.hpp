#ifndef PTC_SIM_TRACE_HPP
#define PTC_SIM_TRACE_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

/// Waveform recording for transient simulations (pSRAM writes, eoADC
/// conversions) with the query helpers the verification figures need:
/// threshold crossings, settling checks, and CSV export.
namespace ptc::sim {

/// A single named waveform: (time, value) samples in non-decreasing time
/// order.
class Trace {
 public:
  void record(double t, double value);

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  /// Linear interpolated value at time t (clamped to the record window).
  double value_at(double t) const;

  double final_value() const;
  double min_value() const;
  double max_value() const;

  /// First time the waveform crosses `level` in the given direction at or
  /// after `t_after`; nullopt when it never does.
  std::optional<double> first_crossing(double level, bool rising,
                                       double t_after = 0.0) const;

  /// True when every sample at or after t_after stays within +-tol of level.
  bool settled_at(double level, double tol, double t_after) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

/// A bundle of named traces sharing a time axis (not enforced), with CSV
/// export for replotting the paper's transient figures.
class TraceSet {
 public:
  /// Returns the trace for `name`, creating it on first use.
  Trace& at(const std::string& name) { return traces_[name]; }

  /// Read-only lookup; throws std::invalid_argument for unknown names.
  const Trace& get(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Writes all traces resampled onto the union time axis as CSV columns.
  void write_csv(const std::string& path) const;

 private:
  std::map<std::string, Trace> traces_;
};

}  // namespace ptc::sim

#endif  // PTC_SIM_TRACE_HPP
