#ifndef PTC_SIM_MONTECARLO_HPP
#define PTC_SIM_MONTECARLO_HPP

#include <functional>
#include <vector>

#include "common/rng.hpp"

/// Monte-Carlo harness for fabrication/thermal variation studies: each trial
/// receives an independently-seeded deterministic RNG, so experiments are
/// reproducible and trials are statistically independent.
namespace ptc::sim {

struct MonteCarloSummary {
  std::size_t trials = 0;
  double mean = 0.0;
  double std_dev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Fraction of trials whose metric satisfied the caller's pass predicate
  /// (1.0 when no predicate was supplied).
  double yield = 1.0;
  std::vector<double> samples;
};

/// Runs `trial` n times; each call gets a fresh RNG derived from base_seed.
MonteCarloSummary run_monte_carlo(
    std::size_t n, std::uint64_t base_seed,
    const std::function<double(Rng&)>& trial,
    const std::function<bool(double)>& pass = nullptr);

}  // namespace ptc::sim

#endif  // PTC_SIM_MONTECARLO_HPP
