#ifndef PTC_SIM_SWEEP_HPP
#define PTC_SIM_SWEEP_HPP

#include <functional>
#include <vector>

#include "runtime/thread_pool.hpp"

/// Parameter sweep helpers for the bench harness: run a metric across a grid
/// and collect (parameter, value) records.  The *_parallel variants fan the
/// grid out across a runtime::ThreadPool; the metric must be safe to call
/// concurrently (give each evaluation its own Rng / device instances — see
/// Rng::split), and results come back in grid order regardless of which
/// thread computed them.
namespace ptc::sim {

struct SweepPoint {
  double parameter;
  double value;
};

/// Evaluates `metric` at every value in `grid`.
inline std::vector<SweepPoint> sweep_1d(
    const std::vector<double>& grid,
    const std::function<double(double)>& metric) {
  std::vector<SweepPoint> out;
  out.reserve(grid.size());
  for (double p : grid) out.push_back({p, metric(p)});
  return out;
}

struct SweepPoint2d {
  double parameter_a;
  double parameter_b;
  double value;
};

/// Evaluates `metric` over the cartesian product grid_a x grid_b.
inline std::vector<SweepPoint2d> sweep_2d(
    const std::vector<double>& grid_a, const std::vector<double>& grid_b,
    const std::function<double(double, double)>& metric) {
  std::vector<SweepPoint2d> out;
  out.reserve(grid_a.size() * grid_b.size());
  for (double a : grid_a)
    for (double b : grid_b) out.push_back({a, b, metric(a, b)});
  return out;
}

/// Parallel sweep_1d: evaluates every grid point across the pool.
inline std::vector<SweepPoint> sweep_1d_parallel(
    runtime::ThreadPool& pool, const std::vector<double>& grid,
    const std::function<double(double)>& metric) {
  std::vector<SweepPoint> out(grid.size());
  pool.parallel_for(0, grid.size(), [&](std::size_t i) {
    out[i] = {grid[i], metric(grid[i])};
  });
  return out;
}

/// Parallel sweep_2d over the cartesian product grid_a x grid_b; output
/// order matches sweep_2d (a-major).
inline std::vector<SweepPoint2d> sweep_2d_parallel(
    runtime::ThreadPool& pool, const std::vector<double>& grid_a,
    const std::vector<double>& grid_b,
    const std::function<double(double, double)>& metric) {
  std::vector<SweepPoint2d> out(grid_a.size() * grid_b.size());
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    const double a = grid_a[i / grid_b.size()];
    const double b = grid_b[i % grid_b.size()];
    out[i] = {a, b, metric(a, b)};
  });
  return out;
}

}  // namespace ptc::sim

#endif  // PTC_SIM_SWEEP_HPP
