#ifndef PTC_SIM_SWEEP_HPP
#define PTC_SIM_SWEEP_HPP

#include <functional>
#include <vector>

/// Parameter sweep helpers for the bench harness: run a metric across a grid
/// and collect (parameter, value) records.
namespace ptc::sim {

struct SweepPoint {
  double parameter;
  double value;
};

/// Evaluates `metric` at every value in `grid`.
inline std::vector<SweepPoint> sweep_1d(
    const std::vector<double>& grid,
    const std::function<double(double)>& metric) {
  std::vector<SweepPoint> out;
  out.reserve(grid.size());
  for (double p : grid) out.push_back({p, metric(p)});
  return out;
}

struct SweepPoint2d {
  double parameter_a;
  double parameter_b;
  double value;
};

/// Evaluates `metric` over the cartesian product grid_a x grid_b.
inline std::vector<SweepPoint2d> sweep_2d(
    const std::vector<double>& grid_a, const std::vector<double>& grid_b,
    const std::function<double(double, double)>& metric) {
  std::vector<SweepPoint2d> out;
  out.reserve(grid_a.size() * grid_b.size());
  for (double a : grid_a)
    for (double b : grid_b) out.push_back({a, b, metric(a, b)});
  return out;
}

}  // namespace ptc::sim

#endif  // PTC_SIM_SWEEP_HPP
