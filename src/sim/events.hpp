#ifndef PTC_SIM_EVENTS_HPP
#define PTC_SIM_EVENTS_HPP

#include <vector>

/// Time-domain stimulus sources for transient simulations.
namespace ptc::sim {

/// Rectangular pulse train: value_at(t) returns the amplitude of the pulse
/// covering t, or the baseline when none does.  Pulses may have individual
/// amplitudes (optical write pulses, clock gates, input steps).
class PulseSchedule {
 public:
  explicit PulseSchedule(double baseline = 0.0) : baseline_(baseline) {}

  /// Adds a pulse over [start, start + width) with the given amplitude.
  void add_pulse(double start, double width, double amplitude);

  double value_at(double t) const;

  double baseline() const { return baseline_; }
  std::size_t pulse_count() const { return pulses_.size(); }

  /// End time of the latest pulse (baseline-only schedules return 0).
  double last_event_time() const;

 private:
  struct Pulse {
    double start;
    double width;
    double amplitude;
  };
  double baseline_;
  std::vector<Pulse> pulses_;
};

/// Piecewise-linear source defined by (time, value) knots; clamps at the
/// extremes.  Used for analog ramps (ADC transfer-function sweeps).
class PiecewiseLinearSource {
 public:
  /// Knots must be provided in strictly increasing time order.
  void add_knot(double t, double value);

  double value_at(double t) const;

  std::size_t knot_count() const { return times_.size(); }

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace ptc::sim

#endif  // PTC_SIM_EVENTS_HPP
