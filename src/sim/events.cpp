#include "sim/events.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "common/interp.hpp"

namespace ptc::sim {

void PulseSchedule::add_pulse(double start, double width, double amplitude) {
  expects(width > 0.0, "pulse width must be positive");
  pulses_.push_back({start, width, amplitude});
}

double PulseSchedule::value_at(double t) const {
  for (const auto& p : pulses_) {
    if (t >= p.start && t < p.start + p.width) return p.amplitude;
  }
  return baseline_;
}

double PulseSchedule::last_event_time() const {
  double last = 0.0;
  for (const auto& p : pulses_) last = std::max(last, p.start + p.width);
  return last;
}

void PiecewiseLinearSource::add_knot(double t, double value) {
  expects(times_.empty() || t > times_.back(),
          "knots must be strictly increasing in time");
  times_.push_back(t);
  values_.push_back(value);
}

double PiecewiseLinearSource::value_at(double t) const {
  expects(!times_.empty(), "source has no knots");
  if (times_.size() == 1) return values_.front();
  return interp_table(times_, values_, t);
}

}  // namespace ptc::sim
