#include "sim/trace.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/expects.hpp"
#include "common/interp.hpp"

namespace ptc::sim {

void Trace::record(double t, double value) {
  expects(times_.empty() || t >= times_.back(),
          "trace samples must be recorded in time order");
  times_.push_back(t);
  values_.push_back(value);
}

double Trace::value_at(double t) const {
  expects(!times_.empty(), "trace is empty");
  if (times_.size() == 1 || t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  return interp_table(times_, values_, t);
}

double Trace::final_value() const {
  expects(!values_.empty(), "trace is empty");
  return values_.back();
}

double Trace::min_value() const {
  expects(!values_.empty(), "trace is empty");
  return *std::min_element(values_.begin(), values_.end());
}

double Trace::max_value() const {
  expects(!values_.empty(), "trace is empty");
  return *std::max_element(values_.begin(), values_.end());
}

std::optional<double> Trace::first_crossing(double level, bool rising,
                                            double t_after) const {
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] < t_after) continue;
    const double prev = values_[i - 1];
    const double curr = values_[i];
    const bool crossed = rising ? (prev < level && curr >= level)
                                : (prev > level && curr <= level);
    if (crossed) {
      // Interpolate the crossing instant within the step.
      const double frac = (level - prev) / (curr - prev);
      return times_[i - 1] + frac * (times_[i] - times_[i - 1]);
    }
  }
  return std::nullopt;
}

bool Trace::settled_at(double level, double tol, double t_after) const {
  expects(!times_.empty(), "trace is empty");
  bool saw_any = false;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] < t_after) continue;
    saw_any = true;
    if (values_[i] < level - tol || values_[i] > level + tol) return false;
  }
  return saw_any;
}

const Trace& TraceSet::get(const std::string& name) const {
  const auto it = traces_.find(name);
  if (it == traces_.end())
    throw std::invalid_argument("unknown trace: " + name);
  return it->second;
}

bool TraceSet::contains(const std::string& name) const {
  return traces_.find(name) != traces_.end();
}

std::vector<std::string> TraceSet::names() const {
  std::vector<std::string> out;
  out.reserve(traces_.size());
  for (const auto& [name, trace] : traces_) out.push_back(name);
  return out;
}

void TraceSet::write_csv(const std::string& path) const {
  expects(!traces_.empty(), "no traces to write");
  std::set<double> time_axis;
  for (const auto& [name, trace] : traces_) {
    time_axis.insert(trace.times().begin(), trace.times().end());
  }
  std::vector<std::string> columns{"time"};
  for (const auto& [name, trace] : traces_) columns.push_back(name);
  CsvWriter csv(columns);
  for (double t : time_axis) {
    std::vector<double> row{t};
    for (const auto& [name, trace] : traces_) row.push_back(trace.value_at(t));
    csv.add_row(row);
  }
  csv.write_file(path);
}

}  // namespace ptc::sim
