#ifndef PTC_GRAPH_COMPILE_HPP
#define PTC_GRAPH_COMPILE_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "graph/ir.hpp"

namespace ptc::nn {
class WeightPlanCache;
}  // namespace ptc::nn

/// Lowering pass pipeline: Graph -> CompiledGraph, a flat schedule of steps
/// the executor interprets against any nn::MatmulBackend (and the serve
/// layer costs against the accelerator fleet).
///
/// Lowering rules:
///  - `matmul` becomes a kMatmul step: one tiled weight-matrix product on
///    the accelerator (ceil(k/tile_k) * ceil(m/tile_m) weight-tile passes,
///    doubled under differential encoding).
///  - `conv2d` becomes a kConv2d step: im2col gathers every output position
///    of every sample into one stacked activation matrix, so the whole
///    batch streams through each kernel-tile residency in a single pass —
///    the conv lowering that maximizes the paper's reload amortization
///    (positions-per-sample rows per request instead of 1).
///  - `matmul_pair` becomes a kMatmulPair step: the second *activation* is
///    loaded as the weight matrix, per sample, so attention's Q K^T and
///    P V products stream through the exact tiling/fast-path machinery
///    weight matmuls use — at the price of an always-cold residency (the
///    "weights" change every dispatch, so nothing can stay warm).
///  - elementwise ops (`bias`, `relu`, `add`, `softmax`, `layernorm`,
///    `gelu`, `causal_mask`) are FUSED into the producing step's epilogue
///    whenever they are the sole consumer chain; they cost no extra
///    accelerator passes.  An elementwise op without a fusable producer
///    (e.g. directly on the input) lowers to a host-side kElementwise step.
///  - `maxpool` is a host-side kMaxPool step (data marshalling between
///    accelerator passes), `embedding` / `slice` / `concat` are host-side
///    gathers, and `flatten` disappears entirely: storage is already flat,
///    so it only rewrites the value's shape metadata.
/// Nodes not reachable from the output are dead code and emit nothing.
namespace ptc::graph {

/// One fused elementwise operation applied in a step's epilogue, in order.
struct EpilogueOp {
  enum class Kind {
    kBias,
    kRelu,
    kSoftmax,
    kResidual,
    kGelu,
    kLayerNorm,
    kCausalMask,
  };
  Kind kind = Kind::kRelu;
  std::vector<double> bias;       ///< kBias / kLayerNorm: per-channel addends
  std::vector<double> gain;       ///< kLayerNorm: per-channel scales
  std::size_t residual_slot = 0;  ///< kResidual: value slot added in
  double scale = 1.0;             ///< kCausalMask: pre-mask score scale
};

/// One schedule step.  kMatmul / kConv2d / kMatmulPair run on the
/// accelerator backend; kMaxPool / kEmbedding / kSlice / kConcat /
/// kElementwise are host-side data marshalling.
struct Step {
  enum class Kind {
    kMatmul,
    kConv2d,
    kMaxPool,
    kElementwise,
    kMatmulPair,
    kEmbedding,
    kSlice,
    kConcat,
  };
  Kind kind = Kind::kElementwise;

  std::size_t input_slot = 0;   ///< value slot consumed
  std::size_t output_slot = 0;  ///< value slot produced
  Shape in_shape;               ///< shape of the consumed value
  Shape out_shape;              ///< shape after the step + its epilogue

  Matrix weights;          ///< kMatmul: k x m; kConv2d: (k*k*c_in) x c_out;
                           ///< kEmbedding: vocab x d token table
  Matrix weights2;         ///< kEmbedding: positional table (may be 0x0)
  std::size_t kernel = 0;  ///< kConv2d: square kernel side
  std::size_t pool = 0;    ///< kMaxPool: window == stride
  std::size_t rhs_slot = 0;   ///< kMatmulPair: slot of the second activation
  bool transpose_b = false;   ///< kMatmulPair: stream A B^T
  std::size_t offset = 0;     ///< kSlice: first innermost index taken
  std::vector<std::size_t> extra_slots;  ///< kConcat: slots after input_slot

  /// Accelerator steps whose streamed activation can be negative (layernorm
  /// / GELU / embedding outputs).  The photonic input is intensity-encoded
  /// (non-negative), so the executor splits x = x+ - x- and streams both
  /// halves through the same weight plan — twice the rows, digitally
  /// recombined.  Derived at compile time from a non-negativity lattice
  /// (inputs, relu and softmax outputs are provably non-negative), so
  /// existing MLP/CNN schedules keep the single-stream path bit-for-bit.
  bool signed_input = false;

  std::vector<EpilogueOp> epilogue;  ///< fused elementwise tail, in order
  std::string label;                 ///< e.g. "conv2d 3x3 -> 6ch +bias +relu"

  /// Weight-plan cache for this step's (immutable) weights, created at
  /// compile time for accelerator steps.  The executor hands it to the
  /// backend so the signed mapping, pass list, and encoded unit-weight
  /// blocks are built once per weight version instead of once per batch —
  /// serving steady-state does zero re-planning and zero re-encoding.
  /// Shared (not deep-copied) when the compiled graph is copied: the cache
  /// is keyed by weight contents, so sharing is always safe.
  std::shared_ptr<nn::WeightPlanCache> plan_cache;

  bool on_accelerator() const {
    return kind == Kind::kMatmul || kind == Kind::kConv2d ||
           kind == Kind::kMatmulPair;
  }

  /// Matmul rows one sample streams through this step: im2col positions for
  /// kConv2d, sequence positions for rank-2 kMatmul / kMatmulPair, 1 for a
  /// rank-1 kMatmul — doubled when signed_input streams the differential
  /// x+ / x- halves.
  std::size_t rows_per_sample() const;

  /// Effective weight-matrix geometry streamed on the accelerator: the
  /// static weights for kMatmul / kConv2d, the second activation (as
  /// loaded, i.e. transposed for A B^T) for kMatmulPair.
  std::size_t weight_rows() const;
  std::size_t weight_cols() const;
};

/// Weight-tile residency footprint of one accelerator step, for a given
/// core geometry — the metadata the serve layer's warm/resident accounting
/// consumes.
struct StepPasses {
  std::size_t step = 0;             ///< index into CompiledGraph::steps
  std::size_t passes = 0;           ///< weight-tile residencies per dispatch
  std::size_t rows_per_sample = 1;  ///< matmul rows streamed per request row
};

struct PassProfile {
  std::vector<StepPasses> steps;  ///< accelerator steps in schedule order
  std::size_t total_passes = 0;   ///< simultaneous residencies of one dispatch
};

/// The flat schedule plus everything needed to execute and cost it.
struct CompiledGraph {
  std::vector<Step> steps;
  Shape input_shape;
  Shape output_shape;
  std::size_t num_slots = 0;    ///< value slots the executor allocates
  std::size_t output_slot = 0;  ///< slot holding the graph result

  std::size_t input_size() const { return input_shape.size(); }
  std::size_t output_size() const { return output_shape.size(); }

  /// Residency metadata for cores with tile_m rows x tile_k cols, mirroring
  /// nn::plan_tiled_matmul's tile counts (doubled under differential
  /// weight encoding).
  PassProfile pass_profile(std::size_t tile_m, std::size_t tile_k,
                           bool differential) const;

  /// Printable per-pass schedule for the same geometry: one line per step
  /// with its tile passes and streamed rows.
  std::string schedule_dump(std::size_t tile_m, std::size_t tile_k,
                            bool differential) const;
};

/// Lowers `g` (see the rules above).  Pure function of the graph.
CompiledGraph compile(const Graph& g);

}  // namespace ptc::graph

#endif  // PTC_GRAPH_COMPILE_HPP
