#ifndef PTC_GRAPH_COMPILE_HPP
#define PTC_GRAPH_COMPILE_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "graph/ir.hpp"

namespace ptc::nn {
class WeightPlanCache;
}  // namespace ptc::nn

/// Lowering pass pipeline: Graph -> CompiledGraph, a flat schedule of steps
/// the executor interprets against any nn::MatmulBackend (and the serve
/// layer costs against the accelerator fleet).
///
/// Lowering rules:
///  - `matmul` becomes a kMatmul step: one tiled weight-matrix product on
///    the accelerator (ceil(k/tile_k) * ceil(m/tile_m) weight-tile passes,
///    doubled under differential encoding).
///  - `conv2d` becomes a kConv2d step: im2col gathers every output position
///    of every sample into one stacked activation matrix, so the whole
///    batch streams through each kernel-tile residency in a single pass —
///    the conv lowering that maximizes the paper's reload amortization
///    (positions-per-sample rows per request instead of 1).
///  - elementwise ops (`bias`, `relu`, `add`, `softmax`) are FUSED into the
///    producing step's epilogue whenever they are the sole consumer chain;
///    they cost no extra accelerator passes.  An elementwise op without a
///    fusable producer (e.g. directly on the input) lowers to a host-side
///    kElementwise step.
///  - `maxpool` is a host-side kMaxPool step (data marshalling between
///    accelerator passes), and `flatten` disappears entirely: storage is
///    already flat, so it only rewrites the value's shape metadata.
/// Nodes not reachable from the output are dead code and emit nothing.
namespace ptc::graph {

/// One fused elementwise operation applied in a step's epilogue, in order.
struct EpilogueOp {
  enum class Kind { kBias, kRelu, kSoftmax, kResidual };
  Kind kind = Kind::kRelu;
  std::vector<double> bias;       ///< kBias: per-channel addends
  std::size_t residual_slot = 0;  ///< kResidual: value slot added in
};

/// One schedule step.  kMatmul / kConv2d run on the accelerator backend;
/// kMaxPool / kElementwise are host-side data marshalling.
struct Step {
  enum class Kind { kMatmul, kConv2d, kMaxPool, kElementwise };
  Kind kind = Kind::kElementwise;

  std::size_t input_slot = 0;   ///< value slot consumed
  std::size_t output_slot = 0;  ///< value slot produced
  Shape in_shape;               ///< shape of the consumed value
  Shape out_shape;              ///< shape after the step + its epilogue

  Matrix weights;          ///< kMatmul: k x m; kConv2d: (k*k*c_in) x c_out
  std::size_t kernel = 0;  ///< kConv2d: square kernel side
  std::size_t pool = 0;    ///< kMaxPool: window == stride

  std::vector<EpilogueOp> epilogue;  ///< fused elementwise tail, in order
  std::string label;                 ///< e.g. "conv2d 3x3 -> 6ch +bias +relu"

  /// Weight-plan cache for this step's (immutable) weights, created at
  /// compile time for accelerator steps.  The executor hands it to the
  /// backend so the signed mapping, pass list, and encoded unit-weight
  /// blocks are built once per weight version instead of once per batch —
  /// serving steady-state does zero re-planning and zero re-encoding.
  /// Shared (not deep-copied) when the compiled graph is copied: the cache
  /// is keyed by weight contents, so sharing is always safe.
  std::shared_ptr<nn::WeightPlanCache> plan_cache;

  bool on_accelerator() const {
    return kind == Kind::kMatmul || kind == Kind::kConv2d;
  }

  /// kConv2d: output positions gathered per sample (im2col rows each input
  /// row contributes to the stacked matmul); 1 for kMatmul.
  std::size_t rows_per_sample() const;
};

/// Weight-tile residency footprint of one accelerator step, for a given
/// core geometry — the metadata the serve layer's warm/resident accounting
/// consumes.
struct StepPasses {
  std::size_t step = 0;             ///< index into CompiledGraph::steps
  std::size_t passes = 0;           ///< weight-tile residencies per dispatch
  std::size_t rows_per_sample = 1;  ///< matmul rows streamed per request row
};

struct PassProfile {
  std::vector<StepPasses> steps;  ///< accelerator steps in schedule order
  std::size_t total_passes = 0;   ///< simultaneous residencies of one dispatch
};

/// The flat schedule plus everything needed to execute and cost it.
struct CompiledGraph {
  std::vector<Step> steps;
  Shape input_shape;
  Shape output_shape;
  std::size_t num_slots = 0;    ///< value slots the executor allocates
  std::size_t output_slot = 0;  ///< slot holding the graph result

  std::size_t input_size() const { return input_shape.size(); }
  std::size_t output_size() const { return output_shape.size(); }

  /// Residency metadata for cores with tile_m rows x tile_k cols, mirroring
  /// nn::plan_tiled_matmul's tile counts (doubled under differential
  /// weight encoding).
  PassProfile pass_profile(std::size_t tile_m, std::size_t tile_k,
                           bool differential) const;

  /// Printable per-pass schedule for the same geometry: one line per step
  /// with its tile passes and streamed rows.
  std::string schedule_dump(std::size_t tile_m, std::size_t tile_k,
                            bool differential) const;
};

/// Lowers `g` (see the rules above).  Pure function of the graph.
CompiledGraph compile(const Graph& g);

}  // namespace ptc::graph

#endif  // PTC_GRAPH_COMPILE_HPP
