#ifndef PTC_GRAPH_IR_HPP
#define PTC_GRAPH_IR_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/linalg.hpp"

/// Dataflow IR for the graph compiler: a small single-input DAG of tensor
/// ops (dense, convolutional, elementwise, structural) that the compiler in
/// compile.hpp lowers onto the accelerator's weight-tile pass schedule.
///
/// Values flowing along edges are per-sample tensors of rank 1 ({features})
/// or rank 3 ({h, w, c} images), stored flattened row-major with channel
/// innermost: index = (i * w + j) * c + ch.  Rank-1 vectors use the same
/// storage, which is what makes `flatten` a pure metadata operation.
///
/// Graphs are built through the typed builder methods below; every method
/// runs shape inference eagerly and rejects ill-formed wiring via expects(),
/// so a Graph that exists is a Graph that compiles.  Nodes are append-only
/// and may only consume earlier nodes, so id order is a topological order —
/// the property the compiler's single forward sweep relies on.
namespace ptc::graph {

/// Per-sample tensor shape: {n} features or {h, w, c} images.
struct Shape {
  std::vector<std::size_t> dims;

  /// Flattened element count (product of dims; 0 for an empty shape).
  std::size_t size() const;

  bool is_image() const { return dims.size() == 3; }
  std::size_t height() const { return dims.size() == 3 ? dims[0] : 1; }
  std::size_t width() const { return dims.size() == 3 ? dims[1] : 1; }
  /// Innermost dimension: channels for images, features for vectors.
  std::size_t channels() const;

  bool operator==(const Shape& other) const { return dims == other.dims; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "8x8x1" / "64" — used in dumps and error messages.
  std::string str() const;
};

/// Operator set: everything a CNN / residual network needs.
enum class Op {
  kInput,    ///< the graph's single entry point
  kMatmul,   ///< dense y = x W (weights k x m)
  kConv2d,   ///< valid square conv (weights (k*k*c_in) x c_out)
  kRelu,     ///< elementwise max(0, x)
  kBias,     ///< per-channel (or per-feature) additive bias
  kAdd,      ///< elementwise sum of two same-shape values (residual)
  kMaxPool,  ///< non-overlapping window max per channel
  kFlatten,  ///< {h, w, c} -> {h*w*c} (metadata only)
  kSoftmax,  ///< row-wise softmax over a feature vector
};

const char* op_name(Op op);

/// One IR node.  Only the fields relevant to `op` are populated.
struct Node {
  Op op = Op::kInput;
  std::vector<std::size_t> inputs;  ///< producer node ids (all < own id)
  Shape shape;                      ///< inferred output shape

  Matrix weights;            ///< kMatmul: k x m; kConv2d: (k*k*c_in) x c_out
  std::vector<double> bias;  ///< kBias: length == shape.channels()
  std::size_t kernel = 0;    ///< kConv2d: square kernel side
  std::size_t pool = 0;      ///< kMaxPool: window == stride
};

/// Builder + container.  The last node added is the graph output unless
/// mark_output() chose another.
class Graph {
 public:
  using NodeId = std::size_t;

  /// The single entry point; must be the first node added.
  NodeId input(Shape shape);

  /// Dense product with a k x m weight matrix (input must be rank 1, k wide).
  NodeId matmul(NodeId x, Matrix w);

  /// Valid square convolution: input {h, w, c_in}, kernels is the im2col
  /// weight matrix (kernel_side^2 * c_in) x c_out with patch entries ordered
  /// (di, dj, ch) — the layout the compiler's im2col emits.  Output is
  /// {h-k+1, w-k+1, c_out}.
  NodeId conv2d(NodeId x, Matrix kernels, std::size_t kernel_side);

  /// Adds b[ch] to every position of channel ch (features for rank 1).
  NodeId bias(NodeId x, std::vector<double> b);

  NodeId relu(NodeId x);

  /// Residual connection: elementwise a + b, shapes must match exactly.
  NodeId add(NodeId a, NodeId b);

  /// Non-overlapping window max per channel; trailing rows/cols that do not
  /// fill a window are dropped (floor semantics).
  NodeId maxpool(NodeId x, std::size_t window);

  /// {h, w, c} -> {h*w*c}.  Free: storage is already flat.
  NodeId flatten(NodeId x);

  /// Row-wise softmax (input must be rank 1).
  NodeId softmax(NodeId x);

  /// Selects the node whose value run() returns (defaults to the last).
  void mark_output(NodeId id);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(NodeId id) const;
  std::size_t size() const { return nodes_.size(); }
  NodeId output_id() const;
  const Shape& input_shape() const;
  const Shape& output_shape() const;

  /// Human-readable node listing, one line per node.
  std::string dump() const;

 private:
  NodeId append(Node node);
  const Node& producer(NodeId id) const;  ///< node(id) with existence check

  std::vector<Node> nodes_;
  std::size_t output_ = 0;
  bool explicit_output_ = false;
};

}  // namespace ptc::graph

#endif  // PTC_GRAPH_IR_HPP
