#ifndef PTC_GRAPH_IR_HPP
#define PTC_GRAPH_IR_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/linalg.hpp"

/// Dataflow IR for the graph compiler: a small single-input DAG of tensor
/// ops (dense, convolutional, attention, elementwise, structural) that the
/// compiler in compile.hpp lowers onto the accelerator's weight-tile pass
/// schedule.
///
/// Values flowing along edges are per-sample tensors of rank 1 ({features}),
/// rank 2 ({t, d} sequences of feature rows), or rank 3 ({h, w, c} images),
/// stored flattened row-major with the innermost dimension (features /
/// channels) fastest: index = (i * w + j) * c + ch for images, p * d + ch
/// for sequences.  Rank-1 vectors use the same storage, which is what makes
/// `flatten` a pure metadata operation.
///
/// Graphs are built through the typed builder methods below; every method
/// runs shape inference eagerly and rejects ill-formed wiring via expects(),
/// so a Graph that exists is a Graph that compiles.  Nodes are append-only
/// and may only consume earlier nodes, so id order is a topological order —
/// the property the compiler's single forward sweep relies on.
namespace ptc::graph {

/// Per-sample tensor shape: {n} features, {t, d} sequences, or {h, w, c}
/// images.
struct Shape {
  std::vector<std::size_t> dims;

  /// Flattened element count (product of dims; 0 for an empty shape).
  std::size_t size() const;

  bool is_image() const { return dims.size() == 3; }
  /// {t, d}: a sequence of t feature rows of width d (attention values).
  bool is_sequence() const { return dims.size() == 2; }
  std::size_t height() const { return dims.size() == 3 ? dims[0] : 1; }
  std::size_t width() const { return dims.size() == 3 ? dims[1] : 1; }
  /// Innermost dimension: channels for images, features for vectors and
  /// sequence rows.
  std::size_t channels() const;
  /// Number of innermost chunks: sequence positions for rank 2, image
  /// positions (h * w) for rank 3, 1 for rank 1.  size() == positions() *
  /// channels() always.
  std::size_t positions() const;

  bool operator==(const Shape& other) const { return dims == other.dims; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "8x8x1" / "64" — used in dumps and error messages.
  std::string str() const;
};

/// Operator set: everything a CNN / residual network / decoder-only
/// transformer needs.
enum class Op {
  kInput,       ///< the graph's single entry point
  kMatmul,      ///< dense y = x W (weights k x m; x rank 1 or rank 2)
  kConv2d,      ///< valid square conv (weights (k*k*c_in) x c_out)
  kRelu,        ///< elementwise max(0, x)
  kBias,        ///< per-channel (or per-feature) additive bias
  kAdd,         ///< elementwise sum of two same-shape values (residual)
  kMaxPool,     ///< non-overlapping window max per channel
  kFlatten,     ///< {h, w, c} -> {h*w*c} (metadata only)
  kSoftmax,     ///< softmax over each innermost chunk (features / seq row)
  kEmbedding,   ///< token-id lookup {t} -> {t, d} (+ positional table)
  kLayerNorm,   ///< per-innermost-chunk normalization with gain/bias
  kGelu,        ///< elementwise GELU (tanh approximation)
  kMatmulPair,  ///< product of two activations: A B or A B^T (attention)
  kCausalMask,  ///< scale scores and mask j > i to -inf ({t, t} only)
  kSlice,       ///< innermost-dimension slice [from, from + count)
  kConcat,      ///< innermost-dimension concatenation of >= 2 values
};

const char* op_name(Op op);

/// One IR node.  Only the fields relevant to `op` are populated.
struct Node {
  Op op = Op::kInput;
  std::vector<std::size_t> inputs;  ///< producer node ids (all < own id)
  Shape shape;                      ///< inferred output shape

  Matrix weights;   ///< kMatmul: k x m; kConv2d: (k*k*c_in) x c_out;
                    ///< kEmbedding: vocab x d token table
  Matrix weights2;  ///< kEmbedding: max_seq x d positional table (may be 0x0)
  std::vector<double> bias;  ///< kBias / kLayerNorm shift: length channels()
  std::vector<double> gain;  ///< kLayerNorm scale: length channels()
  std::size_t kernel = 0;    ///< kConv2d: square kernel side
  std::size_t pool = 0;      ///< kMaxPool: window == stride
  double scale = 1.0;        ///< kCausalMask: pre-mask score scale (1/sqrt(dk))
  bool transpose_b = false;  ///< kMatmulPair: compute A B^T instead of A B
  std::size_t offset = 0;    ///< kSlice: first innermost index taken
};

/// Builder + container.  The last node added is the graph output unless
/// mark_output() chose another.
class Graph {
 public:
  using NodeId = std::size_t;

  /// The single entry point; must be the first node added.
  NodeId input(Shape shape);

  /// Dense product with a k x m weight matrix.  A rank-1 input of width k
  /// yields {m}; a rank-2 {t, k} sequence multiplies every row, yielding
  /// {t, m} (the per-position projections attention is built from).
  NodeId matmul(NodeId x, Matrix w);

  /// Valid square convolution: input {h, w, c_in}, kernels is the im2col
  /// weight matrix (kernel_side^2 * c_in) x c_out with patch entries ordered
  /// (di, dj, ch) — the layout the compiler's im2col emits.  Output is
  /// {h-k+1, w-k+1, c_out}.
  NodeId conv2d(NodeId x, Matrix kernels, std::size_t kernel_side);

  /// Adds b[ch] to every position of channel ch (features for rank 1).
  NodeId bias(NodeId x, std::vector<double> b);

  NodeId relu(NodeId x);

  /// Residual connection: elementwise a + b, shapes must match exactly.
  NodeId add(NodeId a, NodeId b);

  /// Non-overlapping window max per channel; trailing rows/cols that do not
  /// fill a window are dropped (floor semantics).
  NodeId maxpool(NodeId x, std::size_t window);

  /// {h, w, c} -> {h*w*c}.  Free: storage is already flat.
  NodeId flatten(NodeId x);

  /// Softmax over each innermost chunk: the whole vector for rank 1, each
  /// sequence row independently for rank 2 (attention probabilities).
  NodeId softmax(NodeId x);

  /// Token-id lookup: input {t} of integer-valued ids, `table` is the
  /// vocab x d token embedding matrix.  When `positions` is non-empty
  /// (rows >= t, cols == d) row p of it is added to position p — learned
  /// positional embeddings.  Output {t, d}.
  NodeId embedding(NodeId ids, Matrix table, Matrix positions = Matrix());

  /// Per-innermost-chunk layer normalization: each feature row is shifted
  /// to zero mean / unit variance, then scaled by `gain` and shifted by
  /// `bias` (both length channels()).  Shape-preserving.
  NodeId layernorm(NodeId x, std::vector<double> gain,
                   std::vector<double> bias);

  /// Elementwise GELU (tanh approximation).  Shape-preserving.
  NodeId gelu(NodeId x);

  /// Product of two activations — the attention primitive the accelerator
  /// streams like a weight matmul, except the "weights" are the second
  /// activation.  With transpose_b: a {t, k} x b {u, k} -> {t, u}
  /// (Q K^T scores); without: a {t, k} x b {k, u} -> {t, u} (P V context).
  NodeId matmul_pair(NodeId a, NodeId b, bool transpose_b);

  /// Causal attention mask on a square {t, t} score matrix: every entry is
  /// scaled by `scale` (1/sqrt(d_k)) and entries with column > row are
  /// forced to a large negative so softmax sends them to exactly zero.
  NodeId causal_mask(NodeId x, double scale);

  /// Innermost-dimension slice [from, from + count): per-head Q/K/V
  /// extraction.  {t, d} -> {t, count}; rank 1 slices the feature vector.
  NodeId slice(NodeId x, std::size_t from, std::size_t count);

  /// Innermost-dimension concatenation of >= 2 values with identical
  /// leading dimensions: per-head context reassembly.  {t, d_i} ->
  /// {t, sum d_i}.
  NodeId concat(const std::vector<NodeId>& xs);

  /// Selects the node whose value run() returns (defaults to the last).
  void mark_output(NodeId id);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(NodeId id) const;
  std::size_t size() const { return nodes_.size(); }
  NodeId output_id() const;
  const Shape& input_shape() const;
  const Shape& output_shape() const;

  /// Human-readable node listing, one line per node.
  std::string dump() const;

 private:
  NodeId append(Node node);
  const Node& producer(NodeId id) const;  ///< node(id) with existence check

  std::vector<Node> nodes_;
  std::size_t output_ = 0;
  bool explicit_output_ = false;
};

}  // namespace ptc::graph

#endif  // PTC_GRAPH_IR_HPP
