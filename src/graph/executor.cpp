#include "graph/executor.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/expects.hpp"
#include "nn/layers.hpp"
#include "nn/tiling.hpp"
#include "telemetry/trace.hpp"

namespace ptc::graph {
namespace {

/// Reinterprets a flattened value matrix with a new geometry over the same
/// row-major data.  The positions-innermost flattening makes stacking a
/// batch of {t, d} sequences into (batch * t) activation rows — and packing
/// the result back — a pure relabel, no element moves.
Matrix reshape(const Matrix& m, std::size_t rows, std::size_t cols) {
  expects(rows * cols == m.rows() * m.cols(), "reshape changes element count");
  Matrix out(rows, cols);
  out.data() = m.data();
  return out;
}

/// Backend matmul through the step's weight-plan cache when it has one
/// (accelerator steps compiled by graph::compile), so per-batch execution
/// skips the weight-side planning and encoding entirely.
Matrix matmul_rows(nn::MatmulBackend& backend, const Step& step,
                   const Matrix& x) {
  if (step.signed_input) {
    // The streamed activation can be negative (layernorm / GELU /
    // embedding outputs): differential input streaming through the same
    // weight plan, recombined digitally.
    return nn::signed_matmul(backend, x, step.weights,
                             step.plan_cache.get());
  }
  if (step.plan_cache != nullptr) {
    return backend.matmul_cached(x, step.weights, *step.plan_cache);
  }
  return backend.matmul(x, step.weights);
}

/// Weight matmul over a (possibly sequence-valued) step input.  Sequence
/// values stream every position of every sample as its own activation row
/// through one backend call, so the whole batch shares each weight-tile
/// residency — the same stacking trick conv2d uses for patches.
Matrix step_matmul(nn::MatmulBackend& backend, const Step& step,
                   const Matrix& x) {
  if (step.kind == Step::Kind::kMatmul && step.in_shape.is_sequence()) {
    const std::size_t t = step.in_shape.dims[0];
    const Matrix stacked = reshape(x, x.rows() * t, step.weights.rows());
    const Matrix y = matmul_rows(backend, step, stacked);
    return reshape(y, x.rows(), t * step.weights.cols());
  }
  return matmul_rows(backend, step, x);
}

/// Activation x activation product, per sample: the second value is loaded
/// as the weight matrix (transposed for A B^T), so attention scores and
/// context products run on the accelerator exactly like weight matmuls —
/// but per sample, since every sample carries its own "weights".
Matrix matmul_pair_step(nn::MatmulBackend& backend, const Step& step,
                        const Matrix& a, const Matrix& b) {
  const std::size_t t = step.in_shape.dims[0];
  const std::size_t k = step.in_shape.dims[1];
  const std::size_t u = step.out_shape.channels();

  Matrix out(a.rows(), t * u);
  Matrix lhs(t, k);
  Matrix rhs(k, u);
  for (std::size_t s = 0; s < a.rows(); ++s) {
    for (std::size_t p = 0; p < t; ++p)
      for (std::size_t c = 0; c < k; ++c) lhs(p, c) = a(s, p * k + c);
    if (step.transpose_b) {
      for (std::size_t c = 0; c < k; ++c)
        for (std::size_t j = 0; j < u; ++j) rhs(c, j) = b(s, j * k + c);
    } else {
      for (std::size_t c = 0; c < k; ++c)
        for (std::size_t j = 0; j < u; ++j) rhs(c, j) = b(s, c * u + j);
    }
    const Matrix y = step.signed_input
                         ? nn::signed_matmul(backend, lhs, rhs)
                         : backend.matmul(lhs, rhs);
    for (std::size_t p = 0; p < t; ++p)
      for (std::size_t j = 0; j < u; ++j) out(s, p * u + j) = y(p, j);
  }
  return out;
}

/// Host-side token-id gather plus (optional) positional-table add.
Matrix embedding_step(const Step& step, const Matrix& in) {
  const std::size_t t = step.in_shape.dims[0];
  const std::size_t d = step.weights.cols();
  const bool positional = step.weights2.rows() > 0;

  Matrix out(in.rows(), t * d);
  for (std::size_t s = 0; s < in.rows(); ++s) {
    for (std::size_t p = 0; p < t; ++p) {
      const double raw = in(s, p);
      expects(raw >= 0.0 && raw < static_cast<double>(step.weights.rows()),
              "embedding id out of vocabulary range");
      const std::size_t id = static_cast<std::size_t>(raw);
      for (std::size_t ch = 0; ch < d; ++ch) {
        out(s, p * d + ch) = step.weights(id, ch) +
                             (positional ? step.weights2(p, ch) : 0.0);
      }
    }
  }
  return out;
}

Matrix slice_step(const Step& step, const Matrix& in) {
  const std::size_t c_in = step.in_shape.channels();
  const std::size_t count = step.out_shape.channels();
  const std::size_t positions = step.in_shape.positions();

  Matrix out(in.rows(), positions * count);
  for (std::size_t s = 0; s < in.rows(); ++s)
    for (std::size_t p = 0; p < positions; ++p)
      for (std::size_t ch = 0; ch < count; ++ch)
        out(s, p * count + ch) = in(s, p * c_in + step.offset + ch);
  return out;
}

Matrix concat_step(const Step& step, const std::vector<Matrix>& slots,
                   const Matrix& first) {
  const std::size_t positions = step.out_shape.positions();
  const std::size_t c_out = step.out_shape.channels();

  Matrix out(first.rows(), positions * c_out);
  std::size_t base = 0;
  const auto append_part = [&](const Matrix& part) {
    const std::size_t c = part.cols() / positions;
    for (std::size_t s = 0; s < part.rows(); ++s)
      for (std::size_t p = 0; p < positions; ++p)
        for (std::size_t ch = 0; ch < c; ++ch)
          out(s, p * c_out + base + ch) = part(s, p * c + ch);
    base += c;
  };
  append_part(first);
  for (std::size_t slot : step.extra_slots) append_part(slots[slot]);
  return out;
}

/// Stacked im2col conv: every output position of every sample becomes one
/// row of a single backend matmul, so the whole batch streams through each
/// kernel-tile residency in one pass.  Patch columns are ordered
/// (di, dj, ch), matching Graph::conv2d's kernel matrix layout (and
/// nn::im2col for the single-channel case).
Matrix conv2d_step(nn::MatmulBackend& backend, const Step& step,
                   const Matrix& in) {
  const std::size_t h = step.in_shape.height();
  const std::size_t w = step.in_shape.width();
  const std::size_t c = step.in_shape.channels();
  const std::size_t k = step.kernel;
  const std::size_t out_h = h - k + 1;
  const std::size_t out_w = w - k + 1;
  const std::size_t positions = out_h * out_w;
  const std::size_t c_out = step.weights.cols();

  Matrix patches(in.rows() * positions, k * k * c);
  for (std::size_t s = 0; s < in.rows(); ++s) {
    for (std::size_t i = 0; i < out_h; ++i) {
      for (std::size_t j = 0; j < out_w; ++j) {
        const std::size_t row = s * positions + i * out_w + j;
        std::size_t col = 0;
        for (std::size_t di = 0; di < k; ++di)
          for (std::size_t dj = 0; dj < k; ++dj)
            for (std::size_t ch = 0; ch < c; ++ch)
              patches(row, col++) = in(s, ((i + di) * w + (j + dj)) * c + ch);
      }
    }
  }

  const Matrix flat = step_matmul(backend, step, patches);

  // Repack (sample*position) x c_out rows into per-sample flat images.
  Matrix out(in.rows(), positions * c_out);
  for (std::size_t s = 0; s < in.rows(); ++s)
    for (std::size_t p = 0; p < positions; ++p)
      for (std::size_t ch = 0; ch < c_out; ++ch)
        out(s, p * c_out + ch) = flat(s * positions + p, ch);
  return out;
}

Matrix maxpool_step(const Step& step, const Matrix& in) {
  const std::size_t h = step.in_shape.height();
  const std::size_t w = step.in_shape.width();
  const std::size_t c = step.in_shape.channels();
  const std::size_t p = step.pool;
  const std::size_t out_h = h / p;
  const std::size_t out_w = w / p;

  Matrix out(in.rows(), out_h * out_w * c);
  for (std::size_t s = 0; s < in.rows(); ++s) {
    for (std::size_t i = 0; i < out_h; ++i) {
      for (std::size_t j = 0; j < out_w; ++j) {
        for (std::size_t ch = 0; ch < c; ++ch) {
          double m = in(s, (i * p * w + j * p) * c + ch);
          for (std::size_t di = 0; di < p; ++di)
            for (std::size_t dj = 0; dj < p; ++dj)
              m = std::max(m,
                           in(s, ((i * p + di) * w + (j * p + dj)) * c + ch));
          out(s, (i * out_w + j) * c + ch) = m;
        }
      }
    }
  }
  return out;
}

/// Broadcast bias over positions with channel innermost.  For rank-1
/// values positions == 1 and this is exactly DenseLayer::forward's bias
/// loop — the bit-identity anchor for the Mlp lowering.
void apply_bias(Matrix& value, const std::vector<double>& bias) {
  const std::size_t c = bias.size();
  const std::size_t positions = value.cols() / c;
  for (std::size_t s = 0; s < value.rows(); ++s)
    for (std::size_t p = 0; p < positions; ++p)
      for (std::size_t ch = 0; ch < c; ++ch)
        value(s, p * c + ch) += bias[ch];
}

void apply_epilogue(Matrix& value, const Step& step,
                    const std::vector<Matrix>& slots) {
  // Chunked epilogue ops act per innermost feature row.  Every epilogue op
  // preserves shape, so the step's out_shape gives the chunk for the whole
  // chain; for rank-1 values the chunk is the full row and kSoftmax is
  // bit-identical to the historical whole-row nn::softmax.
  const std::size_t chunk = step.out_shape.channels();
  for (const EpilogueOp& op : step.epilogue) {
    switch (op.kind) {
      case EpilogueOp::Kind::kBias:
        apply_bias(value, op.bias);
        break;
      case EpilogueOp::Kind::kRelu:
        for (double& v : value.data()) v = std::max(0.0, v);
        break;
      case EpilogueOp::Kind::kSoftmax:
        nn::softmax_chunks(value, chunk);
        break;
      case EpilogueOp::Kind::kGelu:
        nn::gelu_inplace(value);
        break;
      case EpilogueOp::Kind::kLayerNorm:
        nn::layernorm_chunks(value, chunk, op.gain, op.bias);
        break;
      case EpilogueOp::Kind::kCausalMask:
        nn::causal_mask_chunks(value, chunk, op.scale);
        break;
      case EpilogueOp::Kind::kResidual:
        value += slots[op.residual_slot];
        break;
    }
  }
}

}  // namespace

Matrix run(const CompiledGraph& compiled, nn::MatmulBackend& backend,
           const Matrix& x) {
  expects(x.rows() >= 1, "batch must contain at least one sample");
  expects(x.cols() == compiled.input_size(),
          "input width does not match the graph input shape");

  // With a tracer attached (AcceleratorBackend under PTC_TRACE), every
  // accelerator step gets a span over the modeled time its matmuls
  // advanced; host-side steps are instants (zero modeled duration).
  telemetry::Tracer* tracer = backend.tracer();

  std::vector<Matrix> slots(compiled.num_slots);
  slots[0] = x;
  for (const Step& step : compiled.steps) {
    const Matrix& in = slots[step.input_slot];
    const double step_start = tracer != nullptr ? backend.modeled_time() : 0.0;
    Matrix out;
    switch (step.kind) {
      case Step::Kind::kMatmul:
        out = step_matmul(backend, step, in);
        break;
      case Step::Kind::kConv2d:
        out = conv2d_step(backend, step, in);
        break;
      case Step::Kind::kMaxPool:
        out = maxpool_step(step, in);
        break;
      case Step::Kind::kMatmulPair:
        out = matmul_pair_step(backend, step, in, slots[step.rhs_slot]);
        break;
      case Step::Kind::kEmbedding:
        out = embedding_step(step, in);
        break;
      case Step::Kind::kSlice:
        out = slice_step(step, in);
        break;
      case Step::Kind::kConcat:
        out = concat_step(step, slots, in);
        break;
      case Step::Kind::kElementwise:
        out = in;
        break;
    }
    apply_epilogue(out, step, slots);
    slots[step.output_slot] = std::move(out);
    if (tracer != nullptr) {
      if (step.on_accelerator()) {
        tracer->complete(telemetry::track::kSteps, step.label.c_str(),
                         "step", step_start, backend.modeled_time(),
                         {{"batch", x.rows()}});
      } else {
        tracer->instant(telemetry::track::kSteps, step.label.c_str(), "step",
                        step_start, {});
      }
    }
  }
  return slots[compiled.output_slot];
}

}  // namespace ptc::graph
