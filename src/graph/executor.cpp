#include "graph/executor.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/expects.hpp"
#include "nn/layers.hpp"
#include "nn/tiling.hpp"
#include "telemetry/trace.hpp"

namespace ptc::graph {
namespace {

/// Backend matmul through the step's weight-plan cache when it has one
/// (accelerator steps compiled by graph::compile), so per-batch execution
/// skips the weight-side planning and encoding entirely.
Matrix step_matmul(nn::MatmulBackend& backend, const Step& step,
                   const Matrix& x) {
  if (step.plan_cache != nullptr) {
    return backend.matmul_cached(x, step.weights, *step.plan_cache);
  }
  return backend.matmul(x, step.weights);
}

/// Stacked im2col conv: every output position of every sample becomes one
/// row of a single backend matmul, so the whole batch streams through each
/// kernel-tile residency in one pass.  Patch columns are ordered
/// (di, dj, ch), matching Graph::conv2d's kernel matrix layout (and
/// nn::im2col for the single-channel case).
Matrix conv2d_step(nn::MatmulBackend& backend, const Step& step,
                   const Matrix& in) {
  const std::size_t h = step.in_shape.height();
  const std::size_t w = step.in_shape.width();
  const std::size_t c = step.in_shape.channels();
  const std::size_t k = step.kernel;
  const std::size_t out_h = h - k + 1;
  const std::size_t out_w = w - k + 1;
  const std::size_t positions = out_h * out_w;
  const std::size_t c_out = step.weights.cols();

  Matrix patches(in.rows() * positions, k * k * c);
  for (std::size_t s = 0; s < in.rows(); ++s) {
    for (std::size_t i = 0; i < out_h; ++i) {
      for (std::size_t j = 0; j < out_w; ++j) {
        const std::size_t row = s * positions + i * out_w + j;
        std::size_t col = 0;
        for (std::size_t di = 0; di < k; ++di)
          for (std::size_t dj = 0; dj < k; ++dj)
            for (std::size_t ch = 0; ch < c; ++ch)
              patches(row, col++) = in(s, ((i + di) * w + (j + dj)) * c + ch);
      }
    }
  }

  const Matrix flat = step_matmul(backend, step, patches);

  // Repack (sample*position) x c_out rows into per-sample flat images.
  Matrix out(in.rows(), positions * c_out);
  for (std::size_t s = 0; s < in.rows(); ++s)
    for (std::size_t p = 0; p < positions; ++p)
      for (std::size_t ch = 0; ch < c_out; ++ch)
        out(s, p * c_out + ch) = flat(s * positions + p, ch);
  return out;
}

Matrix maxpool_step(const Step& step, const Matrix& in) {
  const std::size_t h = step.in_shape.height();
  const std::size_t w = step.in_shape.width();
  const std::size_t c = step.in_shape.channels();
  const std::size_t p = step.pool;
  const std::size_t out_h = h / p;
  const std::size_t out_w = w / p;

  Matrix out(in.rows(), out_h * out_w * c);
  for (std::size_t s = 0; s < in.rows(); ++s) {
    for (std::size_t i = 0; i < out_h; ++i) {
      for (std::size_t j = 0; j < out_w; ++j) {
        for (std::size_t ch = 0; ch < c; ++ch) {
          double m = in(s, (i * p * w + j * p) * c + ch);
          for (std::size_t di = 0; di < p; ++di)
            for (std::size_t dj = 0; dj < p; ++dj)
              m = std::max(m,
                           in(s, ((i * p + di) * w + (j * p + dj)) * c + ch));
          out(s, (i * out_w + j) * c + ch) = m;
        }
      }
    }
  }
  return out;
}

/// Broadcast bias over positions with channel innermost.  For rank-1
/// values positions == 1 and this is exactly DenseLayer::forward's bias
/// loop — the bit-identity anchor for the Mlp lowering.
void apply_bias(Matrix& value, const std::vector<double>& bias) {
  const std::size_t c = bias.size();
  const std::size_t positions = value.cols() / c;
  for (std::size_t s = 0; s < value.rows(); ++s)
    for (std::size_t p = 0; p < positions; ++p)
      for (std::size_t ch = 0; ch < c; ++ch)
        value(s, p * c + ch) += bias[ch];
}

void apply_epilogue(Matrix& value, const Step& step,
                    const std::vector<Matrix>& slots) {
  for (const EpilogueOp& op : step.epilogue) {
    switch (op.kind) {
      case EpilogueOp::Kind::kBias:
        apply_bias(value, op.bias);
        break;
      case EpilogueOp::Kind::kRelu:
        for (double& v : value.data()) v = std::max(0.0, v);
        break;
      case EpilogueOp::Kind::kSoftmax:
        value = nn::softmax(value);
        break;
      case EpilogueOp::Kind::kResidual:
        value += slots[op.residual_slot];
        break;
    }
  }
}

}  // namespace

Matrix run(const CompiledGraph& compiled, nn::MatmulBackend& backend,
           const Matrix& x) {
  expects(x.rows() >= 1, "batch must contain at least one sample");
  expects(x.cols() == compiled.input_size(),
          "input width does not match the graph input shape");

  // With a tracer attached (AcceleratorBackend under PTC_TRACE), every
  // accelerator step gets a span over the modeled time its matmuls
  // advanced; host-side steps are instants (zero modeled duration).
  telemetry::Tracer* tracer = backend.tracer();

  std::vector<Matrix> slots(compiled.num_slots);
  slots[0] = x;
  for (const Step& step : compiled.steps) {
    const Matrix& in = slots[step.input_slot];
    const double step_start = tracer != nullptr ? backend.modeled_time() : 0.0;
    Matrix out;
    switch (step.kind) {
      case Step::Kind::kMatmul:
        out = step_matmul(backend, step, in);
        break;
      case Step::Kind::kConv2d:
        out = conv2d_step(backend, step, in);
        break;
      case Step::Kind::kMaxPool:
        out = maxpool_step(step, in);
        break;
      case Step::Kind::kElementwise:
        out = in;
        break;
    }
    apply_epilogue(out, step, slots);
    slots[step.output_slot] = std::move(out);
    if (tracer != nullptr) {
      if (step.on_accelerator()) {
        tracer->complete(telemetry::track::kSteps, step.label.c_str(),
                         "step", step_start, backend.modeled_time(),
                         {{"batch", x.rows()}});
      } else {
        tracer->instant(telemetry::track::kSteps, step.label.c_str(), "step",
                        step_start, {});
      }
    }
  }
  return slots[compiled.output_slot];
}

}  // namespace ptc::graph
