#ifndef PTC_GRAPH_EXECUTOR_HPP
#define PTC_GRAPH_EXECUTOR_HPP

#include "common/linalg.hpp"
#include "graph/compile.hpp"
#include "nn/backend.hpp"

/// Interprets a compiled schedule against any nn::MatmulBackend: the float
/// reference, a single photonic core, or the multi-core accelerator fleet
/// (runtime::AcceleratorBackend).  Matmul and conv steps execute on the
/// backend; maxpool and unfused elementwise steps run on the host.  The
/// step order is the schedule order, the epilogue order is the fusion
/// order, and every arithmetic loop matches the nn/ layer implementations —
/// which is why an Mlp lowered through the compiler reproduces its direct
/// backend path bit for bit.
namespace ptc::graph {

/// Runs a batch of flattened input rows (batch x input_size) through the
/// schedule and returns the output values (batch x output_size).  Image
/// inputs are row-major with channel innermost, matching Shape's layout.
Matrix run(const CompiledGraph& compiled, nn::MatmulBackend& backend,
           const Matrix& x);

}  // namespace ptc::graph

#endif  // PTC_GRAPH_EXECUTOR_HPP
