#include "graph/compile.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "common/expects.hpp"
#include "nn/tiling.hpp"

namespace ptc::graph {
namespace {

constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();
constexpr std::size_t kNoNode = std::numeric_limits<std::size_t>::max();

std::size_t div_ceil(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

std::size_t Step::rows_per_sample() const {
  std::size_t rows = 1;
  if (kind == Kind::kConv2d) {
    rows = (in_shape.height() - kernel + 1) * (in_shape.width() - kernel + 1);
  } else if (kind == Kind::kMatmul || kind == Kind::kMatmulPair) {
    rows = in_shape.positions();
  }
  if (on_accelerator() && signed_input) rows *= 2;
  return rows;
}

std::size_t Step::weight_rows() const {
  // kMatmulPair loads the second activation as the weight matrix: k wide
  // however it is oriented (A {t, k} x B^T {u, k} or B {k, u}).
  if (kind == Kind::kMatmulPair) return in_shape.channels();
  return weights.rows();
}

std::size_t Step::weight_cols() const {
  if (kind == Kind::kMatmulPair) return out_shape.channels();
  return weights.cols();
}

CompiledGraph compile(const Graph& g) {
  const std::vector<Node>& nodes = g.nodes();
  expects(!nodes.empty() && nodes.front().op == Op::kInput,
          "graph must start with an input node");
  const std::size_t output = g.output_id();

  // Dead-code elimination: only nodes reachable from the output lower.
  std::vector<bool> live(nodes.size(), false);
  std::vector<std::size_t> stack{output};
  while (!stack.empty()) {
    const std::size_t id = stack.back();
    stack.pop_back();
    if (live[id]) continue;
    live[id] = true;
    for (std::size_t in : nodes[id].inputs) stack.push_back(in);
  }

  // Consumer lists over live nodes (duplicated per edge, so a node feeding
  // both sides of an `add` counts twice and stays materialized).
  std::vector<std::vector<std::size_t>> consumers(nodes.size());
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (!live[id]) continue;
    for (std::size_t in : nodes[id].inputs) consumers[in].push_back(id);
  }

  // Non-negativity lattice: which values are provably >= 0 everywhere, and
  // can therefore stream straight onto the intensity-encoded photonic
  // input.  Everything else (embeddings, layernorm/GELU outputs, projection
  // results) marks its consuming accelerator step signed_input, which the
  // executor serves with a differential x+ / x- double-stream.  The lattice
  // keeps all pre-transformer graphs (inputs, relu chains, pooling) on the
  // single-stream path bit-for-bit.
  std::vector<bool> nonneg(nodes.size(), false);
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const Node& n = nodes[id];
    switch (n.op) {
      case Op::kInput:  // intensity-encoded by the Request contract
      case Op::kRelu:
      case Op::kSoftmax:
        nonneg[id] = true;
        break;
      case Op::kMaxPool:
      case Op::kFlatten:
      case Op::kSlice:
        nonneg[id] = nonneg[n.inputs[0]];
        break;
      case Op::kAdd:
        nonneg[id] = nonneg[n.inputs[0]] && nonneg[n.inputs[1]];
        break;
      case Op::kConcat: {
        bool all = true;
        for (std::size_t in : n.inputs) all = all && nonneg[in];
        nonneg[id] = all;
        break;
      }
      default:  // matmuls, conv, bias, embedding, layernorm, gelu, mask
        nonneg[id] = false;
        break;
    }
  }

  CompiledGraph cg;
  cg.input_shape = nodes.front().shape;
  cg.output_shape = nodes[output].shape;

  std::vector<std::size_t> slot_of(nodes.size(), kNoSlot);
  std::vector<bool> emitted(nodes.size(), false);
  slot_of[0] = 0;
  emitted[0] = true;
  cg.num_slots = 1;

  // The sole consumer of `tail` if it can join the current step's epilogue.
  const auto fusable_consumer = [&](std::size_t tail) -> std::size_t {
    if (tail == output || consumers[tail].size() != 1) return kNoNode;
    const std::size_t c = consumers[tail].front();
    switch (nodes[c].op) {
      case Op::kRelu:
      case Op::kBias:
      case Op::kSoftmax:
      case Op::kFlatten:
      case Op::kLayerNorm:
      case Op::kGelu:
      case Op::kCausalMask:
        return c;
      case Op::kAdd: {
        // Residuals fuse when the other branch is already materialized.
        const std::size_t other = nodes[c].inputs[0] == tail
                                      ? nodes[c].inputs[1]
                                      : nodes[c].inputs[0];
        return slot_of[other] != kNoSlot ? c : kNoNode;
      }
      default:
        return kNoNode;
    }
  };

  for (std::size_t id = 1; id < nodes.size(); ++id) {
    if (!live[id] || emitted[id]) continue;
    const Node& n = nodes[id];

    if (n.op == Op::kFlatten) {
      // Pure metadata: the value is already stored flat.
      slot_of[id] = slot_of[n.inputs[0]];
      emitted[id] = true;
      continue;
    }

    Step step;
    step.input_slot = slot_of[n.inputs[0]];
    step.in_shape = nodes[n.inputs[0]].shape;
    std::ostringstream label;
    const auto push_epilogue = [&step](EpilogueOp::Kind kind) -> EpilogueOp& {
      EpilogueOp op;
      op.kind = kind;
      step.epilogue.push_back(std::move(op));
      return step.epilogue.back();
    };
    switch (n.op) {
      case Op::kMatmul:
        step.kind = Step::Kind::kMatmul;
        step.weights = n.weights;
        step.signed_input = !nonneg[n.inputs[0]];
        label << "matmul " << n.weights.rows() << "x" << n.weights.cols();
        break;
      case Op::kConv2d:
        step.kind = Step::Kind::kConv2d;
        step.weights = n.weights;
        step.kernel = n.kernel;
        step.signed_input = !nonneg[n.inputs[0]];
        label << "conv2d " << n.kernel << "x" << n.kernel << " -> "
              << n.weights.cols() << "ch";
        break;
      case Op::kMaxPool:
        step.kind = Step::Kind::kMaxPool;
        step.pool = n.pool;
        label << "maxpool " << n.pool << "x" << n.pool;
        break;
      case Op::kMatmulPair: {
        step.kind = Step::Kind::kMatmulPair;
        const std::size_t rhs = slot_of[n.inputs[1]];
        ensures(rhs != kNoSlot, "matmul_pair operand was never materialized");
        step.rhs_slot = rhs;
        step.transpose_b = n.transpose_b;
        step.signed_input = !nonneg[n.inputs[0]];
        label << "matmul_pair" << (n.transpose_b ? " ABt" : " AB");
        break;
      }
      case Op::kEmbedding:
        step.kind = Step::Kind::kEmbedding;
        step.weights = n.weights;
        step.weights2 = n.weights2;
        label << "embedding " << n.weights.rows() << "->" << n.weights.cols();
        break;
      case Op::kSlice:
        step.kind = Step::Kind::kSlice;
        step.offset = n.offset;
        label << "slice [" << n.offset << ":"
              << n.offset + n.shape.channels() << "]";
        break;
      case Op::kConcat: {
        step.kind = Step::Kind::kConcat;
        for (std::size_t i = 1; i < n.inputs.size(); ++i) {
          const std::size_t slot = slot_of[n.inputs[i]];
          ensures(slot != kNoSlot, "concat operand was never materialized");
          step.extra_slots.push_back(slot);
        }
        label << "concat x" << n.inputs.size();
        break;
      }
      case Op::kRelu:
        push_epilogue(EpilogueOp::Kind::kRelu);
        label << "relu";
        break;
      case Op::kBias:
        push_epilogue(EpilogueOp::Kind::kBias).bias = n.bias;
        label << "bias";
        break;
      case Op::kSoftmax:
        push_epilogue(EpilogueOp::Kind::kSoftmax);
        label << "softmax";
        break;
      case Op::kGelu:
        push_epilogue(EpilogueOp::Kind::kGelu);
        label << "gelu";
        break;
      case Op::kLayerNorm: {
        EpilogueOp& op = push_epilogue(EpilogueOp::Kind::kLayerNorm);
        op.gain = n.gain;
        op.bias = n.bias;
        label << "layernorm";
        break;
      }
      case Op::kCausalMask:
        push_epilogue(EpilogueOp::Kind::kCausalMask).scale = n.scale;
        label << "causal_mask";
        break;
      case Op::kAdd:
        push_epilogue(EpilogueOp::Kind::kResidual).residual_slot =
            slot_of[n.inputs[1]];
        label << "add";
        break;
      case Op::kInput:
      case Op::kFlatten:
        ensures(false, "unreachable op in lowering");
    }
    emitted[id] = true;

    // Fuse the sole-consumer elementwise chain into this step's epilogue.
    std::size_t tail = id;
    for (std::size_t c = fusable_consumer(tail); c != kNoNode;
         c = fusable_consumer(tail)) {
      const Node& cn = nodes[c];
      switch (cn.op) {
        case Op::kRelu:
          push_epilogue(EpilogueOp::Kind::kRelu);
          label << " +relu";
          break;
        case Op::kBias:
          push_epilogue(EpilogueOp::Kind::kBias).bias = cn.bias;
          label << " +bias";
          break;
        case Op::kSoftmax:
          push_epilogue(EpilogueOp::Kind::kSoftmax);
          label << " +softmax";
          break;
        case Op::kGelu:
          push_epilogue(EpilogueOp::Kind::kGelu);
          label << " +gelu";
          break;
        case Op::kLayerNorm: {
          EpilogueOp& op = push_epilogue(EpilogueOp::Kind::kLayerNorm);
          op.gain = cn.gain;
          op.bias = cn.bias;
          label << " +layernorm";
          break;
        }
        case Op::kCausalMask:
          push_epilogue(EpilogueOp::Kind::kCausalMask).scale = cn.scale;
          label << " +causal_mask";
          break;
        case Op::kFlatten:
          break;  // metadata only; the tail's shape absorbs it
        case Op::kAdd: {
          const std::size_t other =
              cn.inputs[0] == tail ? cn.inputs[1] : cn.inputs[0];
          push_epilogue(EpilogueOp::Kind::kResidual).residual_slot =
              slot_of[other];
          label << " +add";
          break;
        }
        default:
          ensures(false, "unreachable fused op");
      }
      emitted[c] = true;
      tail = c;
    }

    step.out_shape = nodes[tail].shape;
    step.output_slot = cg.num_slots++;
    slot_of[tail] = step.output_slot;
    step.label = label.str();
    if (step.on_accelerator()) {
      // One plan cache per weight tensor; filled lazily on first execution
      // (per backend geometry) and shared by every copy of this schedule.
      step.plan_cache = std::make_shared<nn::WeightPlanCache>();
    }
    cg.steps.push_back(std::move(step));
  }

  ensures(slot_of[output] != kNoSlot, "graph output was never materialized");
  cg.output_slot = slot_of[output];
  return cg;
}

PassProfile CompiledGraph::pass_profile(std::size_t tile_m, std::size_t tile_k,
                                        bool differential) const {
  expects(tile_m >= 1 && tile_k >= 1, "tile geometry must be positive");
  PassProfile profile;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    if (!step.on_accelerator()) continue;
    const std::size_t tiles = div_ceil(step.weight_rows(), tile_k) *
                              div_ceil(step.weight_cols(), tile_m) *
                              (differential ? 2 : 1);
    profile.steps.push_back({i, tiles, step.rows_per_sample()});
    profile.total_passes += tiles;
  }
  return profile;
}

std::string CompiledGraph::schedule_dump(std::size_t tile_m,
                                         std::size_t tile_k,
                                         bool differential) const {
  const PassProfile profile = pass_profile(tile_m, tile_k, differential);
  std::ostringstream out;
  std::size_t next_accel = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    out << "step " << i << ": " << step.label;
    if (step.on_accelerator()) {
      const StepPasses& sp = profile.steps[next_accel++];
      out << " | weights " << step.weight_rows() << "x"
          << step.weight_cols() << " | " << sp.passes << " tile pass"
          << (sp.passes == 1 ? "" : "es") << " | " << sp.rows_per_sample
          << " row" << (sp.rows_per_sample == 1 ? "" : "s") << "/sample";
    } else {
      out << " | host";
    }
    out << " | " << step.in_shape.str() << " -> " << step.out_shape.str()
        << "\n";
  }
  out << "total: " << profile.total_passes
      << " weight-tile passes per dispatch\n";
  return out.str();
}

}  // namespace ptc::graph
