#include "graph/models.hpp"

#include "common/expects.hpp"

namespace ptc::graph {

Graph mlp_graph(const Matrix& w1, const std::vector<double>& b1,
                const Matrix& w2, const std::vector<double>& b2) {
  Graph g;
  const auto x = g.input(Shape{{w1.rows()}});
  auto h = g.matmul(x, w1);
  h = g.bias(h, b1);
  h = g.relu(h);
  auto y = g.matmul(h, w2);
  g.bias(y, b2);
  return g;
}

Graph residual_mlp_graph(const Matrix& w1, const std::vector<double>& b1,
                         const Matrix& w2, const std::vector<double>& b2) {
  expects(w2.cols() == w1.rows(),
          "residual block must map back to its input width");
  Graph g;
  const auto x = g.input(Shape{{w1.rows()}});
  auto h = g.matmul(x, w1);
  h = g.bias(h, b1);
  h = g.relu(h);
  auto y = g.matmul(h, w2);
  y = g.bias(y, b2);
  y = g.add(y, x);
  g.relu(y);
  return g;
}

Matrix edge_kernel_bank(std::size_t channels) {
  expects(channels >= 1 && channels <= 8,
          "edge kernel bank provides 1..8 channels");
  // Oriented edges (Sobel x/y, two diagonals), a center-surround blob, a
  // center tap, and horizontal/vertical bars.
  const double bank[8][9] = {
      {-1, 0, 1, -2, 0, 2, -1, 0, 1},       // vertical edge (Sobel x)
      {-1, -2, -1, 0, 0, 0, 1, 2, 1},       // horizontal edge (Sobel y)
      {-2, -1, 0, -1, 0, 1, 0, 1, 2},       // diagonal edge (\)
      {0, -1, -2, 1, 0, -1, 2, 1, 0},       // diagonal edge (/)
      {-1, -1, -1, -1, 8, -1, -1, -1, -1},  // center-surround (Laplacian)
      {0, 0, 0, 0, 1, 0, 0, 0, 0},          // center tap (identity)
      {1, 1, 1, 0, 0, 0, -1, -1, -1},       // horizontal bar
      {1, 0, -1, 1, 0, -1, 1, 0, -1},       // vertical bar
  };
  Matrix kernels(9, channels);
  for (std::size_t ch = 0; ch < channels; ++ch)
    for (std::size_t i = 0; i < 9; ++i) kernels(i, ch) = bank[ch][i];
  return kernels;
}

Graph cnn_graph(std::size_t image_h, std::size_t image_w,
                const Matrix& conv_kernels, std::size_t kernel_side,
                std::size_t pool, const Matrix& w1,
                const std::vector<double>& b1, const Matrix& w2,
                const std::vector<double>& b2) {
  Graph g;
  const auto x = g.input(Shape{{image_h, image_w, 1}});
  auto v = g.conv2d(x, conv_kernels, kernel_side);
  v = g.relu(v);
  v = g.maxpool(v, pool);
  v = g.flatten(v);
  v = g.matmul(v, w1);
  v = g.bias(v, b1);
  v = g.relu(v);
  v = g.matmul(v, w2);
  g.bias(v, b2);
  return g;
}

}  // namespace ptc::graph
