#include "graph/ir.hpp"

#include <sstream>
#include <utility>

#include "common/expects.hpp"

namespace ptc::graph {

std::size_t Shape::size() const {
  std::size_t n = dims.empty() ? 0 : 1;
  for (std::size_t d : dims) n *= d;
  return n;
}

std::size_t Shape::channels() const {
  expects(!dims.empty(), "shape has no dimensions");
  return dims.back();
}

std::size_t Shape::positions() const {
  std::size_t n = 1;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) n *= dims[i];
  return n;
}

std::string Shape::str() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out << "x";
    out << dims[i];
  }
  return out.str();
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kInput: return "input";
    case Op::kMatmul: return "matmul";
    case Op::kConv2d: return "conv2d";
    case Op::kRelu: return "relu";
    case Op::kBias: return "bias";
    case Op::kAdd: return "add";
    case Op::kMaxPool: return "maxpool";
    case Op::kFlatten: return "flatten";
    case Op::kSoftmax: return "softmax";
    case Op::kEmbedding: return "embedding";
    case Op::kLayerNorm: return "layernorm";
    case Op::kGelu: return "gelu";
    case Op::kMatmulPair: return "matmul_pair";
    case Op::kCausalMask: return "causal_mask";
    case Op::kSlice: return "slice";
    case Op::kConcat: return "concat";
  }
  return "?";
}

Graph::NodeId Graph::append(Node node) {
  nodes_.push_back(std::move(node));
  if (!explicit_output_) output_ = nodes_.size() - 1;
  return nodes_.size() - 1;
}

const Node& Graph::producer(NodeId id) const {
  expects(id < nodes_.size(),
          "graph node id " + std::to_string(id) +
              " is not defined yet (graph has " +
              std::to_string(nodes_.size()) +
              " nodes; operands must be built before use)");
  return nodes_[id];
}

const Node& Graph::node(NodeId id) const { return producer(id); }

Graph::NodeId Graph::input(Shape shape) {
  expects(nodes_.empty(), "input must be the first node of the graph");
  expects(shape.dims.size() == 1 || shape.dims.size() == 3,
          "input shape must be rank 1 (features) or rank 3 (h x w x c)");
  expects(shape.size() >= 1, "input shape must be non-empty");
  Node n;
  n.op = Op::kInput;
  n.shape = std::move(shape);
  return append(std::move(n));
}

Graph::NodeId Graph::matmul(NodeId x, Matrix w) {
  const Node& in = producer(x);
  expects(in.shape.dims.size() == 1 || in.shape.is_sequence(),
          "matmul input must be a feature vector or a {t, d} sequence "
          "(flatten images first)");
  expects(w.rows() >= 1 && w.cols() >= 1, "matmul weights must be non-empty");
  expects(in.shape.channels() == w.rows(),
          "matmul input width " + in.shape.str() + " does not match weights " +
              std::to_string(w.rows()) + "x" + std::to_string(w.cols()));
  Node n;
  n.op = Op::kMatmul;
  n.inputs = {x};
  n.shape = in.shape.is_sequence() ? Shape{{in.shape.dims[0], w.cols()}}
                                   : Shape{{w.cols()}};
  n.weights = std::move(w);
  return append(std::move(n));
}

Graph::NodeId Graph::conv2d(NodeId x, Matrix kernels, std::size_t kernel_side) {
  const Node& in = producer(x);
  expects(in.shape.is_image(), "conv2d input must be an h x w x c image");
  expects(kernel_side >= 1, "conv2d kernel side must be >= 1");
  expects(kernel_side <= in.shape.height() && kernel_side <= in.shape.width(),
          "conv2d kernel side " + std::to_string(kernel_side) +
              " larger than the " + in.shape.str() + " image");
  expects(kernels.cols() >= 1, "conv2d needs at least one output channel");
  expects(kernels.rows() ==
              kernel_side * kernel_side * in.shape.channels(),
          "conv2d kernel matrix has " + std::to_string(kernels.rows()) +
              " rows but a " + std::to_string(kernel_side) + "x" +
              std::to_string(kernel_side) + " kernel over " +
              in.shape.str() + " needs kernel^2 * c_in = " +
              std::to_string(kernel_side * kernel_side *
                             in.shape.channels()));
  Node n;
  n.op = Op::kConv2d;
  n.inputs = {x};
  n.shape = Shape{{in.shape.height() - kernel_side + 1,
                   in.shape.width() - kernel_side + 1, kernels.cols()}};
  n.weights = std::move(kernels);
  n.kernel = kernel_side;
  return append(std::move(n));
}

Graph::NodeId Graph::bias(NodeId x, std::vector<double> b) {
  const Node& in = producer(x);
  expects(b.size() == in.shape.channels(),
          "bias of length " + std::to_string(b.size()) +
              " does not match the channel (innermost) dimension of " +
              in.shape.str());
  Node n;
  n.op = Op::kBias;
  n.inputs = {x};
  n.shape = in.shape;
  n.bias = std::move(b);
  return append(std::move(n));
}

Graph::NodeId Graph::relu(NodeId x) {
  Node n;
  n.op = Op::kRelu;
  n.inputs = {x};
  n.shape = producer(x).shape;
  return append(std::move(n));
}

Graph::NodeId Graph::add(NodeId a, NodeId b) {
  expects(producer(a).shape == producer(b).shape,
          "add inputs must have identical shapes (" + producer(a).shape.str() +
              " vs " + producer(b).shape.str() + ")");
  Node n;
  n.op = Op::kAdd;
  n.inputs = {a, b};
  n.shape = producer(a).shape;
  return append(std::move(n));
}

Graph::NodeId Graph::maxpool(NodeId x, std::size_t window) {
  const Node& in = producer(x);
  expects(in.shape.is_image(), "maxpool input must be an h x w x c image");
  expects(window >= 1, "maxpool window must be >= 1");
  expects(in.shape.height() >= window && in.shape.width() >= window,
          "maxpool window " + std::to_string(window) + " larger than the " +
              in.shape.str() + " image");
  Node n;
  n.op = Op::kMaxPool;
  n.inputs = {x};
  n.shape = Shape{{in.shape.height() / window, in.shape.width() / window,
                   in.shape.channels()}};
  n.pool = window;
  return append(std::move(n));
}

Graph::NodeId Graph::flatten(NodeId x) {
  const Node& in = producer(x);
  expects(in.shape.is_image(), "flatten input must be an h x w x c image");
  Node n;
  n.op = Op::kFlatten;
  n.inputs = {x};
  n.shape = Shape{{in.shape.size()}};
  return append(std::move(n));
}

Graph::NodeId Graph::softmax(NodeId x) {
  const Node& in = producer(x);
  expects(in.shape.dims.size() == 1 || in.shape.is_sequence(),
          "softmax input must be a feature vector or a {t, d} sequence");
  Node n;
  n.op = Op::kSoftmax;
  n.inputs = {x};
  n.shape = in.shape;
  return append(std::move(n));
}

Graph::NodeId Graph::embedding(NodeId ids, Matrix table, Matrix positions) {
  const Node& in = producer(ids);
  expects(in.shape.dims.size() == 1,
          "embedding input must be a rank-1 vector of token ids");
  expects(table.rows() >= 1 && table.cols() >= 1,
          "embedding table must be non-empty");
  const std::size_t t = in.shape.dims[0];
  if (positions.rows() > 0 || positions.cols() > 0) {
    expects(positions.cols() == table.cols(),
            "positional table width " + std::to_string(positions.cols()) +
                " does not match embedding width " +
                std::to_string(table.cols()));
    expects(positions.rows() >= t,
            "positional table has " + std::to_string(positions.rows()) +
                " rows but the sequence is " + std::to_string(t) + " long");
  }
  Node n;
  n.op = Op::kEmbedding;
  n.inputs = {ids};
  n.shape = Shape{{t, table.cols()}};
  n.weights = std::move(table);
  n.weights2 = std::move(positions);
  return append(std::move(n));
}

Graph::NodeId Graph::layernorm(NodeId x, std::vector<double> gain,
                               std::vector<double> bias) {
  const Node& in = producer(x);
  expects(gain.size() == in.shape.channels(),
          "layernorm gain of length " + std::to_string(gain.size()) +
              " does not match the innermost dimension of " + in.shape.str());
  expects(bias.size() == in.shape.channels(),
          "layernorm bias of length " + std::to_string(bias.size()) +
              " does not match the innermost dimension of " + in.shape.str());
  expects(in.shape.channels() >= 2,
          "layernorm needs >= 2 features per row (variance of one point)");
  Node n;
  n.op = Op::kLayerNorm;
  n.inputs = {x};
  n.shape = in.shape;
  n.gain = std::move(gain);
  n.bias = std::move(bias);
  return append(std::move(n));
}

Graph::NodeId Graph::gelu(NodeId x) {
  Node n;
  n.op = Op::kGelu;
  n.inputs = {x};
  n.shape = producer(x).shape;
  return append(std::move(n));
}

Graph::NodeId Graph::matmul_pair(NodeId a, NodeId b, bool transpose_b) {
  const Node& na = producer(a);
  const Node& nb = producer(b);
  expects(na.shape.is_sequence() && nb.shape.is_sequence(),
          "matmul_pair operands must both be {t, d} sequences (" +
              na.shape.str() + " vs " + nb.shape.str() + ")");
  const std::size_t k = na.shape.dims[1];
  if (transpose_b) {
    expects(nb.shape.dims[1] == k,
            "matmul_pair A B^T inner widths differ: " + na.shape.str() +
                " vs " + nb.shape.str());
  } else {
    expects(nb.shape.dims[0] == k,
            "matmul_pair A B inner dimensions differ: " + na.shape.str() +
                " vs " + nb.shape.str());
  }
  Node n;
  n.op = Op::kMatmulPair;
  n.inputs = {a, b};
  n.shape = Shape{{na.shape.dims[0],
                   transpose_b ? nb.shape.dims[0] : nb.shape.dims[1]}};
  n.transpose_b = transpose_b;
  return append(std::move(n));
}

Graph::NodeId Graph::causal_mask(NodeId x, double scale) {
  const Node& in = producer(x);
  expects(in.shape.is_sequence() && in.shape.dims[0] == in.shape.dims[1],
          "causal_mask input must be a square {t, t} score matrix, got " +
              in.shape.str());
  expects(scale > 0.0, "causal_mask scale must be positive");
  Node n;
  n.op = Op::kCausalMask;
  n.inputs = {x};
  n.shape = in.shape;
  n.scale = scale;
  return append(std::move(n));
}

Graph::NodeId Graph::slice(NodeId x, std::size_t from, std::size_t count) {
  const Node& in = producer(x);
  expects(in.shape.dims.size() == 1 || in.shape.is_sequence(),
          "slice input must be a feature vector or a {t, d} sequence");
  expects(count >= 1, "slice must take at least one feature");
  expects(from + count <= in.shape.channels(),
          "slice [" + std::to_string(from) + ", " +
              std::to_string(from + count) + ") out of range for " +
              in.shape.str());
  Node n;
  n.op = Op::kSlice;
  n.inputs = {x};
  n.shape = in.shape;
  n.shape.dims.back() = count;
  n.offset = from;
  return append(std::move(n));
}

Graph::NodeId Graph::concat(const std::vector<NodeId>& xs) {
  expects(xs.size() >= 2, "concat needs at least two inputs");
  const Node& first = producer(xs[0]);
  expects(first.shape.dims.size() == 1 || first.shape.is_sequence(),
          "concat inputs must be feature vectors or {t, d} sequences");
  std::size_t total = 0;
  for (NodeId id : xs) {
    const Node& in = producer(id);
    expects(in.shape.dims.size() == first.shape.dims.size(),
            "concat inputs must have the same rank (" + first.shape.str() +
                " vs " + in.shape.str() + ")");
    for (std::size_t i = 0; i + 1 < in.shape.dims.size(); ++i) {
      expects(in.shape.dims[i] == first.shape.dims[i],
              "concat inputs must agree on leading dimensions (" +
                  first.shape.str() + " vs " + in.shape.str() + ")");
    }
    total += in.shape.channels();
  }
  Node n;
  n.op = Op::kConcat;
  n.inputs = xs;
  n.shape = first.shape;
  n.shape.dims.back() = total;
  return append(std::move(n));
}

void Graph::mark_output(NodeId id) {
  expects(id < nodes_.size(),
          "output id " + std::to_string(id) + " out of range (graph has " +
              std::to_string(nodes_.size()) + " nodes)");
  output_ = id;
  explicit_output_ = true;
}

Graph::NodeId Graph::output_id() const {
  expects(!nodes_.empty(), "graph is empty");
  return output_;
}

const Shape& Graph::input_shape() const {
  expects(!nodes_.empty(), "graph is empty");
  return nodes_.front().shape;
}

const Shape& Graph::output_shape() const {
  return nodes_[output_id()].shape;
}

std::string Graph::dump() const {
  std::ostringstream out;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    out << "%" << id << " = " << op_name(n.op);
    if (n.op == Op::kMatmul) {
      out << " [" << n.weights.rows() << "x" << n.weights.cols() << "]";
    } else if (n.op == Op::kConv2d) {
      out << " [" << n.kernel << "x" << n.kernel << ", "
          << n.weights.cols() << " ch]";
    } else if (n.op == Op::kMaxPool) {
      out << " [" << n.pool << "x" << n.pool << "]";
    } else if (n.op == Op::kEmbedding) {
      out << " [" << n.weights.rows() << " x " << n.weights.cols()
          << (n.weights2.rows() > 0 ? ", +pos]" : "]");
    } else if (n.op == Op::kMatmulPair) {
      out << (n.transpose_b ? " [A B^T]" : " [A B]");
    } else if (n.op == Op::kSlice) {
      out << " [" << n.offset << ":" << n.offset + n.shape.channels() << "]";
    }
    if (!n.inputs.empty()) {
      out << " (";
      for (std::size_t i = 0; i < n.inputs.size(); ++i) {
        out << (i > 0 ? ", %" : "%") << n.inputs[i];
      }
      out << ")";
    }
    out << " : " << n.shape.str();
    if (id == output_) out << "  <- output";
    out << "\n";
  }
  return out.str();
}

}  // namespace ptc::graph
