#ifndef PTC_GRAPH_MODELS_HPP
#define PTC_GRAPH_MODELS_HPP

#include <cstddef>
#include <vector>

#include "graph/ir.hpp"

/// Ready-made graph builders for the architectures the examples, benches,
/// and serving layer exercise: the two-layer MLP (nn::Mlp's lowering), a
/// residual MLP block, and the conv -> pool -> dense digit CNN.
namespace ptc::graph {

/// input {w1.rows()} -> dense(w1, b1) -> relu -> dense(w2, b2).  This is
/// the graph nn::Mlp lowers itself to; executing it reproduces the direct
/// backend path bit for bit.
Graph mlp_graph(const Matrix& w1, const std::vector<double>& b1,
                const Matrix& w2, const std::vector<double>& b2);

/// Residual block: x -> dense(w1, b1) -> relu -> dense(w2, b2) -> add(x)
/// -> relu.  w2 must map back to the input width so the skip connection
/// type-checks.
Graph residual_mlp_graph(const Matrix& w1, const std::vector<double>& b1,
                         const Matrix& w2, const std::vector<double>& b2);

/// Fixed 3x3 single-channel feature bank (oriented edge and blob kernels)
/// as a conv2d weight matrix (9 x channels), channels in [1, 8].  A frozen
/// feature extractor: the CNN examples train only the dense head, the
/// standard trick when the analog substrate does inference-only conv.
Matrix edge_kernel_bank(std::size_t channels);

/// input {h, w, 1} -> conv2d(kernels) -> relu -> maxpool(pool) -> flatten
/// -> dense(w1, b1) -> relu -> dense(w2, b2): the conv -> pool -> dense
/// CNN.  w1.rows() must equal the flattened pooled feature count.
Graph cnn_graph(std::size_t image_h, std::size_t image_w,
                const Matrix& conv_kernels, std::size_t kernel_side,
                std::size_t pool, const Matrix& w1,
                const std::vector<double>& b1, const Matrix& w2,
                const std::vector<double>& b2);

}  // namespace ptc::graph

#endif  // PTC_GRAPH_MODELS_HPP
