#ifndef PTC_CONSOLE_CONSOLE_HPP
#define PTC_CONSOLE_CONSOLE_HPP

#include <deque>
#include <functional>
#include <iosfwd>
#include <string>

#include "console/scpi.hpp"
#include "runtime/accelerator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/token_server.hpp"

/// Operator console: a queryable control plane over a live Server +
/// Accelerator.  One SCPI-style command line in, one reply out — answered
/// from the last run's ServeReport, the live metrics registry, and the
/// fleet's device state, never from host wall time, so a scripted session
/// against a deterministic scenario produces a byte-identical transcript
/// (the CI golden-transcript check relies on this).
///
/// The same interpreter serves all three front-ends: the interactive REPL,
/// script files, and the line-oriented socket mode of tools/ptc_console.
namespace ptc::console {

/// Front-end knobs for Console::run_stream.
struct StreamOptions {
  bool prompt = false;  ///< print "ptc> " before each read (interactive)
  bool echo = false;    ///< echo "> <line>" before each reply (transcripts)
};

class Console {
 public:
  /// Attaches to a serving stack.  The console reads the server's
  /// attached metrics registry and tracer (Server::metrics / tracer), so
  /// attach those before issuing queries that need them.
  Console(serve::Server& server, serve::ModelRegistry& registry,
          runtime::Accelerator& accelerator);

  /// `SERVE:RUN?` re-runs the scenario through this callback and stores
  /// the report it returns.  Without one, SERVE:RUN? is an error.
  void set_run_callback(std::function<serve::ServeReport()> callback);

  /// `TOKen:RUN?` runs the scenario's token-serving (transformer) leg and
  /// stores the report; its tenants then answer TEN:LIST? / TEN:COST? and
  /// SNAP? grows a token-serving summary.  Without one, TOK:RUN? errors.
  void set_token_run_callback(
      std::function<serve::TokenServeReport()> callback);

  /// Seeds the report queries answer from (e.g. a run performed before
  /// the console attached).
  void set_report(serve::ServeReport report);
  const serve::ServeReport& report() const { return report_; }

  /// Seeds the token-serving report (as set_report, for TOK:RUN? state).
  void set_token_report(serve::TokenServeReport report);
  const serve::TokenServeReport& token_report() const { return token_report_; }

  /// Evaluates one command line and returns the reply ("" for a blank or
  /// comment-only line; "ERR: ..." on failure, which also queues the
  /// message for SYSTem:ERRor?).  Replies are single lines except the
  /// METRics / MODEL:SCHEDule dumps.
  std::string eval(const std::string& line);

  /// True once EXIT/QUIT has been evaluated.
  bool exit_requested() const { return exit_requested_; }

  /// Reads command lines from `in` until EOF or EXIT, writing replies to
  /// `out`.  Returns the number of commands that replied "ERR: ...".
  std::size_t run_stream(std::istream& in, std::ostream& out,
                         const StreamOptions& options = {});

 private:
  std::string dispatch(const ScpiCommand& command);
  std::string error(const std::string& message);

  std::string cmd_idn() const;
  std::string cmd_snapshot() const;
  std::string cmd_serve_run();
  std::string cmd_token_run();
  std::string cmd_measure(const ScpiCommand& command);
  std::string cmd_fleet(const ScpiCommand& command);
  std::string cmd_tenant(const ScpiCommand& command);
  std::string cmd_slo(const ScpiCommand& command);
  std::string cmd_core_health(std::size_t core);
  std::string cmd_health(const ScpiCommand& command);
  std::string cmd_alerts() const;
  std::string cmd_fault(const ScpiCommand& command);
  std::string cmd_recalibrate();
  std::string cmd_trace(const ScpiCommand& command);
  std::string cmd_metrics(const ScpiCommand& command);
  std::string cmd_model(const ScpiCommand& command);
  std::string cmd_help() const;

  serve::Server& server_;
  serve::ModelRegistry& registry_;
  runtime::Accelerator& accelerator_;
  std::function<serve::ServeReport()> run_callback_;
  std::function<serve::TokenServeReport()> token_run_callback_;
  serve::ServeReport report_;
  serve::TokenServeReport token_report_;
  std::deque<std::string> errors_;
  bool exit_requested_ = false;
};

}  // namespace ptc::console

#endif  // PTC_CONSOLE_CONSOLE_HPP
