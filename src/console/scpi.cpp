#include "console/scpi.hpp"

#include <cctype>

namespace ptc::console {
namespace {

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Header characters: mnemonic letters/digits, `:` separators, `*` common
/// commands, `_` inside mnemonics.
bool is_header_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == ':' ||
         c == '*' || c == '_';
}

}  // namespace

std::string scpi_upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool mnemonic_matches(const std::string& token, const std::string& spec) {
  // Split the spec into its short form (capitals) and full long form.
  std::string short_form;
  std::string long_form;
  for (const char c : spec) {
    const char upper =
        static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (std::isupper(static_cast<unsigned char>(c)) != 0 || c == '*') {
      short_form.push_back(upper);
    }
    long_form.push_back(upper);
  }
  const std::string t = scpi_upper(token);
  if (t.size() < short_form.size() || t.size() > long_form.size()) {
    return false;
  }
  return long_form.compare(0, t.size(), t) == 0;
}

bool mnemonic_index(const std::string& token, const std::string& spec,
                    std::size_t* index) {
  std::size_t digits = token.size();
  while (digits > 0 &&
         std::isdigit(static_cast<unsigned char>(token[digits - 1])) != 0) {
    --digits;
  }
  if (digits == token.size()) return false;  // no numeric suffix
  if (!mnemonic_matches(token.substr(0, digits), spec)) return false;
  std::size_t value = 0;
  for (std::size_t i = digits; i < token.size(); ++i) {
    value = value * 10 + static_cast<std::size_t>(token[i] - '0');
  }
  *index = value;
  return true;
}

bool parse_scpi(const std::string& line, ScpiCommand* command,
                std::string* error) {
  *command = ScpiCommand{};
  // Strip comments, then surrounding whitespace.
  std::string text = line;
  const std::size_t comment = text.find_first_of(";#");
  if (comment != std::string::npos) text.resize(comment);
  std::size_t begin = 0;
  while (begin < text.size() && is_space(text[begin])) ++begin;
  std::size_t end = text.size();
  while (end > begin && is_space(text[end - 1])) --end;
  text = text.substr(begin, end - begin);
  if (text.empty()) return true;

  // Header runs to the first whitespace; a trailing '?' marks a query.
  std::size_t header_end = 0;
  while (header_end < text.size() && !is_space(text[header_end])) {
    ++header_end;
  }
  std::string header = text.substr(0, header_end);
  if (!header.empty() && header.back() == '?') {
    command->query = true;
    header.pop_back();
  }
  if (header.empty()) {
    *error = "empty command header";
    return false;
  }
  for (const char c : header) {
    if (!is_header_char(c)) {
      *error = std::string("bad character '") + c + "' in command header";
      return false;
    }
  }
  std::size_t token_begin = 0;
  for (std::size_t i = 0; i <= header.size(); ++i) {
    if (i == header.size() || header[i] == ':') {
      if (i == token_begin) {
        *error = "empty mnemonic in command header";
        return false;
      }
      command->mnemonics.push_back(header.substr(token_begin, i - token_begin));
      token_begin = i + 1;
    }
  }

  // Arguments: whitespace- or comma-separated tokens after the header.
  std::size_t i = header_end;
  while (i < text.size()) {
    while (i < text.size() && (is_space(text[i]) || text[i] == ',')) ++i;
    std::size_t start = i;
    while (i < text.size() && !is_space(text[i]) && text[i] != ',') ++i;
    if (i > start) command->args.push_back(text.substr(start, i - start));
  }
  return true;
}

}  // namespace ptc::console
