#include "console/demo.hpp"

#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"

namespace ptc::console {
namespace {

/// 4 drifting, device-varied cores: small enough to run in milliseconds,
/// varied enough that accuracy scoring, detuning queries, and the
/// recalibration fleet row all have non-trivial answers.
runtime::AcceleratorConfig demo_config(std::size_t threads) {
  runtime::AcceleratorConfig config;
  config.cores = 4;
  config.threads = threads;
  config.variation.seed = 7;
  config.drift.sigma = 0.5;
  config.drift.tau = 1e-6;
  return config;
}

}  // namespace

DemoScenario::DemoScenario(std::size_t threads)
    : accelerator_(demo_config(threads)),
      registry_(accelerator_),
      server_(registry_) {
  Rng rng(2025);
  // "vision" streams more tiles than the fleet holds (always cold);
  // "keyword" fits resident, so its back-to-back batches run warm — the
  // cost asymmetry TEN:COST? exists to expose.
  registry_.add("vision", nn::Mlp(32, 24, 10, rng));
  registry_.add("keyword", nn::Mlp(16, 12, 4, rng));
  server_.set_tracer(&tracer_);
  server_.set_metrics(&metrics_);

  serve::SloObjective latency;
  latency.name = "p99-latency";
  latency.kind = serve::SloObjective::Kind::kLatency;
  latency.latency_target = 30e-9;
  latency.objective = 0.99;
  latency.short_window = 50e-9;
  latency.long_window = 200e-9;
  latency.burn_threshold = 1.0;
  server_.add_slo(latency);

  serve::SloObjective accuracy;
  accuracy.name = "mobile-accuracy";
  accuracy.tenant = "mobile";
  accuracy.kind = serve::SloObjective::Kind::kErrorRate;
  accuracy.objective = 0.9;
  accuracy.short_window = 100e-9;
  accuracy.long_window = 400e-9;
  accuracy.burn_threshold = 1.0;
  server_.add_slo(accuracy);
}

serve::ServeReport DemoScenario::run() {
  const serve::LoadGenerator generator(
      {{.name = "mobile", .model = "vision", .rate = 120e6, .requests = 24},
       {.name = "embedded", .model = "keyword", .rate = 500e6, .requests = 36}},
      7);
  // Oracle-free recalibration: probe sweeps every 10 ns feed the health
  // monitor, and the re-lock fires from the *estimated* detuning — so the
  // transcript's HEALth queries have live estimator state behind them.
  // The demo drifts fast (tau = 1 us vs a ~125 ns run), so the threshold
  // sits low enough for the lagging EWMA estimate to cross it mid-run.
  const serve::BatchPolicy policy{.max_batch = 8, .max_wait = 25e-9,
                                  .probe_period = 10e-9,
                                  .estimated_drift_threshold = 0.1};
  return server_.run(generator.generate(registry_), policy);
}

Console DemoScenario::make_console() {
  Console console(server_, registry_, accelerator_);
  console.set_run_callback([this] { return run(); });
  return console;
}

}  // namespace ptc::console
