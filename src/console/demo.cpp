#include "console/demo.hpp"

#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "nn/transformer.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/token_server.hpp"

namespace ptc::console {
namespace {

/// 4 drifting, device-varied cores: small enough to run in milliseconds,
/// varied enough that accuracy scoring, detuning queries, and the
/// recalibration fleet row all have non-trivial answers.
runtime::AcceleratorConfig demo_config(std::size_t threads) {
  runtime::AcceleratorConfig config;
  config.cores = 4;
  config.threads = threads;
  config.variation.seed = 7;
  config.drift.sigma = 0.5;
  config.drift.tau = 1e-6;
  return config;
}

}  // namespace

DemoScenario::DemoScenario(std::size_t threads)
    : accelerator_(demo_config(threads)),
      registry_(accelerator_),
      server_(registry_) {
  Rng rng(2025);
  // "vision" streams more tiles than the fleet holds (always cold);
  // "keyword" fits resident, so its back-to-back batches run warm — the
  // cost asymmetry TEN:COST? exists to expose.
  registry_.add("vision", nn::Mlp(32, 24, 10, rng));
  registry_.add("keyword", nn::Mlp(16, 12, 4, rng));
  // "chat" is the token-serving tenant's transformer: TOK:RUN? decodes
  // against it and its KV-residency costs land in TEN:COST?.
  nn::TransformerConfig tf_config;
  tf_config.vocab = 16;
  tf_config.d_model = 8;
  tf_config.heads = 2;
  tf_config.layers = 2;
  tf_config.d_ff = 12;
  tf_config.max_seq = 24;
  Rng tf_rng(71);
  registry_.add_transformer("chat",
                            nn::TransformerModel::random(tf_config, tf_rng));
  server_.set_tracer(&tracer_);
  server_.set_metrics(&metrics_);

  serve::SloObjective latency;
  latency.name = "p99-latency";
  latency.kind = serve::SloObjective::Kind::kLatency;
  latency.latency_target = 30e-9;
  latency.objective = 0.99;
  latency.short_window = 50e-9;
  latency.long_window = 200e-9;
  latency.burn_threshold = 1.0;
  server_.add_slo(latency);

  serve::SloObjective accuracy;
  accuracy.name = "mobile-accuracy";
  accuracy.tenant = "mobile";
  accuracy.kind = serve::SloObjective::Kind::kErrorRate;
  accuracy.objective = 0.9;
  accuracy.short_window = 100e-9;
  accuracy.long_window = 400e-9;
  accuracy.burn_threshold = 1.0;
  server_.add_slo(accuracy);
}

serve::ServeReport DemoScenario::run() {
  const serve::LoadGenerator generator(
      {{.name = "mobile", .model = "vision", .rate = 120e6, .requests = 24},
       {.name = "embedded", .model = "keyword", .rate = 500e6, .requests = 36}},
      7);
  // Oracle-free recalibration: probe sweeps every 10 ns feed the health
  // monitor, and the re-lock fires from the *estimated* detuning — so the
  // transcript's HEALth queries have live estimator state behind them.
  // The demo drifts fast (tau = 1 us vs a ~125 ns run), so the threshold
  // sits low enough for the lagging EWMA estimate to cross it mid-run.
  const serve::BatchPolicy policy{.max_batch = 8, .max_wait = 25e-9,
                                  .probe_period = 10e-9,
                                  .estimated_drift_threshold = 0.1};
  return server_.run(generator.generate(registry_), policy);
}

serve::TokenServeReport DemoScenario::run_tokens() {
  // Six near-simultaneous chat requests (decode steps are ns-scale) from
  // two tenants, under a KV budget tight enough to force preemption — so
  // the console's token, residency, and eviction figures are all live.
  std::vector<serve::TokenRequest> requests;
  Rng load(72);
  for (std::size_t i = 0; i < 6; ++i) {
    serve::TokenRequest request;
    request.id = i;
    request.tenant = i % 2 == 0 ? "chat-pro" : "chat-free";
    request.model = "chat";
    request.arrival = static_cast<double>(i) * 1e-9;
    const std::size_t prompt_len = 1 + load.below(4);
    for (std::size_t t = 0; t < prompt_len; ++t) {
      request.prompt.push_back(load.below(16));
    }
    request.max_new = 3 + load.below(6);
    requests.push_back(std::move(request));
  }
  serve::TokenServer server(registry_);
  server.set_tracer(&tracer_);
  serve::TokenPolicy policy;
  policy.schedule = serve::TokenPolicy::Schedule::kContinuous;
  policy.max_batch = 8;
  policy.kv_budget_rows = 16;
  return server.run(requests, policy);
}

Console DemoScenario::make_console() {
  Console console(server_, registry_, accelerator_);
  console.set_run_callback([this] { return run(); });
  console.set_token_run_callback([this] { return run_tokens(); });
  return console;
}

}  // namespace ptc::console
