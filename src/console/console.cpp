#include "console/console.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/json.hpp"

namespace ptc::console {
namespace {

/// All numeric output goes through the shortest round-trip formatter, so a
/// transcript is byte-stable and parses back to the exact double.
std::string num(double x) { return json::format_number(x); }

std::string count(std::size_t n) { return std::to_string(n); }

/// Strict decimal parse for console arguments (no signs, no suffixes).
bool parse_size(const std::string& s, std::size_t* out) {
  if (s.empty()) return false;
  std::size_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

Console::Console(serve::Server& server, serve::ModelRegistry& registry,
                 runtime::Accelerator& accelerator)
    : server_(server), registry_(registry), accelerator_(accelerator) {}

void Console::set_run_callback(std::function<serve::ServeReport()> callback) {
  run_callback_ = std::move(callback);
}

void Console::set_token_run_callback(
    std::function<serve::TokenServeReport()> callback) {
  token_run_callback_ = std::move(callback);
}

void Console::set_report(serve::ServeReport report) {
  report_ = std::move(report);
}

void Console::set_token_report(serve::TokenServeReport report) {
  token_report_ = std::move(report);
}

std::string Console::error(const std::string& message) {
  errors_.push_back("-100,\"" + message + "\"");
  return "ERR: " + message;
}

std::string Console::eval(const std::string& line) {
  ScpiCommand command;
  std::string parse_error;
  if (!parse_scpi(line, &command, &parse_error)) {
    return error(parse_error);
  }
  if (command.empty()) return "";
  return dispatch(command);
}

std::string Console::dispatch(const ScpiCommand& command) {
  const std::string& head = command.mnemonics.front();

  if (mnemonic_matches(head, "*IDN")) {
    if (!command.query) return error("*IDN is a query (use *IDN?)");
    return cmd_idn();
  }
  if (mnemonic_matches(head, "EXIT") || mnemonic_matches(head, "QUIT")) {
    exit_requested_ = true;
    return "OK bye";
  }
  if (mnemonic_matches(head, "HELP")) return cmd_help();
  if (mnemonic_matches(head, "SNAPshot")) {
    if (!command.query) return error("SNAP is a query (use SNAP?)");
    return cmd_snapshot();
  }
  if (mnemonic_matches(head, "SERVE")) {
    if (command.mnemonics.size() == 2 &&
        mnemonic_matches(command.mnemonics[1], "RUN") && command.query) {
      return cmd_serve_run();
    }
    return error("unknown SERVE command (try SERVE:RUN?)");
  }
  if (mnemonic_matches(head, "TOKen")) {
    if (command.mnemonics.size() == 2 &&
        mnemonic_matches(command.mnemonics[1], "RUN") && command.query) {
      return cmd_token_run();
    }
    return error("unknown TOKen command (try TOK:RUN?)");
  }
  if (mnemonic_matches(head, "MEASure")) return cmd_measure(command);
  if (mnemonic_matches(head, "FLEET")) return cmd_fleet(command);
  if (mnemonic_matches(head, "TENant")) return cmd_tenant(command);
  if (mnemonic_matches(head, "SLO")) return cmd_slo(command);
  if (mnemonic_matches(head, "HEALth")) return cmd_health(command);
  if (mnemonic_matches(head, "ALERT")) {
    if (command.mnemonics.size() == 2 &&
        mnemonic_matches(command.mnemonics[1], "LIST") && command.query) {
      return cmd_alerts();
    }
    return error("unknown ALERT command (try ALERT:LIST?)");
  }
  if (mnemonic_matches(head, "FAULT")) return cmd_fault(command);
  if (mnemonic_matches(head, "RECALibrate")) return cmd_recalibrate();
  if (mnemonic_matches(head, "TRACE")) return cmd_trace(command);
  if (mnemonic_matches(head, "METRics")) return cmd_metrics(command);
  if (mnemonic_matches(head, "MODEL")) return cmd_model(command);
  if (mnemonic_matches(head, "SYSTem")) {
    if (command.mnemonics.size() == 2 &&
        mnemonic_matches(command.mnemonics[1], "ERRor") && command.query) {
      if (errors_.empty()) return "0,\"No error\"";
      std::string oldest = errors_.front();
      errors_.pop_front();
      return oldest;
    }
    return error("unknown SYSTem command (try SYST:ERR?)");
  }
  return error("undefined header \"" + head + "\" (try HELP)");
}

std::string Console::cmd_idn() const {
  return "ptc,photonic-tensor-core,cores=" + count(accelerator_.core_count()) +
         ",v1";
}

std::string Console::cmd_snapshot() const {
  std::ostringstream out;
  out << "completed=" << count(report_.completed)
      << " batches=" << count(report_.dispatched_batches)
      << " makespan_s=" << num(report_.makespan)
      << " p99_s=" << num(report_.total.p99)
      << " throughput_rps=" << num(report_.throughput())
      << " energy_J=" << num(report_.energy)
      << " warm_fraction=" << num(report_.warm_fraction())
      << " accuracy=" << num(report_.accuracy())
      << " recalibrations=" << count(report_.recalibrations)
      << " max_detuning_K=" << num(report_.max_abs_detuning)
      << " probes=" << count(report_.probes)
      << " probe_overhead=" << num(report_.probe_overhead())
      << " faults=" << count(report_.faults)
      << " evictions=" << count(report_.core_evictions)
      << " shed=" << count(report_.shed)
      << " availability=" << num(report_.availability());
  // Token-serving summary, once a TOK:RUN? has happened.
  if (token_report_.steps > 0) {
    out << " tokens=" << count(token_report_.tokens)
        << " token_steps=" << count(token_report_.steps)
        << " tokens_per_s=" << num(token_report_.tokens_per_second())
        << " energy_per_token_J=" << num(token_report_.energy_per_token())
        << " kv_peak_rows=" << count(token_report_.kv_peak_rows)
        << " preemptions=" << count(token_report_.preemptions);
  }
  return out.str();
}

std::string Console::cmd_token_run() {
  if (!token_run_callback_) {
    return error("no token scenario attached (TOK:RUN? needs a callback)");
  }
  token_report_ = token_run_callback_();
  return "OK completed=" + count(token_report_.completed) +
         " steps=" + count(token_report_.steps) +
         " tokens=" + count(token_report_.tokens) +
         " p99_s=" + num(token_report_.total.p99) +
         " makespan_s=" + num(token_report_.makespan);
}

std::string Console::cmd_serve_run() {
  if (!run_callback_) {
    return error("no scenario attached (SERVE:RUN? needs a run callback)");
  }
  report_ = run_callback_();
  return "OK completed=" + count(report_.completed) +
         " batches=" + count(report_.dispatched_batches) +
         " makespan_s=" + num(report_.makespan);
}

std::string Console::cmd_measure(const ScpiCommand& command) {
  if (command.mnemonics.size() != 2 || !command.query) {
    return error("unknown MEASure command (try MEAS:LAT? P99)");
  }
  const std::string& what = command.mnemonics[1];

  if (mnemonic_matches(what, "LATency")) {
    if (command.args.empty()) {
      return error("MEAS:LAT? needs a statistic (P50|P95|P99|MAX|MEAN)");
    }
    serve::LatencyStats stats = report_.total;
    if (command.args.size() >= 2) {
      const std::string& tenant = command.args[1];
      if (report_.tenant_cost(tenant) == nullptr) {
        return error("unknown tenant \"" + tenant + "\"");
      }
      if (report_.requests.empty()) {
        return error("per-tenant latency needs keep_records");
      }
      stats = report_.tenant_total(tenant);
    }
    const std::string stat = scpi_upper(command.args[0]);
    if (stat == "P50") return num(stats.p50);
    if (stat == "P95") return num(stats.p95);
    if (stat == "P99") return num(stats.p99);
    if (stat == "MAX") return num(stats.max);
    if (stat == "MEAN") return num(stats.mean);
    if (stat == "COUNT") return count(stats.count);
    return error("unknown statistic \"" + command.args[0] + "\"");
  }
  if (mnemonic_matches(what, "THRoughput")) return num(report_.throughput());
  if (mnemonic_matches(what, "ACCuracy")) return num(report_.accuracy());
  if (mnemonic_matches(what, "UTILization")) return num(report_.utilization());
  if (mnemonic_matches(what, "ENERgy")) {
    if (command.args.empty()) return num(report_.energy);
    const serve::TenantCost* cost = report_.tenant_cost(command.args[0]);
    if (cost == nullptr) {
      return error("unknown tenant \"" + command.args[0] + "\"");
    }
    return num(cost->energy_joules);
  }
  return error("unknown MEASure command \"" + what + "\"");
}

std::string Console::cmd_fleet(const ScpiCommand& command) {
  if (command.mnemonics.size() < 2 || !command.query) {
    return error("unknown FLEET command (try FLEET:CORES?)");
  }
  const std::string& sub = command.mnemonics[1];

  if (command.mnemonics.size() == 2) {
    if (mnemonic_matches(sub, "CORES")) {
      return count(accelerator_.core_count());
    }
    if (mnemonic_matches(sub, "DETUNing")) {
      return num(accelerator_.max_abs_detuning());
    }
    if (mnemonic_matches(sub, "EPOCH")) {
      return count(accelerator_.core(0).calibration_epoch());
    }
    return error("unknown FLEET command \"" + sub + "\"");
  }

  std::size_t core = 0;
  if (command.mnemonics.size() == 3 && mnemonic_index(sub, "CORE", &core)) {
    if (core >= accelerator_.core_count()) {
      return error("core index " + count(core) + " out of range (fleet has " +
                   count(accelerator_.core_count()) + ")");
    }
    const std::string& leaf = command.mnemonics[2];
    if (mnemonic_matches(leaf, "DETUNing")) {
      return num(accelerator_.core(core).thermal_detuning());
    }
    if (mnemonic_matches(leaf, "EPOCH")) {
      return count(accelerator_.core(core).calibration_epoch());
    }
    if (mnemonic_matches(leaf, "HEALth")) {
      return cmd_core_health(core);
    }
    if (mnemonic_matches(leaf, "BUSY")) {
      telemetry::MetricsRegistry* metrics = server_.metrics();
      if (metrics == nullptr) return error("no metrics registry attached");
      const telemetry::LabelSet labels = {{"core", count(core)}};
      if (!metrics->contains("fleet_core_busy_seconds_total", labels)) {
        return num(0.0);
      }
      return num(
          metrics->counter("fleet_core_busy_seconds_total", labels).value());
    }
    return error("unknown FLEET:CORE command \"" + leaf + "\"");
  }
  return error("unknown FLEET command");
}

std::string Console::cmd_tenant(const ScpiCommand& command) {
  if (command.mnemonics.size() != 2 || !command.query) {
    return error("unknown TENant command (try TEN:LIST?)");
  }
  const std::string& sub = command.mnemonics[1];

  if (mnemonic_matches(sub, "LIST")) {
    // Batch tenants first, then token-serving tenants (a tenant billed in
    // both runs is listed once).
    std::string out;
    for (const serve::TenantCost& cost : report_.tenant_costs) {
      if (!out.empty()) out += ",";
      out += cost.tenant;
    }
    for (const serve::TenantCost& cost : token_report_.tenant_costs) {
      if (report_.tenant_cost(cost.tenant) != nullptr) continue;
      if (!out.empty()) out += ",";
      out += cost.tenant;
    }
    return out.empty() ? "none" : out;
  }
  if (mnemonic_matches(sub, "COST")) {
    if (command.args.empty()) return error("TEN:COST? needs a tenant name");
    // Batch-serving row first; token-serving tenants answer from the last
    // TOK:RUN? report (same TenantCost shape, token fields live).
    const serve::TenantCost* cost = report_.tenant_cost(command.args[0]);
    if (cost == nullptr) cost = token_report_.tenant_cost(command.args[0]);
    if (cost == nullptr) {
      return error("unknown tenant \"" + command.args[0] + "\"");
    }
    std::ostringstream out;
    out << "tenant=" << cost->tenant << " requests=" << count(cost->requests)
        << " batches=" << count(cost->batches)
        << " passes=" << count(cost->passes)
        << " warm_passes=" << count(cost->warm_passes)
        << " service_s=" << num(cost->service_seconds)
        << " busy_s=" << num(cost->busy_seconds)
        << " energy_J=" << num(cost->energy_joules)
        << " recalibrations=" << count(cost->recalibrations)
        << " recal_s=" << num(cost->recalibration_seconds)
        << " probes=" << count(cost->probes)
        << " probe_s=" << num(cost->probe_seconds)
        << " faults=" << count(cost->faults)
        << " fault_s=" << num(cost->fault_seconds)
        << " shed=" << count(cost->shed_requests)
        << " tokens=" << count(cost->tokens)
        << " kv_row_s=" << num(cost->kv_row_seconds)
        << " kv_evicted_rows=" << count(cost->kv_evicted_rows)
        << " preemptions=" << count(cost->preemptions);
    return out.str();
  }
  return error("unknown TENant command \"" + sub + "\"");
}

std::string Console::cmd_slo(const ScpiCommand& command) {
  if (command.mnemonics.size() != 2 || !command.query) {
    return error("unknown SLO command (try SLO:BURN?)");
  }
  const std::string& sub = command.mnemonics[1];
  const std::vector<serve::SloMonitor>& monitors = server_.slos();

  if (mnemonic_matches(sub, "LIST")) {
    if (monitors.empty()) return "none";
    std::string out;
    for (const serve::SloMonitor& monitor : monitors) {
      if (!out.empty()) out += ",";
      out += monitor.objective().name;
    }
    return out;
  }
  if (mnemonic_matches(sub, "BURN")) {
    if (monitors.empty()) return "none";
    std::ostringstream out;
    bool first = true;
    for (const serve::SloMonitor& monitor : monitors) {
      if (!command.args.empty() &&
          monitor.objective().name != command.args[0]) {
        continue;
      }
      if (!first) out << "\n";
      first = false;
      out << monitor.objective().name << " short=" << num(monitor.short_burn())
          << " long=" << num(monitor.long_burn())
          << " breaching=" << (monitor.breaching() ? 1 : 0)
          << " observed=" << count(monitor.observed())
          << " bad=" << count(monitor.bad())
          << " alerts=" << count(monitor.alerts().size());
    }
    if (first) return error("unknown SLO \"" + command.args[0] + "\"");
    return out.str();
  }
  return error("unknown SLO command \"" + sub + "\"");
}

std::string Console::cmd_core_health(std::size_t core) {
  fleet::FleetHealthMonitor* health = server_.health();
  if (health == nullptr) {
    return error("no health monitor (serve with probe_period > 0 first)");
  }
  const fleet::DriftEstimator& estimator = health->estimator(core);
  const fleet::AnomalyDetector& detector = health->detector(core);
  telemetry::TimeSeriesStore& store = health->store();
  // Last raw reading of one of this core's sensor channels (0 before the
  // first sweep — the channels appear on the first sample()).
  const auto last = [&](const char* sensor) {
    const std::string name = "core" + count(core) + "/" + sensor;
    return store.contains(name) ? store.channel(name).last_value() : 0.0;
  };
  std::ostringstream out;
  out << "core=" << count(core) << " estimate_K=" << num(estimator.estimate())
      << " raw_K=" << num(estimator.raw())
      << " slope_K_per_s=" << num(estimator.slope())
      << " probe_transmission=" << num(last("probe_transmission"))
      << " heater_duty=" << num(last("heater_duty"))
      << " epoch=" << count(accelerator_.core(core).calibration_epoch())
      << " psram_bit_flips=" << num(last("psram_bit_flips"))
      << " adc_saturation_rate=" << num(last("adc_saturation_rate"))
      << " anomalous=" << (detector.anomalous() ? 1 : 0)
      << " score=" << num(detector.score())
      << " samples=" << count(health->samples_taken());
  return out.str();
}

std::string Console::cmd_health(const ScpiCommand& command) {
  if (command.mnemonics.size() != 2 || !command.query) {
    return error("unknown HEALth command (try HEAL:ALERts?)");
  }
  const std::string& sub = command.mnemonics[1];
  if (mnemonic_matches(sub, "ALERts")) {
    fleet::FleetHealthMonitor* health = server_.health();
    if (health == nullptr) {
      return error("no health monitor (serve with probe_period > 0 first)");
    }
    if (health->alerts().empty()) return "none";
    std::ostringstream out;
    bool first = true;
    for (const fleet::HealthAlert& alert : health->alerts()) {
      if (!first) out << "\n";
      first = false;
      out << alert.name << " t=" << num(alert.time)
          << " core=" << count(alert.core) << " value=" << num(alert.value)
          << " score=" << num(alert.score);
    }
    return out.str();
  }
  return error("unknown HEALth command \"" + sub + "\"");
}

std::string Console::cmd_alerts() const {
  std::ostringstream out;
  bool any = false;
  for (const serve::SloMonitor& monitor : server_.slos()) {
    for (const serve::SloAlert& alert : monitor.alerts()) {
      if (any) out << "\n";
      any = true;
      out << monitor.objective().name << " t=" << num(alert.time)
          << " short=" << num(alert.short_burn)
          << " long=" << num(alert.long_burn);
    }
  }
  return any ? out.str() : "none";
}

std::string Console::cmd_fault(const ScpiCommand& command) {
  // FAULT? — fleet-wide registry summary.
  if (command.mnemonics.size() == 1) {
    if (!command.query) return error("FAULT alone is a query (use FAULT?)");
    std::ostringstream out;
    out << "injected=" << count(accelerator_.faults_injected())
        << " evicted=" << count(accelerator_.evicted_count())
        << " active=" << count(accelerator_.active_core_count())
        << " health=";
    for (std::size_t i = 0; i < accelerator_.core_count(); ++i) {
      if (i > 0) out << ",";
      out << runtime::to_string(accelerator_.core_health(i));
      if (accelerator_.core_evicted(i)) out << "(evicted)";
    }
    return out.str();
  }
  if (command.mnemonics.size() != 2) {
    return error("unknown FAULT command (try FAULT:INJect <kind> <core>)");
  }
  const std::string& sub = command.mnemonics[1];
  // Core index argument shared by every subcommand; INJect takes it second
  // (after the kind), the others first.
  const auto parse_core = [&](std::size_t arg_index,
                              std::size_t* core) -> std::string {
    if (command.args.size() <= arg_index) return "missing core index";
    if (!parse_size(command.args[arg_index], core)) {
      return "bad core index \"" + command.args[arg_index] + "\"";
    }
    if (*core >= accelerator_.core_count()) {
      return "core index " + count(*core) + " out of range (fleet has " +
             count(accelerator_.core_count()) + ")";
    }
    return "";
  };

  if (mnemonic_matches(sub, "INJect")) {
    if (command.args.empty()) {
      return error("FAULT:INJ needs a kind (DEADRINGS|HEATER|ADC) and core");
    }
    runtime::FaultEvent event;
    const std::string kind = scpi_upper(command.args[0]);
    if (kind == "DEADRINGS") {
      event.kind = runtime::FaultEvent::Kind::kDeadRings;
    } else if (kind == "HEATER") {
      event.kind = runtime::FaultEvent::Kind::kStuckHeater;
    } else if (kind == "ADC") {
      event.kind = runtime::FaultEvent::Kind::kAdcLadder;
    } else {
      return error("unknown fault kind \"" + command.args[0] +
                   "\" (DEADRINGS|HEATER|ADC)");
    }
    const std::string bad = parse_core(1, &event.core);
    if (!bad.empty()) return error(bad);
    // Optional third argument: rings latched (DEADRINGS) or the row whose
    // ladder dies (ADC); optional fourth: ring-site sampling seed.
    if (command.args.size() >= 3) {
      std::size_t extra = 0;
      if (!parse_size(command.args[2], &extra)) {
        return error("bad fault argument \"" + command.args[2] + "\"");
      }
      if (event.kind == runtime::FaultEvent::Kind::kAdcLadder) {
        if (extra >= accelerator_.core(event.core).rows()) {
          return error("ADC row " + count(extra) + " out of range");
        }
        event.row = extra;
      } else {
        event.count = extra;
      }
    }
    if (command.args.size() >= 4) {
      std::size_t seed = 0;
      if (!parse_size(command.args[3], &seed)) {
        return error("bad fault seed \"" + command.args[3] + "\"");
      }
      event.seed = static_cast<std::uint64_t>(seed) | 1u;
    }
    accelerator_.inject(event);
    const runtime::CoreHealth verdict = accelerator_.run_self_test(event.core);
    return "OK core=" + count(event.core) +
           " kind=" + runtime::to_string(event.kind) +
           " health=" + runtime::to_string(verdict) +
           " downtime_s=" + num(accelerator_.self_test_cost().latency);
  }
  if (mnemonic_matches(sub, "CLEar")) {
    runtime::FaultEvent event;
    event.kind = runtime::FaultEvent::Kind::kClear;
    const std::string bad = parse_core(0, &event.core);
    if (!bad.empty()) return error(bad);
    accelerator_.inject(event);
    const runtime::CoreHealth verdict = accelerator_.run_self_test(event.core);
    return "OK core=" + count(event.core) +
           " health=" + runtime::to_string(verdict) +
           (accelerator_.core_evicted(event.core) ? " evicted=1" : "");
  }
  if (mnemonic_matches(sub, "EVICt")) {
    std::size_t core = 0;
    const std::string bad = parse_core(0, &core);
    if (!bad.empty()) return error(bad);
    if (accelerator_.core_evicted(core)) {
      return error("core " + count(core) + " is already evicted");
    }
    if (accelerator_.active_core_count() <= 1) {
      return error("cannot evict the last active core");
    }
    accelerator_.evict_core(core);
    registry_.reset_residency();
    return "OK evicted=" + count(core) +
           " active=" + count(accelerator_.active_core_count());
  }
  if (mnemonic_matches(sub, "READmit")) {
    std::size_t core = 0;
    const std::string bad = parse_core(0, &core);
    if (!bad.empty()) return error(bad);
    if (!accelerator_.core_evicted(core)) {
      return error("core " + count(core) + " is not evicted");
    }
    if (accelerator_.core_health(core) == runtime::CoreHealth::kFailed) {
      return error("core " + count(core) +
                   " is FAILED (FAULT:CLEar it first)");
    }
    accelerator_.readmit_core(core);
    registry_.reset_residency();
    return "OK readmitted=" + count(core) +
           " active=" + count(accelerator_.active_core_count());
  }
  return error("unknown FAULT command \"" + sub + "\"");
}

std::string Console::cmd_recalibrate() {
  const runtime::BatchCost downtime = accelerator_.recalibrate();
  return "OK downtime_s=" + num(downtime.latency) +
         " epoch=" + count(accelerator_.core(0).calibration_epoch());
}

std::string Console::cmd_trace(const ScpiCommand& command) {
  if (command.mnemonics.size() != 2) {
    return error("unknown TRACE command (try TRACE:DUMP <path>)");
  }
  const std::string& sub = command.mnemonics[1];
  telemetry::Tracer* tracer = server_.tracer();
  if (mnemonic_matches(sub, "SIZE")) {
    if (!command.query) return error("TRACE:SIZE is a query");
    return count(tracer == nullptr ? 0 : tracer->size());
  }
  if (mnemonic_matches(sub, "DUMP")) {
    if (tracer == nullptr) return error("no tracer attached");
    if (command.args.empty()) return error("TRACE:DUMP needs a file path");
    try {
      tracer->write_chrome_json_file(command.args[0]);
    } catch (const std::exception& e) {
      return error(e.what());
    }
    return "OK events=" + count(tracer->size()) + " path=" + command.args[0];
  }
  return error("unknown TRACE command \"" + sub + "\"");
}

std::string Console::cmd_metrics(const ScpiCommand& command) {
  if (command.mnemonics.size() != 2 || !command.query) {
    return error("unknown METRics command (try METR:PROM?)");
  }
  telemetry::MetricsRegistry* metrics = server_.metrics();
  if (metrics == nullptr) return error("no metrics registry attached");
  const std::string& sub = command.mnemonics[1];
  if (mnemonic_matches(sub, "PROMetheus")) {
    std::string text = metrics->prometheus_text();
    while (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }
  if (mnemonic_matches(sub, "JSON")) return metrics->to_json();
  return error("unknown METRics command \"" + sub + "\"");
}

std::string Console::cmd_model(const ScpiCommand& command) {
  if (command.mnemonics.size() == 2 &&
      mnemonic_matches(command.mnemonics[1], "SCHEDule") && command.query) {
    if (command.args.empty()) return error("MODEL:SCHED? needs a model name");
    if (!registry_.contains(command.args[0])) {
      return error("unknown model \"" + command.args[0] + "\"");
    }
    std::string dump = registry_.schedule_dump(command.args[0]);
    while (!dump.empty() && dump.back() == '\n') dump.pop_back();
    return dump;
  }
  return error("unknown MODEL command (try MODEL:SCHED? <name>)");
}

std::string Console::cmd_help() const {
  return "*IDN?                          identify the instrument\n"
         "SNAPshot?                      one-line fleet summary\n"
         "SERVE:RUN?                     re-run the attached scenario\n"
         "TOKen:RUN?                     run the token-serving scenario\n"
         "MEASure:LATency? <stat> [ten]  P50|P95|P99|MAX|MEAN|COUNT [s]\n"
         "MEASure:THRoughput?            completed requests per second\n"
         "MEASure:ACCuracy?              fraction matching float reference\n"
         "MEASure:UTILization?           busy / (cores * makespan)\n"
         "MEASure:ENERgy? [tenant]       fleet or per-tenant energy [J]\n"
         "FLEET:CORES?                   fleet size\n"
         "FLEET:DETUNing?                worst |thermal detuning| [K]\n"
         "FLEET:CORE<i>:DETUNing?        one core's detuning [K]\n"
         "FLEET:CORE<i>:EPOCH?           one core's calibration epoch\n"
         "FLEET:CORE<i>:BUSY?            one core's attributed busy [s]\n"
         "FLEET:CORE<i>:HEALth?          one core's sensor/estimator summary\n"
         "TENant:LIST?                   tenants billed in the last run\n"
         "TENant:COST? <tenant>          full cost attribution row\n"
         "SLO:LIST?                      registered SLO names\n"
         "SLO:BURN? [name]               burn rates per objective\n"
         "ALERT:LIST?                    burn-rate alert firings\n"
         "HEALth:ALERts?                 health anomaly alert firings\n"
         "FAULT?                         fault registry / per-core health\n"
         "FAULT:INJect <kind> <core>     DEADRINGS|HEATER|ADC [arg] [seed]\n"
         "FAULT:CLEar <core>             field repair: clear injected faults\n"
         "FAULT:EVICt <core>             drop a core from the rotation\n"
         "FAULT:READmit <core>           return an evicted core to service\n"
         "RECALibrate                    re-lock every core now\n"
         "TRACE:SIZE?                    trace events buffered\n"
         "TRACE:DUMP <path>              write Chrome trace JSON\n"
         "METRics:PROMetheus?            metrics, Prometheus text format\n"
         "METRics:JSON?                  metrics, JSON export\n"
         "MODEL:SCHEDule? <name>         a model's tile schedule\n"
         "SYSTem:ERRor?                  pop the oldest queued error\n"
         "EXIT                           leave the console";
}

std::size_t Console::run_stream(std::istream& in, std::ostream& out,
                                const StreamOptions& options) {
  std::size_t errors = 0;
  std::string line;
  while (!exit_requested_) {
    if (options.prompt) out << "ptc> " << std::flush;
    if (!std::getline(in, line)) break;
    if (options.echo) out << "> " << line << "\n";
    const std::string reply = eval(line);
    if (reply.rfind("ERR:", 0) == 0) ++errors;
    if (!reply.empty()) out << reply << "\n";
  }
  return errors;
}

}  // namespace ptc::console
