#ifndef PTC_CONSOLE_SCPI_HPP
#define PTC_CONSOLE_SCPI_HPP

#include <cstddef>
#include <string>
#include <vector>

/// SCPI-flavored command grammar for the operator console: colon-separated
/// mnemonic hierarchies with short/long forms (`MEASure` answers to both
/// `MEAS` and `MEASURE`), case-insensitive matching, `?` marking queries,
/// and whitespace/comma-separated arguments — the lab-instrument idiom
/// operators already know, pointed at a simulated accelerator fleet.
namespace ptc::console {

/// One parsed command line.  `mnemonics` are the raw colon-separated
/// header tokens (case preserved for error echo), `query` is the trailing
/// `?`, `args` everything after the header.
struct ScpiCommand {
  std::vector<std::string> mnemonics;
  bool query = false;
  std::vector<std::string> args;

  bool empty() const { return mnemonics.empty(); }
};

/// Parses one line.  Comments (`;` or `#` to end of line) and surrounding
/// whitespace are stripped; a blank/comment-only line parses to an empty
/// command.  Returns false (with `error` set) on a malformed header.
bool parse_scpi(const std::string& line, ScpiCommand* command,
                std::string* error);

/// True when `token` matches the mnemonic `spec` case-insensitively, where
/// spec spells the short form in capitals and the optional tail in
/// lowercase: spec "MEASure" accepts MEAS, MEASU, ..., MEASURE — any
/// prefix of the long form that covers at least the short form.
bool mnemonic_matches(const std::string& token, const std::string& spec);

/// Matches `token` against an indexed mnemonic (`CORE<n>`): the leading
/// alphabetic part must match `spec` (short/long rules as above) and the
/// decimal suffix parses into `index`.  `CORE2` -> true, index 2.
bool mnemonic_index(const std::string& token, const std::string& spec,
                    std::size_t* index);

/// ASCII uppercase copy.
std::string scpi_upper(const std::string& s);

}  // namespace ptc::console

#endif  // PTC_CONSOLE_SCPI_HPP
