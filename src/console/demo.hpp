#ifndef PTC_CONSOLE_DEMO_HPP
#define PTC_CONSOLE_DEMO_HPP

#include "console/console.hpp"
#include "runtime/accelerator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

/// Canned multi-tenant serving scenario for the operator console: one
/// object owning the whole stack (fleet, registry, server, telemetry
/// sinks) plus a Console wired to re-run it.  tools/ptc_console boots this
/// when no scenario of its own is attached, and the console golden
/// transcript test drives the exact same object — so the tool and the CI
/// check can never drift apart.
///
/// Everything is seeded and runs on modeled time: the run report, metric
/// values, burn rates, and alert instants are bit-identical on every host
/// and at any thread count, which is what makes a scripted console session
/// against it diffable as a golden transcript.
namespace ptc::console {

class DemoScenario {
 public:
  /// `threads` is the host thread-pool size (0 = auto) — it changes wall
  /// time only, never a modeled value; the transcript test runs the same
  /// script at 1/2/8 threads and asserts byte-identical output.
  explicit DemoScenario(std::size_t threads = 0);

  /// One deterministic serving run (same requests, same policy).
  serve::ServeReport run();

  /// One deterministic token-serving run of the "chat" transformer:
  /// continuous batching under a tight KV budget, so the transcript's
  /// SNAP? / TEN:COST? answers carry live token, KV-residency, and
  /// preemption figures.
  serve::TokenServeReport run_tokens();

  /// A console attached to this scenario with the run callback installed.
  Console make_console();

  serve::Server& server() { return server_; }
  serve::ModelRegistry& registry() { return registry_; }
  runtime::Accelerator& accelerator() { return accelerator_; }
  telemetry::Tracer& tracer() { return tracer_; }
  telemetry::MetricsRegistry& metrics() { return metrics_; }

 private:
  runtime::Accelerator accelerator_;
  serve::ModelRegistry registry_;
  serve::Server server_;
  telemetry::Tracer tracer_;
  telemetry::MetricsRegistry metrics_;
};

}  // namespace ptc::console

#endif  // PTC_CONSOLE_DEMO_HPP
