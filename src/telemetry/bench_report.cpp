#include "telemetry/bench_report.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/expects.hpp"

namespace ptc::telemetry {
namespace {

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kHigherIsBetter: return "higher";
    case Direction::kLowerIsBetter: return "lower";
    case Direction::kInformational: return "none";
  }
  return "none";
}

}  // namespace

BenchReport::BenchReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  expects(!bench_name_.empty(), "bench name must be non-empty");
}

void BenchReport::set_meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, json::quote(value));
}

void BenchReport::set_meta(const std::string& key, double value) {
  meta_.emplace_back(key, json::format_number(value));
}

void BenchReport::add_metric(const std::string& name, double value,
                             const std::string& unit, Direction direction,
                             double tolerance) {
  expects(tolerance >= 0.0, "tolerance must be >= 0");
  for (const BenchMetric& metric : metrics_) {
    expects(metric.name != name, "duplicate bench metric name");
  }
  metrics_.push_back({name, value, unit, direction, tolerance});
}

void BenchReport::add_info(const std::string& name, double value,
                           const std::string& unit) {
  add_metric(name, value, unit, Direction::kInformational, 0.0);
}

std::string BenchReport::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": " << kSchemaVersion << ",\n"
      << "  \"bench\": " << json::quote(bench_name_) << ",\n"
      << "  \"meta\": {";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    out << (i == 0 ? "" : ", ") << json::quote(meta_[i].first) << ": "
        << meta_[i].second;
  }
  out << "},\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const BenchMetric& m = metrics_[i];
    out << "    {\"name\": " << json::quote(m.name)
        << ", \"value\": " << json::format_number(m.value)
        << ", \"unit\": " << json::quote(m.unit)
        << ", \"direction\": \"" << direction_name(m.direction) << "\""
        << ", \"tolerance\": " << json::format_number(m.tolerance) << "}"
        << (i + 1 < metrics_.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

void BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("bench_report: cannot open " + path);
  }
  out << to_json();
  if (!out.good()) {
    throw std::runtime_error("bench_report: failed writing " + path);
  }
}

namespace {

struct ParsedMetric {
  double value = 0.0;
  Direction direction = Direction::kInformational;
  double tolerance = 0.0;
};

bool parse_metrics(const json::Value& report, const char* which,
                   std::map<std::string, ParsedMetric>& out,
                   std::vector<std::string>& problems) {
  try {
    const double version = report.at("schema_version").as_number();
    if (version != BenchReport::kSchemaVersion) {
      problems.push_back(std::string(which) + ": unsupported schema_version " +
                         json::format_number(version));
      return false;
    }
    for (const json::Value& metric : report.at("metrics").as_array()) {
      ParsedMetric parsed;
      parsed.value = metric.at("value").as_number();
      const std::string& direction = metric.at("direction").as_string();
      if (direction == "higher") {
        parsed.direction = Direction::kHigherIsBetter;
      } else if (direction == "lower") {
        parsed.direction = Direction::kLowerIsBetter;
      } else {
        parsed.direction = Direction::kInformational;
      }
      parsed.tolerance =
          metric.contains("tolerance") ? metric.at("tolerance").as_number()
                                       : 0.0;
      out[metric.at("name").as_string()] = parsed;
    }
    return true;
  } catch (const std::exception& e) {
    problems.push_back(std::string(which) + ": " + e.what());
    return false;
  }
}

}  // namespace

BenchComparison compare_bench_reports(const json::Value& baseline,
                                      const json::Value& current) {
  BenchComparison comparison;
  std::map<std::string, ParsedMetric> base_metrics, cur_metrics;
  if (!parse_metrics(baseline, "baseline", base_metrics,
                     comparison.problems) ||
      !parse_metrics(current, "current", cur_metrics, comparison.problems)) {
    comparison.pass = false;
    return comparison;
  }
  try {
    if (baseline.at("bench").as_string() != current.at("bench").as_string()) {
      comparison.problems.push_back(
          "bench name mismatch: baseline \"" +
          baseline.at("bench").as_string() + "\" vs current \"" +
          current.at("bench").as_string() + "\"");
      comparison.pass = false;
      return comparison;
    }
  } catch (const std::exception& e) {
    comparison.problems.push_back(e.what());
    comparison.pass = false;
    return comparison;
  }

  for (const auto& [name, base] : base_metrics) {
    MetricComparison mc;
    mc.name = name;
    mc.baseline = base.value;
    mc.gated = base.direction != Direction::kInformational;
    if (mc.gated) mc.tolerance = base.tolerance;

    const auto it = cur_metrics.find(name);
    if (it == cur_metrics.end()) {
      if (mc.gated) {
        mc.regressed = true;
        mc.note = "gated metric missing from current report";
        comparison.pass = false;
      } else {
        mc.note = "missing from current report (informational)";
      }
      comparison.metrics.push_back(std::move(mc));
      continue;
    }
    mc.current = it->second.value;
    mc.ratio = base.value != 0.0 ? mc.current / base.value : 0.0;

    if (mc.gated) {
      if (base.direction == Direction::kHigherIsBetter) {
        const double floor = base.value * (1.0 - base.tolerance);
        mc.bound = floor;
        mc.regressed = mc.current < floor;
        mc.note = mc.regressed
                      ? "regressed: " + json::format_number(mc.current) +
                            " < floor " + json::format_number(floor)
                      : "ok (floor " + json::format_number(floor) + ")";
      } else {
        const double ceiling = base.value * (1.0 + base.tolerance);
        mc.bound = ceiling;
        mc.regressed = mc.current > ceiling;
        mc.note = mc.regressed
                      ? "regressed: " + json::format_number(mc.current) +
                            " > ceiling " + json::format_number(ceiling)
                      : "ok (ceiling " + json::format_number(ceiling) + ")";
      }
      if (mc.regressed) comparison.pass = false;
    } else {
      mc.note = "informational";
    }
    comparison.metrics.push_back(std::move(mc));
  }
  return comparison;
}

namespace {

bool read_file(const std::string& path, std::string& out,
               std::vector<std::string>& problems) {
  std::ifstream in(path);
  if (!in) {
    problems.push_back("cannot open " + path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

BenchComparison compare_bench_files(const std::string& baseline_path,
                                    const std::string& current_path) {
  BenchComparison comparison;
  std::string baseline_text, current_text;
  if (!read_file(baseline_path, baseline_text, comparison.problems) ||
      !read_file(current_path, current_text, comparison.problems)) {
    comparison.pass = false;
    return comparison;
  }
  try {
    return compare_bench_reports(json::parse(baseline_text),
                                 json::parse(current_text));
  } catch (const std::invalid_argument& e) {
    comparison.problems.push_back(e.what());
    comparison.pass = false;
    return comparison;
  }
}

}  // namespace ptc::telemetry
