#ifndef PTC_TELEMETRY_METRICS_HPP
#define PTC_TELEMETRY_METRICS_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

/// Uniform metrics spine for the simulator: counters, gauges, and
/// fixed-bucket log-scale histograms behind one registry with
/// Prometheus-style text exposition and JSON export.  This replaces the
/// scattered tallies (AcceleratorStats fields, ad-hoc bench counters) with
/// one namespace any layer can publish into.
///
/// Counters, gauges, and histograms also come in *labeled families*: the
/// same metric name fanned out across label sets
/// (`serve_tenant_energy_joules_total{tenant="mobile",model="cnn"}`,
/// `serve_trigger_lag_seconds{core="3"}`), which is what lets the serving
/// layer attribute cost per tenant x model and the fleet per core without
/// inventing one metric name per dimension value.
///
/// Determinism contract: metrics are only ever mutated from the simulation's
/// event-loop / calling thread (never from pool workers), values are modeled
/// quantities (hardware time, counts), and exposition iterates registry maps
/// in sorted-name order — so the exported text is bit-stable across runs and
/// across host thread counts.
namespace ptc::telemetry {

/// Monotonically increasing tally.
class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value (plus the running max, which serving
/// summaries like "worst detuning seen" want for free).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  double value() const { return value_; }
  double max() const { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket log-scale histogram geometry: `buckets_per_decade` equal
/// log-width buckets per power of ten spanning [min, max), plus an
/// underflow bucket (v < min, where all zero samples land) and an overflow
/// bucket (v >= max).
struct HistogramOptions {
  double min = 1e-10;  ///< lower edge of the first finite bucket
  double max = 1.0;    ///< upper edge of the last finite bucket
  std::size_t buckets_per_decade = 32;  ///< ~7.5% bucket width
};

/// Log-scale histogram with O(buckets) memory regardless of sample count.
/// Percentiles are nearest-rank over bucket counts and return the covering
/// bucket's upper edge clamped to the exact observed [min, max] — always
/// within one bucket of the exact nearest-rank sample.  count/sum/min/max
/// are exact.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Exact smallest / largest observed value (0 when empty).
  double min_value() const { return count_ > 0 ? min_ : 0.0; }
  double max_value() const { return count_ > 0 ? max_ : 0.0; }

  /// Nearest-rank percentile (p in (0, 100]); 0 when empty.
  double percentile(double p) const;

  const HistogramOptions& options() const { return options_; }
  /// Finite buckets only (underflow/overflow excluded).
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Upper edge of finite bucket i: min * 10^((i+1)/buckets_per_decade).
  double bucket_upper_edge(std::size_t i) const;

  /// Largest ratio between a bucket's upper and lower edge — the worst-case
  /// multiplicative error of percentile() vs the exact nearest-rank sample.
  double bucket_width_ratio() const;

 private:
  HistogramOptions options_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One metric label set: key -> value pairs.  Accessor calls may pass keys
/// in any order; the registry canonicalizes (sorts by key) so
/// `{{"a","1"},{"b","2"}}` and `{{"b","2"},{"a","1"}}` address the same
/// child.  Duplicate keys are an error.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Renders a canonical (sorted) label set as the Prometheus selector
/// `{key="value",...}` with value escaping (`\\`, `\"`, `\n`) — also the
/// registry's internal child key, so exposition order is deterministic.
std::string render_labels(const LabelSet& labels);

/// Named metrics store.  Accessors create on first use and return stable
/// references (instruments never move once created); names should follow
/// Prometheus conventions (snake_case, `_total` suffix on counters).
///
/// A name addresses either one plain instrument or a labeled family of
/// them (same kind across all children — mixing kinds under one name is an
/// error); a plain sample and labeled children may coexist under one name,
/// matching the text-exposition data model.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       const HistogramOptions& options = {});

  /// Labeled children: one instrument per distinct label set under `name`.
  Counter& counter(const std::string& name, const LabelSet& labels,
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const LabelSet& labels,
               const std::string& help = "");
  /// Labeled histogram family (e.g. per-core trigger-lag distributions).
  /// Options are fixed by the first child created under `name`.
  Histogram& histogram(const std::string& name, const LabelSet& labels,
                       const std::string& help = "",
                       const HistogramOptions& options = {});

  /// True when `name` exists as any instrument kind.
  bool contains(const std::string& name) const;
  /// True when `name` has a child for exactly this label set.
  bool contains(const std::string& name, const LabelSet& labels) const;

  /// Label sets registered under `name`, in canonical (rendered) order.
  std::vector<LabelSet> label_sets(const std::string& name) const;

  /// Prometheus text exposition format (sorted by name): counters and
  /// gauges as single samples (labeled children as `name{k="v",...}`
  /// series, escaped per the text-format spec), histograms as cumulative
  /// `_bucket{le=...}` series plus `_sum` and `_count`.
  std::string prometheus_text() const;

  /// JSON export of the same data (one object per instrument kind).
  /// Labeled families export a "series" array of {labels, value} objects
  /// alongside the plain "value" when one exists.
  std::string to_json() const;

 private:
  template <typename T>
  struct Child {
    LabelSet labels;  ///< canonical (sorted by key)
    std::unique_ptr<T> instrument;
  };
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    /// Labeled children keyed by render_labels() of the canonical set.
    std::map<std::string, Child<Counter>> counter_children;
    std::map<std::string, Child<Gauge>> gauge_children;
    std::map<std::string, Child<Histogram>> histogram_children;
  };

  Entry& entry_of_kind(const std::string& name, const char* kind);

  std::map<std::string, Entry> entries_;
};

}  // namespace ptc::telemetry

#endif  // PTC_TELEMETRY_METRICS_HPP
