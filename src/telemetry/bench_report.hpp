#ifndef PTC_TELEMETRY_BENCH_REPORT_HPP
#define PTC_TELEMETRY_BENCH_REPORT_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"

/// Schema-versioned machine-readable bench artifacts (BENCH_*.json) and the
/// baseline comparison behind bench/bench_compare — the in-repo perf
/// trajectory.  Each bench emits a flat list of named metrics; metrics with
/// a direction and tolerance are *gated*: bench_compare diffs them against
/// the committed baseline and fails CI when the current value regresses
/// beyond tolerance.  Informational metrics (direction 0) are recorded in
/// the trajectory but never gate.
///
/// Schema (docs/telemetry.md documents it in full):
///   {"schema_version": 1, "bench": "<name>",
///    "meta": {"<key>": <string|number>, ...},
///    "metrics": [{"name": ..., "value": ..., "unit": ...,
///                 "direction": "higher"|"lower"|"none",
///                 "tolerance": <relative slack>}, ...]}
namespace ptc::telemetry {

/// Which way "better" points for a gated metric.
enum class Direction {
  kHigherIsBetter,
  kLowerIsBetter,
  kInformational,  ///< recorded, never gated
};

struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  Direction direction = Direction::kInformational;
  /// Relative slack before a regression trips: higher-is-better fails when
  /// current < baseline * (1 - tolerance); lower-is-better fails when
  /// current > baseline * (1 + tolerance).
  double tolerance = 0.0;
};

/// Builder for one BENCH_*.json artifact.
class BenchReport {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit BenchReport(std::string bench_name);

  /// Free-form context (matrix shape, request counts, ...) — recorded, not
  /// compared.
  void set_meta(const std::string& key, const std::string& value);
  void set_meta(const std::string& key, double value);

  /// Adds a gated metric.
  void add_metric(const std::string& name, double value,
                  const std::string& unit, Direction direction,
                  double tolerance);
  /// Adds an informational (never gated) metric.
  void add_info(const std::string& name, double value,
                const std::string& unit);

  const std::string& bench_name() const { return bench_name_; }
  const std::vector<BenchMetric>& metrics() const { return metrics_; }

  std::string to_json() const;
  /// Writes to_json() to `path`; throws std::runtime_error on IO error.
  void write(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> meta_;  ///< pre-rendered
  std::vector<BenchMetric> metrics_;
};

/// One metric's baseline-vs-current comparison.
struct MetricComparison {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  ///< current / baseline (0 when baseline is 0)
  bool gated = false;
  /// Baseline-declared relative slack (0 for informational metrics).
  double tolerance = 0.0;
  /// The pass/fail threshold the tolerance implies: the floor
  /// (higher-is-better) or ceiling (lower-is-better) the current value was
  /// held against; 0 for informational metrics.
  double bound = 0.0;
  bool regressed = false;
  std::string note;  ///< human-readable verdict
};

struct BenchComparison {
  bool pass = true;  ///< no gated metric regressed and schemas line up
  std::vector<MetricComparison> metrics;
  std::vector<std::string> problems;  ///< schema/name mismatches
};

/// Diffs a current BENCH report against the committed baseline.  Gating
/// (direction, tolerance) is read from the *baseline* — the committed
/// trajectory owns the bar; a current run cannot loosen it.  A gated
/// baseline metric missing from the current report is a failure.
BenchComparison compare_bench_reports(const json::Value& baseline,
                                      const json::Value& current);

/// Convenience: parse both files and compare; IO/parse problems land in
/// BenchComparison::problems with pass = false.
BenchComparison compare_bench_files(const std::string& baseline_path,
                                    const std::string& current_path);

}  // namespace ptc::telemetry

#endif  // PTC_TELEMETRY_BENCH_REPORT_HPP
