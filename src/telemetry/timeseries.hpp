#ifndef PTC_TELEMETRY_TIMESERIES_HPP
#define PTC_TELEMETRY_TIMESERIES_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

/// Ring-buffer time series on modeled hardware time, with tiered
/// downsampling: each named channel keeps a fixed-capacity ring of raw
/// samples, and when the ring fills, the oldest `fold` samples collapse
/// into one aggregate that cascades into the next (coarser) tier.  Aggregates
/// retain the *exact* min / max and the count-weighted mean of the samples
/// they absorbed, so the store answers "what was the worst probe reading in
/// the last millisecond" without unbounded memory — O(tiers * capacity) per
/// channel however long the run.
///
/// This is the fleet-health companion of MetricsRegistry: metrics hold the
/// current value and lifetime tallies, the time-series store holds the
/// recent *history* the estimators and the operator console read.
///
/// Determinism contract: appends happen from the simulation's event loop
/// with modeled timestamps, folding is a pure function of the appended
/// (t, v) sequence, and JSON export iterates channels in sorted-name order
/// — bit-stable across runs and host thread counts.
namespace ptc::telemetry {

/// One retained point: a raw sample (count == 1, t0 == t1, min == max ==
/// mean) or a fold of `count` older samples spanning [t0, t1].
struct SeriesSample {
  double t0 = 0.0;    ///< earliest absorbed timestamp [modeled s]
  double t1 = 0.0;    ///< latest absorbed timestamp [modeled s]
  double min = 0.0;   ///< exact minimum over absorbed samples
  double max = 0.0;   ///< exact maximum over absorbed samples
  double mean = 0.0;  ///< count-weighted mean over absorbed samples
  std::uint64_t count = 0;  ///< raw samples absorbed
};

struct TimeSeriesOptions {
  std::size_t capacity = 64;  ///< samples per tier ring (>= fold)
  std::size_t fold = 4;       ///< samples collapsed per cascade step (>= 2)
  std::size_t tiers = 3;      ///< tier count; the last tier drops its oldest
};

/// One channel: `tiers` rings of increasing coarseness.  Tier 0 holds raw
/// samples; tier k holds folds of fold^k raw samples each.  Only the last
/// tier ever discards data (tracked by dropped()).
class TimeSeries {
 public:
  explicit TimeSeries(const TimeSeriesOptions& options = {});

  /// Appends one raw sample.  Timestamps must be nondecreasing.
  void append(double t, double v);

  const TimeSeriesOptions& options() const { return options_; }
  /// Raw samples appended over the channel's lifetime.
  std::uint64_t appended() const { return appended_; }
  /// Raw samples that have fallen off the last tier.
  std::uint64_t dropped() const { return dropped_; }

  std::size_t tier_count() const { return tiers_.size(); }
  /// Tier `k` oldest-first (k = 0 is the raw ring).
  const std::deque<SeriesSample>& tier(std::size_t k) const;

  /// Latest raw sample value (0 before any append).
  double last_value() const { return last_value_; }
  double last_time() const { return last_time_; }

  /// Exact min / max / count-weighted mean over every *retained* sample,
  /// newest tiers first — what the console's health summary quotes.
  SeriesSample retained_summary() const;

 private:
  /// Pushes `sample` into tier `k`, folding the tier's oldest samples into
  /// tier k + 1 when the ring is full (the last tier drops instead).
  void push_tier(std::size_t k, const SeriesSample& sample);

  TimeSeriesOptions options_;
  std::vector<std::deque<SeriesSample>> tiers_;
  std::uint64_t appended_ = 0;
  std::uint64_t dropped_ = 0;
  double last_value_ = 0.0;
  double last_time_ = 0.0;
};

/// Named channels, created on first use (stable references).  The fleet
/// health monitor owns one per run (fleet::FleetHealthMonitor::store).
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(const TimeSeriesOptions& defaults = {});

  /// Channel accessor; creates with the store defaults on first use.
  TimeSeries& channel(const std::string& name);
  /// Creates (or fetches) a channel with explicit options.  Options are
  /// fixed at creation; a later mismatch is the caller's error.
  TimeSeries& channel(const std::string& name,
                      const TimeSeriesOptions& options);

  bool contains(const std::string& name) const;
  std::size_t size() const { return channels_.size(); }
  /// Channel names in sorted order.
  std::vector<std::string> names() const;

  /// Drops every channel (fresh run).
  void clear() { channels_.clear(); }

  /// JSON export: {"channels": {name: {"appended": n, "dropped": n,
  /// "tiers": [[{t0,t1,min,max,mean,count}, ...], ...]}}} in sorted-name
  /// order, numbers via json::format_number — byte-stable.
  std::string to_json() const;

 private:
  TimeSeriesOptions defaults_;
  std::map<std::string, TimeSeries> channels_;
};

}  // namespace ptc::telemetry

#endif  // PTC_TELEMETRY_TIMESERIES_HPP
