#ifndef PTC_TELEMETRY_TRACE_HPP
#define PTC_TELEMETRY_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <ostream>
#include <string>
#include <vector>

/// Span tracing on *modeled hardware time*: nested, timestamped spans of
/// the serving event loop (request lifecycle, batch dispatches, per-core
/// tile passes and reloads, graph steps, recalibration downtime), exported
/// as Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
/// chrome://tracing.
///
/// Determinism contract: every span is emitted from the simulation's
/// calling thread with timestamps taken from the modeled clock, never from
/// host wall time or worker threads — so the trace is bit-identical across
/// runs and across host thread counts (pinned by tests/test_telemetry.cpp).
///
/// Zero-overhead no-op path: instrumented layers hold a `Tracer*` that
/// defaults to nullptr, and every emission site guards on it.  Span
/// arguments are passed as non-owning `Arg` PODs, so an unattached tracer
/// costs one branch and zero allocations (also pinned by test).
namespace ptc::telemetry {

/// Track ids for the one logical trace process.  Chrome nests spans per
/// (pid, tid); each track below carries only non-overlapping (or properly
/// nested) spans, which the trace linter enforces.
namespace track {
constexpr int kPid = 1;        ///< the whole simulated deployment
constexpr int kServe = 1;      ///< batch dispatches + recalibration windows
constexpr int kSteps = 2;      ///< graph::Step execution spans
constexpr int kQueue = 3;      ///< queue-depth counter samples
constexpr int kCoreBase = 16;  ///< + core index: per-core passes / reloads
}  // namespace track

/// One span/event argument: a non-owning key + scalar/string value.  The
/// tracer copies it into owned storage only when a sink is attached.
struct Arg {
  enum class Kind { kString, kNumber, kBool };
  const char* key;
  Kind kind;
  const char* str;
  double num;

  constexpr Arg(const char* k, const char* v)
      : key(k), kind(Kind::kString), str(v), num(0.0) {}
  constexpr Arg(const char* k, double v)
      : key(k), kind(Kind::kNumber), str(nullptr), num(v) {}
  constexpr Arg(const char* k, std::size_t v)
      : key(k), kind(Kind::kNumber), str(nullptr),
        num(static_cast<double>(v)) {}
  constexpr Arg(const char* k, bool v)
      : key(k), kind(Kind::kBool), str(nullptr), num(v ? 1.0 : 0.0) {}
};

/// One recorded event (all times in modeled seconds).
struct TraceEvent {
  enum class Phase {
    kComplete,    ///< "X": a span [ts, ts + dur] on (pid, tid)
    kAsyncBegin,  ///< "b": async span start, keyed by (category, id)
    kAsyncEnd,    ///< "e": async span end
    kCounter,     ///< "C": counter sample
    kInstant,     ///< "i": point event
  };
  Phase phase = Phase::kComplete;
  std::string name;
  std::string category;
  int tid = track::kServe;
  std::uint64_t id = 0;  ///< async span id (request id)
  double ts = 0.0;       ///< modeled seconds
  double dur = 0.0;      ///< modeled seconds (complete spans)
  double value = 0.0;    ///< counter sample value
  std::vector<std::pair<std::string, std::string>> args;  ///< key -> JSON
};

/// Records events and serializes them as Chrome trace-event JSON.  One
/// tracer per run; attach it to the layers to instrument (Server::set_tracer
/// fans out to the accelerator) and write the file when the run completes.
class Tracer {
 public:
  /// Span [t0, t1] on `tid`.  Spans on one track must nest properly —
  /// emitters guarantee this by construction (sequential modeled time).
  void complete(int tid, const char* name, const char* category, double t0,
                double t1, std::initializer_list<Arg> args = {});

  /// Async span keyed by (category, id) — overlapping lifecycles (queued
  /// requests) that no single track could hold.
  void async_begin(const char* name, const char* category, std::uint64_t id,
                   double ts, std::initializer_list<Arg> args = {});
  void async_end(const char* name, const char* category, std::uint64_t id,
                 double ts);

  /// Counter sample (rendered as a filled timeline in Perfetto).
  void counter(int tid, const char* name, double ts, double value);

  /// Point event on `tid`.
  void instant(int tid, const char* name, const char* category, double ts,
               std::initializer_list<Arg> args = {});

  /// Names a track in the viewer (thread_name metadata).
  void set_track_name(int tid, const std::string& name);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events of `phase` whose category matches (all when category is empty).
  std::size_t count(TraceEvent::Phase phase,
                    const std::string& category = "") const;

  void clear() { events_.clear(); }

  /// Chrome trace-event JSON ({"traceEvents": [...]}, ts in microseconds).
  void write_chrome_json(std::ostream& out) const;
  std::string chrome_json() const;
  /// Writes chrome_json() to `path`; throws std::runtime_error on IO error.
  void write_chrome_json_file(const std::string& path) const;

 private:
  void push(TraceEvent event, std::initializer_list<Arg> args);

  std::vector<TraceEvent> events_;
  std::map<int, std::string> track_names_;
};

/// PTC_TRACE environment hook: the trace file path benches/examples should
/// write, or nullptr when tracing is off.
const char* trace_path_from_env();

/// Validates Chrome trace-event JSON: the document parses, events carry the
/// required fields, complete spans nest properly per (pid, tid), async
/// begin/end events pair up per (category, id), counter samples are
/// monotone in time per (pid, tid, name), and contract-bearing instants
/// carry their consumer arg schemas — health_alert (string "slo", numeric
/// "core"), fault_injected / fault_cleared (string "kind", numeric
/// "core"), core_evicted / core_readmitted (numeric "core"), token_step
/// (numeric "batch" and "passes"), kv_evicted (string "tenant", numeric
/// "rows"), request_preempted (string "tenant", numeric "request").  Returns
/// human-readable problems (empty == lint-clean).  This is the trace-lint
/// gate CI runs via tests/test_telemetry.cpp.
std::vector<std::string> lint_chrome_trace(const std::string& json_text);

}  // namespace ptc::telemetry

#endif  // PTC_TELEMETRY_TRACE_HPP
