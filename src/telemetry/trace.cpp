#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/expects.hpp"
#include "common/json.hpp"

namespace ptc::telemetry {
namespace {

/// Modeled seconds -> Chrome trace microseconds.
double to_us(double seconds) { return seconds * 1e6; }

std::string render_arg(const Arg& arg) {
  switch (arg.kind) {
    case Arg::Kind::kString:
      return json::quote(arg.str != nullptr ? arg.str : "");
    case Arg::Kind::kNumber:
      return json::format_number(arg.num);
    case Arg::Kind::kBool:
      return arg.num != 0.0 ? "true" : "false";
  }
  return "null";
}

}  // namespace

void Tracer::push(TraceEvent event, std::initializer_list<Arg> args) {
  event.args.reserve(args.size());
  for (const Arg& arg : args) {
    event.args.emplace_back(arg.key, render_arg(arg));
  }
  events_.push_back(std::move(event));
}

void Tracer::complete(int tid, const char* name, const char* category,
                      double t0, double t1, std::initializer_list<Arg> args) {
  expects(t1 >= t0, "span must end at or after its start");
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.name = name;
  event.category = category;
  event.tid = tid;
  event.ts = t0;
  event.dur = t1 - t0;
  push(std::move(event), args);
}

void Tracer::async_begin(const char* name, const char* category,
                         std::uint64_t id, double ts,
                         std::initializer_list<Arg> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kAsyncBegin;
  event.name = name;
  event.category = category;
  event.id = id;
  event.ts = ts;
  push(std::move(event), args);
}

void Tracer::async_end(const char* name, const char* category,
                       std::uint64_t id, double ts) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kAsyncEnd;
  event.name = name;
  event.category = category;
  event.id = id;
  event.ts = ts;
  push(std::move(event), {});
}

void Tracer::counter(int tid, const char* name, double ts, double value) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kCounter;
  event.name = name;
  event.tid = tid;
  event.ts = ts;
  event.value = value;
  push(std::move(event), {});
}

void Tracer::instant(int tid, const char* name, const char* category,
                     double ts, std::initializer_list<Arg> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = name;
  event.category = category;
  event.tid = tid;
  event.ts = ts;
  push(std::move(event), args);
}

void Tracer::set_track_name(int tid, const std::string& name) {
  track_names_[tid] = name;
}

std::size_t Tracer::count(TraceEvent::Phase phase,
                          const std::string& category) const {
  std::size_t n = 0;
  for (const TraceEvent& event : events_) {
    if (event.phase == phase &&
        (category.empty() || event.category == category)) {
      ++n;
    }
  }
  return n;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  // Metadata first: name the process and every named track.
  comma();
  out << " {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": "
      << track::kPid << ", \"args\": {\"name\": \"ptc\"}}";
  for (const auto& [tid, name] : track_names_) {
    comma();
    out << " {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": "
        << track::kPid << ", \"tid\": " << tid
        << ", \"args\": {\"name\": " << json::quote(name) << "}}";
  }

  for (const TraceEvent& event : events_) {
    comma();
    out << " {\"ph\": \"";
    switch (event.phase) {
      case TraceEvent::Phase::kComplete: out << "X"; break;
      case TraceEvent::Phase::kAsyncBegin: out << "b"; break;
      case TraceEvent::Phase::kAsyncEnd: out << "e"; break;
      case TraceEvent::Phase::kCounter: out << "C"; break;
      case TraceEvent::Phase::kInstant: out << "i"; break;
    }
    out << "\", \"name\": " << json::quote(event.name);
    if (!event.category.empty()) {
      out << ", \"cat\": " << json::quote(event.category);
    }
    out << ", \"pid\": " << track::kPid;
    const bool async = event.phase == TraceEvent::Phase::kAsyncBegin ||
                       event.phase == TraceEvent::Phase::kAsyncEnd;
    if (async) {
      out << ", \"id\": " << json::quote(std::to_string(event.id));
    } else {
      out << ", \"tid\": " << event.tid;
    }
    out << ", \"ts\": " << json::format_number(to_us(event.ts));
    if (event.phase == TraceEvent::Phase::kComplete) {
      out << ", \"dur\": " << json::format_number(to_us(event.dur));
    }
    if (event.phase == TraceEvent::Phase::kInstant) {
      out << ", \"s\": \"t\"";
    }
    if (event.phase == TraceEvent::Phase::kCounter) {
      out << ", \"args\": {\"value\": " << json::format_number(event.value)
          << "}";
    } else if (!event.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) out << ", ";
        out << json::quote(event.args[i].first) << ": "
            << event.args[i].second;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
}

std::string Tracer::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

void Tracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("telemetry: cannot open trace file " + path);
  }
  write_chrome_json(out);
  if (!out.good()) {
    throw std::runtime_error("telemetry: failed writing trace file " + path);
  }
}

const char* trace_path_from_env() { return std::getenv("PTC_TRACE"); }

namespace {

struct Span {
  double start = 0.0;
  double end = 0.0;
  std::string name;
};

}  // namespace

std::vector<std::string> lint_chrome_trace(const std::string& json_text) {
  std::vector<std::string> problems;
  json::Value doc = json::Value::null();
  try {
    doc = json::parse(json_text);
  } catch (const std::invalid_argument& e) {
    problems.push_back(std::string("document does not parse: ") + e.what());
    return problems;
  }
  if (!doc.is_object() || !doc.contains("traceEvents") ||
      !doc.at("traceEvents").is_array()) {
    problems.push_back("document has no traceEvents array");
    return problems;
  }

  // Collect complete spans per (pid, tid), async begin/end tallies per
  // (category, id), and the last-seen timestamp of every counter track per
  // (pid, tid, name).
  std::map<std::pair<double, double>, std::vector<Span>> tracks;
  std::map<std::pair<std::string, std::string>, std::pair<int, int>> async_events;
  std::map<std::pair<std::pair<double, double>, std::string>, double>
      counter_last;
  std::size_t index = 0;
  for (const json::Value& event : doc.at("traceEvents").as_array()) {
    const std::string where = "event " + std::to_string(index++);
    if (!event.is_object() || !event.contains("ph") ||
        !event.at("ph").is_string()) {
      problems.push_back(where + ": missing ph");
      continue;
    }
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M") continue;
    if (!event.contains("name") || !event.at("name").is_string()) {
      problems.push_back(where + ": missing name");
      continue;
    }
    if (!event.contains("ts") || !event.at("ts").is_number()) {
      problems.push_back(where + ": missing ts");
      continue;
    }
    if (ph == "X") {
      if (!event.contains("dur") || !event.at("dur").is_number()) {
        problems.push_back(where + ": complete event missing dur");
        continue;
      }
      if (event.at("dur").as_number() < 0.0) {
        problems.push_back(where + ": negative dur");
        continue;
      }
      const double pid =
          event.contains("pid") ? event.at("pid").as_number() : 0.0;
      const double tid =
          event.contains("tid") ? event.at("tid").as_number() : 0.0;
      Span span;
      span.start = event.at("ts").as_number();
      span.end = span.start + event.at("dur").as_number();
      span.name = event.at("name").as_string();
      tracks[{pid, tid}].push_back(std::move(span));
    } else if (ph == "b" || ph == "e") {
      if (!event.contains("id")) {
        problems.push_back(where + ": async event missing id");
        continue;
      }
      const std::string id = event.at("id").is_string()
                                 ? event.at("id").as_string()
                                 : json::format_number(event.at("id").as_number());
      const std::string cat =
          event.contains("cat") ? event.at("cat").as_string() : "";
      auto& tally = async_events[{cat, id}];
      if (ph == "b") ++tally.first;
      else ++tally.second;
    } else if (ph == "C") {
      // Counter samples describe one monotone modeled-time series per
      // (pid, tid, name): a sample behind its predecessor means some code
      // path emitted with a stale clock.
      const double pid =
          event.contains("pid") ? event.at("pid").as_number() : 0.0;
      const double tid =
          event.contains("tid") ? event.at("tid").as_number() : 0.0;
      const std::string& name = event.at("name").as_string();
      const double ts = event.at("ts").as_number();
      auto [it, inserted] =
          counter_last.try_emplace({{pid, tid}, name}, ts);
      if (!inserted) {
        if (ts < it->second) {
          std::ostringstream msg;
          msg << where << ": counter \"" << name << "\" on track (" << pid
              << ", " << tid << ") goes back in time (" << ts << " after "
              << it->second << ")";
          problems.push_back(msg.str());
        }
        it->second = std::max(it->second, ts);
      }
    } else if (ph == "i") {
      // Instants with a consumer-facing arg contract: dashboards and the
      // fault post-mortem tooling join on these keys, so the linter pins
      // them.  health_alert carries its routing slo label + core index
      // (fleet/health.cpp); the fault lifecycle instants
      // (serve/server.cpp) carry the fault kind and/or the struck core.
      const std::string& name = event.at("name").as_string();
      const json::Value* args =
          event.contains("args") && event.at("args").is_object()
              ? &event.at("args")
              : nullptr;
      const auto require_string = [&](const char* key) {
        if (args == nullptr || !args->contains(key) ||
            !args->at(key).is_string()) {
          problems.push_back(where + ": " + name + " missing string \"" +
                             key + "\" arg");
        }
      };
      const auto require_number = [&](const char* key) {
        if (args == nullptr || !args->contains(key) ||
            !args->at(key).is_number()) {
          problems.push_back(where + ": " + name + " missing numeric \"" +
                             key + "\" arg");
        }
      };
      if (name == "health_alert") {
        require_string("slo");
        require_number("core");
      } else if (name == "fault_injected" || name == "fault_cleared") {
        require_string("kind");
        require_number("core");
      } else if (name == "core_evicted" || name == "core_readmitted") {
        require_number("core");
      } else if (name == "token_step") {
        // Token-serving cadence (serve/token_server.cpp): dashboards plot
        // batch occupancy and pass mix per decode step.
        require_number("batch");
        require_number("passes");
      } else if (name == "kv_evicted") {
        require_string("tenant");
        require_number("rows");
      } else if (name == "request_preempted") {
        require_string("tenant");
        require_number("request");
      }
    }
  }

  // Complete spans on one track must nest properly: sweep in (start, -end)
  // order with a stack of enclosing spans; every span must fit entirely
  // within the innermost still-open enclosure.
  for (auto& [key, spans] : tracks) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.start != b.start) return a.start < b.start;
      return a.end > b.end;
    });
    std::vector<Span> stack;
    for (const Span& span : spans) {
      // Spans that share a boundary (back-to-back passes) serialize through
      // ts/dur microsecond doubles, so "touching" is only exact to float
      // rounding: allow a relative slack far below any real overlap.
      const double slack =
          1e-9 * std::max(std::abs(span.start), std::abs(span.end));
      while (!stack.empty() && stack.back().end <= span.start + slack) {
        stack.pop_back();
      }
      if (!stack.empty() && span.end > stack.back().end + slack) {
        std::ostringstream msg;
        msg << "track (" << key.first << ", " << key.second << "): span \""
            << span.name << "\" [" << span.start << ", " << span.end
            << "] overlaps \"" << stack.back().name << "\" ["
            << stack.back().start << ", " << stack.back().end
            << "] without nesting";
        problems.push_back(msg.str());
        continue;
      }
      stack.push_back(span);
    }
  }

  for (const auto& [key, tally] : async_events) {
    if (tally.first != tally.second) {
      problems.push_back("async (" + key.first + ", id " + key.second +
                         "): " + std::to_string(tally.first) + " begin vs " +
                         std::to_string(tally.second) + " end events");
    }
  }
  return problems;
}

}  // namespace ptc::telemetry
