#include "telemetry/timeseries.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "common/json.hpp"

namespace ptc::telemetry {

TimeSeries::TimeSeries(const TimeSeriesOptions& options) : options_(options) {
  expects(options_.fold >= 2, "time-series fold must collapse >= 2 samples");
  expects(options_.capacity >= options_.fold,
          "time-series tier capacity must hold at least one fold group");
  expects(options_.tiers >= 1, "time series needs at least one tier");
  tiers_.resize(options_.tiers);
}

void TimeSeries::append(double t, double v) {
  expects(appended_ == 0 || t >= last_time_,
          "time-series timestamps must be nondecreasing");
  ++appended_;
  last_time_ = t;
  last_value_ = v;
  SeriesSample sample;
  sample.t0 = t;
  sample.t1 = t;
  sample.min = v;
  sample.max = v;
  sample.mean = v;
  sample.count = 1;
  push_tier(0, sample);
}

void TimeSeries::push_tier(std::size_t k, const SeriesSample& sample) {
  std::deque<SeriesSample>& ring = tiers_[k];
  if (ring.size() == options_.capacity) {
    if (k + 1 == tiers_.size()) {
      // Coarsest tier: the oldest aggregate falls off the end of history.
      dropped_ += ring.front().count;
      ring.pop_front();
    } else {
      // Fold the oldest `fold` samples into one aggregate for the next
      // tier: exact min / max, count-weighted mean (sum carried exactly).
      SeriesSample fold;
      fold.t0 = ring.front().t0;
      double sum = 0.0;
      for (std::size_t i = 0; i < options_.fold; ++i) {
        const SeriesSample& s = ring.front();
        if (i == 0) {
          fold.min = s.min;
          fold.max = s.max;
        } else {
          fold.min = std::min(fold.min, s.min);
          fold.max = std::max(fold.max, s.max);
        }
        fold.t1 = s.t1;
        sum += s.mean * static_cast<double>(s.count);
        fold.count += s.count;
        ring.pop_front();
      }
      fold.mean = sum / static_cast<double>(fold.count);
      push_tier(k + 1, fold);
    }
  }
  ring.push_back(sample);
}

const std::deque<SeriesSample>& TimeSeries::tier(std::size_t k) const {
  expects(k < tiers_.size(), "time-series tier index out of range");
  return tiers_[k];
}

SeriesSample TimeSeries::retained_summary() const {
  SeriesSample out;
  double sum = 0.0;
  for (const auto& ring : tiers_) {
    for (const SeriesSample& s : ring) {
      if (out.count == 0) {
        out.t0 = s.t0;
        out.t1 = s.t1;
        out.min = s.min;
        out.max = s.max;
      } else {
        out.t0 = std::min(out.t0, s.t0);
        out.t1 = std::max(out.t1, s.t1);
        out.min = std::min(out.min, s.min);
        out.max = std::max(out.max, s.max);
      }
      sum += s.mean * static_cast<double>(s.count);
      out.count += s.count;
    }
  }
  if (out.count > 0) out.mean = sum / static_cast<double>(out.count);
  return out;
}

TimeSeriesStore::TimeSeriesStore(const TimeSeriesOptions& defaults)
    : defaults_(defaults) {}

TimeSeries& TimeSeriesStore::channel(const std::string& name) {
  return channel(name, defaults_);
}

TimeSeries& TimeSeriesStore::channel(const std::string& name,
                                     const TimeSeriesOptions& options) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_.emplace(name, TimeSeries(options)).first;
  }
  return it->second;
}

bool TimeSeriesStore::contains(const std::string& name) const {
  return channels_.find(name) != channels_.end();
}

std::vector<std::string> TimeSeriesStore::names() const {
  std::vector<std::string> out;
  out.reserve(channels_.size());
  for (const auto& [name, series] : channels_) out.push_back(name);
  return out;
}

std::string TimeSeriesStore::to_json() const {
  std::string out = "{\"channels\":{";
  bool first_channel = true;
  for (const auto& [name, series] : channels_) {
    if (!first_channel) out += ',';
    first_channel = false;
    out += json::quote(name);
    out += ":{\"appended\":" + json::format_number(
               static_cast<double>(series.appended()));
    out += ",\"dropped\":" + json::format_number(
               static_cast<double>(series.dropped()));
    out += ",\"tiers\":[";
    for (std::size_t k = 0; k < series.tier_count(); ++k) {
      if (k != 0) out += ',';
      out += '[';
      bool first_sample = true;
      for (const SeriesSample& s : series.tier(k)) {
        if (!first_sample) out += ',';
        first_sample = false;
        out += "{\"t0\":" + json::format_number(s.t0);
        out += ",\"t1\":" + json::format_number(s.t1);
        out += ",\"min\":" + json::format_number(s.min);
        out += ",\"max\":" + json::format_number(s.max);
        out += ",\"mean\":" + json::format_number(s.mean);
        out += ",\"count\":" +
               json::format_number(static_cast<double>(s.count)) + "}";
      }
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace ptc::telemetry
