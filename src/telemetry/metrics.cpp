#include "telemetry/metrics.hpp"

#include <cmath>
#include <sstream>

#include "common/expects.hpp"
#include "common/json.hpp"

namespace ptc::telemetry {

Histogram::Histogram(const HistogramOptions& options) : options_(options) {
  expects(options_.min > 0.0, "histogram min must be positive");
  expects(options_.max > options_.min, "histogram max must exceed min");
  expects(options_.buckets_per_decade >= 1,
          "histogram needs at least one bucket per decade");
  const double decades = std::log10(options_.max / options_.min);
  const std::size_t n = static_cast<std::size_t>(std::ceil(
      decades * static_cast<double>(options_.buckets_per_decade) - 1e-9));
  buckets_.assign(n, 0);
}

double Histogram::bucket_upper_edge(std::size_t i) const {
  return options_.min *
         std::pow(10.0, static_cast<double>(i + 1) /
                            static_cast<double>(options_.buckets_per_decade));
}

double Histogram::bucket_width_ratio() const {
  return std::pow(10.0,
                  1.0 / static_cast<double>(options_.buckets_per_decade));
}

void Histogram::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;

  if (v < options_.min) {
    ++underflow_;
    return;
  }
  // Log-position, then a fix-up pass against the exact edge formula so
  // values landing on (or within one ulp of) a bucket boundary bin
  // consistently: bucket i covers [edge(i-1), edge(i)).
  double idx = std::floor(std::log10(v / options_.min) *
                          static_cast<double>(options_.buckets_per_decade));
  if (idx < 0.0) idx = 0.0;
  std::size_t i = static_cast<std::size_t>(idx);
  if (i >= buckets_.size()) i = buckets_.size() - 1;
  while (i > 0 && v < bucket_upper_edge(i - 1)) --i;
  while (i < buckets_.size() && v >= bucket_upper_edge(i)) ++i;
  if (i >= buckets_.size()) {
    ++overflow_;
    return;
  }
  ++buckets_[i];
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  expects(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_) - 1e-9));

  const auto clamp = [this](double v) {
    if (v < min_) return min_;
    if (v > max_) return max_;
    return v;
  };

  std::uint64_t cumulative = underflow_;
  if (rank <= cumulative) return clamp(options_.min);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (rank <= cumulative) return clamp(bucket_upper_edge(i));
  }
  return max_;  // overflow bucket: the exact max is the best statement
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  Entry& entry = entries_[name];
  if (entry.counter == nullptr) {
    expects(entry.gauge == nullptr && entry.histogram == nullptr,
            "metric name already registered with a different kind");
    entry.counter = std::make_unique<Counter>();
    if (!help.empty()) entry.help = help;
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  Entry& entry = entries_[name];
  if (entry.gauge == nullptr) {
    expects(entry.counter == nullptr && entry.histogram == nullptr,
            "metric name already registered with a different kind");
    entry.gauge = std::make_unique<Gauge>();
    if (!help.empty()) entry.help = help;
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const HistogramOptions& options) {
  Entry& entry = entries_[name];
  if (entry.histogram == nullptr) {
    expects(entry.counter == nullptr && entry.gauge == nullptr,
            "metric name already registered with a different kind");
    entry.histogram = std::make_unique<Histogram>(options);
    if (!help.empty()) entry.help = help;
  }
  return *entry.histogram;
}

bool MetricsRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) {
      out << "# HELP " << name << " " << entry.help << "\n";
    }
    if (entry.counter != nullptr) {
      out << "# TYPE " << name << " counter\n";
      out << name << " " << json::format_number(entry.counter->value())
          << "\n";
    } else if (entry.gauge != nullptr) {
      out << "# TYPE " << name << " gauge\n";
      out << name << " " << json::format_number(entry.gauge->value()) << "\n";
    } else if (entry.histogram != nullptr) {
      const Histogram& h = *entry.histogram;
      out << "# TYPE " << name << " histogram\n";
      // Cumulative buckets, empty ones elided to keep the exposition small
      // (the +Inf series always carries the total).
      std::uint64_t cumulative = h.underflow();
      if (cumulative > 0) {
        out << name << "_bucket{le=\""
            << json::format_number(h.options().min) << "\"} " << cumulative
            << "\n";
      }
      for (std::size_t i = 0; i < h.bucket_count(); ++i) {
        if (h.bucket(i) == 0) continue;
        cumulative += h.bucket(i);
        out << name << "_bucket{le=\""
            << json::format_number(h.bucket_upper_edge(i)) << "\"} "
            << cumulative << "\n";
      }
      out << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
      out << name << "_sum " << json::format_number(h.sum()) << "\n";
      out << name << "_count " << h.count() << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      counters << (first_c ? "" : ", ") << json::quote(name)
               << ": {\"value\": "
               << json::format_number(entry.counter->value()) << "}";
      first_c = false;
    } else if (entry.gauge != nullptr) {
      gauges << (first_g ? "" : ", ") << json::quote(name) << ": {\"value\": "
             << json::format_number(entry.gauge->value()) << ", \"max\": "
             << json::format_number(entry.gauge->max()) << "}";
      first_g = false;
    } else if (entry.histogram != nullptr) {
      const Histogram& h = *entry.histogram;
      histograms << (first_h ? "" : ", ") << json::quote(name) << ": {"
                 << "\"count\": " << h.count()
                 << ", \"sum\": " << json::format_number(h.sum())
                 << ", \"min\": " << json::format_number(h.min_value())
                 << ", \"max\": " << json::format_number(h.max_value())
                 << ", \"p50\": " << json::format_number(h.percentile(50.0))
                 << ", \"p95\": " << json::format_number(h.percentile(95.0))
                 << ", \"p99\": " << json::format_number(h.percentile(99.0))
                 << "}";
      first_h = false;
    }
  }
  std::ostringstream out;
  out << "{\n  \"counters\": {" << counters.str() << "},\n  \"gauges\": {"
      << gauges.str() << "},\n  \"histograms\": {" << histograms.str()
      << "}\n}\n";
  return out.str();
}

}  // namespace ptc::telemetry
