#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string_view>

#include "common/expects.hpp"
#include "common/json.hpp"

namespace ptc::telemetry {

Histogram::Histogram(const HistogramOptions& options) : options_(options) {
  expects(options_.min > 0.0, "histogram min must be positive");
  expects(options_.max > options_.min, "histogram max must exceed min");
  expects(options_.buckets_per_decade >= 1,
          "histogram needs at least one bucket per decade");
  const double decades = std::log10(options_.max / options_.min);
  const std::size_t n = static_cast<std::size_t>(std::ceil(
      decades * static_cast<double>(options_.buckets_per_decade) - 1e-9));
  buckets_.assign(n, 0);
}

double Histogram::bucket_upper_edge(std::size_t i) const {
  return options_.min *
         std::pow(10.0, static_cast<double>(i + 1) /
                            static_cast<double>(options_.buckets_per_decade));
}

double Histogram::bucket_width_ratio() const {
  return std::pow(10.0,
                  1.0 / static_cast<double>(options_.buckets_per_decade));
}

void Histogram::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;

  if (v < options_.min) {
    ++underflow_;
    return;
  }
  // Log-position, then a fix-up pass against the exact edge formula so
  // values landing on (or within one ulp of) a bucket boundary bin
  // consistently: bucket i covers [edge(i-1), edge(i)).
  double idx = std::floor(std::log10(v / options_.min) *
                          static_cast<double>(options_.buckets_per_decade));
  if (idx < 0.0) idx = 0.0;
  std::size_t i = static_cast<std::size_t>(idx);
  if (i >= buckets_.size()) i = buckets_.size() - 1;
  while (i > 0 && v < bucket_upper_edge(i - 1)) --i;
  while (i < buckets_.size() && v >= bucket_upper_edge(i)) ++i;
  if (i >= buckets_.size()) {
    ++overflow_;
    return;
  }
  ++buckets_[i];
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  expects(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_) - 1e-9));

  const auto clamp = [this](double v) {
    if (v < min_) return min_;
    if (v > max_) return max_;
    return v;
  };

  std::uint64_t cumulative = underflow_;
  if (rank <= cumulative) return clamp(options_.min);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (rank <= cumulative) return clamp(bucket_upper_edge(i));
  }
  return max_;  // overflow bucket: the exact max is the best statement
}

namespace {

/// Prometheus text-format label value escaping: backslash, double quote,
/// and line feed must be escaped; everything else passes through.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Canonical form: sorted by key, duplicate keys rejected.
LabelSet canonicalize(const LabelSet& labels) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    expects(sorted[i].first != sorted[i + 1].first,
            "duplicate label key in metric label set");
  }
  for (const auto& [key, value] : sorted) {
    expects(!key.empty(), "metric label key must be non-empty");
  }
  return sorted;
}

}  // namespace

std::string render_labels(const LabelSet& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += escape_label_value(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::entry_of_kind(const std::string& name,
                                                       const char* kind) {
  Entry& entry = entries_[name];
  const bool is_counter =
      entry.counter != nullptr || !entry.counter_children.empty();
  const bool is_gauge =
      entry.gauge != nullptr || !entry.gauge_children.empty();
  const bool is_histogram =
      entry.histogram != nullptr || !entry.histogram_children.empty();
  const std::string_view want(kind);
  expects((want == "counter" || !is_counter) &&
              (want == "gauge" || !is_gauge) &&
              (want == "histogram" || !is_histogram),
          "metric name already registered with a different kind");
  return entry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  Entry& entry = entry_of_kind(name, "counter");
  if (entry.counter == nullptr) {
    entry.counter = std::make_unique<Counter>();
    if (!help.empty() && entry.help.empty()) entry.help = help;
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  Entry& entry = entry_of_kind(name, "gauge");
  if (entry.gauge == nullptr) {
    entry.gauge = std::make_unique<Gauge>();
    if (!help.empty() && entry.help.empty()) entry.help = help;
  }
  return *entry.gauge;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const LabelSet& labels,
                                  const std::string& help) {
  Entry& entry = entry_of_kind(name, "counter");
  LabelSet canonical = canonicalize(labels);
  auto& child = entry.counter_children[render_labels(canonical)];
  if (child.instrument == nullptr) {
    child.labels = std::move(canonical);
    child.instrument = std::make_unique<Counter>();
    if (!help.empty() && entry.help.empty()) entry.help = help;
  }
  return *child.instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const LabelSet& labels,
                              const std::string& help) {
  Entry& entry = entry_of_kind(name, "gauge");
  LabelSet canonical = canonicalize(labels);
  auto& child = entry.gauge_children[render_labels(canonical)];
  if (child.instrument == nullptr) {
    child.labels = std::move(canonical);
    child.instrument = std::make_unique<Gauge>();
    if (!help.empty() && entry.help.empty()) entry.help = help;
  }
  return *child.instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const HistogramOptions& options) {
  Entry& entry = entry_of_kind(name, "histogram");
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(options);
    if (!help.empty() && entry.help.empty()) entry.help = help;
  }
  return *entry.histogram;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const LabelSet& labels,
                                      const std::string& help,
                                      const HistogramOptions& options) {
  Entry& entry = entry_of_kind(name, "histogram");
  LabelSet canonical = canonicalize(labels);
  auto& child = entry.histogram_children[render_labels(canonical)];
  if (child.instrument == nullptr) {
    child.labels = std::move(canonical);
    child.instrument = std::make_unique<Histogram>(options);
    if (!help.empty() && entry.help.empty()) entry.help = help;
  }
  return *child.instrument;
}

bool MetricsRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

bool MetricsRegistry::contains(const std::string& name,
                               const LabelSet& labels) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  const std::string key = render_labels(canonicalize(labels));
  return it->second.counter_children.count(key) > 0 ||
         it->second.gauge_children.count(key) > 0 ||
         it->second.histogram_children.count(key) > 0;
}

std::vector<LabelSet> MetricsRegistry::label_sets(
    const std::string& name) const {
  std::vector<LabelSet> out;
  const auto it = entries_.find(name);
  if (it == entries_.end()) return out;
  for (const auto& [key, child] : it->second.counter_children) {
    out.push_back(child.labels);
  }
  for (const auto& [key, child] : it->second.gauge_children) {
    out.push_back(child.labels);
  }
  for (const auto& [key, child] : it->second.histogram_children) {
    out.push_back(child.labels);
  }
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) {
      out << "# HELP " << name << " " << entry.help << "\n";
    }
    if (entry.counter != nullptr || !entry.counter_children.empty()) {
      out << "# TYPE " << name << " counter\n";
      if (entry.counter != nullptr) {
        out << name << " " << json::format_number(entry.counter->value())
            << "\n";
      }
      for (const auto& [selector, child] : entry.counter_children) {
        out << name << selector << " "
            << json::format_number(child.instrument->value()) << "\n";
      }
    } else if (entry.gauge != nullptr || !entry.gauge_children.empty()) {
      out << "# TYPE " << name << " gauge\n";
      if (entry.gauge != nullptr) {
        out << name << " " << json::format_number(entry.gauge->value())
            << "\n";
      }
      for (const auto& [selector, child] : entry.gauge_children) {
        out << name << selector << " "
            << json::format_number(child.instrument->value()) << "\n";
      }
    } else if (entry.histogram != nullptr ||
               !entry.histogram_children.empty()) {
      out << "# TYPE " << name << " histogram\n";
      // Cumulative buckets, empty ones elided to keep the exposition small
      // (the +Inf series always carries the total).  `prefix` carries a
      // child's labels into every bucket selector (`{core="0",le="..."}`)
      // and onto its _sum/_count samples.
      const auto write_histogram = [&out, &name](const Histogram& h,
                                                 const std::string& prefix) {
        std::uint64_t cumulative = h.underflow();
        if (cumulative > 0) {
          out << name << "_bucket{" << prefix << "le=\""
              << json::format_number(h.options().min) << "\"} " << cumulative
              << "\n";
        }
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          if (h.bucket(i) == 0) continue;
          cumulative += h.bucket(i);
          out << name << "_bucket{" << prefix << "le=\""
              << json::format_number(h.bucket_upper_edge(i)) << "\"} "
              << cumulative << "\n";
        }
        out << name << "_bucket{" << prefix << "le=\"+Inf\"} " << h.count()
            << "\n";
        const std::string selector =
            prefix.empty() ? ""
                           : "{" + prefix.substr(0, prefix.size() - 1) + "}";
        out << name << "_sum" << selector << " "
            << json::format_number(h.sum()) << "\n";
        out << name << "_count" << selector << " " << h.count() << "\n";
      };
      if (entry.histogram != nullptr) {
        write_histogram(*entry.histogram, "");
      }
      for (const auto& [selector, child] : entry.histogram_children) {
        // render_labels gives `{k="v",...}`; the bucket prefix is the
        // interior plus a trailing comma before the `le` label.
        std::string prefix = selector.substr(1, selector.size() - 2);
        if (!prefix.empty()) prefix += ",";
        write_histogram(*child.instrument, prefix);
      }
    }
  }
  return out.str();
}

namespace {

std::string labels_json(const LabelSet& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ", ";
    out += json::quote(labels[i].first);
    out += ": ";
    out += json::quote(labels[i].second);
  }
  out += "}";
  return out;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr || !entry.counter_children.empty()) {
      counters << (first_c ? "" : ", ") << json::quote(name) << ": {";
      bool wrote = false;
      if (entry.counter != nullptr) {
        counters << "\"value\": "
                 << json::format_number(entry.counter->value());
        wrote = true;
      }
      if (!entry.counter_children.empty()) {
        counters << (wrote ? ", " : "") << "\"series\": [";
        bool first_s = true;
        for (const auto& [selector, child] : entry.counter_children) {
          counters << (first_s ? "" : ", ") << "{\"labels\": "
                   << labels_json(child.labels) << ", \"value\": "
                   << json::format_number(child.instrument->value()) << "}";
          first_s = false;
        }
        counters << "]";
      }
      counters << "}";
      first_c = false;
    } else if (entry.gauge != nullptr || !entry.gauge_children.empty()) {
      gauges << (first_g ? "" : ", ") << json::quote(name) << ": {";
      bool wrote = false;
      if (entry.gauge != nullptr) {
        gauges << "\"value\": " << json::format_number(entry.gauge->value())
               << ", \"max\": " << json::format_number(entry.gauge->max());
        wrote = true;
      }
      if (!entry.gauge_children.empty()) {
        gauges << (wrote ? ", " : "") << "\"series\": [";
        bool first_s = true;
        for (const auto& [selector, child] : entry.gauge_children) {
          gauges << (first_s ? "" : ", ") << "{\"labels\": "
                 << labels_json(child.labels) << ", \"value\": "
                 << json::format_number(child.instrument->value())
                 << ", \"max\": "
                 << json::format_number(child.instrument->max()) << "}";
          first_s = false;
        }
        gauges << "]";
      }
      gauges << "}";
      first_g = false;
    } else if (entry.histogram != nullptr ||
               !entry.histogram_children.empty()) {
      const auto summary_json = [](const Histogram& h) {
        std::string out = "\"count\": " + std::to_string(h.count());
        out += ", \"sum\": " + json::format_number(h.sum());
        out += ", \"min\": " + json::format_number(h.min_value());
        out += ", \"max\": " + json::format_number(h.max_value());
        out += ", \"p50\": " + json::format_number(h.percentile(50.0));
        out += ", \"p95\": " + json::format_number(h.percentile(95.0));
        out += ", \"p99\": " + json::format_number(h.percentile(99.0));
        return out;
      };
      histograms << (first_h ? "" : ", ") << json::quote(name) << ": {";
      bool wrote = false;
      if (entry.histogram != nullptr) {
        histograms << summary_json(*entry.histogram);
        wrote = true;
      }
      if (!entry.histogram_children.empty()) {
        histograms << (wrote ? ", " : "") << "\"series\": [";
        bool first_s = true;
        for (const auto& [selector, child] : entry.histogram_children) {
          histograms << (first_s ? "" : ", ") << "{\"labels\": "
                     << labels_json(child.labels) << ", "
                     << summary_json(*child.instrument) << "}";
          first_s = false;
        }
        histograms << "]";
      }
      histograms << "}";
      first_h = false;
    }
  }
  std::ostringstream out;
  out << "{\n  \"counters\": {" << counters.str() << "},\n  \"gauges\": {"
      << gauges.str() << "},\n  \"histograms\": {" << histograms.str()
      << "}\n}\n";
  return out.str();
}

}  // namespace ptc::telemetry
