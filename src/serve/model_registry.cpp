#include "serve/model_registry.hpp"

#include <utility>

#include "common/expects.hpp"
#include "graph/executor.hpp"
#include "nn/tiling.hpp"

namespace ptc::serve {

ModelRegistry::ModelRegistry(runtime::Accelerator& accelerator,
                             const nn::PhotonicBackendOptions& options)
    : accelerator_(accelerator), backend_(accelerator, options) {}

void ModelRegistry::add(const std::string& name, const nn::Mlp& model) {
  add_graph(name, model.graph());
}

void ModelRegistry::add_graph(const std::string& name, const graph::Graph& g) {
  expects(!name.empty(), "model name must be non-empty");
  expects(!contains(name) && !is_transformer(name),
          "model name already registered");

  // The pass profile mirrors nn::plan_tiled_matmul: a k x m weight matrix
  // cuts into ceil(k / cols) x ceil(m / rows) tiles, twice under the
  // differential W+/W- encoding.
  const core::TensorCore& probe = accelerator_.core(0);
  Entry entry;
  entry.compiled = graph::compile(g);
  entry.profile = entry.compiled.pass_profile(
      probe.rows(), probe.cols(), backend_.options().differential_weights);

  // Pre-warm every accelerator step's weight-plan cache for the fleet's
  // geometry: registration pays the one-time mapping/pass/encode work, so
  // even the first dispatch of this model re-plans and re-encodes nothing.
  for (const graph::Step& step : entry.compiled.steps) {
    if (step.on_accelerator() && step.plan_cache != nullptr) {
      step.plan_cache->get(step.weights, probe.rows(), probe.cols(),
                           backend_.options().differential_weights);
    }
  }
  models_.emplace(name, std::move(entry));
}

bool ModelRegistry::contains(const std::string& name) const {
  return models_.count(name) > 0;
}

void ModelRegistry::add_transformer(const std::string& name,
                                    const nn::TransformerModel& model) {
  expects(!name.empty(), "model name must be non-empty");
  expects(!contains(name) && !is_transformer(name),
          "model name already registered");
  expects(!model.layers().empty(), "transformer has no layers");
  transformers_.emplace(name, model);
}

bool ModelRegistry::is_transformer(const std::string& name) const {
  return transformers_.count(name) > 0;
}

const nn::TransformerModel& ModelRegistry::transformer(
    const std::string& name) const {
  const auto it = transformers_.find(name);
  expects(it != transformers_.end(), "unknown transformer name");
  return it->second;
}

std::size_t ModelRegistry::transformer_weight_passes(
    const std::string& name) const {
  const core::TensorCore& probe = accelerator_.core(0);
  return transformer(name).weight_passes(
      probe.rows(), probe.cols(), backend_.options().differential_weights);
}

std::size_t ModelRegistry::transformer_attention_passes(
    const std::string& name, std::size_t context_len) const {
  const core::TensorCore& probe = accelerator_.core(0);
  return transformer(name).attention_passes(
      context_len, probe.rows(), probe.cols(),
      backend_.options().differential_weights);
}

const ModelRegistry::Entry& ModelRegistry::entry(
    const std::string& name) const {
  const auto it = models_.find(name);
  expects(it != models_.end(), "unknown model name");
  return it->second;
}

const graph::CompiledGraph& ModelRegistry::compiled(
    const std::string& name) const {
  return entry(name).compiled;
}

std::size_t ModelRegistry::input_width(const std::string& name) const {
  return entry(name).compiled.input_size();
}

std::size_t ModelRegistry::passes(const std::string& name) const {
  return entry(name).profile.total_passes;
}

bool ModelRegistry::fits_resident(const std::string& name) const {
  // Residency is against the *active* rotation: after an eviction the
  // surviving cores hold fewer tiles, so a model that was warm on the full
  // fleet may stream cold on the degraded one.
  return passes(name) <= accelerator_.active_core_count();
}

BatchDispatch ModelRegistry::run_batch(const std::string& name,
                                       const Matrix& x) {
  const Entry& e = entry(name);
  expects(x.rows() >= 1, "batch must contain at least one request");
  expects(x.cols() == e.compiled.input_size(),
          "batch width does not match the model input width");

  const bool warm = resident_ == name && fits_resident(name);
  BatchDispatch out;

  // In serve mode the modeled timing comes from the batch_cost loop below,
  // not from the real execution — detach the tracer around graph::run so
  // each hardware span is emitted exactly once, by the costing pass.
  telemetry::Tracer* tracer = accelerator_.tracer();
  if (tracer != nullptr) accelerator_.set_tracer(nullptr);
  out.logits = graph::run(e.compiled, backend_, x);
  if (tracer != nullptr) accelerator_.set_tracer(tracer);

  for (const graph::StepPasses& sp : e.profile.steps) {
    const double step_start = accelerator_.trace_time();
    const runtime::BatchCost cost = accelerator_.batch_cost(
        sp.passes, warm ? sp.passes : 0, x.rows() * sp.rows_per_sample);
    if (tracer != nullptr) {
      tracer->complete(telemetry::track::kSteps,
                       e.compiled.steps[sp.step].label.c_str(), "step",
                       step_start, accelerator_.trace_time(),
                       {{"passes", sp.passes},
                        {"warm", warm},
                        {"rows", x.rows() * sp.rows_per_sample}});
    }
    out.latency += cost.latency;
    out.busy += cost.busy;
    out.passes += sp.passes;
    if (warm) out.warm_passes += sp.passes;
  }
  if (telemetry::MetricsRegistry* metrics = accelerator_.metrics()) {
    metrics->counter(warm ? "serve_warm_batches_total"
                          : "serve_cold_batches_total")
        .inc();
  }
  resident_ = fits_resident(name) ? name : std::string();
  return out;
}

std::string ModelRegistry::schedule_dump(const std::string& name) const {
  const core::TensorCore& probe = accelerator_.core(0);
  return entry(name).compiled.schedule_dump(
      probe.rows(), probe.cols(), backend_.options().differential_weights);
}

Matrix ModelRegistry::reference_batch(const std::string& name,
                                      const Matrix& x) {
  const Entry& e = entry(name);
  expects(x.cols() == e.compiled.input_size(),
          "batch width does not match the model input width");
  return graph::run(e.compiled, reference_backend_, x);
}

}  // namespace ptc::serve
