#include "serve/model_registry.hpp"

#include <utility>

#include "common/expects.hpp"

namespace ptc::serve {
namespace {

std::size_t div_ceil(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

ModelRegistry::ModelRegistry(runtime::Accelerator& accelerator,
                             const nn::PhotonicBackendOptions& options)
    : accelerator_(accelerator), backend_(accelerator, options) {}

void ModelRegistry::add(const std::string& name, nn::Mlp model) {
  expects(!name.empty(), "model name must be non-empty");
  expects(!contains(name), "model name already registered");

  // Pass counts mirror nn::plan_tiled_matmul: a k x m weight matrix cuts
  // into ceil(k / cols) x ceil(m / rows) tiles, twice under the
  // differential W+/W- encoding.
  const core::TensorCore& probe = accelerator_.core(0);
  const std::size_t per_tile =
      backend_.options().differential_weights ? 2 : 1;
  std::vector<std::size_t> layer_passes;
  for (const nn::DenseLayer* layer : {&model.layer1(), &model.layer2()}) {
    layer_passes.push_back(div_ceil(layer->w.rows(), probe.cols()) *
                           div_ceil(layer->w.cols(), probe.rows()) * per_tile);
  }
  models_.emplace(name, Entry{std::move(model), std::move(layer_passes)});
}

bool ModelRegistry::contains(const std::string& name) const {
  return models_.count(name) > 0;
}

const ModelRegistry::Entry& ModelRegistry::entry(
    const std::string& name) const {
  const auto it = models_.find(name);
  expects(it != models_.end(), "unknown model name");
  return it->second;
}

const nn::Mlp& ModelRegistry::model(const std::string& name) const {
  return entry(name).model;
}

std::size_t ModelRegistry::input_width(const std::string& name) const {
  return entry(name).model.layer1().w.rows();
}

std::size_t ModelRegistry::passes(const std::string& name) const {
  std::size_t total = 0;
  for (std::size_t layer : entry(name).layer_passes) total += layer;
  return total;
}

bool ModelRegistry::fits_resident(const std::string& name) const {
  return passes(name) <= accelerator_.core_count();
}

BatchDispatch ModelRegistry::run_batch(const std::string& name,
                                       const Matrix& x) {
  const Entry& e = entry(name);
  expects(x.rows() >= 1, "batch must contain at least one request");
  expects(x.cols() == input_width(name),
          "batch width does not match the model input width");

  const bool warm = resident_ == name && fits_resident(name);
  BatchDispatch out;
  out.logits = e.model.forward(backend_, x);
  for (std::size_t layer_passes : e.layer_passes) {
    const runtime::BatchCost cost = accelerator_.batch_cost(
        layer_passes, warm ? layer_passes : 0, x.rows());
    out.latency += cost.latency;
    out.busy += cost.busy;
    out.passes += layer_passes;
    if (warm) out.warm_passes += layer_passes;
  }
  resident_ = fits_resident(name) ? name : std::string();
  return out;
}

}  // namespace ptc::serve
