#ifndef PTC_SERVE_BATCHER_HPP
#define PTC_SERVE_BATCHER_HPP

#include <cstddef>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "serve/request.hpp"

/// FIFO request queueing and the dynamic-batching policy: a batch closes
/// when it reaches max_batch requests or when its oldest request has waited
/// max_wait — whichever bound hits first.  This is the knob that trades
/// queueing delay against pSRAM-reload amortization: bigger batches stream
/// more samples per weight residency.
namespace ptc::serve {

/// When a batch closes, plus the serving loop's online-recalibration
/// policy.  Recalibration matters when the accelerator models thermal
/// drift (runtime::DriftConfig): cached fast-path gains follow the
/// drifting devices, so accuracy decays until the Server re-locks the
/// fleet — at the price of modeled downtime per recalibration.
struct BatchPolicy {
  /// Requests at which the batch closes immediately.
  std::size_t max_batch = 8;
  /// Longest the oldest queued request may wait for co-batching [s].
  /// 0 dispatches whatever is queued the moment the fleet frees up;
  /// kNoTimeout only closes full batches (fixed-batch serving).
  double max_wait = 0.0;
  /// Periodic recalibration: re-lock the fleet every `recalibration_period`
  /// modeled seconds of serving.  0 disables the periodic trigger.
  double recalibration_period = 0.0;
  /// Error-triggered recalibration: re-lock when the fleet's worst
  /// thermal-monitor detuning exceeds this threshold [K].  0 disables the
  /// drift trigger.  NOTE: this reads the simulator's oracle ground truth —
  /// no real deployment can; it exists as the upper bound the estimated
  /// trigger below is scored against (bench/serving_health).
  double drift_threshold = 0.0;

  // --- fleet health / oracle-free recalibration -----------------------------
  /// Sensor-sweep cadence [s] of modeled time: the serving loop runs one
  /// pilot-tone probe sweep (runtime::Accelerator::probe_cost) per period
  /// and feeds the fleet::FleetHealthMonitor.  Sweeps slot into fleet idle
  /// gaps when possible and otherwise delay the next dispatch by the probe
  /// latency.  0 disables probing (and the two triggers below with it).
  double probe_period = 0.0;
  /// Oracle-free drift trigger: re-lock when the health monitor's worst
  /// *estimated* |detuning| exceeds this threshold [K].  Uses only
  /// sensor-channel data (probe transmission inverted through the ring
  /// model) — the deployable counterpart of drift_threshold.  0 disables.
  double estimated_drift_threshold = 0.0;
  /// Re-lock when a health anomaly alert fired since the last
  /// recalibration (rising-edge change detection on the probe channels).
  bool recalibrate_on_anomaly = false;

  // --- hard-fault reaction (fault schedules / console injection) ------------
  /// Evict a core from the serving rotation when the fault-triggered
  /// self-test classifies it FAILED.  Surviving cores absorb its tile
  /// share (runtime::Accelerator remaps the schedule); a later CLEAR event
  /// repairs and readmits it.  Off, the scheduler keeps routing passes to
  /// the broken core — the no-mitigation baseline the fault bench
  /// collapses.
  bool evict_on_fault = false;
  /// Re-lock the fleet at the next dispatch after any fault injection
  /// (the self-test already ran; this repairs what recalibration can —
  /// e.g. collateral detuning — on the surviving cores).
  bool recalibrate_on_fault = false;
  /// Degraded-capacity load shedding: while >= 1 core is evicted, refuse
  /// new arrivals once the queue holds this many requests (they count as
  /// shed, not completed, and bill to their tenant's shed tally).  0 never
  /// sheds — queues grow unboundedly against the SLOs instead.
  std::size_t degraded_queue_limit = 0;

  static constexpr double kNoTimeout =
      std::numeric_limits<double>::infinity();
};

/// Per-model FIFO queues with arrival-order bookkeeping.
class RequestQueue {
 public:
  void push(Request request);
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t size(const std::string& model) const;

  /// Models with at least one queued request, in deterministic (sorted
  /// name) order.
  std::vector<std::string> models() const;

  /// Arrival time of the oldest queued request for `model` (which must
  /// have at least one).
  double oldest_arrival(const std::string& model) const;

  /// Arrival time of the request that completed a batch of `size` — the
  /// size-th oldest.  The model must have at least `size` queued.  A full
  /// batch cannot dispatch before this instant: its last member must have
  /// arrived.
  double fill_arrival(const std::string& model, std::size_t size) const;

  /// Pops up to `limit` requests of `model` in FIFO order.
  std::vector<Request> pop(const std::string& model, std::size_t limit);

 private:
  std::map<std::string, std::deque<Request>> queues_;
  std::size_t size_ = 0;
};

/// Decides when batches close and which model dispatches next.  Pure
/// policy over queue state: the Server owns the clock and asks (a) when
/// the next batch could be ready and (b) for the batch to launch now.
class DynamicBatcher {
 public:
  explicit DynamicBatcher(const BatchPolicy& policy);

  const BatchPolicy& policy() const { return policy_; }
  void enqueue(Request request);
  bool has_pending() const { return !queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Earliest time >= `now` at which some model's batch closes (a full
  /// queue closes immediately; otherwise when the oldest request's
  /// max_wait expires).  Infinity when nothing is queued, or when nothing
  /// would ever close without more arrivals under a kNoTimeout policy.
  double next_ready_time(double now) const;

  /// Pops the batch to dispatch at time `now`, or empty when none is
  /// ready.  Among models whose batch closed, prefers `resident_model`
  /// (its weight tiles are already on the fleet — no reloads), then the
  /// oldest head-of-queue arrival, then the smallest name.  With `drain`
  /// set every non-empty queue counts as ready — the Server's flush once
  /// the arrival stream ends.
  std::vector<Request> pop_ready(double now,
                                 const std::string& resident_model,
                                 bool drain = false);

 private:
  /// Earliest instant `model`'s batch closes given what is queued now: the
  /// fill arrival once max_batch is reached, else the oldest request's
  /// max_wait expiry.
  double close_time(const std::string& model) const;
  bool ready(const std::string& model, double now, bool drain) const;

  BatchPolicy policy_;
  RequestQueue queue_;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_BATCHER_HPP
