#ifndef PTC_SERVE_MODEL_REGISTRY_HPP
#define PTC_SERVE_MODEL_REGISTRY_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/linalg.hpp"
#include "graph/compile.hpp"
#include "graph/ir.hpp"
#include "nn/backend.hpp"
#include "nn/mlp.hpp"
#include "nn/transformer.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"

/// Named model store over compiled graphs, with weight-tile residency
/// accounting.  Every registered model — an nn::Mlp or any dataflow graph
/// (CNNs, residual nets) — is lowered through the graph compiler at
/// registration; the resulting schedule's pass profile tells the registry
/// how many pSRAM residencies one batch streams per step, and whether the
/// previous dispatch left those tiles on the fleet — the signal the
/// DynamicBatcher uses to favor batches that skip reloads entirely, which
/// is the serving-side payoff of the paper's 20 GHz weight-streaming
/// argument.
namespace ptc::serve {

/// Output + modeled cost of dispatching one batch through the fleet.
struct BatchDispatch {
  Matrix logits;               ///< samples x classes
  double latency = 0.0;        ///< modeled fleet makespan of the batch [s]
  double busy = 0.0;           ///< summed core-busy time [s]
  std::size_t passes = 0;      ///< weight-tile residencies streamed
  std::size_t warm_passes = 0; ///< residencies reused (no reload paid)
};

class ModelRegistry {
 public:
  /// All models execute on `accelerator` with the same backend options.
  explicit ModelRegistry(runtime::Accelerator& accelerator,
                         const nn::PhotonicBackendOptions& options = {});

  /// Registers an MLP under `name` (must be unique): lowers the model's
  /// graph and keeps the compiled schedule.
  void add(const std::string& name, const nn::Mlp& model);

  /// Registers an arbitrary dataflow graph under `name` (must be unique) —
  /// how CNN and residual workloads enter the serving layer.
  void add_graph(const std::string& name, const graph::Graph& g);

  /// Registers a decoder-only transformer under `name` (unique across both
  /// stores).  Token-level serving decodes it incrementally through the
  /// fleet backend (TokenServer); the full-sequence graph path stays
  /// available via the model itself.
  void add_transformer(const std::string& name,
                       const nn::TransformerModel& model);

  /// True when `name` names a registered transformer (vs a batch graph).
  bool is_transformer(const std::string& name) const;

  /// A registered transformer's weights.
  const nn::TransformerModel& transformer(const std::string& name) const;

  /// Static weight-tile passes of one decode step of this transformer at
  /// the fleet's core geometry — the residency-eligible passes (identical
  /// every step, so back-to-back steps of the resident model reuse them
  /// warm).  Attention passes come on top, per request, per context length
  /// (nn::TransformerModel::attention_passes) and are never warm.
  std::size_t transformer_weight_passes(const std::string& name) const;

  /// Attention passes of one decode step for one request with the given
  /// post-append context length, at the fleet's core geometry.
  std::size_t transformer_attention_passes(const std::string& name,
                                           std::size_t context_len) const;

  /// The fleet-wide backend decode steps stream through (same one
  /// run_batch uses, so token and batch serving share residency state and
  /// the energy ledger).
  runtime::AcceleratorBackend& decode_backend() { return backend_; }

  /// The fleet every registered model executes on.
  runtime::Accelerator& accelerator() { return accelerator_; }

  bool contains(const std::string& name) const;
  std::size_t size() const { return models_.size(); }

  /// Compiled schedule of a registered model.
  const graph::CompiledGraph& compiled(const std::string& name) const;

  /// Printable per-step pass schedule of a registered model for the
  /// fleet's core geometry (graph::CompiledGraph::schedule_dump) — what
  /// benches print alongside a PTC_TRACE capture.
  std::string schedule_dump(const std::string& name) const;

  /// Input row width the model expects (flattened input shape).
  std::size_t input_width(const std::string& name) const;

  /// Weight-tile passes one batch of this model streams (all accelerator
  /// steps of the schedule, doubled under differential encoding).
  std::size_t passes(const std::string& name) const;

  /// True when the model's tiles all fit on the fleet simultaneously — the
  /// precondition for back-to-back batches to reuse residencies.
  bool fits_resident(const std::string& name) const;

  /// Model whose tiles are currently resident across the fleet ("" when
  /// none is coherently resident).
  const std::string& resident_model() const { return resident_; }

  /// Executes one batch (x: samples x input_width) on the fleet and
  /// returns logits plus the modeled batch cost, summed over the
  /// schedule's accelerator steps (conv steps stream rows_per_sample
  /// im2col rows per request).  Consecutive batches of the same
  /// resident-fitting model reuse every tile (warm_passes == passes); a
  /// model switch, or a model larger than the fleet, pays all reloads
  /// cold.
  BatchDispatch run_batch(const std::string& name, const Matrix& x);

  /// Float-reference logits for the same batch: the compiled schedule run
  /// on an exact digital backend.  The Server compares argmaxes against
  /// run_batch's to measure the accuracy cost of device variation and
  /// thermal drift; costs nothing on the modeled hardware clock.
  Matrix reference_batch(const std::string& name, const Matrix& x);

  /// Forgets residency state (fresh fleet), e.g. at the start of a run.
  void reset_residency() { resident_.clear(); }

 private:
  struct Entry {
    graph::CompiledGraph compiled;
    graph::PassProfile profile;  ///< for the fleet's core geometry
  };

  const Entry& entry(const std::string& name) const;

  runtime::Accelerator& accelerator_;
  runtime::AcceleratorBackend backend_;
  nn::FloatBackend reference_backend_;
  std::map<std::string, Entry> models_;
  std::map<std::string, nn::TransformerModel> transformers_;
  std::string resident_;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_MODEL_REGISTRY_HPP
