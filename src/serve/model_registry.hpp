#ifndef PTC_SERVE_MODEL_REGISTRY_HPP
#define PTC_SERVE_MODEL_REGISTRY_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/linalg.hpp"
#include "nn/backend.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"

/// Named model store with weight-tile residency accounting.  The registry
/// knows how many pSRAM residencies a batch of each model streams, and
/// whether the previous dispatch left those tiles on the fleet — the signal
/// the DynamicBatcher uses to favor batches that skip reloads entirely,
/// which is the serving-side payoff of the paper's 20 GHz weight-streaming
/// argument.
namespace ptc::serve {

/// Output + modeled cost of dispatching one batch through the fleet.
struct BatchDispatch {
  Matrix logits;               ///< samples x classes
  double latency = 0.0;        ///< modeled fleet makespan of the batch [s]
  double busy = 0.0;           ///< summed core-busy time [s]
  std::size_t passes = 0;      ///< weight-tile residencies streamed
  std::size_t warm_passes = 0; ///< residencies reused (no reload paid)
};

class ModelRegistry {
 public:
  /// All models execute on `accelerator` with the same backend options.
  explicit ModelRegistry(runtime::Accelerator& accelerator,
                         const nn::PhotonicBackendOptions& options = {});

  /// Registers a model under `name` (must be unique).
  void add(const std::string& name, nn::Mlp model);

  /// The fleet every registered model executes on.
  runtime::Accelerator& accelerator() { return accelerator_; }

  bool contains(const std::string& name) const;
  const nn::Mlp& model(const std::string& name) const;
  std::size_t size() const { return models_.size(); }

  /// Input row width the model expects.
  std::size_t input_width(const std::string& name) const;

  /// Weight-tile passes one batch of this model streams (both layers,
  /// doubled under differential encoding).
  std::size_t passes(const std::string& name) const;

  /// True when the model's tiles all fit on the fleet simultaneously — the
  /// precondition for back-to-back batches to reuse residencies.
  bool fits_resident(const std::string& name) const;

  /// Model whose tiles are currently resident across the fleet ("" when
  /// none is coherently resident).
  const std::string& resident_model() const { return resident_; }

  /// Executes one batch (x: samples x input_width) on the fleet and
  /// returns logits plus the modeled batch cost.  Consecutive batches of
  /// the same resident-fitting model reuse every tile (warm_passes ==
  /// passes); a model switch, or a model larger than the fleet, pays all
  /// reloads cold.
  BatchDispatch run_batch(const std::string& name, const Matrix& x);

  /// Forgets residency state (fresh fleet), e.g. at the start of a run.
  void reset_residency() { resident_.clear(); }

 private:
  struct Entry {
    nn::Mlp model;
    std::vector<std::size_t> layer_passes;  ///< per matmul, forward order
  };

  const Entry& entry(const std::string& name) const;

  runtime::Accelerator& accelerator_;
  runtime::AcceleratorBackend backend_;
  std::map<std::string, Entry> models_;
  std::string resident_;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_MODEL_REGISTRY_HPP
