#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expects.hpp"
#include "nn/layers.hpp"

namespace ptc::serve {

Server::Server(ModelRegistry& registry)
    : accelerator_(registry.accelerator()), registry_(registry) {}

ServeReport Server::run(const std::vector<Request>& requests,
                        const BatchPolicy& policy) {
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    expects(requests[i].arrival <= requests[i + 1].arrival,
            "requests must be sorted by arrival time");
  }
  registry_.reset_residency();
  const double energy_before = accelerator_.fleet_ledger().total_energy();

  DynamicBatcher batcher(policy);
  ServeReport report;
  report.cores = accelerator_.core_count();
  report.requests.reserve(requests.size());

  std::size_t next = 0;
  double fleet_free = 0.0;

  while (next < requests.size() || batcher.has_pending()) {
    if (!batcher.has_pending()) {
      batcher.enqueue(requests[next++]);
      continue;
    }

    double dispatch_at =
        std::max(fleet_free, batcher.next_ready_time(fleet_free));
    if (next < requests.size() && requests[next].arrival <= dispatch_at) {
      // This arrival lands before (or exactly when) the next batch would
      // launch: admit it first — it may fill the batch, or open one that
      // closes sooner.
      batcher.enqueue(requests[next++]);
      continue;
    }
    bool drain = false;
    if (std::isinf(dispatch_at)) {
      // Arrival stream ended and no bound will ever close the leftovers
      // (kNoTimeout partial batches): flush them now.
      expects(next >= requests.size(), "only a drained stream may flush");
      dispatch_at = fleet_free;
      drain = true;
    }

    std::vector<Request> batch =
        batcher.pop_ready(dispatch_at, registry_.resident_model(), drain);
    expects(!batch.empty(), "a ready batch must be non-empty");

    Matrix x(batch.size(), batch.front().input.size());
    for (std::size_t r = 0; r < batch.size(); ++r) {
      expects(batch[r].input.size() == x.cols(),
              "requests of one model must share the input width");
      for (std::size_t c = 0; c < x.cols(); ++c) {
        x(r, c) = batch[r].input[c];
      }
    }

    const BatchDispatch result =
        registry_.run_batch(batch.front().model, x);
    const double completion = dispatch_at + result.latency;
    const std::vector<std::size_t> predicted =
        nn::argmax_rows(result.logits);

    BatchRecord batch_record;
    batch_record.id = report.batches.size();
    batch_record.model = batch.front().model;
    batch_record.size = batch.size();
    batch_record.passes = result.passes;
    batch_record.warm_passes = result.warm_passes;
    batch_record.dispatch = dispatch_at;
    batch_record.completion = completion;
    batch_record.busy = result.busy;

    for (std::size_t r = 0; r < batch.size(); ++r) {
      RequestRecord record;
      record.id = batch[r].id;
      record.tenant = std::move(batch[r].tenant);
      record.model = std::move(batch[r].model);
      record.batch = batch_record.id;
      record.predicted = predicted[r];
      record.arrival = batch[r].arrival;
      record.dispatch = dispatch_at;
      record.completion = completion;
      report.requests.push_back(std::move(record));
    }
    report.batches.push_back(std::move(batch_record));
    report.passes += result.passes;
    report.warm_passes += result.warm_passes;
    report.busy += result.busy;
    fleet_free = completion;
  }

  report.makespan = fleet_free;
  report.energy =
      accelerator_.fleet_ledger().total_energy() - energy_before;

  std::vector<double> waits, services, totals;
  waits.reserve(report.requests.size());
  services.reserve(report.requests.size());
  totals.reserve(report.requests.size());
  for (const RequestRecord& record : report.requests) {
    waits.push_back(record.queue_wait());
    services.push_back(record.service());
    totals.push_back(record.total());
  }
  report.queue_wait = LatencyStats::from(waits);
  report.service = LatencyStats::from(services);
  report.total = LatencyStats::from(totals);
  return report;
}

}  // namespace ptc::serve
