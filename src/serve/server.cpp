#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expects.hpp"
#include "nn/layers.hpp"

namespace ptc::serve {

Server::Server(ModelRegistry& registry)
    : accelerator_(registry.accelerator()), registry_(registry) {}

ServeReport Server::run(const std::vector<Request>& requests,
                        const BatchPolicy& policy) {
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    expects(requests[i].arrival <= requests[i + 1].arrival,
            "requests must be sorted by arrival time");
  }
  registry_.reset_residency();
  accelerator_.reset_drift();
  const double energy_before = accelerator_.fleet_ledger().total_energy();

  DynamicBatcher batcher(policy);
  ServeReport report;
  report.cores = accelerator_.core_count();
  report.requests.reserve(requests.size());

  std::size_t next = 0;
  double fleet_free = 0.0;
  double last_recalibration = 0.0;
  // Accuracy scoring costs one float-reference execution per batch; only
  // pay it where the comparison is non-trivial (varied or drifting fleet).
  const runtime::AcceleratorConfig& fleet_config = accelerator_.config();
  report.accuracy_scored = accelerator_.drift_enabled() ||
                           fleet_config.variation.seed != 0 ||
                           fleet_config.variation_seed != 0;
  // At most one re-lock between dispatches, so a policy whose period is
  // shorter than the recalibration downtime still makes forward progress.
  bool recalibrated_since_dispatch = false;

  while (next < requests.size() || batcher.has_pending()) {
    if (!batcher.has_pending()) {
      batcher.enqueue(requests[next++]);
      continue;
    }

    double dispatch_at =
        std::max(fleet_free, batcher.next_ready_time(fleet_free));
    if (next < requests.size() && requests[next].arrival <= dispatch_at) {
      // This arrival lands before (or exactly when) the next batch would
      // launch: admit it first — it may fill the batch, or open one that
      // closes sooner.
      batcher.enqueue(requests[next++]);
      continue;
    }
    bool drain = false;
    if (std::isinf(dispatch_at)) {
      // Arrival stream ended and no bound will ever close the leftovers
      // (kNoTimeout partial batches): flush them now.
      expects(next >= requests.size(), "only a drained stream may flush");
      dispatch_at = fleet_free;
      drain = true;
    }

    // The fleet drifts up to the launch instant; then the recalibration
    // policy gets a look before the batch commits.
    accelerator_.advance_to(dispatch_at);
    if (!recalibrated_since_dispatch) {
      const bool periodic_due =
          policy.recalibration_period > 0.0 &&
          dispatch_at - last_recalibration >= policy.recalibration_period;
      const bool drift_due =
          policy.drift_threshold > 0.0 &&
          accelerator_.max_abs_detuning() > policy.drift_threshold;
      if (periodic_due || drift_due) {
        const runtime::BatchCost downtime = accelerator_.recalibrate();
        ++report.recalibrations;
        report.recalibration_time += downtime.latency;
        last_recalibration = dispatch_at;
        recalibrated_since_dispatch = true;
        fleet_free = dispatch_at + downtime.latency;
        // Re-enter the loop: arrivals during the re-lock join the queue
        // and the dispatch instant moves past the downtime.
        continue;
      }
    }

    std::vector<Request> batch =
        batcher.pop_ready(dispatch_at, registry_.resident_model(), drain);
    expects(!batch.empty(), "a ready batch must be non-empty");

    Matrix x(batch.size(), batch.front().input.size());
    for (std::size_t r = 0; r < batch.size(); ++r) {
      expects(batch[r].input.size() == x.cols(),
              "requests of one model must share the input width");
      for (std::size_t c = 0; c < x.cols(); ++c) {
        x(r, c) = batch[r].input[c];
      }
    }

    const BatchDispatch result =
        registry_.run_batch(batch.front().model, x);
    const double completion = dispatch_at + result.latency;
    const std::vector<std::size_t> predicted =
        nn::argmax_rows(result.logits);
    // Accuracy scoring: the same batch through the exact float reference.
    std::vector<std::size_t> reference;
    if (report.accuracy_scored) {
      reference =
          nn::argmax_rows(registry_.reference_batch(batch.front().model, x));
    }

    BatchRecord batch_record;
    batch_record.id = report.batches.size();
    batch_record.model = batch.front().model;
    batch_record.size = batch.size();
    batch_record.passes = result.passes;
    batch_record.warm_passes = result.warm_passes;
    batch_record.dispatch = dispatch_at;
    batch_record.completion = completion;
    batch_record.busy = result.busy;
    batch_record.detuning = accelerator_.max_abs_detuning();
    batch_record.epoch = accelerator_.core(0).calibration_epoch();
    report.max_abs_detuning =
        std::max(report.max_abs_detuning, batch_record.detuning);
    recalibrated_since_dispatch = false;

    for (std::size_t r = 0; r < batch.size(); ++r) {
      RequestRecord record;
      record.id = batch[r].id;
      record.tenant = std::move(batch[r].tenant);
      record.model = std::move(batch[r].model);
      record.batch = batch_record.id;
      record.predicted = predicted[r];
      record.matches_reference =
          !report.accuracy_scored || predicted[r] == reference[r];
      if (report.accuracy_scored && record.matches_reference) {
        ++report.reference_matches;
      }
      record.arrival = batch[r].arrival;
      record.dispatch = dispatch_at;
      record.completion = completion;
      report.requests.push_back(std::move(record));
    }
    report.batches.push_back(std::move(batch_record));
    report.passes += result.passes;
    report.warm_passes += result.warm_passes;
    report.busy += result.busy;
    fleet_free = completion;
  }

  report.makespan = fleet_free;
  report.energy =
      accelerator_.fleet_ledger().total_energy() - energy_before;

  std::vector<double> waits, services, totals;
  waits.reserve(report.requests.size());
  services.reserve(report.requests.size());
  totals.reserve(report.requests.size());
  for (const RequestRecord& record : report.requests) {
    waits.push_back(record.queue_wait());
    services.push_back(record.service());
    totals.push_back(record.total());
  }
  report.queue_wait = LatencyStats::from(waits);
  report.service = LatencyStats::from(services);
  report.total = LatencyStats::from(totals);
  return report;
}

}  // namespace ptc::serve
