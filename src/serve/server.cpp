#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <utility>

#include "common/expects.hpp"
#include "nn/layers.hpp"
#include "serve/attribution.hpp"

namespace ptc::serve {
namespace {

/// Latency histograms cover 1 ns .. 10 ks of modeled time at ~7.5% bucket
/// width — generous on both ends for any policy sweep the benches run.
telemetry::HistogramOptions latency_histogram_options() {
  telemetry::HistogramOptions options;
  options.min = 1e-9;
  options.max = 1e4;
  options.buckets_per_decade = 32;
  return options;
}

}  // namespace

Server::Server(ModelRegistry& registry)
    : accelerator_(registry.accelerator()), registry_(registry) {}

void Server::set_tracer(telemetry::Tracer* tracer) {
  tracer_ = tracer;
  accelerator_.set_tracer(tracer);
  if (tracer_ == nullptr) return;
  tracer_->set_track_name(telemetry::track::kServe, "serving");
  tracer_->set_track_name(telemetry::track::kSteps, "graph steps");
  tracer_->set_track_name(telemetry::track::kQueue, "queue");
}

void Server::set_metrics(telemetry::MetricsRegistry* metrics) {
  metrics_ = metrics;
  accelerator_.set_metrics(metrics);
}

void Server::set_health_config(const fleet::HealthConfig& config) {
  health_config_ = config;
  health_.reset();
}

void Server::add_slo(const SloObjective& objective) {
  for (const SloMonitor& monitor : slos_) {
    expects(monitor.objective().name != objective.name,
            "SLO names must be unique per server");
  }
  slos_.emplace_back(objective);
}

void Server::clear_slos() { slos_.clear(); }

void Server::set_fault_schedule(std::vector<runtime::FaultEvent> schedule) {
  for (std::size_t i = 0; i + 1 < schedule.size(); ++i) {
    expects(schedule[i].time <= schedule[i + 1].time,
            "fault events must be sorted by time");
  }
  fault_schedule_ = std::move(schedule);
}

ServeReport Server::run(const std::vector<Request>& requests,
                        const BatchPolicy& policy, const RunOptions& options) {
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    expects(requests[i].arrival <= requests[i + 1].arrival,
            "requests must be sorted by arrival time");
  }
  registry_.reset_residency();
  accelerator_.reset_drift();
  // A scheduled-fault run replays its schedule from a healthy fleet, so the
  // same schedule + requests reproduce byte-identically across runs.  An
  // empty schedule leaves console-injected faults (and their evictions) in
  // place — the operator's fleet state persists across SERVE:RUN?.
  if (!fault_schedule_.empty()) accelerator_.reset_faults();
  accelerator_.set_trace_time(0.0);
  const double energy_before = accelerator_.fleet_ledger().total_energy();

  // Probing policies sample the fleet health monitor on a modeled-time
  // cadence; the estimate/anomaly triggers read *it*, never the oracle.
  const bool probing = policy.probe_period > 0.0;
  expects(probing || (policy.estimated_drift_threshold == 0.0 &&
                      !policy.recalibrate_on_anomaly),
          "estimate/anomaly recalibration triggers need probe_period > 0");
  if (probing) {
    if (health_ == nullptr) {
      // Characterization (probe response curves per core) happens once and
      // is reused across runs — it is a property of the devices, not of
      // any run's drift trajectory.
      health_ = std::make_unique<fleet::FleetHealthMonitor>(accelerator_,
                                                            health_config_);
    }
    health_->reset();
    health_->set_metrics(metrics_);
    health_->set_tracer(tracer_);
    // A period shorter than the sweep's own modeled latency could never
    // keep up — and would starve dispatch during a drain flush.
    expects(policy.probe_period >=
                accelerator_.probe_cost(health_config_.probe_samples).latency,
            "probe_period must cover the probe sweep latency");
  }
  fleet::FleetHealthMonitor* health = probing ? health_.get() : nullptr;
  double next_probe =
      probing ? policy.probe_period : std::numeric_limits<double>::infinity();

  // Trigger-lag measurement (reporting only — the triggers themselves never
  // see these oracle reads): the instant each core's true |detuning| first
  // crossed the policy's threshold since the last re-lock.
  const double lag_threshold = policy.estimated_drift_threshold > 0.0
                                   ? policy.estimated_drift_threshold
                                   : policy.drift_threshold;
  std::vector<double> crossed_at(accelerator_.core_count(), -1.0);
  const auto note_crossings = [&](double t) {
    if (lag_threshold <= 0.0) return;
    for (std::size_t i = 0; i < accelerator_.core_count(); ++i) {
      if (crossed_at[i] < 0.0 &&
          std::abs(accelerator_.core(i).thermal_detuning()) > lag_threshold) {
        crossed_at[i] = t;
      }
    }
  };

  // --- cost attribution state ---
  // Every joule and second the run charges is attributed to a tenant row
  // as it happens; fleet-side work (recalibration) lands on the reserved
  // TenantCost::kFleetTenant row.  `ledger_last` walks the fleet energy
  // ledger so each attribution event gets exactly the delta it caused.
  std::map<std::string, TenantCost> costs;
  double ledger_last = energy_before;
  const auto cost_row = [&costs](const std::string& tenant) -> TenantCost& {
    TenantCost& row = costs[tenant];
    if (row.tenant.empty()) row.tenant = tenant;
    return row;
  };
  for (SloMonitor& monitor : slos_) monitor.reset();

  DynamicBatcher batcher(policy);
  ServeReport report;
  report.cores = accelerator_.core_count();
  if (options.keep_records) report.requests.reserve(requests.size());

  // O(buckets) per-run latency aggregation (satellite of the telemetry
  // subsystem): the report summaries come from these, not from the record
  // vectors, so keep_records = false loses nothing but the raw traces.
  const telemetry::HistogramOptions hopts = latency_histogram_options();
  telemetry::Histogram wait_hist(hopts);
  telemetry::Histogram service_hist(hopts);
  telemetry::Histogram total_hist(hopts);
  telemetry::Histogram lag_hist(hopts);

  std::size_t next = 0;
  double fleet_free = 0.0;
  double last_recalibration = 0.0;
  // Accuracy scoring costs one float-reference execution per batch; only
  // pay it where the comparison is non-trivial (varied or drifting fleet).
  const runtime::AcceleratorConfig& fleet_config = accelerator_.config();
  report.accuracy_scored = accelerator_.drift_enabled() ||
                           fleet_config.variation.seed != 0 ||
                           fleet_config.variation_seed != 0;
  // At most one re-lock between dispatches, so a policy whose period is
  // shorter than the recalibration downtime still makes forward progress.
  bool recalibrated_since_dispatch = false;
  // Hard-fault replay cursor over the (time-sorted) schedule, and the
  // latch a fault injection sets when the policy re-locks on faults.
  std::size_t next_fault = 0;
  bool fault_recal_pending = false;

  // Request lifecycle spans are async events keyed by request id: queued
  // lifetimes overlap arbitrarily, which no single track could hold.
  const auto admit = [&](const Request& request) {
    // Degraded-capacity load shedding: while a core is evicted the fleet
    // runs below nameplate, so an admission-time queue cap keeps the
    // surviving cores' tail latency inside the SLOs at the price of
    // availability.  Shed requests never enqueue: they bill to their
    // tenant's shed tally and the run's availability() pays for them.
    if (policy.degraded_queue_limit > 0 && accelerator_.evicted_count() > 0 &&
        batcher.pending() >= policy.degraded_queue_limit) {
      ++cost_row(request.tenant).shed_requests;
      if (tracer_ != nullptr) {
        tracer_->instant(telemetry::track::kServe, "request_shed", "serve",
                         request.arrival,
                         {{"tenant", request.tenant.c_str()},
                          {"model", request.model.c_str()}});
      }
      if (metrics_ != nullptr) {
        metrics_
            ->counter("serve_shed_total", {{"tenant", request.tenant}},
                      "requests refused by degraded-capacity shedding")
            .inc();
      }
      return;
    }
    if (tracer_ != nullptr) {
      tracer_->async_begin("request", "request", request.id, request.arrival,
                           {{"tenant", request.tenant.c_str()},
                            {"model", request.model.c_str()}});
    }
    batcher.enqueue(request);
    if (tracer_ != nullptr) {
      tracer_->counter(telemetry::track::kQueue, "queue_depth",
                       request.arrival,
                       static_cast<double>(batcher.pending()));
    }
    if (metrics_ != nullptr) {
      metrics_->counter("serve_requests_total").inc();
      metrics_->gauge("serve_queue_depth").set(
          static_cast<double>(batcher.pending()));
    }
  };

  while (next < requests.size() || batcher.has_pending()) {
    if (!batcher.has_pending()) {
      admit(requests[next++]);
      continue;
    }

    double dispatch_at =
        std::max(fleet_free, batcher.next_ready_time(fleet_free));
    if (next < requests.size() && requests[next].arrival <= dispatch_at) {
      // This arrival lands before (or exactly when) the next batch would
      // launch: admit it first — it may fill the batch, or open one that
      // closes sooner.
      admit(requests[next++]);
      continue;
    }
    bool drain = false;
    if (std::isinf(dispatch_at)) {
      // Arrival stream ended and no bound will ever close the leftovers
      // (kNoTimeout partial batches): flush them now.
      expects(next >= requests.size(), "only a drained stream may flush");
      dispatch_at = fleet_free;
      drain = true;
    }

    // Scheduled hard faults due at or before the launch instant strike
    // first (in modeled-event order against the probe cadence): inject,
    // self-test the struck core, and apply the policy's eviction /
    // readmission reaction before any batch commits to the old rotation.
    if (next_fault < fault_schedule_.size() &&
        fault_schedule_[next_fault].time <= dispatch_at &&
        (health == nullptr || fault_schedule_[next_fault].time <= next_probe)) {
      const runtime::FaultEvent& event = fault_schedule_[next_fault++];
      const double fault_at = std::max(event.time, fleet_free);
      accelerator_.advance_to(fault_at);
      note_crossings(fault_at);
      accelerator_.set_trace_time(fault_at);
      accelerator_.inject(event);
      // The strike triggers the struck core's BIST: its verdict drives the
      // eviction decision and its modeled downtime stalls the fleet —
      // billed, like recalibration, to the reserved fleet row.
      const runtime::CoreHealth verdict =
          accelerator_.run_self_test(event.core);
      const runtime::BatchCost bist = accelerator_.self_test_cost();
      const bool repair = event.kind == runtime::FaultEvent::Kind::kClear;
      fleet_free = std::max(fleet_free, fault_at + bist.latency);
      {
        const double ledger_now = accelerator_.fleet_ledger().total_energy();
        TenantCost& fleet_row = cost_row(TenantCost::kFleetTenant);
        if (!repair) ++fleet_row.faults;
        fleet_row.fault_seconds += bist.latency;
        fleet_row.energy_joules += ledger_now - ledger_last;
        ledger_last = ledger_now;
      }
      if (policy.recalibrate_on_fault) fault_recal_pending = true;
      if (tracer_ != nullptr) {
        tracer_->instant(telemetry::track::kServe,
                         repair ? "fault_cleared" : "fault_injected", "serve",
                         fault_at,
                         {{"kind", runtime::to_string(event.kind)},
                          {"core", event.core}});
        tracer_->complete(telemetry::track::kServe, "self_test", "serve",
                          fault_at, fault_at + bist.latency,
                          {{"core", event.core},
                           {"health", runtime::to_string(verdict)}});
      }
      if (metrics_ != nullptr && !repair) {
        metrics_->counter("serve_faults_total").inc();
        metrics_->counter("serve_fault_seconds_total").inc(bist.latency);
      }
      if (repair) {
        // Field repair: a cleared core that passes its BIST rejoins the
        // rotation (the next batch restreams against the larger fleet).
        if (accelerator_.core_evicted(event.core) &&
            verdict != runtime::CoreHealth::kFailed) {
          accelerator_.readmit_core(event.core);
          registry_.reset_residency();
          ++report.core_readmissions;
          if (tracer_ != nullptr) {
            tracer_->instant(telemetry::track::kServe, "core_readmitted",
                             "serve", fault_at, {{"core", event.core}});
          }
          if (metrics_ != nullptr) {
            metrics_->counter("serve_core_readmissions_total").inc();
          }
        }
      } else if (policy.evict_on_fault &&
                 verdict == runtime::CoreHealth::kFailed &&
                 !accelerator_.core_evicted(event.core) &&
                 accelerator_.active_core_count() > 1) {
        accelerator_.evict_core(event.core);
        // Residency was planned against the old rotation; drop it so the
        // next batch restreams against the survivors.
        registry_.reset_residency();
        ++report.core_evictions;
        if (tracer_ != nullptr) {
          tracer_->instant(telemetry::track::kServe, "core_evicted", "serve",
                           fault_at, {{"core", event.core}});
        }
        if (metrics_ != nullptr) {
          metrics_->counter("serve_core_evictions_total").inc();
        }
      }
      // Re-enter the loop: the dispatch instant may have moved past the
      // self-test downtime, and more events may be due before it.
      continue;
    }

    // Sensor sweeps due at or before the launch instant run first, in the
    // fleet's idle gap when there is one — feeding the health monitor the
    // estimates the oracle-free triggers below read.
    if (health != nullptr && next_probe <= dispatch_at) {
      const double probe_at = std::max(next_probe, fleet_free);
      accelerator_.advance_to(probe_at);
      note_crossings(probe_at);
      accelerator_.set_trace_time(probe_at);
      const runtime::BatchCost probe =
          accelerator_.probe_cost(health->config().probe_samples);
      health->sample(probe_at);
      next_probe = probe_at + policy.probe_period;
      fleet_free = std::max(fleet_free, probe_at + probe.latency);
      // Probing is fleet overhead no tenant caused: bill the reserved row,
      // so the report's probe totals conserve like every other cost.
      TenantCost& fleet_row = cost_row(TenantCost::kFleetTenant);
      ++fleet_row.probes;
      fleet_row.probe_seconds += probe.latency;
      if (tracer_ != nullptr) {
        tracer_->complete(telemetry::track::kServe, "probe", "serve",
                          probe_at, probe_at + probe.latency,
                          {{"samples", health->config().probe_samples},
                           {"estimate_kelvin", health->max_estimate()}});
      }
      if (metrics_ != nullptr) {
        metrics_->counter("serve_probes_total").inc();
        metrics_->counter("serve_probe_seconds_total").inc(probe.latency);
      }
      // Re-enter the loop: the dispatch instant may have moved past the
      // sweep, and more probes may be due before it.
      continue;
    }

    // The fleet drifts up to the launch instant; then the recalibration
    // policy gets a look before the batch commits.
    accelerator_.advance_to(dispatch_at);
    note_crossings(dispatch_at);
    if (!recalibrated_since_dispatch) {
      const bool periodic_due =
          policy.recalibration_period > 0.0 &&
          dispatch_at - last_recalibration >= policy.recalibration_period;
      const bool drift_due =
          policy.drift_threshold > 0.0 &&
          accelerator_.max_abs_detuning() > policy.drift_threshold;
      // The oracle-free triggers: both read only the health monitor's
      // sensor-derived state (probe transmission inverted through the ring
      // model), never the simulator's ground-truth detuning.
      const bool estimated_due =
          policy.estimated_drift_threshold > 0.0 && health != nullptr &&
          health->max_estimate() > policy.estimated_drift_threshold;
      const bool anomaly_due = policy.recalibrate_on_anomaly &&
                               health != nullptr &&
                               health->alerts_since_recalibration() > 0;
      // Fault-triggered re-lock: a strike (or repair) since the last
      // dispatch latched this; recalibration repairs what it can on the
      // surviving cores (collateral detuning — not the hard fault itself).
      const bool fault_due = fault_recal_pending;
      if (periodic_due || drift_due || estimated_due || anomaly_due ||
          fault_due) {
        // Pin the modeled-time cursor so the downtime spans sit exactly in
        // the window the event loop charges for them.
        accelerator_.set_trace_time(dispatch_at);
        const runtime::BatchCost downtime = accelerator_.recalibrate();
        ++report.recalibrations;
        last_recalibration = dispatch_at;
        // Trigger lag (oracle-measured, reporting only): time from each
        // core's true threshold crossing to the re-lock that cleared it.
        for (std::size_t i = 0; i < crossed_at.size(); ++i) {
          if (crossed_at[i] < 0.0) continue;
          const double lag = dispatch_at - crossed_at[i];
          lag_hist.observe(lag);
          if (metrics_ != nullptr) {
            metrics_
                ->histogram("serve_trigger_lag_seconds",
                            {{"core", std::to_string(i)}},
                            "threshold-crossing -> re-lock lag [s]", hopts)
                .observe(lag);
          }
          crossed_at[i] = -1.0;
        }
        if (health != nullptr) health->on_recalibration(dispatch_at);
        // Recalibration is fleet overhead no tenant caused: its downtime
        // and ledger energy bill to the reserved fleet row.
        {
          const double ledger_now =
              accelerator_.fleet_ledger().total_energy();
          const double recal_energy = ledger_now - ledger_last;
          ledger_last = ledger_now;
          TenantCost& fleet_row = cost_row(TenantCost::kFleetTenant);
          ++fleet_row.recalibrations;
          fleet_row.recalibration_seconds += downtime.latency;
          fleet_row.energy_joules += recal_energy;
          if (metrics_ != nullptr) {
            metrics_
                ->counter("serve_tenant_energy_joules_total",
                          {{"tenant", TenantCost::kFleetTenant},
                           {"model", "(recal)"}},
                          "attributed fleet ledger energy [J]")
                .inc(recal_energy);
          }
        }
        recalibrated_since_dispatch = true;
        fault_recal_pending = false;
        fleet_free = dispatch_at + downtime.latency;
        if (tracer_ != nullptr) {
          tracer_->complete(telemetry::track::kServe, "recalibrate", "serve",
                            dispatch_at, fleet_free,
                            {{"downtime_s", downtime.latency}});
        }
        if (metrics_ != nullptr) {
          metrics_->counter("serve_recalibrations_total").inc();
          metrics_->counter("serve_recalibration_seconds_total")
              .inc(downtime.latency);
        }
        // Re-enter the loop: arrivals during the re-lock join the queue
        // and the dispatch instant moves past the downtime.
        continue;
      }
    }

    std::vector<Request> batch =
        batcher.pop_ready(dispatch_at, registry_.resident_model(), drain);
    expects(!batch.empty(), "a ready batch must be non-empty");
    if (tracer_ != nullptr) {
      tracer_->counter(telemetry::track::kQueue, "queue_depth", dispatch_at,
                       static_cast<double>(batcher.pending()));
    }

    Matrix x(batch.size(), batch.front().input.size());
    for (std::size_t r = 0; r < batch.size(); ++r) {
      expects(batch[r].input.size() == x.cols(),
              "requests of one model must share the input width");
      for (std::size_t c = 0; c < x.cols(); ++c) {
        x(r, c) = batch[r].input[c];
      }
    }

    // Pin the hardware clock to the dispatch instant: the per-core pass
    // spans and per-step spans run_batch emits land inside this batch's
    // [dispatch, completion] window.
    accelerator_.set_trace_time(dispatch_at);
    const BatchDispatch result =
        registry_.run_batch(batch.front().model, x);
    // Snapshot the ledger before the float-reference scoring below: this
    // batch's energy delta is exactly what its tile passes charged.
    const double batch_energy =
        accelerator_.fleet_ledger().total_energy() - ledger_last;
    ledger_last += batch_energy;
    const double completion = dispatch_at + result.latency;
    const std::vector<std::size_t> predicted =
        nn::argmax_rows(result.logits);
    // Accuracy scoring: the same batch through the exact float reference.
    std::vector<std::size_t> reference;
    if (report.accuracy_scored) {
      reference =
          nn::argmax_rows(registry_.reference_batch(batch.front().model, x));
    }

    BatchRecord batch_record;
    batch_record.id = report.dispatched_batches;
    batch_record.model = batch.front().model;
    batch_record.size = batch.size();
    batch_record.passes = result.passes;
    batch_record.warm_passes = result.warm_passes;
    batch_record.dispatch = dispatch_at;
    batch_record.completion = completion;
    batch_record.busy = result.busy;
    batch_record.detuning = accelerator_.max_abs_detuning();
    batch_record.epoch = accelerator_.core(0).calibration_epoch();
    report.max_abs_detuning =
        std::max(report.max_abs_detuning, batch_record.detuning);
    recalibrated_since_dispatch = false;

    if (tracer_ != nullptr) {
      tracer_->complete(
          telemetry::track::kServe, "batch", "batch", dispatch_at, completion,
          {{"id", batch_record.id},
           {"model", batch_record.model.c_str()},
           {"size", batch_record.size},
           {"passes", batch_record.passes},
           {"warm_passes", batch_record.warm_passes},
           {"detuning_kelvin", batch_record.detuning},
           {"epoch", batch_record.epoch}});
    }
    if (metrics_ != nullptr) {
      metrics_->counter("serve_batches_total").inc();
      metrics_->histogram("serve_batch_size", "requests per dispatched batch")
          .observe(static_cast<double>(batch.size()));
    }

    // Attribute this batch's cost to its tenants, weighted by request
    // count: integers by exact largest-remainder apportionment, time and
    // energy by the count fraction (a single-tenant batch takes the whole
    // quantity bitwise — the fraction is exactly 1.0).  Service latency is
    // per-request, so a tenant's share is exactly n_i * latency.
    {
      TenantShares shares;
      for (const Request& request : batch) ++shares[request.tenant];
      const auto pass_split =
          split_exact(result.passes, shares, batch.size());
      const auto warm_split =
          split_exact(result.warm_passes, shares, batch.size());
      for (const auto& [tenant, count] : shares) {
        const double fraction =
            static_cast<double>(count) / static_cast<double>(batch.size());
        const double service_share =
            static_cast<double>(count) * result.latency;
        const double busy_share = result.busy * fraction;
        const double energy_share = batch_energy * fraction;
        TenantCost& row = cost_row(tenant);
        row.requests += count;
        ++row.batches;
        row.passes += pass_split.at(tenant);
        row.warm_passes += warm_split.at(tenant);
        row.service_seconds += service_share;
        row.busy_seconds += busy_share;
        row.energy_joules += energy_share;
        if (metrics_ != nullptr) {
          const telemetry::LabelSet labels = {
              {"tenant", tenant}, {"model", batch_record.model}};
          metrics_
              ->counter("serve_tenant_requests_total", labels,
                        "completed requests per tenant x model")
              .inc(static_cast<double>(count));
          metrics_
              ->counter("serve_tenant_passes_total", labels,
                        "attributed weight-tile residencies")
              .inc(static_cast<double>(pass_split.at(tenant)));
          metrics_
              ->counter("serve_tenant_warm_passes_total", labels,
                        "attributed reload-free residencies")
              .inc(static_cast<double>(warm_split.at(tenant)));
          metrics_
              ->counter("serve_tenant_service_seconds_total", labels,
                        "attributed service latency [s]")
              .inc(service_share);
          metrics_
              ->counter("serve_tenant_busy_seconds_total", labels,
                        "attributed core-busy time [s]")
              .inc(busy_share);
          metrics_
              ->counter("serve_tenant_energy_joules_total", labels,
                        "attributed fleet ledger energy [J]")
              .inc(energy_share);
        }
      }
    }

    for (std::size_t r = 0; r < batch.size(); ++r) {
      const double wait = dispatch_at - batch[r].arrival;
      const double service = result.latency;
      const double total = completion - batch[r].arrival;
      wait_hist.observe(wait);
      service_hist.observe(service);
      total_hist.observe(total);
      if (metrics_ != nullptr) {
        metrics_
            ->histogram("serve_queue_wait_seconds",
                        "arrival -> dispatch latency [s]", hopts)
            .observe(wait);
        metrics_
            ->histogram("serve_total_seconds",
                        "arrival -> completion latency [s]", hopts)
            .observe(total);
      }
      const bool matches = !report.accuracy_scored || predicted[r] == reference[r];
      if (report.accuracy_scored && matches) ++report.reference_matches;
      // SLO monitors see every completion in event-loop order (before the
      // tenant string is moved into the record below).
      for (SloMonitor& monitor : slos_) {
        monitor.observe(completion, batch[r].tenant, total, !matches,
                        metrics_, tracer_);
      }
      if (tracer_ != nullptr) {
        tracer_->async_end("request", "request", batch[r].id, completion);
      }
      if (options.keep_records) {
        RequestRecord record;
        record.id = batch[r].id;
        record.tenant = std::move(batch[r].tenant);
        record.model = std::move(batch[r].model);
        record.batch = batch_record.id;
        record.predicted = predicted[r];
        record.matches_reference = matches;
        record.arrival = batch[r].arrival;
        record.dispatch = dispatch_at;
        record.completion = completion;
        report.requests.push_back(std::move(record));
      }
    }
    report.completed += batch.size();
    ++report.dispatched_batches;
    if (options.keep_records) report.batches.push_back(std::move(batch_record));
    report.passes += result.passes;
    report.warm_passes += result.warm_passes;
    // report.busy is derived from the attribution rows at finalize.
    fleet_free = completion;
  }

  report.makespan = fleet_free;

  // Any ledger energy charged outside the attributed windows (there is
  // normally none) is fleet overhead; bill it so attribution stays
  // exhaustive.
  const double unattributed =
      accelerator_.fleet_ledger().total_energy() - ledger_last;
  if (unattributed != 0.0) {
    cost_row(TenantCost::kFleetTenant).energy_joules += unattributed;
  }

  // The fleet totals are *derived* from the attribution rows, summed in
  // sorted-tenant order — the conservation contract: per-tenant costs sum
  // to these bit-exactly because these ARE those sums.  The integer
  // cross-checks catch a cost path that forgot to attribute.
  report.tenant_costs.reserve(costs.size());
  std::size_t attributed_requests = 0;
  std::size_t attributed_passes = 0;
  std::size_t attributed_warm = 0;
  for (auto& [tenant, row] : costs) {
    attributed_requests += row.requests;
    attributed_passes += row.passes;
    attributed_warm += row.warm_passes;
    report.tenant_costs.push_back(std::move(row));
  }
  expects(attributed_requests == report.completed,
          "attributed requests must equal completions");
  expects(attributed_passes == report.passes,
          "attributed passes must conserve the fleet total");
  expects(attributed_warm == report.warm_passes,
          "attributed warm passes must conserve the fleet total");
  report.busy = 0.0;
  report.energy = 0.0;
  report.service_time = 0.0;
  report.recalibration_time = 0.0;
  report.probes = 0;
  report.probe_time = 0.0;
  report.faults = 0;
  report.fault_time = 0.0;
  report.shed = 0;
  for (const TenantCost& row : report.tenant_costs) {
    report.busy += row.busy_seconds;
    report.energy += row.energy_joules;
    report.service_time += row.service_seconds;
    report.recalibration_time += row.recalibration_seconds;
    report.probes += row.probes;
    report.probe_time += row.probe_seconds;
    report.faults += row.faults;
    report.fault_time += row.fault_seconds;
    report.shed += row.shed_requests;
  }
  report.trigger_lag = LatencyStats::from_histogram(lag_hist);
  report.health_alerts = health != nullptr ? health->alerts().size() : 0;

  report.slos.reserve(slos_.size());
  for (const SloMonitor& monitor : slos_) {
    SloSummary summary;
    summary.name = monitor.objective().name;
    summary.observed = monitor.observed();
    summary.bad = monitor.bad();
    summary.short_burn = monitor.short_burn();
    summary.long_burn = monitor.long_burn();
    summary.alerts = monitor.alerts().size();
    report.slos.push_back(std::move(summary));
  }

  report.queue_wait = LatencyStats::from_histogram(wait_hist);
  report.service = LatencyStats::from_histogram(service_hist);
  report.total = LatencyStats::from_histogram(total_hist);
  return report;
}

}  // namespace ptc::serve
