#include "serve/token_server.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

#include "common/expects.hpp"
#include "serve/attribution.hpp"

namespace ptc::serve {
namespace {

/// One live decode slot: the request it serves, its KV cache, and how far
/// into its token stream the prefill/generation cursor is.
struct Slot {
  std::size_t req = 0;        ///< index into the run's request list
  std::size_t admit_seq = 0;  ///< admission order (youngest-first preempt)
  nn::KvCache cache;
  std::size_t fed = 0;  ///< tokens of the stream already decoded into cache
};

/// Per-request progress that survives preemption (the cache does not).
struct Progress {
  std::vector<std::size_t> stream;  ///< prompt + generated so far
  std::size_t generated = 0;
  std::size_t preemptions = 0;
  double first_token = 0.0;
  std::vector<double> logits;  ///< last decode step's logit row
};

std::size_t argmax(const std::vector<double>& xs) {
  std::size_t best = 0;
  for (std::size_t j = 1; j < xs.size(); ++j)
    if (xs[j] > xs[best]) best = j;
  return best;
}

}  // namespace

const TenantCost* TokenServeReport::tenant_cost(
    const std::string& tenant) const {
  for (const TenantCost& row : tenant_costs)
    if (row.tenant == tenant) return &row;
  return nullptr;
}

TokenServer::TokenServer(ModelRegistry& registry)
    : accelerator_(registry.accelerator()), registry_(registry) {}

void TokenServer::set_tracer(telemetry::Tracer* tracer) {
  tracer_ = tracer;
  accelerator_.set_tracer(tracer);
  if (tracer_ == nullptr) return;
  tracer_->set_track_name(telemetry::track::kServe, "serving");
  tracer_->set_track_name(telemetry::track::kSteps, "graph steps");
  tracer_->set_track_name(telemetry::track::kQueue, "queue");
}

TokenServeReport TokenServer::run(const std::vector<TokenRequest>& requests,
                                  const TokenPolicy& policy) {
  expects(policy.max_batch >= 1, "token policy needs at least one slot");
  expects(!requests.empty(), "token run needs at least one request");
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    expects(requests[i].arrival <= requests[i + 1].arrival,
            "requests must be sorted by arrival time");
  }
  const std::string& model_name = requests.front().model;
  const nn::TransformerModel& model = registry_.transformer(model_name);
  const std::size_t layers = model.config().layers;
  for (const TokenRequest& request : requests) {
    expects(request.model == model_name,
            "a token run decodes one transformer model");
    expects(!request.prompt.empty(), "prompt must contain at least one token");
    expects(request.max_new >= 1, "max_new must be >= 1");
    expects(request.prompt.size() <= model.config().max_seq,
            "prompt exceeds the model context window");
  }
  expects(policy.kv_budget_rows == 0 || policy.kv_budget_rows >= layers,
          "kv budget must admit at least one position");

  registry_.reset_residency();
  accelerator_.reset_drift();
  accelerator_.set_trace_time(0.0);
  nn::MatmulBackend& backend = registry_.decode_backend();
  const std::size_t weight_passes =
      registry_.transformer_weight_passes(model_name);
  double ledger_last = accelerator_.fleet_ledger().total_energy();

  // --- attribution state (same conservation contract as Server::run) ---
  std::map<std::string, TenantCost> costs;
  const auto cost_row = [&costs](const std::string& tenant) -> TenantCost& {
    TenantCost& row = costs[tenant];
    if (row.tenant.empty()) row.tenant = tenant;
    return row;
  };

  TokenServeReport report;
  std::vector<Progress> progress(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r)
    progress[r].stream = requests[r].prompt;

  std::deque<std::size_t> waiting;  ///< readmissions at the front
  std::vector<Slot> active;         ///< admission order
  std::size_t next_arrival = 0;
  std::size_t admit_counter = 0;
  double now = 0.0;
  bool weights_streamed = false;  ///< a step has run: static tiles resident
  std::vector<double> totals, first_tokens;

  const auto admit_arrivals = [&] {
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival <= now) {
      if (tracer_ != nullptr) {
        tracer_->async_begin("token_request", "request",
                             requests[next_arrival].id,
                             requests[next_arrival].arrival,
                             {{"tenant", requests[next_arrival].tenant.c_str()},
                              {"model", model_name.c_str()}});
      }
      waiting.push_back(next_arrival++);
    }
  };
  const auto kv_rows_active = [&] {
    std::size_t rows = 0;
    for (const Slot& slot : active) rows += slot.cache.rows();
    return rows;
  };
  // Fill free slots from the queue.  The KV gate leaves headroom for every
  // admitted slot to append one position this step, so admission never
  // plans an immediate preemption.
  const auto refill = [&] {
    while (active.size() < policy.max_batch && !waiting.empty()) {
      if (policy.kv_budget_rows > 0 &&
          kv_rows_active() + (active.size() + 1) * layers >
              policy.kv_budget_rows) {
        break;
      }
      Slot slot;
      slot.req = waiting.front();
      slot.admit_seq = admit_counter++;
      slot.cache = model.make_cache();
      waiting.pop_front();
      active.push_back(std::move(slot));
    }
  };

  while (next_arrival < requests.size() || !waiting.empty() ||
         !active.empty()) {
    admit_arrivals();
    if (policy.schedule == TokenPolicy::Schedule::kContinuous ||
        active.empty()) {
      refill();
    }
    if (active.empty()) {
      // Nothing live and nothing admissible yet: jump to the next arrival.
      expects(next_arrival < requests.size(),
              "idle token loop with no future arrivals");
      now = std::max(now, requests[next_arrival].arrival);
      continue;
    }

    // KV budget enforcement before the step commits: growth (one position
    // per live request) may overflow the budget even though admission left
    // headroom.  Preempt youngest-first — never the oldest, so the run
    // always makes progress; a lone over-budget request keeps running.
    if (policy.kv_budget_rows > 0) {
      while (active.size() > 1 &&
             kv_rows_active() + active.size() * layers >
                 policy.kv_budget_rows) {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < active.size(); ++i)
          if (active[i].admit_seq > active[victim].admit_seq) victim = i;
        Slot slot = std::move(active[victim]);
        active.erase(active.begin() + victim);
        const std::size_t dropped = slot.cache.rows();
        const TokenRequest& request = requests[slot.req];
        ++progress[slot.req].preemptions;
        TenantCost& row = cost_row(request.tenant);
        row.kv_evicted_rows += dropped;
        ++row.preemptions;
        waiting.push_front(slot.req);  // readmit first when room frees
        if (tracer_ != nullptr) {
          tracer_->instant(telemetry::track::kServe, "request_preempted",
                           "serve", now,
                           {{"request", request.id},
                            {"tenant", request.tenant.c_str()}});
          tracer_->instant(telemetry::track::kServe, "kv_evicted", "serve",
                           now,
                           {{"tenant", request.tenant.c_str()},
                            {"rows", dropped}});
        }
      }
    }

    // --- one token step: every live request decodes exactly one token ---
    const double step_start = now;
    // The decode matmuls charge the energy ledger; the modeled timing
    // comes from the batch_cost pass below — detach the tracer around the
    // real execution so each hardware span is emitted exactly once.
    telemetry::Tracer* tracer = accelerator_.tracer();
    if (tracer != nullptr) accelerator_.set_tracer(nullptr);
    std::size_t attention_passes = 0;
    for (Slot& slot : active) {
      Progress& p = progress[slot.req];
      p.logits = model.decode_step(backend, slot.cache, p.stream[slot.fed]);
      ++slot.fed;
      attention_passes +=
          registry_.transformer_attention_passes(model_name,
                                                 slot.cache.length);
    }
    if (tracer != nullptr) accelerator_.set_tracer(tracer);

    const std::size_t step_tokens = active.size();
    const std::size_t warm =
        weights_streamed &&
                weight_passes <= accelerator_.active_core_count()
            ? weight_passes
            : 0;
    weights_streamed = true;
    accelerator_.set_trace_time(step_start);
    const runtime::BatchCost cost = accelerator_.batch_cost(
        weight_passes + attention_passes, warm, step_tokens);
    const double step_end = step_start + cost.latency;
    const double step_energy =
        accelerator_.fleet_ledger().total_energy() - ledger_last;
    ledger_last += step_energy;
    ++report.steps;

    const std::size_t kv_rows_now = kv_rows_active();
    report.kv_peak_rows = std::max(report.kv_peak_rows, kv_rows_now);
    if (tracer_ != nullptr) {
      tracer_->instant(telemetry::track::kServe, "token_step", "serve",
                       step_start,
                       {{"batch", step_tokens},
                        {"passes", weight_passes + attention_passes},
                        {"warm_passes", warm},
                        {"kv_rows", kv_rows_now}});
      tracer_->complete(telemetry::track::kServe, "decode_step", "serve",
                        step_start, step_end,
                        {{"batch", step_tokens},
                         {"passes", weight_passes + attention_passes},
                         {"warm_passes", warm}});
      tracer_->counter(telemetry::track::kQueue, "kv_rows", step_end,
                       static_cast<double>(kv_rows_now));
      tracer_->counter(telemetry::track::kQueue, "token_queue_depth",
                       step_end, static_cast<double>(waiting.size()));
    }

    // Attribute the step to its tenants, weighted by tokens decoded (one
    // per live request): integers exactly, time/energy by fraction, KV
    // row-seconds by each request's own cache occupancy.
    {
      TenantShares shares;
      for (const Slot& slot : active) ++shares[requests[slot.req].tenant];
      const auto pass_split = split_exact(weight_passes + attention_passes,
                                          shares, step_tokens);
      const auto warm_split = split_exact(warm, shares, step_tokens);
      for (const auto& [tenant, count] : shares) {
        const double fraction =
            static_cast<double>(count) / static_cast<double>(step_tokens);
        TenantCost& row = cost_row(tenant);
        row.tokens += count;
        ++row.batches;
        row.passes += pass_split.at(tenant);
        row.warm_passes += warm_split.at(tenant);
        row.service_seconds += static_cast<double>(count) * cost.latency;
        row.busy_seconds += cost.busy * fraction;
        row.energy_joules += step_energy * fraction;
      }
      for (const Slot& slot : active) {
        cost_row(requests[slot.req].tenant).kv_row_seconds +=
            static_cast<double>(slot.cache.rows()) * cost.latency;
      }
    }

    // Token bookkeeping, in admission order: requests whose prefill just
    // finished sample their next token; finished requests free their slot.
    std::vector<Slot> still_active;
    still_active.reserve(active.size());
    for (Slot& slot : active) {
      const TokenRequest& request = requests[slot.req];
      Progress& p = progress[slot.req];
      bool done = false;
      if (slot.fed == p.stream.size()) {
        p.stream.push_back(argmax(p.logits));
        ++p.generated;
        if (p.generated == 1) p.first_token = step_end;
        // Same stopping rule as TransformerModel::generate: done at
        // max_new, or when the context window has no room to decode the
        // sampled token.
        done = p.generated == request.max_new ||
               slot.cache.length >= model.config().max_seq;
      }
      if (done) {
        TokenRequestRecord record;
        record.id = request.id;
        record.tenant = request.tenant;
        record.model = request.model;
        record.prompt_tokens = request.prompt.size();
        record.generated = p.generated;
        record.tokens = p.stream;
        record.preemptions = p.preemptions;
        record.arrival = request.arrival;
        record.first_token = p.first_token;
        record.completion = step_end;
        totals.push_back(record.completion - record.arrival);
        first_tokens.push_back(record.first_token - record.arrival);
        ++cost_row(request.tenant).requests;
        if (tracer_ != nullptr) {
          tracer_->async_end("token_request", "request", request.id,
                             step_end);
        }
        report.requests.push_back(std::move(record));
      } else {
        still_active.push_back(std::move(slot));
      }
    }
    active = std::move(still_active);
    now = step_end;
  }

  report.makespan = now;

  // Fleet totals are *derived* from the attribution rows, summed in
  // sorted-tenant order — the same bit-exact conservation contract
  // ServeReport is under.
  report.tenant_costs.reserve(costs.size());
  for (auto& [tenant, row] : costs) {
    report.completed += row.requests;
    report.tokens += row.tokens;
    report.busy += row.busy_seconds;
    report.energy += row.energy_joules;
    report.passes += row.passes;
    report.warm_passes += row.warm_passes;
    report.kv_row_seconds += row.kv_row_seconds;
    report.kv_evicted_rows += row.kv_evicted_rows;
    report.preemptions += row.preemptions;
    report.tenant_costs.push_back(std::move(row));
  }
  expects(report.completed == requests.size(),
          "every token request must complete");
  expects(report.completed == report.requests.size(),
          "attributed completions must match the records");

  report.total = LatencyStats::from(totals);
  report.first_token = LatencyStats::from(first_tokens);
  return report;
}

}  // namespace ptc::serve
