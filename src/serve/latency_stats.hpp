#ifndef PTC_SERVE_LATENCY_STATS_HPP
#define PTC_SERVE_LATENCY_STATS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "serve/request.hpp"

/// Tail-latency summaries and the full per-run report the Server returns.
/// Percentiles are nearest-rank (statistics::percentile), the convention
/// serving SLOs quote.
namespace ptc::serve {

/// Summary of one latency sample [s].
struct LatencyStats {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  /// Nearest-rank summary of `xs`; an empty sample yields all zeros.
  static LatencyStats from(const std::vector<double>& xs);
};

/// Everything one Server::run produced: the request/batch trace, the
/// latency decomposition, and the fleet-level serving metrics.
struct ServeReport {
  std::vector<RequestRecord> requests;  ///< in dispatch order
  std::vector<BatchRecord> batches;     ///< the deterministic event trace

  LatencyStats queue_wait;  ///< arrival -> dispatch
  LatencyStats service;     ///< dispatch -> completion
  LatencyStats total;       ///< arrival -> completion (the SLO number)

  double makespan = 0.0;  ///< last batch completion time [s]
  double busy = 0.0;      ///< summed core-busy time [s]
  /// Fleet ledger energy consumed executing the run's forward passes [J].
  /// This is the full (cold) execution energy: warm passes shorten the
  /// modeled latency but are not credited here — the ledger still pays
  /// every reload, and it is dominated by static power over the fixed
  /// per-request sample count, so energy/request barely moves with policy.
  double energy = 0.0;
  std::size_t cores = 0;        ///< fleet size the run used
  std::size_t passes = 0;       ///< weight-tile residencies streamed
  std::size_t warm_passes = 0;  ///< residencies served without a reload

  /// Completed requests per modeled second.
  double throughput() const;

  /// Fleet energy per completed request [J].
  double energy_per_request() const;

  /// Fraction of fleet capacity in use: busy / (cores * makespan).
  double utilization() const;

  /// Fraction of tile passes that skipped the pSRAM reload.
  double warm_fraction() const;

  /// Mean dispatched batch size.
  double mean_batch() const;

  /// Latency summary restricted to one tenant's requests (arrival ->
  /// completion); a tenant with no requests yields all zeros.
  LatencyStats tenant_total(const std::string& tenant) const;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_LATENCY_STATS_HPP
