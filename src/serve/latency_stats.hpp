#ifndef PTC_SERVE_LATENCY_STATS_HPP
#define PTC_SERVE_LATENCY_STATS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "telemetry/metrics.hpp"

/// Tail-latency summaries and the full per-run report the Server returns.
/// Percentiles are nearest-rank (statistics::percentile), the convention
/// serving SLOs quote.
namespace ptc::serve {

/// Summary of one latency sample [s].
struct LatencyStats {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  /// Nearest-rank summary of `xs`; an empty sample yields all zeros.
  static LatencyStats from(const std::vector<double>& xs);

  /// Summary of a telemetry histogram: count/mean/max are exact,
  /// percentiles are nearest-rank over the log-scale buckets — within one
  /// bucket (~7.5% at the default resolution) of the exact sample, with
  /// O(buckets) memory however many requests the run served.  This is how
  /// Server::run aggregates its fleet-level tails.
  static LatencyStats from_histogram(const telemetry::Histogram& histogram);
};

/// Exact cost attribution of one run to one tenant — the billing row the
/// operator console's `TEN:COST?` answers from.  Batch costs are split
/// across the batch's tenants proportionally to request count (integer
/// quantities by largest remainder, so they stay exact); recalibration
/// downtime and its energy land on the reserved `kFleetTenant` row, since
/// no tenant caused them.
///
/// Conservation contract: the fleet totals in ServeReport (passes,
/// warm_passes, busy, service_time, energy, recalibration_time) are
/// *derived* from these rows — summed in sorted-tenant order — so
/// per-tenant costs sum to the fleet totals bit-exactly, by construction,
/// and a cost path that forgets to attribute breaks the conservation test.
struct TenantCost {
  /// Reserved row for fleet-side operations (recalibration downtime).
  static constexpr const char* kFleetTenant = "(fleet)";

  std::string tenant;
  std::size_t requests = 0;  ///< completed requests of this tenant
  std::size_t batches = 0;   ///< batches carrying >= 1 of its requests
  std::size_t passes = 0;       ///< weight-tile residency share
  std::size_t warm_passes = 0;  ///< reload-free residency share
  double service_seconds = 0.0;  ///< share of batch service latencies [s]
  double busy_seconds = 0.0;     ///< share of summed core-busy time [s]
  double energy_joules = 0.0;    ///< share of fleet execution energy [J]
  std::size_t recalibrations = 0;        ///< fleet row only
  double recalibration_seconds = 0.0;    ///< fleet row only [s]
  std::size_t probes = 0;                ///< fleet row only: health sweeps
  double probe_seconds = 0.0;            ///< fleet row only [s]
  std::size_t faults = 0;                ///< fleet row only: injections
  double fault_seconds = 0.0;  ///< fleet row only: self-test downtime [s]
  /// Requests refused by degraded-capacity load shedding (per-tenant —
  /// shedding is the one cost a tenant pays directly, in lost requests).
  std::size_t shed_requests = 0;

  // --- token serving (TokenServer runs only; zero for batch runs) ----------
  /// Decoded tokens (prefill + generation — every decode step that fed one
  /// of this tenant's tokens through the fleet).
  std::size_t tokens = 0;
  /// KV-cache residency integral [row-seconds]: this tenant's cached K/V
  /// rows x the modeled time they occupied fleet memory.  The token-serving
  /// analogue of weight-tile residency, and what `TEN:COST?` bills a tenant
  /// whose long contexts crowd the KV budget.
  double kv_row_seconds = 0.0;
  /// KV rows dropped when the scheduler preempted this tenant's requests.
  std::size_t kv_evicted_rows = 0;
  /// Times one of this tenant's requests was preempted for KV budget.
  std::size_t preemptions = 0;
};

/// Per-objective summary of one run's SLO evaluation (serve/slo.hpp).
struct SloSummary {
  std::string name;
  std::uint64_t observed = 0;  ///< completions the objective scored
  std::uint64_t bad = 0;       ///< budget-consuming completions
  double short_burn = 0.0;     ///< burn rates at the last completion
  double long_burn = 0.0;
  std::size_t alerts = 0;      ///< multi-window breach firings
};

/// Everything one Server::run produced: the request/batch trace, the
/// latency decomposition, and the fleet-level serving metrics.
struct ServeReport {
  /// Per-request / per-batch traces, in dispatch order.  Populated by
  /// default; a run with RunOptions::keep_records = false leaves them empty
  /// (O(histogram-buckets) memory at any request count) and the scalar
  /// counters below still carry the fleet totals.
  std::vector<RequestRecord> requests;
  std::vector<BatchRecord> batches;

  std::size_t completed = 0;           ///< requests served
  std::size_t dispatched_batches = 0;  ///< batches dispatched

  LatencyStats queue_wait;  ///< arrival -> dispatch
  LatencyStats service;     ///< dispatch -> completion
  LatencyStats total;       ///< arrival -> completion (the SLO number)

  double makespan = 0.0;  ///< last batch completion time [s]
  double busy = 0.0;      ///< summed core-busy time [s]
  /// Summed per-batch service latencies [s] (dispatch -> completion, over
  /// batches) — the quantity TenantCost::service_seconds decomposes.
  double service_time = 0.0;
  /// Fleet ledger energy consumed executing the run's forward passes [J].
  /// This is the full (cold) execution energy: warm passes shorten the
  /// modeled latency but are not credited here — the ledger still pays
  /// every reload, and it is dominated by static power over the fixed
  /// per-request sample count, so energy/request barely moves with policy.
  double energy = 0.0;
  std::size_t cores = 0;        ///< fleet size the run used
  std::size_t passes = 0;       ///< weight-tile residencies streamed
  std::size_t warm_passes = 0;  ///< residencies served without a reload

  // --- drift / online recalibration ----------------------------------------
  /// True when the run scored batches against the float reference.  The
  /// Server only pays that extra reference execution on fleets where the
  /// answer is non-trivial — device variation or thermal drift enabled;
  /// on a pristine fleet scoring is skipped and accuracy() reads 0.
  bool accuracy_scored = false;
  /// Requests whose predicted class matched the float-reference argmax.
  std::size_t reference_matches = 0;
  /// Recalibrations the serving policy triggered during the run.
  std::size_t recalibrations = 0;
  /// Modeled fleet downtime spent recalibrating [s] (included in makespan).
  double recalibration_time = 0.0;
  /// Worst per-batch fleet detuning seen during the run [K].
  double max_abs_detuning = 0.0;

  // --- fleet health (probing policies only) ---------------------------------
  /// Sensor sweeps the run performed and their summed modeled latency [s]
  /// (derived from the fleet attribution row, so probe accounting conserves
  /// bit-exactly like every other cost).
  std::size_t probes = 0;
  double probe_time = 0.0;
  /// Probe latency as a fraction of the run's makespan — the overhead the
  /// health bench budgets (<= 2% at the gated operating point).
  double probe_overhead() const {
    return makespan > 0.0 ? probe_time / makespan : 0.0;
  }
  /// Oracle-measured recalibration trigger lag: for each re-lock, the time
  /// from a core's |detuning| first crossing the policy threshold to the
  /// recalibration that cleared it.  Empty unless a threshold trigger
  /// (oracle or estimated) was active.  Measurement only — the trigger
  /// path itself never reads the oracle.
  LatencyStats trigger_lag;
  /// Health anomaly alerts fired during the run.
  std::size_t health_alerts = 0;

  // --- hard faults / graceful degradation -----------------------------------
  /// Fault events the run replayed (injections; CLEAR repairs excluded)
  /// and the modeled downtime their triggered self-tests cost [s] — both
  /// derived from the fleet attribution row, so fault accounting conserves
  /// bit-exactly like every other cost.
  std::size_t faults = 0;
  double fault_time = 0.0;
  /// Cores the run evicted from / readmitted to the serving rotation.
  std::size_t core_evictions = 0;
  std::size_t core_readmissions = 0;
  /// Requests refused by degraded-capacity load shedding (sum of the
  /// per-tenant shed tallies).
  std::size_t shed = 0;
  /// Fraction of offered requests the run completed: completed /
  /// (completed + shed).  1.0 when nothing shed; the fault frontier gates
  /// this >= 0.95 at the gated fault rate under the eviction policy.
  double availability() const;

  // --- attribution / SLOs ---------------------------------------------------
  /// Exact per-tenant cost decomposition, sorted by tenant name.  The
  /// fleet totals above (passes, warm_passes, busy, service_time, energy,
  /// recalibration_time) are the sums over these rows in this order, so
  /// attribution conserves them bit-exactly.
  std::vector<TenantCost> tenant_costs;
  /// Final state of every SLO monitor attached to the Server, in
  /// registration order.
  std::vector<SloSummary> slos;

  /// Cost row for one tenant (nullptr when it served no requests).
  const TenantCost* tenant_cost(const std::string& tenant) const;

  /// Completed requests per modeled second.
  double throughput() const;

  /// Fleet energy per completed request [J].
  double energy_per_request() const;

  /// Fraction of fleet capacity in use: busy / (cores * makespan).
  double utilization() const;

  /// Fraction of tile passes that skipped the pSRAM reload.
  double warm_fraction() const;

  /// Fraction of requests whose predicted class matched the float
  /// reference — the serving-level accuracy the drift/recalibration
  /// frontier trades against downtime.
  double accuracy() const;

  /// Mean dispatched batch size.
  double mean_batch() const;

  /// Latency summary restricted to one tenant's requests (arrival ->
  /// completion); a tenant with no requests yields all zeros.
  LatencyStats tenant_total(const std::string& tenant) const;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_LATENCY_STATS_HPP
