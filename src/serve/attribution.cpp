#include "serve/attribution.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/expects.hpp"

namespace ptc::serve {

std::map<std::string, std::size_t> split_exact(std::size_t total,
                                               const TenantShares& shares,
                                               std::size_t weight_sum) {
  expects(weight_sum >= 1, "split_exact needs a positive weight sum");
  std::map<std::string, std::size_t> out;
  std::size_t assigned = 0;
  std::vector<std::pair<std::size_t, const std::string*>> remainders;
  remainders.reserve(shares.size());
  for (const auto& [tenant, count] : shares) {
    const std::size_t base = total * count / weight_sum;
    out[tenant] = base;
    assigned += base;
    remainders.emplace_back(total * count % weight_sum, &tenant);
  }
  // Hand the leftover units to the largest remainders; stable_sort keeps
  // the sorted-tenant order among ties.
  std::stable_sort(
      remainders.begin(), remainders.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  expects(total - assigned <= remainders.size(),
          "largest-remainder leftover exceeds the tenant count");
  for (std::size_t i = 0; i < total - assigned; ++i) {
    ++out[*remainders[i].second];
  }
  return out;
}

}  // namespace ptc::serve
