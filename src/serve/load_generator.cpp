#include "serve/load_generator.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/expects.hpp"

namespace ptc::serve {

LoadGenerator::LoadGenerator(std::vector<TenantConfig> tenants,
                             std::uint64_t seed)
    : tenants_(std::move(tenants)), base_(seed) {
  expects(!tenants_.empty(), "load generator needs at least one tenant");
  for (const TenantConfig& tenant : tenants_) {
    expects(!tenant.name.empty(), "tenant name must be non-empty");
    expects(!tenant.model.empty(), "tenant model must be non-empty");
    expects(tenant.rate > 0.0, "tenant rate must be positive");
  }
}

std::vector<Request> LoadGenerator::generate(
    const ModelRegistry& registry) const {
  std::vector<Request> requests;
  std::vector<std::size_t> tenant_of;  // tenant index per request, for ties
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantConfig& tenant = tenants_[t];
    const std::size_t width = registry.input_width(tenant.model);
    // Separate child streams for arrivals and inputs: the arrival sequence
    // stays pinned even if the input model (or width) changes.
    Rng arrivals = base_.split(2 * t);
    Rng inputs = base_.split(2 * t + 1);
    double clock = 0.0;
    for (std::size_t i = 0; i < tenant.requests; ++i) {
      clock += arrivals.exponential(tenant.rate);
      Request request;
      request.tenant = tenant.name;
      request.model = tenant.model;
      request.arrival = clock;
      request.input.resize(width);
      for (double& x : request.input) x = inputs.uniform();
      requests.push_back(std::move(request));
      tenant_of.push_back(t);
    }
  }

  // Merge streams into one arrival-ordered trace.  Per-tenant sequences
  // are already time-sorted, so (arrival, tenant, insertion order) is a
  // strict total order and the result is platform-independent.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (requests[a].arrival != requests[b].arrival) {
      return requests[a].arrival < requests[b].arrival;
    }
    if (tenant_of[a] != tenant_of[b]) return tenant_of[a] < tenant_of[b];
    return a < b;
  });

  std::vector<Request> merged;
  merged.reserve(requests.size());
  for (std::size_t index : order) {
    merged.push_back(std::move(requests[index]));
    merged.back().id = merged.size() - 1;
  }
  return merged;
}

}  // namespace ptc::serve
