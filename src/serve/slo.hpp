#ifndef PTC_SERVE_SLO_HPP
#define PTC_SERVE_SLO_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

/// Declarative serving SLOs with multi-window burn-rate alerting, evaluated
/// on *modeled hardware time* — the operator-console half of the control
/// plane.  An objective states what fraction of requests must be "good"
/// (latency under a target, or prediction matching the float reference);
/// the monitor watches the live completion stream through two sliding
/// windows and fires an alert when both burn the error budget faster than
/// the threshold — the standard multi-window multi-burn-rate recipe, which
/// a short window alone would trip on noise and a long window alone would
/// answer too late.
///
/// Determinism contract: monitors are fed from the Server's event loop in
/// completion order with modeled timestamps, so burn rates, alert instants,
/// and alert counts are bit-identical across runs and host thread counts.
namespace ptc::serve {

/// One declarative objective.  `objective` is the target good fraction
/// (e.g. 0.99 == "99% of requests under latency_target" — the p99 SLO);
/// the error budget is 1 - objective, and a burn rate of 1.0 means the
/// stream is consuming budget exactly at the sustainable rate.
struct SloObjective {
  std::string name;    ///< unique per server; the `slo` label on exports
  std::string tenant;  ///< restrict to one tenant ("" = every request)

  enum class Kind {
    kLatency,    ///< bad = total (arrival -> completion) latency > target
    kErrorRate,  ///< bad = predicted class mismatches the float reference
  };
  Kind kind = Kind::kLatency;
  /// Latency threshold [s] for Kind::kLatency (ignored for error rate).
  double latency_target = 0.0;
  /// Target good fraction in (0, 1); error budget = 1 - objective.
  double objective = 0.99;
  /// Sliding windows [s] of modeled time; 0 < short_window <= long_window.
  double short_window = 0.0;
  double long_window = 0.0;
  /// Alert when BOTH windows burn at >= this multiple of the sustainable
  /// budget rate (1.0 = budget exactly consumed over the window).
  double burn_threshold = 1.0;
};

/// One alert firing (rising edge of the two-window breach condition).
struct SloAlert {
  double time = 0.0;        ///< modeled completion instant that tripped it
  double short_burn = 0.0;  ///< short-window burn rate at that instant
  double long_burn = 0.0;   ///< long-window burn rate at that instant
};

/// Evaluates one SloObjective over a completion stream.  Owned by the
/// Server (Server::add_slo), reset at the start of every run, queryable
/// afterwards (console `SLO:BURN?` / `ALERT:LIST?`).
class SloMonitor {
 public:
  explicit SloMonitor(SloObjective objective);

  const SloObjective& objective() const { return objective_; }

  /// Forgets all window state and alerts (fresh run).
  void reset();

  /// One request completion at modeled time `t`.  Requests of other
  /// tenants are ignored when the objective names one.  When sinks are
  /// attached, burn-rate gauges update every observation and alert
  /// firings emit a trace instant event plus a labeled alert counter.
  void observe(double t, const std::string& tenant, double total_latency,
               bool error, telemetry::MetricsRegistry* metrics,
               telemetry::Tracer* tracer);

  /// Burn rates as of the last observation (0 before any).
  double short_burn() const { return short_burn_; }
  double long_burn() const { return long_burn_; }
  /// True while the two-window breach condition holds.
  bool breaching() const { return breaching_; }

  std::uint64_t observed() const { return observed_; }
  std::uint64_t bad() const { return bad_; }
  const std::vector<SloAlert>& alerts() const { return alerts_; }

 private:
  /// Sliding window over (time, bad) completion events.
  struct Window {
    std::deque<std::pair<double, bool>> events;
    std::uint64_t bad = 0;

    void push(double t, bool is_bad, double span);
    double bad_fraction() const;
    void clear();
  };

  SloObjective objective_;
  Window short_window_;
  Window long_window_;
  double short_burn_ = 0.0;
  double long_burn_ = 0.0;
  bool breaching_ = false;
  std::uint64_t observed_ = 0;
  std::uint64_t bad_ = 0;
  std::vector<SloAlert> alerts_;
  // Cached burn-rate gauges (labeled-child lookup is string work; the
  // completion loop is the hot path).  Re-resolved when the registry
  // pointer changes.
  telemetry::MetricsRegistry* cached_metrics_ = nullptr;
  telemetry::Gauge* short_gauge_ = nullptr;
  telemetry::Gauge* long_gauge_ = nullptr;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_SLO_HPP
