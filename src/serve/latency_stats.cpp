#include "serve/latency_stats.hpp"

#include <algorithm>

#include "common/statistics.hpp"

namespace ptc::serve {

LatencyStats LatencyStats::from_histogram(const telemetry::Histogram& h) {
  LatencyStats stats;
  if (h.count() == 0) return stats;
  stats.count = h.count();
  stats.mean = h.mean();
  stats.p50 = h.percentile(50.0);
  stats.p95 = h.percentile(95.0);
  stats.p99 = h.percentile(99.0);
  stats.max = h.max_value();
  return stats;
}

LatencyStats LatencyStats::from(const std::vector<double>& xs) {
  LatencyStats stats;
  if (xs.empty()) return stats;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  stats.count = sorted.size();
  stats.mean = ptc::mean(sorted);
  stats.p50 = percentile_sorted(sorted, 50.0);
  stats.p95 = percentile_sorted(sorted, 95.0);
  stats.p99 = percentile_sorted(sorted, 99.0);
  stats.max = sorted.back();
  return stats;
}

double ServeReport::throughput() const {
  return makespan > 0.0 ? static_cast<double>(completed) / makespan : 0.0;
}

double ServeReport::energy_per_request() const {
  return completed == 0 ? 0.0 : energy / static_cast<double>(completed);
}

double ServeReport::utilization() const {
  if (cores == 0 || makespan <= 0.0) return 0.0;
  return busy / (static_cast<double>(cores) * makespan);
}

double ServeReport::warm_fraction() const {
  return passes > 0 ? static_cast<double>(warm_passes) /
                          static_cast<double>(passes)
                    : 0.0;
}

double ServeReport::accuracy() const {
  return completed == 0 ? 0.0
                        : static_cast<double>(reference_matches) /
                              static_cast<double>(completed);
}

double ServeReport::availability() const {
  const std::size_t offered = completed + shed;
  return offered == 0 ? 1.0
                      : static_cast<double>(completed) /
                            static_cast<double>(offered);
}

double ServeReport::mean_batch() const {
  return dispatched_batches == 0 ? 0.0
                                 : static_cast<double>(completed) /
                                       static_cast<double>(dispatched_batches);
}

const TenantCost* ServeReport::tenant_cost(const std::string& tenant) const {
  for (const TenantCost& cost : tenant_costs) {
    if (cost.tenant == tenant) return &cost;
  }
  return nullptr;
}

LatencyStats ServeReport::tenant_total(const std::string& tenant) const {
  std::vector<double> totals;
  for (const RequestRecord& record : requests) {
    if (record.tenant == tenant) totals.push_back(record.total());
  }
  return LatencyStats::from(totals);
}

}  // namespace ptc::serve
