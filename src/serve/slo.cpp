#include "serve/slo.hpp"

#include <utility>

#include "common/expects.hpp"

namespace ptc::serve {

SloMonitor::SloMonitor(SloObjective objective)
    : objective_(std::move(objective)) {
  expects(!objective_.name.empty(), "SLO name must be non-empty");
  expects(objective_.objective > 0.0 && objective_.objective < 1.0,
          "SLO objective must be in (0, 1)");
  expects(objective_.short_window > 0.0,
          "SLO short window must be positive");
  expects(objective_.long_window >= objective_.short_window,
          "SLO long window must be >= the short window");
  expects(objective_.burn_threshold > 0.0,
          "SLO burn threshold must be positive");
  expects(objective_.kind != SloObjective::Kind::kLatency ||
              objective_.latency_target > 0.0,
          "latency SLO needs a positive latency target");
}

void SloMonitor::Window::push(double t, bool is_bad, double span) {
  events.emplace_back(t, is_bad);
  if (is_bad) ++bad;
  // Evict completions that fell out of the trailing window.  Completions
  // arrive in nondecreasing modeled time, so eviction is amortized O(1).
  while (!events.empty() && events.front().first <= t - span) {
    if (events.front().second) --bad;
    events.pop_front();
  }
}

double SloMonitor::Window::bad_fraction() const {
  if (events.empty()) return 0.0;
  return static_cast<double>(bad) / static_cast<double>(events.size());
}

void SloMonitor::Window::clear() {
  events.clear();
  bad = 0;
}

void SloMonitor::reset() {
  short_window_.clear();
  long_window_.clear();
  short_burn_ = 0.0;
  long_burn_ = 0.0;
  breaching_ = false;
  observed_ = 0;
  bad_ = 0;
  alerts_.clear();
}

void SloMonitor::observe(double t, const std::string& tenant,
                         double total_latency, bool error,
                         telemetry::MetricsRegistry* metrics,
                         telemetry::Tracer* tracer) {
  if (!objective_.tenant.empty() && tenant != objective_.tenant) return;

  const bool is_bad = objective_.kind == SloObjective::Kind::kLatency
                          ? total_latency > objective_.latency_target
                          : error;
  ++observed_;
  if (is_bad) ++bad_;
  short_window_.push(t, is_bad, objective_.short_window);
  long_window_.push(t, is_bad, objective_.long_window);

  const double budget = 1.0 - objective_.objective;
  short_burn_ = short_window_.bad_fraction() / budget;
  long_burn_ = long_window_.bad_fraction() / budget;

  if (metrics != nullptr) {
    if (metrics != cached_metrics_) {
      cached_metrics_ = metrics;
      short_gauge_ = &metrics->gauge(
          "slo_burn_rate", {{"slo", objective_.name}, {"window", "short"}},
          "error-budget burn rate per sliding window");
      long_gauge_ = &metrics->gauge(
          "slo_burn_rate", {{"slo", objective_.name}, {"window", "long"}});
    }
    short_gauge_->set(short_burn_);
    long_gauge_->set(long_burn_);
  }

  const bool breach = short_burn_ >= objective_.burn_threshold &&
                      long_burn_ >= objective_.burn_threshold;
  if (breach && !breaching_) {
    alerts_.push_back({t, short_burn_, long_burn_});
    if (tracer != nullptr) {
      tracer->instant(telemetry::track::kServe, "slo_alert", "slo", t,
                      {{"slo", objective_.name.c_str()},
                       {"short_burn", short_burn_},
                       {"long_burn", long_burn_}});
    }
    if (metrics != nullptr) {
      metrics
          ->counter("slo_alerts_total", {{"slo", objective_.name}},
                    "multi-window burn-rate alert firings")
          .inc();
    }
  }
  breaching_ = breach;
}

}  // namespace ptc::serve
