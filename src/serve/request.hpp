#ifndef PTC_SERVE_REQUEST_HPP
#define PTC_SERVE_REQUEST_HPP

#include <cstddef>
#include <string>
#include <vector>

/// Request and record types shared across the serving subsystem: what flows
/// in from the LoadGenerator, and what the Server writes down about every
/// request and every dispatched batch.  All times are modeled hardware time
/// in seconds — the same clock runtime::AcceleratorStats uses — so traces
/// are deterministic and independent of host threading.
namespace ptc::serve {

/// One inference request: a single input row destined for a named model.
struct Request {
  std::size_t id = 0;         ///< global id, assigned in arrival order
  std::string tenant;         ///< originating load stream
  std::string model;          ///< ModelRegistry entry to run
  double arrival = 0.0;       ///< open-loop arrival time [s]
  std::vector<double> input;  ///< intensity-encoded input row (non-negative)
};

/// Per-request outcome with the full latency decomposition.
struct RequestRecord {
  std::size_t id = 0;
  std::string tenant;
  std::string model;
  std::size_t batch = 0;      ///< BatchRecord id this request rode in
  std::size_t predicted = 0;  ///< argmax class from the model logits
  /// True when `predicted` matches the float-reference argmax for the same
  /// input — the per-request accuracy signal the drift studies aggregate.
  /// Stays true (vacuously) when the run did not score accuracy; see
  /// ServeReport::accuracy_scored.
  bool matches_reference = true;
  double arrival = 0.0;
  double dispatch = 0.0;      ///< when its batch started on the fleet
  double completion = 0.0;

  double queue_wait() const { return dispatch - arrival; }
  double service() const { return completion - dispatch; }
  double total() const { return completion - arrival; }
};

/// One dispatched batch as the event loop saw it.
struct BatchRecord {
  std::size_t id = 0;
  std::string model;
  std::size_t size = 0;         ///< requests in the batch
  std::size_t passes = 0;       ///< weight-tile residencies streamed
  std::size_t warm_passes = 0;  ///< residencies reused from the previous batch
  double dispatch = 0.0;
  double completion = 0.0;
  double busy = 0.0;            ///< summed core-busy time [s]
  /// Worst per-core |thermal detuning| across the fleet at dispatch [K]
  /// (0 while drift is disabled).
  double detuning = 0.0;
  /// Fleet calibration epoch the batch executed in (core 0's counter).
  std::size_t epoch = 0;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_REQUEST_HPP
