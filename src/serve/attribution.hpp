#ifndef PTC_SERVE_ATTRIBUTION_HPP
#define PTC_SERVE_ATTRIBUTION_HPP

#include <cstddef>
#include <map>
#include <string>

/// Exact integer cost apportionment shared by the batch Server and the
/// token-level TokenServer.  Both split every batch/step cost across the
/// participating tenants; keeping the arithmetic in one place is what
/// makes the two layers' conservation contracts (tenant rows sum to the
/// fleet totals bit-exactly) the same contract.
namespace ptc::serve {

/// Work units one tenant contributed to the current batch/step — the
/// attribution weights.  std::map iteration gives sorted-tenant order,
/// which fixes the split's tie-breaks and the summation order
/// deterministically.
using TenantShares = std::map<std::string, std::size_t>;

/// Splits the integer quantity `total` across tenants proportionally to
/// their share counts, exactly: largest-remainder apportionment, remainder
/// ties broken by tenant order.  `weight_sum` is the sum of all share
/// counts.  The shares sum to `total` — no quantity is created or dropped —
/// which is what keeps integer cost conservation bit-exact by construction.
std::map<std::string, std::size_t> split_exact(std::size_t total,
                                               const TenantShares& shares,
                                               std::size_t weight_sum);

}  // namespace ptc::serve

#endif  // PTC_SERVE_ATTRIBUTION_HPP
