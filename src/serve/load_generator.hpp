#ifndef PTC_SERVE_LOAD_GENERATOR_HPP
#define PTC_SERVE_LOAD_GENERATOR_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"

/// Deterministic open-loop load: each tenant is an independent Poisson
/// stream of requests for one model.  Arrival times and input rows derive
/// from decorrelated child streams of a single seed (Rng::split), so the
/// merged trace is a pure function of (tenants, seed) — independent of
/// host threading, of tenant order in the merge, and of every other
/// tenant's draw count.
namespace ptc::serve {

/// One open-loop request stream.
struct TenantConfig {
  std::string name;          ///< tenant id stamped on every request
  std::string model;         ///< registry model the requests run
  double rate = 1.0;         ///< mean arrival rate [req per modeled second]
  std::size_t requests = 0;  ///< requests to generate
};

class LoadGenerator {
 public:
  LoadGenerator(std::vector<TenantConfig> tenants, std::uint64_t seed);

  /// Generates the merged, arrival-sorted request trace.  Input rows are
  /// uniform in [0, 1) with each tenant's model width taken from the
  /// registry.  Arrival ties break by tenant order then sequence number,
  /// and global ids are assigned in final order.
  std::vector<Request> generate(const ModelRegistry& registry) const;

  const std::vector<TenantConfig>& tenants() const { return tenants_; }

 private:
  std::vector<TenantConfig> tenants_;
  Rng base_;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_LOAD_GENERATOR_HPP
