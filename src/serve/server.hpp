#ifndef PTC_SERVE_SERVER_HPP
#define PTC_SERVE_SERVER_HPP

#include <memory>
#include <vector>

#include "fleet/health.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/latency_stats.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
#include "serve/slo.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

/// Discrete-event serving simulator: open-loop arrivals -> RequestQueue ->
/// DynamicBatcher -> accelerator fleet, all on modeled hardware time.  The
/// fleet serves one batch at a time (every tensor core participates in the
/// batch's tile schedule), which makes this the single-station queueing
/// model whose saturation the serving benches sweep.
///
/// Determinism contract: identical (requests, policy, registry contents,
/// accelerator config) produce an identical batch trace and identical
/// stats, bit for bit, on any host thread count — the event loop is
/// sequential, batch outputs inherit the Accelerator's canonical-order
/// reduction, and batch timing comes from Accelerator::batch_cost, never
/// from host wall time.
namespace ptc::serve {

/// Per-run knobs orthogonal to the batching policy.
struct RunOptions {
  /// Keep the per-request / per-batch vectors on the report.  Disabling
  /// them makes a run's memory O(histogram buckets) regardless of request
  /// count (1M+ requests) — the latency summaries, counters, and ratios
  /// are unaffected; only ServeReport::requests / batches / tenant_total
  /// are empty.
  bool keep_records = true;
};

class Server {
 public:
  /// Serves the registry's models on the registry's accelerator fleet.
  explicit Server(ModelRegistry& registry);

  /// Attaches a span tracer for the run's full lifecycle — request async
  /// spans (arrive -> complete), batch dispatch windows, per-core tile
  /// passes/reloads, per-step execution, recalibration downtime, and
  /// queue-depth counters — all on modeled hardware time.  Fans out to the
  /// accelerator; nullptr detaches.
  void set_tracer(telemetry::Tracer* tracer);
  telemetry::Tracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry: serving counters (requests, batches,
  /// warm/cold splits, recalibrations), cumulative latency histograms, and
  /// the fleet-side tallies (passes, reloads, ADC samples, plan-cache
  /// hits).  Fans out to the accelerator; nullptr detaches.
  void set_metrics(telemetry::MetricsRegistry* metrics);
  telemetry::MetricsRegistry* metrics() const { return metrics_; }

  /// Registers a declarative SLO.  Monitors persist across runs (each run
  /// resets their window state), are fed every completion in event-loop
  /// order, and summarize into ServeReport::slos.
  void add_slo(const SloObjective& objective);
  void clear_slos();
  const std::vector<SloMonitor>& slos() const { return slos_; }

  /// Configuration for the fleet health monitor probing policies create
  /// (estimator curve resolution, anomaly detection, probe cost).  Drops
  /// the cached monitor; the next probing run re-characterizes.
  void set_health_config(const fleet::HealthConfig& config);
  const fleet::HealthConfig& health_config() const { return health_config_; }

  /// The fleet health monitor, created lazily by the first run whose
  /// policy probes (BatchPolicy::probe_period > 0) and reused across runs
  /// (characterization curves are device properties).  nullptr before any
  /// probing run; afterwards its estimators / alerts / time-series store
  /// reflect the most recent run — the operator console's HEALth source.
  fleet::FleetHealthMonitor* health() { return health_.get(); }
  const fleet::FleetHealthMonitor* health() const { return health_.get(); }

  /// Deterministic hard-fault schedule the next runs replay on *modeled*
  /// time: each event injects at the first instant >= its time (after the
  /// fleet frees up), triggers the self-test on the struck core, and —
  /// under an evicting policy — drops FAILED cores from the rotation.
  /// Events must be sorted by time.  A non-empty schedule makes run()
  /// reset the fleet's fault state at start, so every run replays the same
  /// schedule from a healthy fleet; an empty schedule (the default) leaves
  /// console-injected faults in place across runs.  Persists until
  /// replaced or cleared.
  void set_fault_schedule(std::vector<runtime::FaultEvent> schedule);
  const std::vector<runtime::FaultEvent>& fault_schedule() const {
    return fault_schedule_;
  }

  /// Serves `requests` (sorted by arrival — LoadGenerator output
  /// qualifies) under `policy` and returns the full report.  Arrivals at
  /// exactly the dispatch instant join the closing batch.  Once the
  /// arrival stream ends, leftover queued requests drain as partial
  /// batches.  Residency and drift state reset at the start of every run.
  ///
  /// When the fleet models thermal drift, the event loop advances the
  /// accelerator's drift clock to every dispatch instant and applies the
  /// policy's recalibration triggers (periodic and/or detuning-threshold)
  /// before launching the batch; recalibration downtime pushes the fleet's
  /// free time forward, so arrivals during a re-lock simply queue.
  ///
  /// A probing policy (probe_period > 0) additionally runs one sensor
  /// sweep per period through the fleet health monitor — pilot-tone probe
  /// readings, estimator updates, anomaly detection — billed through
  /// Accelerator::probe_cost to the fleet attribution row, and applies the
  /// oracle-free triggers (estimated_drift_threshold /
  /// recalibrate_on_anomaly) from the *estimates*, never from the
  /// simulator's ground-truth detuning.  Every
  /// batch is also scored against the float-reference logits, giving the
  /// report its accuracy / drift / recalibration accounting.
  ///
  /// Latency summaries (queue_wait / service / total) are aggregated in
  /// O(buckets) log-scale histograms: count, mean, and max are exact;
  /// percentiles are within one bucket (~7.5%) of the exact sample.
  ///
  /// Every batch's cost (passes, busy time, ledger energy, service
  /// latency) is attributed to the batch's tenants as it completes
  /// (ServeReport::tenant_costs), and the report's fleet totals are
  /// derived from those rows so the decomposition conserves them
  /// bit-exactly.  Registered SLO monitors observe every completion and
  /// summarize into ServeReport::slos.
  ServeReport run(const std::vector<Request>& requests,
                  const BatchPolicy& policy, const RunOptions& options = {});

 private:
  runtime::Accelerator& accelerator_;
  ModelRegistry& registry_;
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  std::vector<SloMonitor> slos_;
  fleet::HealthConfig health_config_{};
  std::unique_ptr<fleet::FleetHealthMonitor> health_;
  std::vector<runtime::FaultEvent> fault_schedule_;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_SERVER_HPP
