#ifndef PTC_SERVE_SERVER_HPP
#define PTC_SERVE_SERVER_HPP

#include <vector>

#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/latency_stats.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"

/// Discrete-event serving simulator: open-loop arrivals -> RequestQueue ->
/// DynamicBatcher -> accelerator fleet, all on modeled hardware time.  The
/// fleet serves one batch at a time (every tensor core participates in the
/// batch's tile schedule), which makes this the single-station queueing
/// model whose saturation the serving benches sweep.
///
/// Determinism contract: identical (requests, policy, registry contents,
/// accelerator config) produce an identical batch trace and identical
/// stats, bit for bit, on any host thread count — the event loop is
/// sequential, batch outputs inherit the Accelerator's canonical-order
/// reduction, and batch timing comes from Accelerator::batch_cost, never
/// from host wall time.
namespace ptc::serve {

class Server {
 public:
  /// Serves the registry's models on the registry's accelerator fleet.
  explicit Server(ModelRegistry& registry);

  /// Serves `requests` (sorted by arrival — LoadGenerator output
  /// qualifies) under `policy` and returns the full report.  Arrivals at
  /// exactly the dispatch instant join the closing batch.  Once the
  /// arrival stream ends, leftover queued requests drain as partial
  /// batches.  Residency and drift state reset at the start of every run.
  ///
  /// When the fleet models thermal drift, the event loop advances the
  /// accelerator's drift clock to every dispatch instant and applies the
  /// policy's recalibration triggers (periodic and/or detuning-threshold)
  /// before launching the batch; recalibration downtime pushes the fleet's
  /// free time forward, so arrivals during a re-lock simply queue.  Every
  /// batch is also scored against the float-reference logits, giving the
  /// report its accuracy / drift / recalibration accounting.
  ServeReport run(const std::vector<Request>& requests,
                  const BatchPolicy& policy);

 private:
  runtime::Accelerator& accelerator_;
  ModelRegistry& registry_;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_SERVER_HPP
