#ifndef PTC_SERVE_TOKEN_SERVER_HPP
#define PTC_SERVE_TOKEN_SERVER_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "serve/latency_stats.hpp"
#include "serve/model_registry.hpp"
#include "telemetry/trace.hpp"

/// Token-level serving of registered transformers: requests carry a
/// growing sequence and a per-request KV cache, and the decode batch
/// re-forms every step.  Two schedulers over the same deterministic
/// event loop:
///
///  - static: a batch of up to max_batch requests is admitted together and
///    runs to completion; slots freed by short requests stay idle until
///    the whole batch drains (the classic padded-batch regime).
///  - continuous: freed slots refill from the queue at every token step,
///    so the fleet's static weight passes amortize over whichever requests
///    are live right now.
///
/// Costs are modeled per step: the transformer's static weight tiles
/// (residency-warm after the first step while they fit the active
/// rotation) plus per-request attention passes that grow with each
/// request's context — the KV rows are that request's own "weights",
/// reloaded every step.  KV state is accounted like weight residency:
/// budgeted (kv_budget_rows), billed per tenant as a row-seconds
/// integral, and evictable — over budget, the youngest active request is
/// preempted (its cache drops, it re-prefills on readmission), never the
/// oldest, so the loop always makes progress.
///
/// Determinism: decode arithmetic is per-request (nn::TransformerModel::
/// decode_step), so every generated token stream is bit-identical to
/// sequential one-request-at-a-time decoding and independent of host
/// thread count — scheduling changes only *when* tokens happen, never
/// *which* tokens.
namespace ptc::serve {

/// One generation request: a prompt destined for a registered transformer.
struct TokenRequest {
  std::size_t id = 0;
  std::string tenant;
  std::string model;                ///< ModelRegistry transformer entry
  double arrival = 0.0;             ///< open-loop arrival time [s]
  std::vector<std::size_t> prompt;  ///< token ids (non-empty)
  std::size_t max_new = 1;          ///< tokens to generate
};

struct TokenPolicy {
  enum class Schedule {
    kStatic,      ///< admit together, run to completion
    kContinuous,  ///< refill freed slots every token step
  };
  Schedule schedule = Schedule::kContinuous;
  std::size_t max_batch = 8;  ///< decode slots
  /// Fleet-wide KV residency budget in cache rows (one row = one
  /// position's K+V state in one layer); 0 = unbounded.  Admission never
  /// exceeds it: over budget, youngest-first preemption frees rows.
  std::size_t kv_budget_rows = 0;
};

/// Per-request outcome of one token-serving run.
struct TokenRequestRecord {
  std::size_t id = 0;
  std::string tenant;
  std::string model;
  std::size_t prompt_tokens = 0;
  std::size_t generated = 0;
  std::vector<std::size_t> tokens;  ///< prompt + generated stream
  std::size_t preemptions = 0;      ///< times this request lost its cache
  double arrival = 0.0;
  double first_token = 0.0;  ///< completion of the step decoding token #1
  double completion = 0.0;

  double total() const { return completion - arrival; }
  double time_to_first_token() const { return first_token - arrival; }
};

/// Everything one TokenServer::run produced.
struct TokenServeReport {
  std::vector<TokenRequestRecord> requests;  ///< in completion order

  std::size_t completed = 0;  ///< requests fully generated
  std::size_t steps = 0;      ///< decode steps dispatched
  /// Tokens fed through the fleet (prefill + generation), derived from the
  /// tenant rows — the conservation contract token billing is under.
  std::size_t tokens = 0;

  LatencyStats total;        ///< arrival -> completion (the p99 the bench
                             ///< frontier gates)
  LatencyStats first_token;  ///< arrival -> first generated token

  double makespan = 0.0;  ///< last step completion [s]
  double busy = 0.0;      ///< summed core-busy time [s], from tenant rows
  double energy = 0.0;    ///< fleet ledger energy [J], from tenant rows
  std::size_t passes = 0;       ///< tile passes (weights + attention)
  std::size_t warm_passes = 0;  ///< reload-free weight passes

  // --- KV residency ---------------------------------------------------------
  std::size_t kv_peak_rows = 0;     ///< max simultaneous cached rows
  std::size_t kv_evicted_rows = 0;  ///< rows dropped by preemption
  std::size_t preemptions = 0;      ///< preemption events
  /// KV row-seconds integral over the run, from the tenant rows.
  double kv_row_seconds = 0.0;

  /// Exact per-tenant decomposition, sorted by tenant name; the totals
  /// above (tokens, busy, energy, passes, warm_passes, kv_row_seconds,
  /// kv_evicted_rows, preemptions) are the sums over these rows in this
  /// order — bit-exact conservation, same contract as ServeReport.
  std::vector<TenantCost> tenant_costs;

  const TenantCost* tenant_cost(const std::string& tenant) const;

  /// Decoded tokens per modeled second — the serving throughput number.
  double tokens_per_second() const {
    return makespan > 0.0 ? static_cast<double>(tokens) / makespan : 0.0;
  }
  /// Fleet energy per decoded token [J].
  double energy_per_token() const {
    return tokens > 0 ? energy / static_cast<double>(tokens) : 0.0;
  }
  /// Fraction of tile passes served without a pSRAM reload.
  double warm_fraction() const {
    return passes > 0 ? static_cast<double>(warm_passes) /
                            static_cast<double>(passes)
                      : 0.0;
  }
};

class TokenServer {
 public:
  explicit TokenServer(ModelRegistry& registry);

  /// Attaches a tracer: step spans on the serve track, token_step /
  /// kv_evicted / request_preempted instants, KV row counters.
  void set_tracer(telemetry::Tracer* tracer);

  /// Serves `requests` (sorted by arrival; all must name registered
  /// transformers of one model) under `policy`.  Deterministic in
  /// (requests, policy, fleet config) — byte-identical reports across host
  /// thread counts.
  TokenServeReport run(const std::vector<TokenRequest>& requests,
                       const TokenPolicy& policy);

 private:
  runtime::Accelerator& accelerator_;
  ModelRegistry& registry_;
  telemetry::Tracer* tracer_ = nullptr;
};

}  // namespace ptc::serve

#endif  // PTC_SERVE_TOKEN_SERVER_HPP
