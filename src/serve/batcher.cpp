#include "serve/batcher.hpp"

#include <algorithm>
#include <utility>

#include "common/expects.hpp"

namespace ptc::serve {

void RequestQueue::push(Request request) {
  expects(!request.model.empty(), "queued request needs a model name");
  std::deque<Request>& queue = queues_[request.model];
  expects(queue.empty() || queue.back().arrival <= request.arrival,
          "requests must be pushed in arrival order");
  queue.push_back(std::move(request));
  ++size_;
}

std::size_t RequestQueue::size(const std::string& model) const {
  const auto it = queues_.find(model);
  return it == queues_.end() ? 0 : it->second.size();
}

std::vector<std::string> RequestQueue::models() const {
  std::vector<std::string> names;
  for (const auto& [name, queue] : queues_) {
    if (!queue.empty()) names.push_back(name);
  }
  return names;  // std::map iteration: already name-sorted
}

double RequestQueue::oldest_arrival(const std::string& model) const {
  const auto it = queues_.find(model);
  expects(it != queues_.end() && !it->second.empty(),
          "oldest_arrival of an empty queue");
  return it->second.front().arrival;
}

double RequestQueue::fill_arrival(const std::string& model,
                                  std::size_t size) const {
  expects(size >= 1, "fill_arrival needs a positive batch size");
  const auto it = queues_.find(model);
  expects(it != queues_.end() && it->second.size() >= size,
          "fill_arrival needs at least `size` queued requests");
  return it->second[size - 1].arrival;
}

std::vector<Request> RequestQueue::pop(const std::string& model,
                                       std::size_t limit) {
  const auto it = queues_.find(model);
  expects(it != queues_.end(), "pop from a model with no queue");
  std::deque<Request>& queue = it->second;
  std::vector<Request> batch;
  while (!queue.empty() && batch.size() < limit) {
    batch.push_back(std::move(queue.front()));
    queue.pop_front();
    --size_;
  }
  return batch;
}

DynamicBatcher::DynamicBatcher(const BatchPolicy& policy) : policy_(policy) {
  expects(policy.max_batch >= 1, "max_batch must be at least 1");
  expects(policy.max_wait >= 0.0, "max_wait must be non-negative");
  expects(policy.recalibration_period >= 0.0,
          "recalibration_period must be non-negative");
  expects(policy.drift_threshold >= 0.0,
          "drift_threshold must be non-negative");
}

void DynamicBatcher::enqueue(Request request) { queue_.push(std::move(request)); }

double DynamicBatcher::close_time(const std::string& model) const {
  // The max_wait expiry, or — once max_batch is queued — the instant the
  // closing request arrived; a batch can never launch before its last
  // member exists.
  double when = queue_.oldest_arrival(model) + policy_.max_wait;
  if (queue_.size(model) >= policy_.max_batch) {
    when = std::min(when, queue_.fill_arrival(model, policy_.max_batch));
  }
  return when;
}

bool DynamicBatcher::ready(const std::string& model, double now,
                           bool drain) const {
  // now >= inf is false, so kNoTimeout queues only close when full.
  return drain || now >= close_time(model);
}

double DynamicBatcher::next_ready_time(double now) const {
  double best = std::numeric_limits<double>::infinity();
  for (const std::string& model : queue_.models()) {
    best = std::min(best, std::max(now, close_time(model)));
  }
  return best;
}

std::vector<Request> DynamicBatcher::pop_ready(
    double now, const std::string& resident_model, bool drain) {
  std::string best;
  for (const std::string& model : queue_.models()) {
    if (!ready(model, now, drain)) continue;
    if (best.empty()) {
      best = model;
      continue;
    }
    // Resident model first (a batch with zero reloads beats any other);
    // then FIFO fairness across models; name order breaks exact ties via
    // the sorted iteration.
    if (model == resident_model && best != resident_model) {
      best = model;
      continue;
    }
    if (best == resident_model) continue;
    if (queue_.oldest_arrival(model) < queue_.oldest_arrival(best)) {
      best = model;
    }
  }
  if (best.empty()) return {};
  return queue_.pop(best, policy_.max_batch);
}

}  // namespace ptc::serve
