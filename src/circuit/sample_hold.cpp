#include "circuit/sample_hold.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"

namespace ptc::circuit {

SampleHold::SampleHold(const SampleHoldConfig& config)
    : config_(config), tracker_(config.acquisition_tau, 0.0) {
  expects(config.hold_capacitance > 0.0, "hold capacitance must be positive");
  expects(config.droop_rate >= 0.0, "droop rate must be >= 0");
}

double SampleHold::step(double v_in, bool track, double dt, Rng* rng) {
  if (track) {
    value_ = tracker_.step(v_in, dt);
    was_tracking_ = true;
  } else {
    if (was_tracking_) {
      // Falling clock edge: freeze, optionally with kT/C noise.
      if (config_.include_ktc_noise && rng != nullptr) {
        const double sigma = std::sqrt(constants::k_b * constants::t_ambient /
                                       config_.hold_capacitance);
        value_ += rng->normal(0.0, sigma);
      }
      was_tracking_ = false;
    }
    value_ -= config_.droop_rate * dt * (value_ > 0.0 ? 1.0 : -1.0);
    tracker_.reset(value_);
  }
  return value_;
}

void SampleHold::reset(double v) {
  value_ = v;
  tracker_.reset(v);
  was_tracking_ = true;
}

}  // namespace ptc::circuit
