#include "circuit/comparator.hpp"

#include "common/expects.hpp"

namespace ptc::circuit {

Comparator::Comparator(const ComparatorConfig& config, Rng& rng)
    : config_(config) {
  expects(config.offset_sigma >= 0.0, "offset sigma must be >= 0");
  offset_ = rng.normal(0.0, config.offset_sigma);
}

Comparator::Comparator(const ComparatorConfig& config) : config_(config) {
  expects(config.offset_sigma >= 0.0, "offset sigma must be >= 0");
}

bool Comparator::decide(double v_in, double v_ref) {
  ++decisions_;
  return v_in > v_ref + offset_;
}

bool Comparator::decide(double v_in, double v_ref, Rng& noise_rng) {
  ++decisions_;
  const double noise = noise_rng.normal(0.0, config_.noise_sigma);
  return v_in + noise > v_ref + offset_;
}

double Comparator::consumed_energy() const {
  return static_cast<double>(decisions_) * config_.energy_per_decision;
}

}  // namespace ptc::circuit
