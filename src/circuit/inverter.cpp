#include "circuit/inverter.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace ptc::circuit {

Inverter::Inverter(const InverterConfig& config) : config_(config) {
  expects(config.vdd > 0.0, "vdd must be positive");
  expects(config.v_trip > 0.0 && config.v_trip < config.vdd,
          "trip point must lie inside the supply window");
  expects(config.gain > 0.0, "gain must be positive");
  expects(config.load_capacitance > 0.0, "load capacitance must be positive");
  expects(config.delay > 0.0, "delay must be positive");
}

double Inverter::transfer(double v_in) const {
  // Smooth tanh VTC whose slope at v_trip equals -gain.
  const double x =
      2.0 * config_.gain / config_.vdd * (v_in - config_.v_trip);
  return 0.5 * config_.vdd * (1.0 - std::tanh(x));
}

double Inverter::switching_energy() const {
  return 0.5 * config_.load_capacitance * config_.vdd * config_.vdd * 1.2;
}

}  // namespace ptc::circuit
