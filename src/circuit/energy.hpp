#ifndef PTC_CIRCUIT_ENERGY_HPP
#define PTC_CIRCUIT_ENERGY_HPP

#include <map>
#include <string>
#include <vector>

/// Per-category energy/power accounting.  Every block of the tensor core
/// (lasers, pSRAM drivers, TIAs, ADC channels, decoder, clocking) books its
/// consumption here so the Sec. IV-D roll-up (4.10 TOPS @ 3.02 TOPS/W) is a
/// sum of explicit, auditable entries rather than a single magic number.
namespace ptc::circuit {

class EnergyLedger {
 public:
  /// Books a one-off energy amount [J] under a category.
  void add_energy(const std::string& category, double joules);

  /// Registers a continuously-drawn static power [W]; repeated calls
  /// accumulate.
  void add_static_power(const std::string& category, double watts);

  /// Converts all registered static powers into energy over `dt` seconds.
  void accrue_static(double dt);

  /// Energy booked under a category so far [J] (0 if unknown).
  double energy(const std::string& category) const;

  /// Sum of all booked energies [J].
  double total_energy() const;

  /// Registered static power for a category [W] (0 if unknown).
  double static_power(const std::string& category) const;

  /// Sum of all registered static powers [W].
  double total_static_power() const;

  struct Entry {
    std::string category;
    double energy;
    double static_power;
  };

  /// All categories sorted by name.
  std::vector<Entry> entries() const;

  void reset();

 private:
  std::map<std::string, double> energies_;
  std::map<std::string, double> static_powers_;
};

}  // namespace ptc::circuit

#endif  // PTC_CIRCUIT_ENERGY_HPP
