#include "circuit/driver.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace ptc::circuit {

RingDriver::RingDriver(const RingDriverConfig& config)
    : config_(config), lag_(config.bandwidth_tau, 0.0) {
  expects(config.vdd > 0.0, "vdd must be positive");
  expects(config.load_capacitance > 0.0, "load capacitance must be positive");
}

double RingDriver::step(double v_in, double dt) {
  const double target =
      config_.digital ? (v_in > 0.5 * config_.vdd ? config_.vdd : 0.0) : v_in;
  const double before = lag_.value();
  const double after = lag_.step(target, dt);
  // Charge drawn from the supply is C * |dV|; at Vdd supply that costs
  // C * Vdd * |dV| of energy for the charging half of the swing.
  consumed_energy_ += config_.load_capacitance * config_.vdd *
                      std::fabs(after - before) * 0.5;
  return after;
}

double RingDriver::switching_energy() const {
  return 0.5 * config_.load_capacitance * config_.vdd * config_.vdd;
}

}  // namespace ptc::circuit
