#ifndef PTC_CIRCUIT_COMPARATOR_HPP
#define PTC_CIRCUIT_COMPARATOR_HPP

#include "common/rng.hpp"

/// Clocked voltage comparator for the *electrical* flash-ADC baseline the
/// paper contrasts against (refs [39], [40]): 2^p - 1 of these fire every
/// conversion in a thermometer-coded flash, which is exactly the power cost
/// the 1-hot eoADC avoids.
namespace ptc::circuit {

struct ComparatorConfig {
  double offset_sigma = 2e-3;    ///< input-referred offset std-dev [V]
  double noise_sigma = 0.5e-3;   ///< per-decision input noise std-dev [V]
  double energy_per_decision = 120e-15;  ///< [J]
  double static_power = 150e-6;  ///< bias power while enabled [W]
  double decision_time = 40e-12; ///< regeneration time [s]
};

class Comparator {
 public:
  /// The fabrication offset is drawn once at construction from `rng`.
  Comparator(const ComparatorConfig& config, Rng& rng);

  /// Deterministic offset-free comparator (for ideal references).
  explicit Comparator(const ComparatorConfig& config = {});

  /// Clocked decision: returns v_in > v_ref (+ offset + optional noise).
  /// Pass a RNG to include per-decision noise; decisions are counted for
  /// energy accounting either way.
  bool decide(double v_in, double v_ref);
  bool decide(double v_in, double v_ref, Rng& noise_rng);

  /// Total decision energy consumed so far [J].
  double consumed_energy() const;

  std::size_t decision_count() const { return decisions_; }
  double offset() const { return offset_; }

  const ComparatorConfig& config() const { return config_; }

 private:
  ComparatorConfig config_;
  double offset_ = 0.0;
  std::size_t decisions_ = 0;
};

}  // namespace ptc::circuit

#endif  // PTC_CIRCUIT_COMPARATOR_HPP
