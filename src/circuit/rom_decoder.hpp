#ifndef PTC_CIRCUIT_ROM_DECODER_HPP
#define PTC_CIRCUIT_ROM_DECODER_HPP

#include <cstdint>
#include <vector>

/// ROM-based ceiling-priority decoder (paper Sec. II-C).
///
/// The eoADC produces 2^p channel activations B_1..B_{2^p}; in normal
/// operation exactly one is active (1-hot), but when the analog input sits at
/// the boundary between two adjacent quantization bins *both* neighbours
/// activate (paper Fig. 9, V_IN = 2 V).  The decoder implements a ceiling
/// function: it emits the code of the highest active channel, which resolves
/// boundary cases deterministically and prevents two output codes from
/// fighting (no static current in the ROM).
namespace ptc::circuit {

struct RomDecoderConfig {
  double energy_per_decode = 45e-15;  ///< dynamic energy per conversion [J]
  double static_power = 40e-6;        ///< leakage [W]
};

class CeilingRomDecoder {
 public:
  struct Decode {
    unsigned code = 0;        ///< p-bit output code
    bool any_active = false;  ///< at least one channel fired
    bool boundary = false;    ///< two adjacent channels fired (ceiling applied)
    bool fault = false;       ///< activation pattern not 1-hot / adjacent pair
  };

  /// bits in [1, 4]: the ROM is explicitly materialized with 2^(2^bits)
  /// words, faithful to a ROM implementation.
  explicit CeilingRomDecoder(unsigned bits,
                             const RomDecoderConfig& config = {});

  /// Decodes a channel activation vector of length 2^bits.
  Decode decode(const std::vector<bool>& active);

  unsigned bits() const { return bits_; }
  std::size_t channel_count() const { return std::size_t{1} << bits_; }

  /// Dynamic energy consumed so far [J].
  double consumed_energy() const;
  std::size_t decode_count() const { return decodes_; }

  const RomDecoderConfig& config() const { return config_; }

 private:
  struct Word {
    std::uint8_t code;
    std::uint8_t flags;  // bit0: any_active, bit1: boundary, bit2: fault
  };

  static Word encode_entry(unsigned bits, unsigned pattern);

  unsigned bits_;
  RomDecoderConfig config_;
  std::vector<Word> rom_;
  std::size_t decodes_ = 0;
};

}  // namespace ptc::circuit

#endif  // PTC_CIRCUIT_ROM_DECODER_HPP
