#include "circuit/circuit.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::circuit {

FirstOrderLag::FirstOrderLag(double tau, double y0) : tau_(tau), y_(y0) {
  expects(tau > 0.0, "lag time constant must be positive");
}

double FirstOrderLag::step(double x, double dt) {
  expects(dt > 0.0, "dt must be positive");
  const double alpha = 1.0 - std::exp(-dt / tau_);
  y_ += (x - y_) * alpha;
  return y_;
}

Circuit::NodeId Circuit::add_node(const NodeConfig& config) {
  expects(config.capacitance > 0.0, "node capacitance must be positive");
  expects(config.v_max > config.v_min, "node rail window must be non-empty");
  expects(config.v_init >= config.v_min && config.v_init <= config.v_max,
          "initial voltage must lie within the rails");
  nodes_.push_back({config, config.v_init});
  return nodes_.size() - 1;
}

double Circuit::voltage(NodeId node) const {
  expects(node < nodes_.size(), "node id out of range");
  return nodes_[node].v;
}

void Circuit::set_voltage(NodeId node, double v) {
  expects(node < nodes_.size(), "node id out of range");
  nodes_[node].v =
      std::clamp(v, nodes_[node].config.v_min, nodes_[node].config.v_max);
}

double Circuit::capacitance(NodeId node) const {
  expects(node < nodes_.size(), "node id out of range");
  return nodes_[node].config.capacitance;
}

void Circuit::inject_current(NodeId node, double amps) {
  expects(node < nodes_.size(), "node id out of range");
  nodes_[node].i_accum += amps;
}

void Circuit::step(double dt) {
  expects(dt > 0.0, "dt must be positive");
  for (auto& node : nodes_) {
    node.v += node.i_accum * dt / node.config.capacitance;
    node.v = std::clamp(node.v, node.config.v_min, node.config.v_max);
    node.i_accum = 0.0;
  }
}

}  // namespace ptc::circuit
