#include "circuit/amplifier.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace ptc::circuit {

VoltageAmplifier::VoltageAmplifier(const VoltageAmpConfig& config)
    : config_(config) {
  expects(config.vdd > 0.0, "vdd must be positive");
  expects(config.bias_point > 0.0 && config.bias_point < config.vdd,
          "bias point must lie inside the supply window");
  expects(config.gain_per_stage > 0.0, "gain must be positive");
  expects(config.stages >= 1, "amplifier needs at least one stage");
  expects(config.power >= 0.0, "power must be >= 0");
  stages_.assign(config.stages, FirstOrderLag(config.stage_tau, config.bias_point));
}

double VoltageAmplifier::stage_transfer(double v_in) const {
  const double v = config_.bias_point -
                   config_.gain_per_stage * (v_in - config_.bias_point);
  return std::clamp(v, 0.0, config_.vdd);
}

double VoltageAmplifier::output(double v_in) const {
  double v = v_in;
  for (std::size_t i = 0; i < config_.stages; ++i) v = stage_transfer(v);
  return v;
}

double VoltageAmplifier::step(double v_in, double dt) {
  double v = v_in;
  for (auto& stage : stages_) {
    v = stage.step(stage_transfer(v), dt);
  }
  return v;
}

double VoltageAmplifier::value() const { return stages_.back().value(); }

void VoltageAmplifier::reset(double v) {
  for (auto& stage : stages_) stage.reset(v);
}

bool VoltageAmplifier::logic_value() const {
  return value() > 0.5 * config_.vdd;
}

}  // namespace ptc::circuit
