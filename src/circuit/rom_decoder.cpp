#include "circuit/rom_decoder.hpp"

#include "common/expects.hpp"

namespace ptc::circuit {

CeilingRomDecoder::CeilingRomDecoder(unsigned bits, const RomDecoderConfig& config)
    : bits_(bits), config_(config) {
  expects(bits >= 1 && bits <= 4,
          "ROM decoder materializes 2^(2^bits) words; bits must be in [1, 4]");
  const std::size_t patterns = std::size_t{1} << (std::size_t{1} << bits);
  rom_.resize(patterns);
  for (std::size_t pattern = 0; pattern < patterns; ++pattern) {
    rom_[pattern] = encode_entry(bits, static_cast<unsigned>(pattern));
  }
}

CeilingRomDecoder::Word CeilingRomDecoder::encode_entry(unsigned bits,
                                                        unsigned pattern) {
  const unsigned channels = 1u << bits;
  unsigned highest = 0;
  unsigned count = 0;
  bool adjacent_pair = false;
  for (unsigned ch = 0; ch < channels; ++ch) {
    if (pattern & (1u << ch)) {
      ++count;
      highest = ch;
    }
  }
  if (count == 2) {
    // Check whether the two active channels are adjacent.
    unsigned first = 0;
    for (unsigned ch = 0; ch < channels; ++ch) {
      if (pattern & (1u << ch)) {
        first = ch;
        break;
      }
    }
    adjacent_pair = (highest == first + 1);
  }
  Word word{};
  word.code = static_cast<std::uint8_t>(count == 0 ? 0 : highest);
  const bool any = count > 0;
  const bool boundary = count == 2 && adjacent_pair;
  const bool fault = count > 2 || (count == 2 && !adjacent_pair);
  word.flags = static_cast<std::uint8_t>((any ? 1 : 0) | (boundary ? 2 : 0) |
                                         (fault ? 4 : 0));
  return word;
}

CeilingRomDecoder::Decode CeilingRomDecoder::decode(
    const std::vector<bool>& active) {
  expects(active.size() == channel_count(),
          "decoder input width must equal 2^bits");
  unsigned pattern = 0;
  for (std::size_t ch = 0; ch < active.size(); ++ch) {
    if (active[ch]) pattern |= 1u << ch;
  }
  ++decodes_;
  const Word word = rom_[pattern];
  Decode out;
  out.code = word.code;
  out.any_active = (word.flags & 1) != 0;
  out.boundary = (word.flags & 2) != 0;
  out.fault = (word.flags & 4) != 0;
  return out;
}

double CeilingRomDecoder::consumed_energy() const {
  return static_cast<double>(decodes_) * config_.energy_per_decode;
}

}  // namespace ptc::circuit
