#include "circuit/tia.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace ptc::circuit {

LinearTia::LinearTia(const LinearTiaConfig& config)
    : config_(config), lag_(1.0 / (6.283185307179586 * config.bandwidth), 0.0) {
  expects(config.transimpedance > 0.0, "transimpedance must be positive");
  expects(config.bandwidth > 0.0, "bandwidth must be positive");
  expects(config.vdd > 0.0, "vdd must be positive");
  expects(config.power >= 0.0, "power must be >= 0");
}

double LinearTia::output(double current) const {
  return std::clamp(config_.transimpedance * current, 0.0, config_.vdd);
}

double LinearTia::step(double current, double dt) {
  return lag_.step(output(current), dt);
}

InverterTia::InverterTia(const InverterTiaConfig& config)
    : config_(config), lag_(config.bandwidth_tau, config.bias_point) {
  expects(config.vdd > 0.0, "vdd must be positive");
  expects(config.bias_point > 0.0 && config.bias_point < config.vdd,
          "bias point must lie inside the supply window");
  expects(config.gain > 0.0, "gain must be positive");
  expects(config.power >= 0.0, "power must be >= 0");
}

double InverterTia::output(double v_in) const {
  const double v = config_.bias_point -
                   config_.gain * (v_in - config_.bias_point);
  return std::clamp(v, 0.0, config_.vdd);
}

double InverterTia::step(double v_in, double dt) {
  return lag_.step(output(v_in), dt);
}

}  // namespace ptc::circuit
