#ifndef PTC_CIRCUIT_DRIVER_HPP
#define PTC_CIRCUIT_DRIVER_HPP

#include "circuit/circuit.hpp"

/// Electrical driver (the paper's D1/D2) that buffers a pSRAM storage node
/// onto a microring's pn junction.  Models a rail-to-rail buffer with a
/// first-order bandwidth and CV^2 energy on the (driver + junction) load.
namespace ptc::circuit {

struct RingDriverConfig {
  double vdd = 1.8;              ///< output swing [V]
  double bandwidth_tau = 4e-12;  ///< output time constant [s]
  double load_capacitance = 85e-15;  ///< driver self + wiring + junction [F]
  /// If true the driver regenerates (buffers digitally): output targets the
  /// rail selected by input > vdd/2.  If false it is a unity-gain follower.
  bool digital = true;
};

class RingDriver {
 public:
  explicit RingDriver(const RingDriverConfig& config = {});

  /// Advances the driver by dt toward the target implied by v_in and returns
  /// the new output voltage (which callers apply to Microring::set_bias).
  double step(double v_in, double dt);

  double output() const { return lag_.value(); }
  void reset(double v) { lag_.reset(v); }

  /// Energy for one full output swing 0 <-> vdd [J].
  double switching_energy() const;

  /// Dynamic energy dissipated so far, accumulated from actual output
  /// movement (C * Vdd * |dV| for a rail-to-rail driver) [J].
  double consumed_energy() const { return consumed_energy_; }

  const RingDriverConfig& config() const { return config_; }

 private:
  RingDriverConfig config_;
  FirstOrderLag lag_;
  double consumed_energy_ = 0.0;
};

}  // namespace ptc::circuit

#endif  // PTC_CIRCUIT_DRIVER_HPP
