#include "circuit/energy.hpp"

#include "common/expects.hpp"

namespace ptc::circuit {

void EnergyLedger::add_energy(const std::string& category, double joules) {
  expects(joules >= 0.0, "energy must be >= 0");
  energies_[category] += joules;
}

void EnergyLedger::add_static_power(const std::string& category, double watts) {
  expects(watts >= 0.0, "power must be >= 0");
  static_powers_[category] += watts;
}

void EnergyLedger::accrue_static(double dt) {
  expects(dt >= 0.0, "dt must be >= 0");
  for (const auto& [category, watts] : static_powers_) {
    energies_[category] += watts * dt;
  }
}

double EnergyLedger::energy(const std::string& category) const {
  const auto it = energies_.find(category);
  return it == energies_.end() ? 0.0 : it->second;
}

double EnergyLedger::total_energy() const {
  double sum = 0.0;
  for (const auto& [category, joules] : energies_) sum += joules;
  return sum;
}

double EnergyLedger::static_power(const std::string& category) const {
  const auto it = static_powers_.find(category);
  return it == static_powers_.end() ? 0.0 : it->second;
}

double EnergyLedger::total_static_power() const {
  double sum = 0.0;
  for (const auto& [category, watts] : static_powers_) sum += watts;
  return sum;
}

std::vector<EnergyLedger::Entry> EnergyLedger::entries() const {
  std::vector<Entry> out;
  for (const auto& [category, joules] : energies_) {
    out.push_back({category, joules, static_power(category)});
  }
  // Categories that only have static power registered (no energy yet).
  for (const auto& [category, watts] : static_powers_) {
    if (energies_.find(category) == energies_.end()) {
      out.push_back({category, 0.0, watts});
    }
  }
  return out;
}

void EnergyLedger::reset() {
  energies_.clear();
  static_powers_.clear();
}

}  // namespace ptc::circuit
