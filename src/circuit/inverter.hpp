#ifndef PTC_CIRCUIT_INVERTER_HPP
#define PTC_CIRCUIT_INVERTER_HPP

/// Static CMOS inverter model: smooth voltage transfer characteristic plus
/// CV^2 switching energy.  Used as the digital restore stage behind the eoADC
/// thresholding blocks and in the ROM decoder's output buffers.
namespace ptc::circuit {

struct InverterConfig {
  double vdd = 1.8;            ///< supply [V]
  double v_trip = 0.9;         ///< switching threshold [V]
  double gain = 20.0;          ///< small-signal gain magnitude at the trip point
  double load_capacitance = 2e-15;  ///< output load [F]
  double delay = 3e-12;        ///< propagation delay (first-order tau) [s]
};

class Inverter {
 public:
  explicit Inverter(const InverterConfig& config = {});

  /// Static VTC: vdd at low input, 0 at high input, smooth transition with
  /// the configured gain at the trip point.
  double transfer(double v_in) const;

  /// True when the input is interpreted as logic high (v_in > v_trip).
  bool logic_in(double v_in) const { return v_in > config_.v_trip; }

  /// Dynamic energy of one full output transition, C * Vdd^2 / 2 ... charging
  /// plus the short-circuit allowance (modelled as 20% overhead) [J].
  double switching_energy() const;

  const InverterConfig& config() const { return config_; }

 private:
  InverterConfig config_;
};

}  // namespace ptc::circuit

#endif  // PTC_CIRCUIT_INVERTER_HPP
