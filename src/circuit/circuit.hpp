#ifndef PTC_CIRCUIT_CIRCUIT_HPP
#define PTC_CIRCUIT_CIRCUIT_HPP

#include <cstddef>
#include <vector>

/// Behavioral electrical network: a set of capacitive nodes integrated with
/// forward Euler under rail clamping.
///
/// The photonic blocks (photodiodes, drivers, TIAs) inject currents each
/// timestep; `step(dt)` advances  C dV/dt = sum(I)  per node and clamps the
/// result into the node's rail window.  This is intentionally a behavioral
/// model — the paper's latch and ADC dynamics are RC-plus-feedback systems
/// for which this level of abstraction reproduces switching thresholds,
/// settling times and CV^2 energies.
namespace ptc::circuit {

/// First-order low-pass state, used for driver/amplifier/photodiode dynamics:
/// y -> x with time constant tau.
class FirstOrderLag {
 public:
  /// tau [s] must be positive; y0 is the initial state.
  explicit FirstOrderLag(double tau, double y0 = 0.0);

  /// Advances one step toward x and returns the new output (exact discrete
  /// solution for constant x over dt, stable for any dt).
  double step(double x, double dt);

  double value() const { return y_; }
  void reset(double y) { y_ = y; }
  double tau() const { return tau_; }

 private:
  double tau_;
  double y_;
};

class Circuit {
 public:
  using NodeId = std::size_t;

  struct NodeConfig {
    double capacitance = 1e-15;  ///< [F], must be > 0
    double v_init = 0.0;         ///< initial voltage [V]
    double v_min = 0.0;          ///< lower rail clamp [V]
    double v_max = 1.8;          ///< upper rail clamp [V]
  };

  /// Adds a node and returns its id.
  NodeId add_node(const NodeConfig& config);

  std::size_t node_count() const { return nodes_.size(); }

  double voltage(NodeId node) const;
  void set_voltage(NodeId node, double v);
  double capacitance(NodeId node) const;

  /// Accumulates current [A] into the node for the current step
  /// (positive charges the node).
  void inject_current(NodeId node, double amps);

  /// Integrates all nodes over dt [s] and clears the current accumulators.
  void step(double dt);

 private:
  struct Node {
    NodeConfig config;
    double v;
    double i_accum = 0.0;
  };
  std::vector<Node> nodes_;
};

}  // namespace ptc::circuit

#endif  // PTC_CIRCUIT_CIRCUIT_HPP
