#ifndef PTC_CIRCUIT_SAMPLE_HOLD_HPP
#define PTC_CIRCUIT_SAMPLE_HOLD_HPP

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

/// Sample-and-hold front end for the ADCs: tracks the analog input through a
/// finite acquisition bandwidth while the clock is high and freezes it (with
/// optional kT/C noise) on the falling edge.
namespace ptc::circuit {

struct SampleHoldConfig {
  double acquisition_tau = 5e-12;  ///< tracking time constant [s]
  double hold_capacitance = 50e-15;  ///< [F], sets kT/C noise
  double droop_rate = 1e3;         ///< hold-mode droop [V/s]
  bool include_ktc_noise = false;  ///< add kT/C sampling noise on hold
};

class SampleHold {
 public:
  explicit SampleHold(const SampleHoldConfig& config = {});

  /// Advances one timestep: tracks v_in while `track` is true, otherwise
  /// holds (with droop).  Returns the output voltage.
  double step(double v_in, bool track, double dt, Rng* rng = nullptr);

  double value() const { return value_; }
  void reset(double v);

  const SampleHoldConfig& config() const { return config_; }

 private:
  SampleHoldConfig config_;
  FirstOrderLag tracker_;
  double value_ = 0.0;
  bool was_tracking_ = true;
};

}  // namespace ptc::circuit

#endif  // PTC_CIRCUIT_SAMPLE_HOLD_HPP
