#ifndef PTC_CIRCUIT_AMPLIFIER_HPP
#define PTC_CIRCUIT_AMPLIFIER_HPP

#include <vector>

#include "circuit/circuit.hpp"

/// Cascaded voltage amplifier that converts the small eoADC sense swing into
/// a rail-to-rail digital level (paper Sec. II-C, ref. [46]).
namespace ptc::circuit {

struct VoltageAmpConfig {
  double vdd = 1.8;          ///< supply [V]
  double bias_point = 0.9;   ///< input/output quiescent level [V]
  double gain_per_stage = 6.0;   ///< inverting gain magnitude per stage
  std::size_t stages = 2;    ///< number of cascaded stages
  double stage_tau = 2.5e-12;    ///< per-stage time constant [s]
  double power = 0.3e-3;     ///< total static power [W]
};

class VoltageAmplifier {
 public:
  explicit VoltageAmplifier(const VoltageAmpConfig& config = {});

  /// Static settled output for an input level (cascaded inverting stages:
  /// even stage count => overall non-inverting) [V].
  double output(double v_in) const;

  /// Advances all stages by dt and returns the final-stage output [V].
  double step(double v_in, double dt);

  double value() const;
  void reset(double v);

  /// True when the settled output is a logic high (above vdd/2).
  bool logic_value() const;

  const VoltageAmpConfig& config() const { return config_; }

 private:
  double stage_transfer(double v_in) const;

  VoltageAmpConfig config_;
  std::vector<FirstOrderLag> stages_;
};

}  // namespace ptc::circuit

#endif  // PTC_CIRCUIT_AMPLIFIER_HPP
