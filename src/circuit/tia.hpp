#ifndef PTC_CIRCUIT_TIA_HPP
#define PTC_CIRCUIT_TIA_HPP

#include "circuit/circuit.hpp"

/// Transimpedance amplifiers.
///
/// Two flavors appear in the paper:
///  * a linear high-bandwidth TIA converting the summed photodiode current of
///    a compute row into a voltage for the ADC (ref. [52]);
///  * an inverter-based TIA sensing the balanced-photodiode node Qp inside
///    each eoADC thresholding block (ref. [46]).
namespace ptc::circuit {

struct LinearTiaConfig {
  double transimpedance = 4e3;   ///< [V/A]
  double bandwidth = 42e9;       ///< 3 dB bandwidth [Hz] (42 GHz class, [52])
  double vdd = 1.8;              ///< output clamp [V]
  double power = 38e-3;          ///< static power [W]
  double input_referred_noise = 2e-6;  ///< RMS input current noise [A]
};

/// Linear I-to-V front end with single-pole dynamics and rail clamping.
class LinearTia {
 public:
  explicit LinearTia(const LinearTiaConfig& config = {});

  /// Static (settled) output voltage for an input current [V].
  double output(double current) const;

  /// Advances the single-pole response toward output(current).
  double step(double current, double dt);

  double value() const { return lag_.value(); }
  void reset(double v) { lag_.reset(v); }

  const LinearTiaConfig& config() const { return config_; }

 private:
  LinearTiaConfig config_;
  FirstOrderLag lag_;
};

struct InverterTiaConfig {
  double vdd = 1.8;          ///< supply [V]
  double bias_point = 0.9;   ///< self-biased input trip voltage [V]
  double gain = 8.0;         ///< inverting small-signal gain
  double bandwidth_tau = 3e-12;  ///< output time constant [s]
  double power = 0.5e-3;     ///< static power while enabled [W]
};

/// Self-biased inverting voltage sense stage (the "inverter-based high-speed
/// TIA" of the eoADC).  Output moves opposite to the input deviation from the
/// bias point and clips at the rails.
class InverterTia {
 public:
  explicit InverterTia(const InverterTiaConfig& config = {});

  /// Static (settled) output for the given input voltage [V].
  double output(double v_in) const;

  /// Advances the single-pole response toward output(v_in).
  double step(double v_in, double dt);

  double value() const { return lag_.value(); }
  void reset(double v) { lag_.reset(v); }

  const InverterTiaConfig& config() const { return config_; }

 private:
  InverterTiaConfig config_;
  FirstOrderLag lag_;
};

}  // namespace ptc::circuit

#endif  // PTC_CIRCUIT_TIA_HPP
