#include "common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

#include "common/constants.hpp"
#include "common/expects.hpp"

namespace ptc::units {

double dbm_to_watt(double dbm) { return 1e-3 * std::pow(10.0, dbm / 10.0); }

double watt_to_dbm(double watt) {
  expects(watt > 0.0, "watt_to_dbm requires positive power");
  return 10.0 * std::log10(watt / 1e-3);
}

double ratio_to_db(double ratio) {
  expects(ratio > 0.0, "ratio_to_db requires positive ratio");
  return 10.0 * std::log10(ratio);
}

double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

double wavelength_to_frequency(double wavelength_m) {
  expects(wavelength_m > 0.0, "wavelength must be positive");
  return constants::c0 / wavelength_m;
}

double frequency_to_wavelength(double frequency_hz) {
  expects(frequency_hz > 0.0, "frequency must be positive");
  return constants::c0 / frequency_hz;
}

double photon_energy(double wavelength_m) {
  return constants::h_planck * wavelength_to_frequency(wavelength_m);
}

std::string si_format(double value, const std::string& unit) {
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr std::array<Prefix, 11> prefixes = {{{1e12, "T"},
                                                       {1e9, "G"},
                                                       {1e6, "M"},
                                                       {1e3, "k"},
                                                       {1.0, ""},
                                                       {1e-3, "m"},
                                                       {1e-6, "u"},
                                                       {1e-9, "n"},
                                                       {1e-12, "p"},
                                                       {1e-15, "f"},
                                                       {1e-18, "a"}}};
  if (value == 0.0) return "0 " + unit;
  const double magnitude = std::fabs(value);
  const Prefix* chosen = &prefixes.back();
  for (const auto& p : prefixes) {
    if (magnitude >= p.scale) {
      chosen = &p;
      break;
    }
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3g %s%s", value / chosen->scale,
                chosen->symbol, unit.c_str());
  return buffer;
}

}  // namespace ptc::units
