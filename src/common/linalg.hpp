#ifndef PTC_COMMON_LINALG_HPP
#define PTC_COMMON_LINALG_HPP

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

/// Small dense linear-algebra layer.  The photonic tensor core itself only
/// needs real matrices (weights / activations), while the MZI-mesh baseline
/// (Table I, ref. [33]) needs complex unitaries and a singular value
/// decomposition to program arbitrary matrices into a Clements mesh.
namespace ptc {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construction from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> values);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Raw storage (row-major), useful for iteration.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix transposed() const;

  /// Frobenius norm.
  double norm() const;

  /// Element-wise maximum absolute difference against another matrix of the
  /// same shape.
  double max_abs_diff(const Matrix& other) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scale);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double scale);
Matrix operator*(double scale, Matrix rhs);

/// Matrix product (inner dimensions must agree).
Matrix matmul(const Matrix& a, const Matrix& b);

/// Matrix-vector product (x.size() must equal a.cols()).
std::vector<double> matvec(const Matrix& a, const std::vector<double>& x);

/// Result of a thin singular value decomposition A = U * diag(S) * V^T.
struct Svd {
  Matrix u;                     ///< rows x rank orthonormal columns
  std::vector<double> s;        ///< singular values, descending
  Matrix v;                     ///< cols x rank orthonormal columns
};

/// One-sided Jacobi SVD for real matrices.  Intended for the small (<= 64x64)
/// matrices that get programmed into the MZI-mesh baseline; O(n^3) per sweep.
Svd svd(const Matrix& a, int max_sweeps = 60, double tol = 1e-12);

/// Dense row-major complex matrix used to model coherent optical meshes.
class CMatrix {
 public:
  using value_type = std::complex<double>;

  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols, value_type fill = {});

  static CMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  value_type& operator()(std::size_t r, std::size_t c);
  value_type operator()(std::size_t r, std::size_t c) const;

  /// Conjugate transpose.
  CMatrix dagger() const;

  /// Maximum absolute element difference against `other` (same shape).
  double max_abs_diff(const CMatrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<value_type> data_;
};

/// Complex matrix product.
CMatrix matmul(const CMatrix& a, const CMatrix& b);

/// Complex matrix-vector product.
std::vector<std::complex<double>> matvec(const CMatrix& a,
                                         const std::vector<std::complex<double>>& x);

/// True when u * u^dagger is within tol of identity.
bool is_unitary(const CMatrix& u, double tol = 1e-9);

}  // namespace ptc

#endif  // PTC_COMMON_LINALG_HPP
