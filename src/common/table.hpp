#ifndef PTC_COMMON_TABLE_HPP
#define PTC_COMMON_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

/// Fixed-column console table used by the bench binaries to print the same
/// rows/series the paper's tables and figures report.
namespace ptc {

class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  /// Renders the table with aligned columns and a header rule.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ptc

#endif  // PTC_COMMON_TABLE_HPP
