#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/expects.hpp"

namespace ptc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  expects(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) {
  expects(sigma >= 0.0, "normal() requires sigma >= 0");
  return mean + sigma * normal();
}

double Rng::exponential(double rate) {
  expects(rate > 0.0, "exponential() requires rate > 0");
  // uniform() < 1, so 1 - u is in (0, 1] and the log stays finite.
  return -std::log1p(-uniform()) / rate;
}

bool Rng::bernoulli(double p) {
  expects(p >= 0.0 && p <= 1.0, "bernoulli() requires p in [0, 1]");
  return uniform() < p;
}

Rng Rng::split(std::uint64_t stream) const {
  // Fold the full parent state with the stream id, then scramble: the Rng
  // constructor runs the result through SplitMix64 again to fill the child
  // state, so even adjacent stream ids land in unrelated state space.
  std::uint64_t s = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                    rotl(state_[3], 47) ^
                    (0x9e3779b97f4a7c15ull * (stream + 1));
  return Rng(splitmix64(s));
}

std::uint64_t Rng::below(std::uint64_t n) {
  expects(n > 0, "below() requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t candidate = next_u64();
    if (candidate >= threshold) return candidate % n;
  }
}

}  // namespace ptc
