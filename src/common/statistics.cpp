#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/expects.hpp"

namespace ptc {

double mean(const std::vector<double>& xs) {
  expects(!xs.empty(), "mean of empty sample");
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  expects(xs.size() >= 2, "stddev requires at least two samples");
  const double mu = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - mu) * (x - mu);
  return std::sqrt(sum / static_cast<double>(xs.size() - 1));
}

double min_of(const std::vector<double>& xs) {
  expects(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  expects(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double rms(const std::vector<double>& xs) {
  expects(!xs.empty(), "rms of empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x * x;
  return std::sqrt(sum / static_cast<double>(xs.size()));
}

double percentile(const std::vector<double>& xs, double p) {
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double percentile_sorted(const std::vector<double>& sorted_xs, double p) {
  expects(!sorted_xs.empty(), "percentile of empty sample");
  expects(p >= 0.0 && p <= 100.0, "percentile requires p in [0, 100]");
  // Nearest rank ceil(p/100 * n), with a slack that absorbs the binary
  // representation error of p * n / 100 (e.g. 7 * 100 / 100 must stay rank
  // 7, not round up to 8 via 7.000000000000001).
  const double h = p * static_cast<double>(sorted_xs.size()) / 100.0;
  const auto rank = static_cast<std::size_t>(std::ceil(h - 1e-9));
  return sorted_xs[std::clamp<std::size_t>(rank, 1, sorted_xs.size()) - 1];
}

LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  expects(xs.size() == ys.size(), "linear_fit requires equal-length samples");
  expects(xs.size() >= 2, "linear_fit requires at least two points");
  const double n = static_cast<double>(xs.size());
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  expects(sxx > 0.0, "linear_fit requires non-degenerate x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  } else {
    fit.r_squared = 1.0;  // all ys equal: the fit is exact
  }
  (void)n;
  return fit;
}

std::vector<std::size_t> histogram(const std::vector<double>& xs, double lo,
                                   double hi, std::size_t bins) {
  expects(bins > 0, "histogram requires at least one bin");
  expects(hi > lo, "histogram requires hi > lo");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<long>((x - lo) / width);
    idx = std::clamp<long>(idx, 0, static_cast<long>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

}  // namespace ptc
