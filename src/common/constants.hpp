#ifndef PTC_COMMON_CONSTANTS_HPP
#define PTC_COMMON_CONSTANTS_HPP

/// Physical constants used throughout the photonic tensor core models.
/// All values are SI (CODATA 2018).
namespace ptc::constants {

/// Speed of light in vacuum [m/s].
inline constexpr double c0 = 299'792'458.0;

/// Elementary charge [C].
inline constexpr double q_e = 1.602176634e-19;

/// Boltzmann constant [J/K].
inline constexpr double k_b = 1.380649e-23;

/// Planck constant [J*s].
inline constexpr double h_planck = 6.62607015e-34;

/// Default ambient temperature for thermal models [K].
inline constexpr double t_ambient = 300.0;

/// Thermal voltage kT/q at t_ambient [V].
inline constexpr double v_thermal = k_b * t_ambient / q_e;

}  // namespace ptc::constants

#endif  // PTC_COMMON_CONSTANTS_HPP
