#ifndef PTC_COMMON_UNITS_HPP
#define PTC_COMMON_UNITS_HPP

#include <string>

/// Unit conversions for optical power, wavelength/frequency and SI-prefixed
/// pretty printing.  Plain doubles carry SI units (watt, metre, second, volt);
/// the helpers below convert to/from the engineering units the paper quotes
/// (dBm, nm, GHz, pJ, ...).
namespace ptc::units {

// ---------------------------------------------------------------------------
// SI prefix multipliers, usable as readable literals: 50 * pico, 1310 * nano.
// ---------------------------------------------------------------------------
inline constexpr double femto = 1e-15;
inline constexpr double pico = 1e-12;
inline constexpr double nano = 1e-9;
inline constexpr double micro = 1e-6;
inline constexpr double milli = 1e-3;
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;
inline constexpr double tera = 1e12;

/// Converts optical power from dBm to watts.  dbm_to_watt(0) == 1 mW.
double dbm_to_watt(double dbm);

/// Converts optical power from watts to dBm.  Requires watt > 0.
double watt_to_dbm(double watt);

/// Converts a power ratio to decibels.  Requires ratio > 0.
double ratio_to_db(double ratio);

/// Converts decibels to a power ratio.
double db_to_ratio(double db);

/// Converts a vacuum wavelength [m] to optical frequency [Hz].
double wavelength_to_frequency(double wavelength_m);

/// Converts an optical frequency [Hz] to vacuum wavelength [m].
double frequency_to_wavelength(double frequency_hz);

/// Photon energy h*f for a vacuum wavelength [J].
double photon_energy(double wavelength_m);

/// Formats a value with an SI prefix and unit, e.g. si_format(2.32e-12, "J")
/// returns "2.32 pJ".  Uses three significant digits.
std::string si_format(double value, const std::string& unit);

}  // namespace ptc::units

#endif  // PTC_COMMON_UNITS_HPP
