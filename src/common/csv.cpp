#include "common/csv.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/expects.hpp"

namespace ptc {

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  expects(!columns_.empty(), "csv requires at least one column");
}

void CsvWriter::add_row(const std::vector<double>& row) {
  expects(row.size() == columns_.size(), "csv row width must match column count");
  rows_.push_back(row);
}

void CsvWriter::write(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c];
    os << (c + 1 < columns_.size() ? ',' : '\n');
  }
  os.precision(9);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      os << (c + 1 < row.size() ? ',' : '\n');
    }
  }
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open CSV output file: " + path);
  write(file);
}

}  // namespace ptc
