#ifndef PTC_COMMON_EXPECTS_HPP
#define PTC_COMMON_EXPECTS_HPP

#include <stdexcept>
#include <string>

/// Lightweight precondition/postcondition helpers in the spirit of the
/// C++ Core Guidelines Expects()/Ensures().  Violations throw, so callers
/// (and tests) can observe contract failures deterministically.
namespace ptc {

/// Throws std::invalid_argument when a precondition does not hold.
inline void expects(bool condition, const std::string& what) {
  if (!condition) throw std::invalid_argument("precondition violated: " + what);
}

/// Throws std::logic_error when a postcondition/invariant does not hold.
inline void ensures(bool condition, const std::string& what) {
  if (!condition) throw std::logic_error("postcondition violated: " + what);
}

}  // namespace ptc

#endif  // PTC_COMMON_EXPECTS_HPP
