#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace ptc::json {
namespace {

[[noreturn]] void fail_kind(const char* wanted) {
  throw std::invalid_argument(std::string("json: value is not a ") + wanted);
}

/// Recursive-descent parser over a raw character range.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::null();
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::map<std::string, Value> members;
    if (peek() == '}') {
      ++pos_;
      return Value::object(std::move(members));
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value::object(std::move(members));
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    if (peek() == ']') {
      ++pos_;
      return Value::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value::array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are out of
          // scope for telemetry artifacts; encode each half as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double x = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    return Value::number(x);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) fail_kind("bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) fail_kind("number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) fail_kind("string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::kArray) fail_kind("array");
  return array_;
}

const std::map<std::string, Value>& Value::as_object() const {
  if (kind_ != Kind::kObject) fail_kind("object");
  return object_;
}

const Value& Value::at(const std::string& key) const {
  const auto& members = as_object();
  const auto it = members.find(key);
  if (it == members.end()) {
    throw std::invalid_argument("json: missing member \"" + key + "\"");
  }
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return kind_ == Kind::kObject && object_.count(key) > 0;
}

Value Value::null() { return Value{}; }

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double x) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = x;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::object(std::map<std::string, Value> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string format_number(double x) {
  if (!std::isfinite(x)) return "null";
  // Integers that fit a double exactly print without a decimal point.
  if (x == std::floor(x) && std::abs(x) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", x);
    return buf;
  }
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, x);
    if (std::strtod(buf, nullptr) == x) break;
  }
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace ptc::json
