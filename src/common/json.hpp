#ifndef PTC_COMMON_JSON_HPP
#define PTC_COMMON_JSON_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

/// Minimal JSON value model + recursive-descent parser, for the telemetry
/// tooling that must *read back* machine artifacts: bench_compare diffs
/// committed BENCH_*.json baselines, and the trace linter re-parses emitted
/// Chrome trace-event files.  Writing stays with the emitters (they control
/// formatting); this header only adds the shared number formatter so every
/// emitted double round-trips exactly without printing 17 digits of noise.
namespace ptc::json {

/// One parsed JSON value (object keys are sorted — iteration order is
/// deterministic and independent of document order).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::invalid_argument on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::map<std::string, Value>& as_object() const;

  /// Object member lookup; throws std::invalid_argument when absent (use
  /// contains() to probe).
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  static Value null();
  static Value boolean(bool b);
  static Value number(double x);
  static Value string(std::string s);
  static Value array(std::vector<Value> items);
  static Value object(std::map<std::string, Value> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document.  Throws std::invalid_argument (with position
/// context) on malformed input or trailing garbage.
Value parse(const std::string& text);

/// Shortest decimal string that strtod round-trips to exactly `x` — clean
/// "0.25" instead of "0.25000000000000000", full 17 digits only when needed.
/// Infinities and NaN (not representable in JSON) format as null.
std::string format_number(double x);

/// `s` with JSON string escaping applied, surrounding quotes included.
std::string quote(const std::string& s);

}  // namespace ptc::json

#endif  // PTC_COMMON_JSON_HPP
