#include "common/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/expects.hpp"

namespace ptc {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> values) {
  rows_ = values.size();
  cols_ = rows_ ? values.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : values) {
    expects(row.size() == cols_, "Matrix initializer rows must be equal length");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  expects(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  expects(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double Matrix::norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  expects(rows_ == other.rows_ && cols_ == other.cols_,
          "max_abs_diff requires equal shapes");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  return worst;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  expects(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  expects(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scale) {
  for (double& v : data_) v *= scale;
  return *this;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double scale) { return lhs *= scale; }
Matrix operator*(double scale, Matrix rhs) { return rhs *= scale; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  expects(a.cols() == b.rows(), "matmul inner dimensions must agree");
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  expects(x.size() == a.cols(), "matvec dimension mismatch");
  std::vector<double> out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out[i] += a(i, j) * x[j];
  return out;
}

Svd svd(const Matrix& a, int max_sweeps, double tol) {
  // One-sided Jacobi: orthogonalize the columns of W = A * V by plane
  // rotations accumulated into V; singular values are the column norms.
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  expects(m > 0 && n > 0, "svd requires a non-empty matrix");
  Matrix w = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += w(i, p) * w(i, p);
          beta += w(i, q) * w(i, q);
          gamma += w(i, p) * w(i, q);
        }
        off = std::max(off, std::fabs(gamma) / std::max(std::sqrt(alpha * beta), 1e-300));
        if (std::fabs(gamma) <= tol * std::sqrt(alpha * beta)) continue;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (off < tol) break;
  }

  // Column norms are singular values; sort descending.
  std::vector<double> sigma(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) sum += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(sum);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  Svd out;
  out.s.resize(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.s[j] = sigma[src];
    for (std::size_t i = 0; i < n; ++i) out.v(i, j) = v(i, src);
    if (sigma[src] > 1e-300) {
      for (std::size_t i = 0; i < m; ++i) out.u(i, j) = w(i, src) / sigma[src];
    } else {
      // Null column: leave U column zero; callers treating rank-deficient
      // inputs should inspect s.
      for (std::size_t i = 0; i < m; ++i) out.u(i, j) = 0.0;
    }
  }
  return out;
}

CMatrix::CMatrix(std::size_t rows, std::size_t cols, value_type fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

CMatrix::value_type& CMatrix::operator()(std::size_t r, std::size_t c) {
  expects(r < rows_ && c < cols_, "CMatrix index out of range");
  return data_[r * cols_ + c];
}

CMatrix::value_type CMatrix::operator()(std::size_t r, std::size_t c) const {
  expects(r < rows_ && c < cols_, "CMatrix index out of range");
  return data_[r * cols_ + c];
}

CMatrix CMatrix::dagger() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = std::conj((*this)(r, c));
  return out;
}

double CMatrix::max_abs_diff(const CMatrix& other) const {
  expects(rows_ == other.rows_ && cols_ == other.cols_,
          "max_abs_diff requires equal shapes");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

CMatrix matmul(const CMatrix& a, const CMatrix& b) {
  expects(a.cols() == b.rows(), "matmul inner dimensions must agree");
  CMatrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const auto aik = a(i, k);
      if (aik == std::complex<double>{}) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  return out;
}

std::vector<std::complex<double>> matvec(
    const CMatrix& a, const std::vector<std::complex<double>>& x) {
  expects(x.size() == a.cols(), "matvec dimension mismatch");
  std::vector<std::complex<double>> out(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out[i] += a(i, j) * x[j];
  return out;
}

bool is_unitary(const CMatrix& u, double tol) {
  if (u.rows() != u.cols()) return false;
  const CMatrix product = matmul(u, u.dagger());
  return product.max_abs_diff(CMatrix::identity(u.rows())) < tol;
}

}  // namespace ptc
