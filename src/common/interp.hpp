#ifndef PTC_COMMON_INTERP_HPP
#define PTC_COMMON_INTERP_HPP

#include <vector>

/// Interpolation and grid helpers shared by spectral sweeps and device
/// transfer-curve models.
namespace ptc {

/// Linear interpolation between a and b with t in [0, 1] (extrapolates
/// outside).
double lerp(double a, double b, double t);

/// Returns n evenly spaced samples covering [lo, hi] inclusive.
/// Requires n >= 2 (or n == 1, in which case {lo} is returned).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Piecewise-linear table lookup.  xs must be strictly increasing and the
/// same length as ys (length >= 2).  Values outside the range clamp to the
/// endpoint values.
double interp_table(const std::vector<double>& xs, const std::vector<double>& ys,
                    double x);

}  // namespace ptc

#endif  // PTC_COMMON_INTERP_HPP
