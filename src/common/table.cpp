#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/expects.hpp"

namespace ptc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  expects(!headers_.empty(), "table requires at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(), "row width must match header count");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
  return buffer;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };

  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << "|" << std::string(widths[c] + 2, '-');
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ptc
