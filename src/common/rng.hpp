#ifndef PTC_COMMON_RNG_HPP
#define PTC_COMMON_RNG_HPP

#include <cstdint>

/// Deterministic, seedable pseudo-random number generation for noise models
/// and Monte-Carlo variation analysis.  We implement xoshiro256** rather than
/// relying on std::mt19937 so that simulation results are bit-reproducible
/// across standard library implementations.
namespace ptc {

/// xoshiro256** generator (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.  Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Standard normal deviate (Box-Muller with caching).
  double normal();

  /// Normal deviate with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t below(std::uint64_t n);

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ptc

#endif  // PTC_COMMON_RNG_HPP
