#ifndef PTC_COMMON_RNG_HPP
#define PTC_COMMON_RNG_HPP

#include <cstdint>

/// Deterministic, seedable pseudo-random number generation for noise models
/// and Monte-Carlo variation analysis.  We implement xoshiro256** rather than
/// relying on std::mt19937 so that simulation results are bit-reproducible
/// across standard library implementations.
///
/// Threading contract: an Rng instance is NOT thread-safe and must never be
/// shared across threads.  Under the runtime thread pool, give each core /
/// worker / trial its own child stream via split(): children derived from
/// the same parent state with the same stream id are identical on every
/// platform and independent of host scheduling, so Monte-Carlo variation
/// runs stay bit-reproducible no matter how many threads execute them.
namespace ptc {

/// xoshiro256** generator (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.  Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Standard normal deviate (Box-Muller with caching).
  double normal();

  /// Normal deviate with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential deviate with the given rate (mean 1/rate), the
  /// inter-arrival time of a Poisson process — the serve-layer open-loop
  /// load model.  Requires rate > 0.
  double exponential(double rate);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Derives an independent child generator for stream `stream` (e.g. a
  /// core id or trial index) without advancing this generator.  The child
  /// is a pure function of the parent's current state and the stream id:
  /// equal (parent state, stream) pairs give bit-identical child sequences
  /// on every platform, and distinct streams are decorrelated through a
  /// SplitMix64 scramble.  This is the seeding discipline for per-thread /
  /// per-core randomness under the runtime ThreadPool.
  Rng split(std::uint64_t stream) const;

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ptc

#endif  // PTC_COMMON_RNG_HPP
