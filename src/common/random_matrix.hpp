#ifndef PTC_COMMON_RANDOM_MATRIX_HPP
#define PTC_COMMON_RANDOM_MATRIX_HPP

#include <cstddef>

#include "common/linalg.hpp"
#include "common/rng.hpp"

/// Canonical random matmul workloads shared by the runtime tests and the
/// scaling/serving benches, so "the same workload" means the same fill
/// convention everywhere.
namespace ptc {

/// Non-negative activation matrix: entries uniform in [0, 1).
inline Matrix random_activations(std::size_t rows, std::size_t cols,
                                 Rng& rng) {
  Matrix x(rows, cols);
  for (double& v : x.data()) v = rng.uniform();
  return x;
}

/// Signed weight matrix: entries uniform in [-1, 1).
inline Matrix random_signed(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix w(rows, cols);
  for (double& v : w.data()) v = rng.uniform(-1.0, 1.0);
  return w;
}

}  // namespace ptc

#endif  // PTC_COMMON_RANDOM_MATRIX_HPP
