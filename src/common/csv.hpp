#ifndef PTC_COMMON_CSV_HPP
#define PTC_COMMON_CSV_HPP

#include <iosfwd>
#include <string>
#include <vector>

/// CSV emission for waveform traces and sweep results, so figure data can be
/// re-plotted outside the harness.
namespace ptc {

class CsvWriter {
 public:
  /// Creates a writer with the given column names.
  explicit CsvWriter(std::vector<std::string> columns);

  /// Appends a numeric row; width must match the column count.
  void add_row(const std::vector<double>& row);

  /// Writes header + rows to the stream.
  void write(std::ostream& os) const;

  /// Writes header + rows to a file.  Throws std::runtime_error on I/O error.
  void write_file(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace ptc

#endif  // PTC_COMMON_CSV_HPP
