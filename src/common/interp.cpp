#include "common/interp.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace ptc {

double lerp(double a, double b, double t) { return a + (b - a) * t; }

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  expects(n >= 1, "linspace requires n >= 1");
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

double interp_table(const std::vector<double>& xs, const std::vector<double>& ys,
                    double x) {
  expects(xs.size() == ys.size(), "interp_table requires equal-length tables");
  expects(xs.size() >= 2, "interp_table requires at least two points");
  expects(std::is_sorted(xs.begin(), xs.end()), "interp_table requires sorted xs");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto upper = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(upper - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return lerp(ys[lo], ys[hi], t);
}

}  // namespace ptc
