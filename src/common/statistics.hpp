#ifndef PTC_COMMON_STATISTICS_HPP
#define PTC_COMMON_STATISTICS_HPP

#include <cstddef>
#include <vector>

/// Descriptive statistics and least-squares fitting, used by the Fig. 7
/// linearity analysis, ADC DNL/INL extraction and the Monte-Carlo benches.
namespace ptc {

/// Arithmetic mean.  Requires a non-empty sample.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator).  Requires size >= 2.
double stddev(const std::vector<double>& xs);

/// Minimum element.  Requires a non-empty sample.
double min_of(const std::vector<double>& xs);

/// Maximum element.  Requires a non-empty sample.
double max_of(const std::vector<double>& xs);

/// Root-mean-square of a sample.  Requires a non-empty sample.
double rms(const std::vector<double>& xs);

/// Nearest-rank percentile: the smallest element such that at least p% of
/// the sample is <= it (p in [0, 100]; p = 0 returns the minimum).  A
/// single-element sample returns that element for every p.  Requires a
/// non-empty sample.  Used for the serve-layer p50/p95/p99 reporting.
double percentile(const std::vector<double>& xs, double p);

/// percentile() for a sample already sorted ascending — lets callers that
/// extract several percentiles pay for one sort.
double percentile_sorted(const std::vector<double>& sorted_xs, double p);

/// Least-squares straight-line fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination in [0, 1]
};

/// Fits a line through (xs, ys); both vectors must have equal length >= 2.
LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// samples clamp into the first/last bucket.
std::vector<std::size_t> histogram(const std::vector<double>& xs, double lo,
                                   double hi, std::size_t bins);

}  // namespace ptc

#endif  // PTC_COMMON_STATISTICS_HPP
