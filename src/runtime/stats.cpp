#include "runtime/stats.hpp"

namespace ptc::runtime {

circuit::EnergyLedger merge_ledgers(
    const std::vector<const circuit::EnergyLedger*>& ledgers) {
  circuit::EnergyLedger merged;
  for (const circuit::EnergyLedger* ledger : ledgers) {
    if (!ledger) continue;
    for (const auto& entry : ledger->entries()) {
      if (entry.energy != 0.0) merged.add_energy(entry.category, entry.energy);
      if (entry.static_power != 0.0) {
        merged.add_static_power(entry.category, entry.static_power);
      }
    }
  }
  return merged;
}

}  // namespace ptc::runtime
