#ifndef PTC_RUNTIME_THREAD_POOL_HPP
#define PTC_RUNTIME_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/// Host-side execution runtime for the multi-tile accelerator: a
/// work-stealing thread pool that the `Accelerator` uses to run per-core
/// tile shards concurrently and that the sweep helpers use to parallelize
/// parameter grids.  All scheduling here is *host* scheduling — simulated
/// hardware results never depend on thread interleaving (see
/// runtime/accelerator.hpp for the determinism contract).
namespace ptc::runtime {

/// Fixed-size work-stealing thread pool.
///
/// Each worker owns a deque: it pops its own tasks LIFO (cache-friendly for
/// recursively submitted work) and steals FIFO from siblings when its deque
/// runs dry — the classic Chase-Lev discipline, implemented with per-deque
/// locks since tasks here are coarse (whole tile shards or sweep points).
///
/// Threads waiting inside `parallel_for` help execute pending tasks instead
/// of blocking, so nested parallelism cannot deadlock even on a single
/// worker.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future rethrows any exception the task raised.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for every i in [begin, end) across the pool and waits for
  /// completion.  The calling thread participates by executing pending
  /// tasks.  The first exception thrown by any iteration is rethrown.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Executes one pending task if any is available.  Returns false when
  /// every deque was empty.  Exposed so external wait loops can help.
  bool run_pending_task();

 private:
  struct Worker {
    std::deque<std::packaged_task<void()>> queue;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  void enqueue(std::packaged_task<void()> task);
  bool try_pop(std::size_t index, bool from_back,
               std::packaged_task<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace ptc::runtime

#endif  // PTC_RUNTIME_THREAD_POOL_HPP
