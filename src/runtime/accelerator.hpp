#ifndef PTC_RUNTIME_ACCELERATOR_HPP
#define PTC_RUNTIME_ACCELERATOR_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "core/variation.hpp"
#include "nn/backend.hpp"
#include "nn/tiling.hpp"
#include "optics/thermal.hpp"
#include "runtime/fault.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/tile_scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

/// Multi-tile accelerator runtime: one controller orchestrating a pool of
/// photonic tensor cores, the scale-out counterpart of the paper's single
/// 16x16 core (4.10 TOPS) — N cores give N x the aggregate throughput as
/// long as the tile scheduler keeps them fed.
namespace ptc::runtime {

/// Slow thermal drift of the fleet's operating point, modeled per core as a
/// mean-reverting Ornstein-Uhlenbeck detuning process (optics::ThermalDrift)
/// on modeled serving time.  Every core drifts through an independent,
/// reproducible child stream of `seed`, and each core's rings respond
/// through their own (variation-spread) thermo-optic sensitivities.
struct DriftConfig {
  /// Stationary detuning standard deviation [K]; 0 disables drift.
  double sigma = 0.0;
  /// Mean-reversion time constant [s] of modeled serving time.  Thermal
  /// time constants are "slow" relative to the ns-scale batch service
  /// times, so the default is ~1000 batch latencies.
  double tau = 2e-6;
  std::uint64_t seed = 77;
  /// Probe vectors each core streams during a recalibration — sets the
  /// modeled downtime recalibrate() bills through batch_cost.
  std::size_t recalibration_samples = 64;
};

/// Fault-triggered built-in self-test: seeded probe vectors streamed
/// through one core and judged against the digital reference (see
/// core::TensorCore::self_test).  The BIST runs at the calibration lock
/// point (detuning pulled to 0 for the test, restored after), so thermal
/// drift cannot masquerade as a hard fault — a heater that cannot be
/// pulled to the lock point is caught by the heater_locked flag instead.
/// The thresholds classify core health: a core FAILS on gross analog
/// corruption, a stuck ADC ladder, or a heater that cannot re-lock; it is
/// DEGRADED on elevated-but-servable error, worn pSRAM cells, or a thin
/// endurance margin.  The error bars sit well above the healthy variation
/// fleet's locked deviation (~0.003) and below a 24-ring dead cluster's
/// (~0.02-0.05).
struct SelfTestConfig {
  std::size_t samples = 8;
  std::uint64_t seed = 2026;
  double degraded_error = 0.008;  ///< max row |analog - reference| bar
  double fail_error = 0.015;
  /// DEGRADED when the most-worn pSRAM cell's remaining endurance
  /// fraction drops below this.
  double degraded_endurance = 0.1;
};

struct AcceleratorConfig {
  /// Number of tensor cores in the pool.
  std::size_t cores = 4;
  /// Configuration shared by every core (geometry must be uniform so any
  /// core can execute any tile pass).
  core::TensorCoreConfig core{};
  /// Host worker threads; 0 = one thread per core.
  std::size_t threads = 0;
  /// When nonzero, models per-die fabrication spread: core i's eoADC ladder
  /// mismatch is seeded from Rng(variation_seed).split(i), giving each die
  /// an independent, reproducible variation stream.  Takes effect through
  /// core.adc.vref_mismatch_sigma.  When zero (default) all cores are
  /// identical devices and accelerator results are bit-identical to a
  /// single-core nn::PhotonicBackend.
  std::uint64_t variation_seed = 0;
  /// Full per-die device variation (core/variation.hpp): when
  /// variation.seed != 0 every core receives an independent child stream,
  /// so the pool is a realistically heterogeneous fabricated fleet.  The
  /// determinism contract still holds — results are a pure function of
  /// (config, inputs) — but fleet results are no longer bit-identical to a
  /// single-core backend, since different cores are different devices.
  core::VariationConfig variation{};
  /// Thermal drift of the fleet's operating point on modeled serving time.
  DriftConfig drift{};
  /// Hard-fault model (core/fault.hpp): when fault.seed != 0 every core
  /// receives an independent child stream for its pSRAM endurance sampler.
  /// Injected faults (inject()) work regardless of this seed.
  core::FaultConfig fault{};
  /// Health classification thresholds for run_self_test().
  SelfTestConfig self_test{};
};

/// Determinism contract: matmul results depend only on (config, inputs) —
/// the tile schedule is static and per-pass contributions are reduced in
/// canonical order on the calling thread, so host thread interleaving can
/// never change a single bit of the output.
class Accelerator {
 public:
  explicit Accelerator(const AcceleratorConfig& config = {});

  std::size_t core_count() const { return cores_.size(); }
  core::TensorCore& core(std::size_t index);
  const core::TensorCore& core(std::size_t index) const;
  ThreadPool& pool() { return pool_; }
  const AcceleratorConfig& config() const { return config_; }

  /// Sharded matmul with nn::PhotonicBackend semantics: x (s x k) times
  /// w (k x m), x non-negative, w signed.  Weight tiles are dispatched
  /// across the core pool by the TileScheduler; each shard streams the full
  /// input batch through every residency it owns (minimizing pSRAM
  /// reloads).  Weight-plan construction (mapping, pass list, encoded
  /// blocks) is cached per weight version — in the accelerator's own cache,
  /// or the caller's via the second overload.
  Matrix matmul(const Matrix& x, const Matrix& w,
                const nn::PhotonicBackendOptions& options = {});
  Matrix matmul(const Matrix& x, const Matrix& w,
                const nn::PhotonicBackendOptions& options,
                nn::WeightPlanCache& plan_cache);

  /// Modeled hardware cost of one tile pass for a batch of `samples`.
  PassCost pass_cost(std::size_t samples) const;

  /// Modeled cost of dispatching one serving batch: `passes` weight-tile
  /// residencies each streaming a `samples`-row batch, of which
  /// `warm_passes` are still resident on their cores from the previous
  /// dispatch and skip the pSRAM reload.  LPT-balanced across the pool
  /// exactly like matmul()'s schedule, so a fully cold batch costs the
  /// same modeled makespan matmul() records.  Pure function of (config,
  /// arguments) — the serve layer's timing hook, independent of host
  /// threading.
  BatchCost batch_cost(std::size_t passes, std::size_t warm_passes,
                       std::size_t samples) const;

  // --- thermal drift / online recalibration ---------------------------------
  /// True when config.drift.sigma > 0: the fleet's operating point drifts
  /// as modeled serving time advances.
  bool drift_enabled() const { return config_.drift.sigma > 0.0; }

  /// Advances the fleet clock to modeled time `t` [s]: steps every core's
  /// OU detuning process over the elapsed interval and applies the new
  /// detuning to the core (refreshing its cached fast-path gains).  The
  /// serve layer calls this at every batch dispatch.  Monotonic; t at or
  /// before the current clock is a no-op.  No-op while drift is disabled.
  void advance_to(double t);

  /// Current fleet clock [s] (last advance_to target).
  double clock() const { return clock_; }

  /// Largest |detuning| across the pool [K] — the on-chip thermal monitors'
  /// view of how far the fleet has drifted from its calibration point.
  double max_abs_detuning() const;

  /// Online recalibration: re-locks every core's heaters to the calibrated
  /// operating point (detuning -> 0, a new calibration epoch per core) and
  /// re-freezes the fast-path gains there.  Cores recalibrate in parallel;
  /// the returned BatchCost is the modeled fleet downtime — one probe
  /// residency per core streaming drift.recalibration_samples vectors,
  /// costed through the same batch_cost model serving batches use.
  /// Resident weight tiles survive (recalibration re-freezes gains, it does
  /// not evict pSRAM state).
  BatchCost recalibrate();

  /// Recalibrations performed since construction (or reset_drift()).
  std::size_t recalibrations() const { return recalibrations_; }

  /// Modeled cost of one fleet-wide health probe sweep: every core streams
  /// `samples` pilot-tone vectors through its reserved calibration row, all
  /// cores in parallel.  The probe row's weights never change, so a sweep
  /// pays no pSRAM reload — just `samples` ADC windows of latency — which
  /// is what keeps the serving loop's sensor cadence cheap relative to a
  /// full recalibration.  Pure function of (config, samples), the serve
  /// layer's probe-cost accounting hook alongside batch_cost.
  BatchCost probe_cost(std::size_t samples) const;

  /// Rewinds the drift subsystem to its initial state: clock 0, every
  /// core's OU process and stream reseeded, detuning 0.  Server::run calls
  /// this so identical runs see identical drift trajectories.
  void reset_drift();

  // --- hard faults / per-core health registry -------------------------------
  /// Applies one fault event to its target core right now (the event's
  /// `time` field is the *serve* layer's replay key; the accelerator does
  /// not consult it).  kClear events clear the core's injected faults and
  /// re-lock it (fresh drift state, detuning 0).  Classification is a
  /// separate step — call run_self_test() afterwards.
  void inject(const FaultEvent& event);

  /// Runs the target core's BIST and classifies it against the self_test
  /// thresholds; records and returns the new health state.  The modeled
  /// downtime is self_test_cost() — billed by the serve layer.
  CoreHealth run_self_test(std::size_t index);

  /// Modeled downtime of one core's BIST: the probe batch streams through
  /// the analog tap and the quantized path (two passes over the samples).
  BatchCost self_test_cost() const;

  CoreHealth core_health(std::size_t index) const;
  bool core_evicted(std::size_t index) const;
  std::size_t evicted_count() const { return cores_.size() - active_.size(); }
  /// Cores currently in the scheduling rotation (ids ascending).  All tile
  /// passes — matmul(), batch_cost(), recalibrate() — schedule over these
  /// only; health state alone never changes routing (that separation is
  /// what lets a no-mitigation serving policy keep routing to FAILED
  /// hardware, and what the fault frontier bench measures).
  const std::vector<std::size_t>& active_cores() const { return active_; }
  std::size_t active_core_count() const { return active_.size(); }

  /// Takes a core out of the scheduling rotation / returns it.  The last
  /// active core cannot be evicted.  Scheduling over the survivors is
  /// bit-identical to a healthy fleet of the surviving size (uniform
  /// geometry + canonical-order reduction).
  void evict_core(std::size_t index);
  void readmit_core(std::size_t index);

  /// Clears every injected fault, readmits every core, heals all health
  /// states, and re-locks (detuning 0).  pSRAM endurance wear is physical
  /// damage and persists.  Server::run calls this when a fault schedule is
  /// attached so identical runs see identical fault trajectories.
  void reset_faults();

  /// Fault events injected since construction (or reset_faults()),
  /// excluding kClear repairs.
  std::size_t faults_injected() const { return faults_injected_; }

  // --- telemetry ------------------------------------------------------------
  /// Attaches a span tracer (nullptr detaches — the default, zero-overhead
  /// path).  While attached, matmul() and batch_cost() emit per-core tile
  /// pass / reload spans on the fleet tracks at the modeled-time cursor
  /// (set_trace_time), and recalibrate() emits per-core re-lock spans.
  /// Emission happens on the calling thread in canonical core order, so the
  /// trace is bit-identical across host thread counts.
  void set_tracer(telemetry::Tracer* tracer);
  telemetry::Tracer* tracer() const { return tracer_; }

  /// Modeled-time cursor for traced work: the instant the next traced
  /// matmul/batch starts.  The serve loop pins it to each batch's dispatch
  /// instant; traced calls advance it by their modeled makespan.
  void set_trace_time(double t) { trace_time_ = t; }
  double trace_time() const { return trace_time_; }

  /// Attaches a metrics registry (nullptr detaches).  The fleet publishes
  /// fleet_matmuls_total, fleet_tile_passes_total, fleet_adc_samples_total,
  /// fleet_psram_reloads_total, fleet_reload_seconds_total,
  /// fleet_plan_cache_{hits,misses}_total, fleet_recalibrations_total, and
  /// the fleet_max_abs_detuning_kelvin gauge.
  void set_metrics(telemetry::MetricsRegistry* metrics);
  telemetry::MetricsRegistry* metrics() const { return metrics_; }

  /// Fleet statistics accumulated since construction (or reset_stats()),
  /// with energy/power drawn from the live per-core ledgers.
  AcceleratorStats stats() const;

  /// Merged per-core energy ledger.
  circuit::EnergyLedger fleet_ledger() const;

  /// Total fleet power draw [W].
  double power() const;

  void reset_stats();

 private:
  /// Emits one batch's per-core pass/reload spans (pass_costs in the
  /// cold-first order batch_cost builds) starting at the cursor, and
  /// advances the cursor by the schedule makespan.
  void trace_batch_schedule(const Schedule& schedule,
                            const std::vector<double>& pass_costs,
                            double reload_s, std::size_t cold_count,
                            const char* label) const;

  void rebuild_active();

  AcceleratorConfig config_;
  std::vector<std::unique_ptr<core::TensorCore>> cores_;
  ThreadPool pool_;
  // Fault registry: health states, eviction set, and the active (scheduling)
  // rotation derived from it.
  std::vector<CoreHealth> health_;
  std::vector<std::uint8_t> evicted_;
  std::vector<std::size_t> active_;
  std::size_t faults_injected_ = 0;
  double sample_rate_ = 0.0;     ///< per-core ADC sample rate [Hz]
  double reload_latency_ = 0.0;  ///< modeled full-tile reload latency [s]
  AcceleratorStats stats_;
  nn::WeightPlanCache plan_cache_;  ///< weight plans for direct matmul calls
  // Drift state (empty / zero while drift is disabled).
  std::vector<optics::ThermalDrift> drift_;  ///< per-core OU detuning [K]
  std::vector<Rng> drift_rng_;               ///< per-core drift streams
  double clock_ = 0.0;                       ///< modeled fleet time [s]
  std::size_t recalibrations_ = 0;
  // Telemetry sinks (nullptr = the zero-overhead no-op path).  The cursor
  // is mutable because traced cost queries (batch_cost) stay const: they
  // mutate only the observer state, never the modeled device.
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  mutable double trace_time_ = 0.0;
};

}  // namespace ptc::runtime

#endif  // PTC_RUNTIME_ACCELERATOR_HPP
