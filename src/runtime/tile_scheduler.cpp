#include "runtime/tile_scheduler.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace ptc::runtime {

double Schedule::makespan() const {
  double worst = 0.0;
  for (const CoreShard& shard : shards) {
    worst = std::max(worst, shard.busy_time);
  }
  return worst;
}

double Schedule::total_busy() const {
  double sum = 0.0;
  for (const CoreShard& shard : shards) sum += shard.busy_time;
  return sum;
}

Schedule TileScheduler::assign(const nn::TilePlan& plan, std::size_t cores,
                               const PassCost& cost) {
  // All passes cost the same here (same batch, same tile geometry), so the
  // greedy degenerates to round-robin — but the least-loaded rule keeps the
  // schedule balanced if per-pass costs ever diverge (e.g. warm serve-layer
  // passes that skip the reload).
  return assign_costs(std::vector<double>(plan.passes.size(), cost.total()),
                      cores);
}

Schedule TileScheduler::assign_costs(const std::vector<double>& pass_costs,
                                     std::size_t cores) {
  expects(cores >= 1, "schedule needs at least one core");
  for (double c : pass_costs) {
    expects(c >= 0.0, "pass cost must be non-negative");
  }

  Schedule schedule;
  schedule.shards.resize(cores);
  for (std::size_t c = 0; c < cores; ++c) schedule.shards[c].core = c;

  for (std::size_t i = 0; i < pass_costs.size(); ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < cores; ++c) {
      if (schedule.shards[c].busy_time < schedule.shards[best].busy_time) {
        best = c;
      }
    }
    schedule.shards[best].pass_indices.push_back(i);
    schedule.shards[best].busy_time += pass_costs[i];
  }
  return schedule;
}

}  // namespace ptc::runtime
