#ifndef PTC_RUNTIME_FAULT_HPP
#define PTC_RUNTIME_FAULT_HPP

#include <cstdint>
#include <vector>

/// Fleet-level fault registry vocabulary.
///
/// The core layer (core/fault.hpp) models *devices* breaking; this layer
/// models the *fleet's* reaction: per-core health states fed by the
/// fault-triggered self-test, timed fault events a serving run replays on
/// modeled time, and the Poisson schedule generator the fault frontier
/// bench sweeps.
namespace ptc::runtime {

/// Per-core health as classified by the self-test (see
/// Accelerator::run_self_test).  DEGRADED cores still compute within the
/// serving accuracy budget; FAILED cores corrupt results or cannot re-lock
/// and are candidates for eviction.
enum class CoreHealth : std::uint8_t {
  kOk = 0,
  kDegraded,
  kFailed,
};

const char* to_string(CoreHealth health);

/// One timed hard-fault event, replayed on *modeled* time by
/// serve::Server::run (or applied immediately by Accelerator::inject /
/// the console FAULT:INJect command, which use time = 0).
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kDeadRings,     ///< latch `count` seeded multiply rings on the core
    kStuckHeater,   ///< freeze the core's thermal tuner
    kAdcLadder,     ///< kill row `row`'s flash ladder
    kClear,         ///< field repair: clear injected faults + re-lock
  };
  double time = 0.0;      ///< modeled injection time [s]
  std::size_t core = 0;
  Kind kind = Kind::kDeadRings;
  std::size_t count = 24; ///< rings latched by kDeadRings
  std::size_t row = 0;    ///< row killed by kAdcLadder
  std::uint64_t seed = 1; ///< ring-site sampling stream (kDeadRings)
};

const char* to_string(FaultEvent::Kind kind);

/// Deterministic Poisson fault process: exponential inter-arrival gaps at
/// `rate` [faults/s] over [0, horizon), each event hitting a uniformly
/// drawn core.  Kinds are drawn 2:1:1 dead-rings : stuck-heater :
/// ADC-ladder — dead rings corrupt accuracy, the other two cost capacity
/// once the self-test fails the core.  ADC-ladder strikes kill a
/// uniformly drawn row in [0, rows) — every event consumes the same draw
/// count, so the stream stays aligned whatever kinds come up.  Pure
/// function of the arguments.
std::vector<FaultEvent> poisson_fault_schedule(double rate, double horizon,
                                               std::size_t cores,
                                               std::uint64_t seed,
                                               std::size_t rows = 16);

}  // namespace ptc::runtime

#endif  // PTC_RUNTIME_FAULT_HPP
