#include "runtime/fault.hpp"

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace ptc::runtime {

const char* to_string(CoreHealth health) {
  switch (health) {
    case CoreHealth::kOk:
      return "OK";
    case CoreHealth::kDegraded:
      return "DEGRADED";
    case CoreHealth::kFailed:
      return "FAILED";
  }
  return "?";
}

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kDeadRings:
      return "DEADRINGS";
    case FaultEvent::Kind::kStuckHeater:
      return "HEATER";
    case FaultEvent::Kind::kAdcLadder:
      return "ADC";
    case FaultEvent::Kind::kClear:
      return "CLEAR";
  }
  return "?";
}

std::vector<FaultEvent> poisson_fault_schedule(double rate, double horizon,
                                               std::size_t cores,
                                               std::uint64_t seed,
                                               std::size_t rows) {
  expects(rate >= 0.0, "fault rate must be non-negative");
  expects(horizon >= 0.0, "horizon must be non-negative");
  expects(cores >= 1, "fleet must have at least one core");
  expects(rows >= 1, "cores must have at least one ADC row");
  std::vector<FaultEvent> schedule;
  if (rate == 0.0) return schedule;
  Rng rng(seed);
  double t = rng.exponential(rate);
  while (t < horizon) {
    FaultEvent event;
    event.time = t;
    event.core = rng.below(cores);
    const std::uint64_t pick = rng.below(4);
    event.kind = pick <= 1 ? FaultEvent::Kind::kDeadRings
                 : pick == 2 ? FaultEvent::Kind::kStuckHeater
                             : FaultEvent::Kind::kAdcLadder;
    // Drawn for every event (only ADC strikes read it) so each event
    // consumes a fixed draw count and the stream stays kind-independent.
    event.row = rng.below(rows);
    event.seed = rng.next_u64() | 1u;  // distinct nonzero ring-site stream
    schedule.push_back(event);
    t += rng.exponential(rate);
  }
  return schedule;
}

}  // namespace ptc::runtime
