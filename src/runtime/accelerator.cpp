#include "runtime/accelerator.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "nn/tiling.hpp"

namespace ptc::runtime {

Accelerator::Accelerator(const AcceleratorConfig& config)
    : config_(config),
      pool_(config.threads != 0 ? config.threads
                                : std::max<std::size_t>(config.cores, 1)) {
  expects(config_.cores >= 1, "accelerator needs at least one core");

  expects(config_.drift.sigma >= 0.0, "drift sigma must be >= 0");
  expects(config_.drift.tau > 0.0, "drift tau must be positive");
  expects(config_.drift.recalibration_samples >= 1,
          "recalibration must stream at least one probe vector");

  Rng variation(config_.variation_seed);
  const core::VariationModel fleet_variation(config_.variation);
  const Rng fault_streams(config_.fault.seed);
  cores_.reserve(config_.cores);
  for (std::size_t i = 0; i < config_.cores; ++i) {
    core::TensorCoreConfig core_config = config_.core;
    if (config_.variation_seed != 0) {
      // Independent, reproducible per-die variation stream (see rng.hpp).
      core_config.adc.mismatch_seed = variation.split(i).next_u64();
    }
    if (fleet_variation.enabled()) {
      // Full per-die device variation: every core is a distinct die drawn
      // from an independent child stream of the fleet seed.
      core_config.variation = config_.variation;
      core_config.variation.seed = fleet_variation.child_seed(i);
    }
    if (config_.fault.seed != 0) {
      // Per-die endurance sampling stream (| 1 keeps it nonzero: seed 0
      // would disable the core's fault model).
      core_config.fault = config_.fault;
      core_config.fault.seed = fault_streams.split(i).next_u64() | 1u;
    }
    cores_.push_back(std::make_unique<core::TensorCore>(core_config));
  }
  health_.assign(cores_.size(), CoreHealth::kOk);
  evicted_.assign(cores_.size(), 0);
  rebuild_active();
  if (drift_enabled()) reset_drift();

  core::TensorCore& probe = *cores_.front();
  sample_rate_ = probe.adc(0).sample_rate();
  // Full-tile reload: every row writes in parallel, cols * bits slots each.
  reload_latency_ = static_cast<double>(probe.cols()) *
                    static_cast<double>(probe.weight_bits()) /
                    probe.weight_update_rate();

  stats_.cores = cores_.size();
  stats_.core_busy.assign(cores_.size(), 0.0);
}

core::TensorCore& Accelerator::core(std::size_t index) {
  expects(index < cores_.size(), "core index out of range");
  return *cores_[index];
}

const core::TensorCore& Accelerator::core(std::size_t index) const {
  expects(index < cores_.size(), "core index out of range");
  return *cores_[index];
}

PassCost Accelerator::pass_cost(std::size_t samples) const {
  PassCost cost;
  cost.reload_s = reload_latency_;
  cost.compute_s = static_cast<double>(samples) / sample_rate_;
  return cost;
}

BatchCost Accelerator::batch_cost(std::size_t passes, std::size_t warm_passes,
                                  std::size_t samples) const {
  expects(warm_passes <= passes, "warm passes cannot exceed total passes");
  const PassCost cost = pass_cost(samples);
  // Cold passes first: the greedy balances best when the expensive
  // (reload + compute) passes land before the compute-only warm ones.
  std::vector<double> pass_costs;
  pass_costs.reserve(passes);
  pass_costs.assign(passes - warm_passes, cost.total());
  pass_costs.insert(pass_costs.end(), warm_passes, cost.compute_s);
  const Schedule schedule = TileScheduler::assign_costs(pass_costs,
                                                        active_.size());
  if (tracer_ != nullptr) {
    trace_batch_schedule(schedule, pass_costs, cost.reload_s,
                         passes - warm_passes, "pass");
  }
  if (metrics_ != nullptr) {
    // Per-core cost decomposition of the modeled schedule — the `core`
    // dimension of the attribution metrics (tenant x model come from the
    // serving layer).  Shards arrive in core order, so the label family
    // is created and updated deterministically.
    for (const CoreShard& shard : schedule.shards) {
      if (shard.pass_indices.empty()) continue;
      const telemetry::LabelSet labels = {
          {"core", std::to_string(active_[shard.core])}};
      metrics_
          ->counter("fleet_core_busy_seconds_total", labels,
                    "modeled busy time per core [s]")
          .inc(shard.busy_time);
      metrics_
          ->counter("fleet_core_passes_total", labels,
                    "weight-tile passes scheduled per core")
          .inc(static_cast<double>(shard.pass_indices.size()));
    }
  }
  BatchCost out;
  out.latency = schedule.makespan();
  out.busy = schedule.total_busy();
  out.reloads = passes - warm_passes;
  out.reload_time = static_cast<double>(out.reloads) * cost.reload_s;
  return out;
}

void Accelerator::trace_batch_schedule(const Schedule& schedule,
                                       const std::vector<double>& pass_costs,
                                       double reload_s, std::size_t cold_count,
                                       const char* label) const {
  // Canonical core order on the calling thread: the trace is a pure
  // function of the schedule, independent of host threading.
  const double start = trace_time_;
  for (const CoreShard& shard : schedule.shards) {
    double t = start;
    for (const std::size_t index : shard.pass_indices) {
      const double cost = pass_costs[index];
      const bool cold = index < cold_count && reload_s > 0.0;
      // Shard cores are rotation slots; the track is the physical core.
      const int tid = telemetry::track::kCoreBase +
                      static_cast<int>(active_[shard.core]);
      tracer_->complete(tid, label, "fleet", t, t + cost,
                        {{"pass", index}, {"cold", cold}});
      if (cold) {
        tracer_->complete(tid, "reload", "fleet", t, t + reload_s, {});
      }
      t += cost;
    }
  }
  trace_time_ = start + schedule.makespan();
}

void Accelerator::set_tracer(telemetry::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    tracer_->set_track_name(telemetry::track::kCoreBase + static_cast<int>(i),
                            "fleet core " + std::to_string(i));
  }
}

void Accelerator::set_metrics(telemetry::MetricsRegistry* metrics) {
  metrics_ = metrics;
}

void Accelerator::reset_drift() {
  drift_.clear();
  drift_rng_.clear();
  clock_ = 0.0;
  recalibrations_ = 0;
  if (!drift_enabled()) return;
  const Rng streams(config_.drift.seed);
  drift_.reserve(cores_.size());
  drift_rng_.reserve(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    // The OU state *is* the core's detuning from its heater-locked
    // operating point: it starts at 0 (freshly calibrated) and wanders
    // with stationary std sigma.
    drift_.emplace_back(0.0, config_.drift.tau, config_.drift.sigma);
    drift_.back().reset(0.0);
    drift_rng_.push_back(streams.split(i));
    if (cores_[i]->thermal_detuning() != 0.0) {
      cores_[i]->set_thermal_detuning(0.0);
    }
    cores_[i]->reset_calibration_epoch();
  }
}

void Accelerator::advance_to(double t) {
  if (!drift_enabled()) return;
  if (t <= clock_) return;
  const double dt = t - clock_;
  clock_ = t;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const double detuning = drift_[i].step(dt, drift_rng_[i]);
    cores_[i]->set_thermal_detuning(detuning);
  }
  if (metrics_ != nullptr) {
    metrics_
        ->gauge("fleet_max_abs_detuning_kelvin",
                "worst per-core |thermal detuning| across the fleet [K]")
        .set(max_abs_detuning());
  }
}

double Accelerator::max_abs_detuning() const {
  // Evicted cores are out of rotation: their (possibly frozen) detuning
  // must not keep pulling the fleet's recalibration triggers.
  double worst = 0.0;
  for (const std::size_t i : active_) {
    worst = std::max(worst, std::abs(cores_[i]->thermal_detuning()));
  }
  return worst;
}

BatchCost Accelerator::recalibrate() {
  // Re-lock only hardware that can re-lock: FAILED cores (stuck heaters,
  // gross corruption) are skipped — billing re-lock downtime for hardware
  // that cannot recover would charge tenants for nothing — and evicted
  // cores are out of rotation entirely.
  std::vector<std::size_t> relock;
  relock.reserve(active_.size());
  for (const std::size_t i : active_) {
    if (health_[i] != CoreHealth::kFailed) relock.push_back(i);
  }
  if (relock.empty()) return BatchCost{};
  for (const std::size_t i : relock) {
    if (i < drift_.size()) drift_[i].reset(0.0);
    cores_[i]->recalibrate();
  }
  ++recalibrations_;
  if (metrics_ != nullptr) {
    metrics_
        ->counter("fleet_recalibrations_total",
                  "heater re-locks performed across the fleet")
        .inc();
  }
  // Downtime: one probe residency per re-locked core, all in parallel —
  // costed exactly like a cold serving batch of probe vectors.  Suppress
  // the generic pass spans and emit labeled recalibration windows instead.
  telemetry::Tracer* tracer = tracer_;
  tracer_ = nullptr;
  const BatchCost downtime =
      batch_cost(relock.size(), 0, config_.drift.recalibration_samples);
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    const double start = trace_time_;
    for (const std::size_t i : relock) {
      tracer_->complete(
          telemetry::track::kCoreBase + static_cast<int>(i), "recalibrate",
          "fleet", start, start + downtime.latency,
          {{"probe_samples", config_.drift.recalibration_samples}});
    }
    trace_time_ = start + downtime.latency;
  }
  return downtime;
}

BatchCost Accelerator::probe_cost(std::size_t samples) const {
  expects(samples >= 1, "a probe sweep streams at least one vector");
  BatchCost out;
  out.latency = static_cast<double>(samples) / sample_rate_;
  out.busy = out.latency * static_cast<double>(active_.size());
  out.reloads = 0;
  out.reload_time = 0.0;
  return out;
}

Matrix Accelerator::matmul(const Matrix& x, const Matrix& w,
                           const nn::PhotonicBackendOptions& options) {
  return matmul(x, w, options, plan_cache_);
}

Matrix Accelerator::matmul(const Matrix& x, const Matrix& w,
                           const nn::PhotonicBackendOptions& options,
                           nn::WeightPlanCache& plan_cache) {
  core::TensorCore& front = *cores_.front();
  Matrix x_norm;
  const std::size_t builds_before = plan_cache.builds();
  const nn::TilePlan plan = nn::plan_from_weights(
      plan_cache.get(w, front.rows(), front.cols(),
                     options.differential_weights),
      x, x_norm);
  if (metrics_ != nullptr) {
    const bool miss = plan_cache.builds() > builds_before;
    metrics_
        ->counter(miss ? "fleet_plan_cache_misses_total"
                       : "fleet_plan_cache_hits_total",
                  miss ? "weight plans built (mapping + pass list + encode)"
                       : "weight plans served from cache")
        .inc();
  }

  const PassCost cost = pass_cost(plan.samples);
  const Schedule schedule = TileScheduler::assign(plan, active_.size(), cost);

  // Each shard runs its passes on its own core (shard.core is a rotation
  // slot, mapped through active_ to the physical core); results land in
  // disjoint slots, so the only synchronization needed is the parallel_for
  // barrier.
  std::vector<nn::TilePassResult> results(plan.passes.size());
  pool_.parallel_for(0, schedule.shards.size(), [&](std::size_t s) {
    const CoreShard& shard = schedule.shards[s];
    core::TensorCore& shard_core = *cores_[active_[shard.core]];
    for (std::size_t index : shard.pass_indices) {
      results[index] =
          nn::run_tile_pass(shard_core, plan, index, x_norm, options);
    }
  });

  // Canonical-order reduction: bit-identical to the sequential single-core
  // accumulation regardless of which core ran which pass.
  Matrix y(plan.samples, plan.m, 0.0);
  for (std::size_t i = 0; i < plan.passes.size(); ++i) {
    accumulate_pass(y, plan, plan.passes[i], results[i].contribution);
    stats_.reload_time += results[i].reload_time;
  }

  ++stats_.matmuls;
  stats_.tile_loads += plan.passes.size();
  stats_.samples += plan.passes.size() * plan.samples;
  stats_.ops += front.ops_per_sample() *
                static_cast<double>(plan.passes.size() * plan.samples);
  stats_.makespan += schedule.makespan();
  stats_.busy_time += schedule.total_busy();
  for (const CoreShard& shard : schedule.shards) {
    stats_.core_busy[active_[shard.core]] += shard.busy_time;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("fleet_matmuls_total", "matmul dispatches served")
        .inc();
    metrics_
        ->counter("fleet_tile_passes_total",
                  "weight-tile passes executed across the fleet")
        .inc(static_cast<double>(plan.passes.size()));
    metrics_
        ->counter("fleet_adc_samples_total",
                  "ADC sample windows converted across the fleet")
        .inc(static_cast<double>(plan.passes.size() * plan.samples));
    metrics_
        ->counter("fleet_psram_reloads_total",
                  "full weight-tile pSRAM reloads paid")
        .inc(static_cast<double>(plan.passes.size()));
    metrics_
        ->counter("fleet_reload_seconds_total",
                  "modeled pSRAM reload latency paid [s]")
        .inc(static_cast<double>(plan.passes.size()) * cost.reload_s);
  }
  if (tracer_ != nullptr) {
    // Per-core pass spans at the modeled-time cursor — uniform cold costs,
    // exactly the shard timing stats_ recorded.
    const std::vector<double> pass_costs(plan.passes.size(), cost.total());
    trace_batch_schedule(schedule, pass_costs, cost.reload_s,
                         plan.passes.size(), "pass");
  }
  return y;
}

circuit::EnergyLedger Accelerator::fleet_ledger() const {
  std::vector<const circuit::EnergyLedger*> ledgers;
  ledgers.reserve(cores_.size());
  for (const auto& c : cores_) ledgers.push_back(&c->ledger());
  return merge_ledgers(ledgers);
}

double Accelerator::power() const {
  double total = 0.0;
  for (const auto& c : cores_) total += c->power();
  return total;
}

AcceleratorStats Accelerator::stats() const {
  AcceleratorStats out = stats_;
  out.energy = fleet_ledger().total_energy();
  out.fleet_power = power();
  return out;
}

void Accelerator::reset_stats() {
  stats_ = AcceleratorStats{};
  stats_.cores = cores_.size();
  stats_.core_busy.assign(cores_.size(), 0.0);
}

void Accelerator::rebuild_active() {
  active_.clear();
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (evicted_[i] == 0) active_.push_back(i);
  }
  if (metrics_ != nullptr) {
    metrics_
        ->gauge("fleet_active_cores",
                "cores currently in the scheduling rotation")
        .set(static_cast<double>(active_.size()));
  }
}

void Accelerator::inject(const FaultEvent& event) {
  expects(event.core < cores_.size(), "fault event core out of range");
  core::TensorCore& target = *cores_[event.core];
  switch (event.kind) {
    case FaultEvent::Kind::kDeadRings:
      target.inject_ring_faults(core::FaultModel::sample_ring_faults(
          target.rows(), target.cols(), target.weight_bits(), event.count,
          event.seed));
      break;
    case FaultEvent::Kind::kStuckHeater:
      target.inject_stuck_heater();
      break;
    case FaultEvent::Kind::kAdcLadder:
      expects(event.row < target.rows(), "fault event row out of range");
      target.inject_adc_fault(event.row);
      break;
    case FaultEvent::Kind::kClear:
      target.clear_faults();
      // Field repair ends with a re-lock: detuning back to the calibrated
      // point on a fresh drift state for this core.
      if (event.core < drift_.size()) drift_[event.core].reset(0.0);
      target.set_thermal_detuning(0.0);
      break;
  }
  if (event.kind != FaultEvent::Kind::kClear) ++faults_injected_;
  if (metrics_ != nullptr) {
    metrics_
        ->counter("fleet_faults_total", {{"kind", to_string(event.kind)}},
                  "hard-fault events applied to the fleet")
        .inc();
  }
}

CoreHealth Accelerator::run_self_test(std::size_t index) {
  expects(index < cores_.size(), "core index out of range");
  core::TensorCore& target = *cores_[index];
  // BIST at the calibration lock point: drift-detuned-but-healthy cores
  // must not read as hard faults.  Both calls no-op on a stuck heater —
  // the test then runs at the frozen detuning and the heater_locked flag
  // fails the core regardless of the error it measures.
  const double detuning = target.thermal_detuning();
  if (detuning != 0.0) target.set_thermal_detuning(0.0);
  const core::TensorCore::SelfTestResult result =
      target.self_test(config_.self_test.samples, config_.self_test.seed);
  if (detuning != 0.0) target.set_thermal_detuning(detuning);
  CoreHealth health = CoreHealth::kOk;
  if (result.max_row_error >= config_.self_test.degraded_error ||
      result.psram_failed_cells > 0 ||
      result.endurance_remaining < config_.self_test.degraded_endurance) {
    health = CoreHealth::kDegraded;
  }
  if (result.max_row_error >= config_.self_test.fail_error ||
      result.stuck_adc_rows > 0 || !result.heater_locked) {
    health = CoreHealth::kFailed;
  }
  health_[index] = health;
  if (metrics_ != nullptr) {
    metrics_
        ->gauge("fleet_core_health",
                {{"core", std::to_string(index)}},
                "self-test health per core (0 OK, 1 DEGRADED, 2 FAILED)")
        .set(static_cast<double>(health));
  }
  return health;
}

BatchCost Accelerator::self_test_cost() const {
  // The BIST streams its probe batch twice through one core: once through
  // the analog tap, once through the quantized path.
  BatchCost out;
  out.latency =
      2.0 * static_cast<double>(config_.self_test.samples) / sample_rate_;
  out.busy = out.latency;
  return out;
}

CoreHealth Accelerator::core_health(std::size_t index) const {
  expects(index < cores_.size(), "core index out of range");
  return health_[index];
}

bool Accelerator::core_evicted(std::size_t index) const {
  expects(index < cores_.size(), "core index out of range");
  return evicted_[index] != 0;
}

void Accelerator::evict_core(std::size_t index) {
  expects(index < cores_.size(), "core index out of range");
  expects(evicted_[index] == 0, "core is already evicted");
  expects(active_.size() > 1, "cannot evict the last active core");
  evicted_[index] = 1;
  rebuild_active();
}

void Accelerator::readmit_core(std::size_t index) {
  expects(index < cores_.size(), "core index out of range");
  expects(evicted_[index] != 0, "core is not evicted");
  evicted_[index] = 0;
  rebuild_active();
}

void Accelerator::reset_faults() {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->clear_faults();
    if (cores_[i]->thermal_detuning() != 0.0) {
      cores_[i]->set_thermal_detuning(0.0);
    }
    health_[i] = CoreHealth::kOk;
    evicted_[i] = 0;
  }
  faults_injected_ = 0;
  rebuild_active();
}

}  // namespace ptc::runtime
