#include "runtime/thread_pool.hpp"

#include <chrono>
#include <exception>

#include "common/expects.hpp"

namespace ptc::runtime {

namespace {

/// Identity of the worker deque owned by the current thread.  The pool
/// pointer disambiguates nested pools: a worker of pool A calling into
/// pool B must not be mistaken for pool B's worker with the same index.
thread_local const void* tls_worker_pool = nullptr;
thread_local std::size_t tls_worker_index = static_cast<std::size_t>(-1);

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  expects(static_cast<bool>(task), "thread pool task must be callable");
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  enqueue(std::move(packaged));
  return future;
}

void ThreadPool::enqueue(std::packaged_task<void()> task) {
  // Workers push onto their own deque (popped LIFO); external submitters
  // round-robin across deques so the load spreads even before stealing.
  std::size_t index = tls_worker_pool == this
                          ? tls_worker_index
                          : static_cast<std::size_t>(-1);
  if (index >= workers_.size()) {
    index = next_queue_.fetch_add(1) % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[index]->mutex);
    workers_[index]->queue.push_back(std::move(task));
  }
  pending_.fetch_add(1);
  {
    // Synchronize with the wait predicate so the increment cannot slip into
    // the window between a worker's predicate check and its block.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t index, bool from_back,
                         std::packaged_task<void()>& out) {
  Worker& worker = *workers_[index];
  std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.queue.empty()) return false;
  if (from_back) {
    out = std::move(worker.queue.back());
    worker.queue.pop_back();
  } else {
    out = std::move(worker.queue.front());
    worker.queue.pop_front();
  }
  pending_.fetch_sub(1);
  return true;
}

bool ThreadPool::run_pending_task() {
  const std::size_t self = tls_worker_pool == this
                               ? tls_worker_index
                               : static_cast<std::size_t>(-1);
  std::packaged_task<void()> task;
  // Own deque first (LIFO), then steal oldest work from siblings (FIFO).
  if (self < workers_.size() && try_pop(self, /*from_back=*/true, task)) {
    task();
    return true;
  }
  const std::size_t n = workers_.size();
  const std::size_t start = (self < n) ? self + 1 : 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self) continue;
    if (try_pop(victim, /*from_back=*/false, task)) {
      task();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker_pool = this;
  tls_worker_index = self;
  while (true) {
    if (run_pending_task()) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load() || pending_.load() > 0;
    });
    if (stop_.load() && pending_.load() == 0) return;
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  expects(static_cast<bool>(body), "parallel_for body must be callable");
  if (begin >= end) return;
  const std::size_t count = end - begin;

  // Completion state is shared with the tasks so the last one can still
  // touch it safely after the caller has observed remaining == 0.
  struct Sync {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining.store(count);

  for (std::size_t i = begin; i < end; ++i) {
    submit([sync, &body, i] {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sync->mutex);
        if (!sync->error) sync->error = std::current_exception();
      }
      if (sync->remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(sync->mutex);
        sync->cv.notify_all();
      }
    });
  }

  // Help drain the pool instead of blocking outright, so parallel_for can
  // be called from inside a pool task (or on a pool whose workers are all
  // busy).  Once no task is claimable the caller parks on the completion
  // condition variable — the timed wait keeps it helping again if stolen
  // work spawns new tasks.
  while (sync->remaining.load() != 0) {
    if (run_pending_task()) continue;
    std::unique_lock<std::mutex> lock(sync->mutex);
    sync->cv.wait_for(lock, std::chrono::milliseconds(1),
                      [&] { return sync->remaining.load() == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(sync->mutex);
    if (sync->error) std::rethrow_exception(sync->error);
  }
}

}  // namespace ptc::runtime
