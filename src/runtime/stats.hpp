#ifndef PTC_RUNTIME_STATS_HPP
#define PTC_RUNTIME_STATS_HPP

#include <cstddef>
#include <vector>

#include "circuit/energy.hpp"

/// Fleet-level roll-up of the per-core metrics (EnergyLedger, throughput,
/// reload latency) into the numbers a serving deployment cares about:
/// aggregate TOPS, TOPS/W, and utilization.  All times here are *modeled*
/// hardware time — what the 8 GS/s ADC clocks and 20 GHz pSRAM writes would
/// take on silicon — not host wall time, so the metrics are deterministic
/// and independent of how many host threads the simulation happened to use.
namespace ptc::runtime {

struct AcceleratorStats {
  std::size_t cores = 0;
  std::size_t matmuls = 0;      ///< matmul() calls served
  std::size_t tile_loads = 0;   ///< pSRAM residencies across the fleet
  std::size_t samples = 0;      ///< ADC sample windows across the fleet
  double ops = 0.0;             ///< operations completed (2 * rows * cols / sample)
  double reload_time = 0.0;     ///< total modeled reload latency [s]
  double busy_time = 0.0;       ///< sum over cores of modeled busy time [s]
  double makespan = 0.0;        ///< modeled fleet wall time [s]
  double energy = 0.0;          ///< aggregated ledger energy [J]
  double fleet_power = 0.0;     ///< sum of per-core power draw [W]
  std::vector<double> core_busy;  ///< per-core modeled busy time [s]

  /// Aggregate throughput [op/s]: work completed per modeled wall second.
  double throughput_ops() const {
    return makespan > 0.0 ? ops / makespan : 0.0;
  }

  /// Fleet efficiency [op/s/W].
  double tops_per_watt() const {
    return fleet_power > 0.0 ? throughput_ops() / fleet_power : 0.0;
  }

  /// Fraction of fleet capacity in use: busy / (cores * makespan).
  double utilization() const {
    if (cores == 0 || makespan <= 0.0) return 0.0;
    return busy_time / (static_cast<double>(cores) * makespan);
  }

  /// Fraction of busy time spent reloading weights rather than computing.
  double reload_fraction() const {
    return busy_time > 0.0 ? reload_time / busy_time : 0.0;
  }
};

/// Merges per-core energy ledgers into one fleet ledger (energies and
/// static powers add category-wise).
circuit::EnergyLedger merge_ledgers(
    const std::vector<const circuit::EnergyLedger*>& ledgers);

}  // namespace ptc::runtime

#endif  // PTC_RUNTIME_STATS_HPP
