#ifndef PTC_RUNTIME_BACKEND_HPP
#define PTC_RUNTIME_BACKEND_HPP

#include "nn/backend.hpp"
#include "runtime/accelerator.hpp"

/// Model-layer adapter for the multi-tile runtime: any network written
/// against nn::MatmulBackend (nn::Mlp, the examples) runs on an N-core
/// Accelerator unchanged.
namespace ptc::runtime {

/// nn::MatmulBackend that dispatches matmuls to an Accelerator core pool.
/// With variation disabled (the default), results are bit-identical to a
/// single-core nn::PhotonicBackend using the same options.
class AcceleratorBackend final : public nn::MatmulBackend {
 public:
  explicit AcceleratorBackend(Accelerator& accelerator,
                              const nn::PhotonicBackendOptions& options = {})
      : accelerator_(accelerator), options_(options) {}

  Matrix matmul(const Matrix& x, const Matrix& w) override {
    return accelerator_.matmul(x, w, options_);
  }

  Matrix matmul_cached(const Matrix& x, const Matrix& w,
                       nn::WeightPlanCache& cache) override {
    return accelerator_.matmul(x, w, options_, cache);
  }

  const char* name() const override { return "accelerator"; }

  telemetry::Tracer* tracer() const override {
    return accelerator_.tracer();
  }
  double modeled_time() const override { return accelerator_.trace_time(); }

  Accelerator& accelerator() { return accelerator_; }
  const nn::PhotonicBackendOptions& options() const { return options_; }

 private:
  Accelerator& accelerator_;
  nn::PhotonicBackendOptions options_;
};

}  // namespace ptc::runtime

#endif  // PTC_RUNTIME_BACKEND_HPP
