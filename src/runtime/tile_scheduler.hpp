#ifndef PTC_RUNTIME_TILE_SCHEDULER_HPP
#define PTC_RUNTIME_TILE_SCHEDULER_HPP

#include <cstddef>
#include <vector>

#include "nn/tiling.hpp"

/// Static dispatch of matmul tile passes across a pool of tensor cores —
/// the simulation-side analogue of a multi-board DAC controller fanning one
/// command stream out to many analog units.
namespace ptc::runtime {

/// Modeled hardware cost of one tile pass on one core.
struct PassCost {
  double reload_s = 0.0;   ///< pSRAM reload latency (cols * bits / 20 GHz)
  double compute_s = 0.0;  ///< batch streaming time (samples / sample rate)
  double total() const { return reload_s + compute_s; }
};

/// Modeled fleet cost of one serving batch (see Accelerator::batch_cost).
struct BatchCost {
  double latency = 0.0;      ///< fleet makespan for the batch [s]
  double busy = 0.0;         ///< summed per-core busy time [s]
  std::size_t reloads = 0;   ///< pSRAM reloads actually paid
  double reload_time = 0.0;  ///< modeled reload latency paid [s]
};

/// The passes assigned to one core, in execution order.
struct CoreShard {
  std::size_t core = 0;
  std::vector<std::size_t> pass_indices;  ///< indices into TilePlan::passes
  double busy_time = 0.0;                 ///< modeled hardware time [s]
};

/// A complete static schedule: every pass appears in exactly one shard.
struct Schedule {
  std::vector<CoreShard> shards;

  /// Modeled fleet wall time: the busiest core bounds the matmul latency.
  double makespan() const;
  /// Sum of per-core busy times (total hardware time consumed).
  double total_busy() const;
};

/// Cuts a tile plan across `cores` tensor cores.
///
/// Every pass already groups the full input batch with its weight-tile
/// residency (one reload amortized over all samples — see nn/tiling.hpp),
/// so the scheduler's job reduces to balancing pass counts: a deterministic
/// longest-processing-time greedy that assigns each pass, in canonical
/// order, to the least-loaded core (ties break toward the lowest index).
/// The assignment is a pure function of (plan, cores, cost) — host thread
/// timing never influences which core computes which tile.
class TileScheduler {
 public:
  static Schedule assign(const nn::TilePlan& plan, std::size_t cores,
                         const PassCost& cost);

  /// Lower-level entry point taking an explicit per-pass cost list — the
  /// generalization the serve layer's batch costing uses, where passes
  /// whose weight tile is already resident skip the reload and are cheaper
  /// than cold passes.  Costs must be non-negative.
  static Schedule assign_costs(const std::vector<double>& pass_costs,
                               std::size_t cores);
};

}  // namespace ptc::runtime

#endif  // PTC_RUNTIME_TILE_SCHEDULER_HPP
