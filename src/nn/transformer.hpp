#ifndef PTC_NN_TRANSFORMER_HPP
#define PTC_NN_TRANSFORMER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "graph/ir.hpp"
#include "nn/backend.hpp"

/// Small decoder-only transformer for the serving layer: pre-layernorm
/// blocks with causal multi-head attention and a GELU MLP, greedy decoding.
///
/// The same weights execute two ways:
///  - `build_graph(seq_len)` emits a full-sequence dataflow graph that the
///    graph compiler lowers onto the fleet (attention's activation x
///    activation products stream through the tiling machinery as
///    kMatmulPair steps) — the path property tests compare against the
///    float reference.
///  - `decode_step` advances one request by one token against a growing
///    per-request KvCache through any MatmulBackend — the incremental path
///    token-level serving schedules.  On the float backend the two paths
///    agree bitwise on the final position's logits (same helpers, same
///    accumulation order); on the photonic backend they agree within ADC
///    tolerance (activation normalization is per-call).
///
/// Determinism: decode touches exactly one request's state and streams
/// per-request matmuls, so a token stream is a pure function of (weights,
/// prompt) — independent of batch composition and host thread count.  That
/// is the property continuous batching's bit-identity gate leans on.
namespace ptc::nn {

struct TransformerConfig {
  std::size_t vocab = 32;
  std::size_t d_model = 16;
  std::size_t heads = 2;
  std::size_t layers = 2;
  std::size_t d_ff = 32;
  std::size_t max_seq = 32;  ///< positional-table length (context window)

  std::size_t head_dim() const { return d_model / heads; }
};

/// Weights of one pre-layernorm decoder block.
struct TransformerLayer {
  std::vector<double> ln1_gain, ln1_bias;
  Matrix wq, wk, wv, wo;  ///< d_model x d_model projections
  std::vector<double> ln2_gain, ln2_bias;
  Matrix w_ff1;                ///< d_model x d_ff
  std::vector<double> b_ff1;   ///< d_ff
  Matrix w_ff2;                ///< d_ff x d_model
  std::vector<double> b_ff2;   ///< d_model
};

/// Per-request decode state: the cached K/V rows of every generated-so-far
/// position, per layer, flattened with d_model innermost.  This is the
/// state token-level serving bills for residency (rows() below) and drops
/// on preemption — a preempted request re-prefills from its token history.
struct KvCache {
  std::vector<std::vector<double>> k;  ///< per layer: length * d_model
  std::vector<std::vector<double>> v;
  std::size_t length = 0;  ///< cached positions

  /// Cached KV rows across layers — the residency-accounting unit
  /// (one row == one position's K+V state in one layer).
  std::size_t rows() const { return length * k.size(); }

  void clear() {
    for (auto& layer : k) layer.clear();
    for (auto& layer : v) layer.clear();
    length = 0;
  }
};

class TransformerModel {
 public:
  TransformerModel() = default;

  /// Seeded random init: small-normal projections (sigma ~ 1/sqrt(d)),
  /// unit layernorm gains, zero biases.  Pure function of (config, rng
  /// state).
  static TransformerModel random(const TransformerConfig& config, Rng& rng);

  const TransformerConfig& config() const { return config_; }
  const std::vector<TransformerLayer>& layers() const { return layers_; }

  /// Full-sequence decoder graph over `seq_len` token ids: embedding ->
  /// layers x (layernorm -> per-head causal attention via matmul_pair ->
  /// residual -> layernorm -> GELU MLP -> residual) -> final layernorm ->
  /// unembedding.  Input is the rank-1 {seq_len} id vector; output is the
  /// {seq_len, vocab} logit sequence.
  graph::Graph build_graph(std::size_t seq_len) const;

  /// Fresh per-request cache sized for this model's layer count.
  KvCache make_cache() const;

  /// Advances one request by one token: appends `token`'s K/V rows to the
  /// cache at position cache.length and returns the next-token logit row
  /// (length vocab).  All matmuls stream through `backend` with
  /// differential input splitting wherever the activation can be negative
  /// — the same treatment the compiled graph's signed steps get.
  std::vector<double> decode_step(MatmulBackend& backend, KvCache& cache,
                                  std::size_t token) const;

  /// Greedy continuation: feeds `prompt` (and any previously generated
  /// tokens the cache already holds), then samples argmax tokens until
  /// `max_new` have been generated.  Returns prompt + generated.  The
  /// sequential-decoding reference the serving layer's bit-identity gate
  /// compares against.
  std::vector<std::size_t> generate(MatmulBackend& backend,
                                    const std::vector<std::size_t>& prompt,
                                    std::size_t max_new) const;

  /// Weight-tile passes of the static (per-token) weight matmuls — the
  /// q/k/v/o, MLP, and unembedding projections, doubled under differential
  /// weight encoding.  These are the residency-eligible passes: they are
  /// identical every decode step, so back-to-back steps of a resident
  /// model reuse them warm.
  std::size_t weight_passes(std::size_t tile_m, std::size_t tile_k,
                            bool differential) const;

  /// Always-cold attention passes of one decode step for one request whose
  /// post-append context is `context_len` positions: per layer and head,
  /// the K^T score product plus the V context product.  The "weights" here
  /// are the request's own KV state, different every step, so nothing can
  /// stay warm — the seq-length-dependent cost continuous batching
  /// amortizes static weights against.
  std::size_t attention_passes(std::size_t context_len, std::size_t tile_m,
                               std::size_t tile_k, bool differential) const;

 private:
  TransformerConfig config_;
  std::vector<TransformerLayer> layers_;
  Matrix token_table_;     ///< vocab x d_model
  Matrix pos_table_;       ///< max_seq x d_model
  std::vector<double> lnf_gain_, lnf_bias_;
  Matrix unembed_;         ///< d_model x vocab
};

}  // namespace ptc::nn

#endif  // PTC_NN_TRANSFORMER_HPP
