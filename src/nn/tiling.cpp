#include "nn/tiling.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::nn {

TilePlan plan_tiled_matmul(Matrix& x, const Matrix& w, std::size_t tile_m,
                           std::size_t tile_k, bool differential) {
  expects(x.cols() == w.rows(), "matmul inner dimensions must agree");
  expects(tile_m >= 1 && tile_k >= 1, "tile geometry must be positive");

  TilePlan plan;
  plan.samples = x.rows();
  plan.k = w.rows();
  plan.m = w.cols();
  plan.tile_k = tile_k;
  plan.tile_m = tile_m;
  plan.x_scale = normalize_activations(x);
  plan.mapping = signed_mapping_for(w);

  plan.passes.reserve(plan.m_tiles() * plan.k_tiles() *
                      (differential ? 2 : 1));
  for (std::size_t mt = 0; mt < plan.m_tiles(); ++mt) {
    for (std::size_t kt = 0; kt < plan.k_tiles(); ++kt) {
      if (differential) {
        // W+ pass then W- pass; padded cells are exact zeros.
        plan.passes.push_back(
            {mt, kt, TilePass::Encoding::kPositive, +1.0, 0.0});
        plan.passes.push_back(
            {mt, kt, TilePass::Encoding::kNegative, -1.0, 0.0});
      } else {
        // Offset encoding; padded cells carry the encoding of w = 0 (0.5)
        // but see zero input, so they contribute nothing.
        plan.passes.push_back(
            {mt, kt, TilePass::Encoding::kOffset, +1.0, 0.5});
      }
    }
  }
  return plan;
}

Matrix encode_weight_block(const TilePlan& plan, const TilePass& pass,
                           const Matrix& w) {
  Matrix block(plan.tile_m, plan.tile_k, pass.pad_value);
  for (std::size_t r = 0; r < plan.tile_m; ++r) {
    const std::size_t out_idx = pass.mt * plan.tile_m + r;
    if (out_idx >= plan.m) continue;
    for (std::size_t c = 0; c < plan.tile_k; ++c) {
      const std::size_t in_idx = pass.kt * plan.tile_k + c;
      if (in_idx >= plan.k) continue;
      const double v = w(in_idx, out_idx);
      switch (pass.encoding) {
        case TilePass::Encoding::kOffset:
          block(r, c) = plan.mapping.to_unit(v);
          break;
        case TilePass::Encoding::kPositive:
          block(r, c) = std::max(0.0, v) / plan.mapping.scale;
          break;
        case TilePass::Encoding::kNegative:
          block(r, c) = std::max(0.0, -v) / plan.mapping.scale;
          break;
      }
    }
  }
  return block;
}

TilePassResult run_tile_pass(core::TensorCore& core, const TilePlan& plan,
                             const TilePass& pass, const Matrix& x_norm,
                             const Matrix& w,
                             const PhotonicBackendOptions& options) {
  expects(core.rows() == plan.tile_m && core.cols() == plan.tile_k,
          "core geometry must match the tile plan");

  TilePassResult result;
  result.reload_time =
      core.load_weights_normalized(encode_weight_block(plan, pass, w));
  result.contribution = Matrix(plan.samples, plan.tile_m, 0.0);

  const bool offset_correct = pass.encoding == TilePass::Encoding::kOffset;
  for (std::size_t s = 0; s < plan.samples; ++s) {
    std::vector<double> input(plan.tile_k, 0.0);
    double input_sum = 0.0;
    for (std::size_t c = 0; c < plan.tile_k; ++c) {
      const std::size_t in_idx = pass.kt * plan.tile_k + c;
      if (in_idx < plan.k) {
        input[c] = x_norm(s, in_idx);
        input_sum += input[c];
      }
    }
    // Row value t_r ~= sum_c in_c * w_unit_rc / tile_k (normalized).
    std::vector<double> t(core.rows());
    if (options.quantize_output) {
      core.set_readout_gain(options.adc_range_gain);
      const auto codes = core.multiply(input);
      core.set_readout_gain(1.0);
      const double max_code =
          static_cast<double>((1u << core.adc(0).bits()) - 1);
      for (std::size_t r = 0; r < t.size(); ++r) {
        t[r] = static_cast<double>(codes[r]) / max_code /
               options.adc_range_gain;
      }
    } else {
      t = core.multiply_analog(input);
    }
    for (std::size_t r = 0; r < plan.tile_m; ++r) {
      const std::size_t out_idx = pass.mt * plan.tile_m + r;
      if (out_idx >= plan.m) continue;
      const double unit_dot = t[r] * static_cast<double>(plan.tile_k);
      // Offset encoding: sum w * in = scale * (2 * unit_dot - sum in).
      // Differential encoding: the pass directly yields scale * unit_dot.
      const double dot = offset_correct
                             ? plan.mapping.scale * (2.0 * unit_dot - input_sum)
                             : plan.mapping.scale * unit_dot;
      result.contribution(s, r) = pass.sign * plan.x_scale * dot;
    }
  }
  return result;
}

void accumulate_pass(Matrix& y, const TilePlan& plan, const TilePass& pass,
                     const Matrix& contribution) {
  expects(y.rows() == plan.samples && y.cols() == plan.m,
          "result shape must match the tile plan");
  for (std::size_t s = 0; s < plan.samples; ++s) {
    for (std::size_t r = 0; r < plan.tile_m; ++r) {
      const std::size_t out_idx = pass.mt * plan.tile_m + r;
      if (out_idx >= plan.m) continue;
      y(s, out_idx) += contribution(s, r);
    }
  }
}

}  // namespace ptc::nn
