#include "nn/tiling.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expects.hpp"

namespace ptc::nn {

WeightPlanCache::WeightPlanCache(std::size_t capacity) : capacity_(capacity) {
  expects(capacity >= 1, "plan cache needs at least one slot");
}

std::shared_ptr<const WeightPlan> WeightPlanCache::get(const Matrix& w,
                                                       std::size_t tile_m,
                                                       std::size_t tile_k,
                                                       bool differential) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const WeightPlan& p = **it;
    // Content-keyed: geometry probe first, then element equality.  A weight
    // matrix whose values changed can never be served a stale plan.
    if (p.tile_m == tile_m && p.tile_k == tile_k &&
        p.differential == differential && p.source.rows() == w.rows() &&
        p.source.cols() == w.cols() && p.source.data() == w.data()) {
      std::shared_ptr<const WeightPlan> hit = *it;
      entries_.erase(it);
      entries_.insert(entries_.begin(), hit);
      return hit;
    }
  }
  std::shared_ptr<const WeightPlan> built =
      build_weight_plan(w, tile_m, tile_k, differential);
  ++builds_;
  entries_.insert(entries_.begin(), built);
  if (entries_.size() > capacity_) entries_.pop_back();
  return built;
}

void WeightPlanCache::invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::size_t WeightPlanCache::builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return builds_;
}

std::shared_ptr<const WeightPlan> build_weight_plan(const Matrix& w,
                                                    std::size_t tile_m,
                                                    std::size_t tile_k,
                                                    bool differential) {
  expects(tile_m >= 1 && tile_k >= 1, "tile geometry must be positive");

  auto plan = std::make_shared<WeightPlan>();
  plan->k = w.rows();
  plan->m = w.cols();
  plan->tile_k = tile_k;
  plan->tile_m = tile_m;
  plan->differential = differential;
  plan->mapping = signed_mapping_for(w);
  plan->source = w;

  plan->passes.reserve(plan->m_tiles() * plan->k_tiles() *
                       (differential ? 2 : 1));
  for (std::size_t mt = 0; mt < plan->m_tiles(); ++mt) {
    for (std::size_t kt = 0; kt < plan->k_tiles(); ++kt) {
      if (differential) {
        // W+ pass then W- pass; padded cells are exact zeros.
        plan->passes.push_back(
            {mt, kt, TilePass::Encoding::kPositive, +1.0, 0.0});
        plan->passes.push_back(
            {mt, kt, TilePass::Encoding::kNegative, -1.0, 0.0});
      } else {
        // Offset encoding; padded cells carry the encoding of w = 0 (0.5)
        // but see zero input, so they contribute nothing.
        plan->passes.push_back(
            {mt, kt, TilePass::Encoding::kOffset, +1.0, 0.5});
      }
    }
  }

  plan->encoded.reserve(plan->passes.size());
  for (const TilePass& pass : plan->passes) {
    plan->encoded.push_back(encode_weight_block(*plan, pass, w));
  }
  return plan;
}

TilePlan plan_from_weights(std::shared_ptr<const WeightPlan> weights,
                           const Matrix& x, Matrix& x_norm) {
  expects(weights != nullptr, "weight plan must be non-null");
  expects(x.cols() == weights->k, "matmul inner dimensions must agree");

  TilePlan plan;
  plan.samples = x.rows();
  plan.k = weights->k;
  plan.m = weights->m;
  plan.tile_k = weights->tile_k;
  plan.tile_m = weights->tile_m;
  plan.mapping = weights->mapping;
  plan.passes = weights->passes;
  plan.x_scale = normalized_activations(x, x_norm);
  plan.weights = std::move(weights);
  return plan;
}

TilePlan plan_tiled_matmul(Matrix& x, const Matrix& w, std::size_t tile_m,
                           std::size_t tile_k, bool differential) {
  Matrix x_norm;
  TilePlan plan = plan_from_weights(
      build_weight_plan(w, tile_m, tile_k, differential), x, x_norm);
  x = std::move(x_norm);
  return plan;
}

Matrix encode_weight_block(const WeightPlan& plan, const TilePass& pass,
                           const Matrix& w) {
  Matrix block(plan.tile_m, plan.tile_k, pass.pad_value);
  for (std::size_t r = 0; r < plan.tile_m; ++r) {
    const std::size_t out_idx = pass.mt * plan.tile_m + r;
    if (out_idx >= plan.m) continue;
    for (std::size_t c = 0; c < plan.tile_k; ++c) {
      const std::size_t in_idx = pass.kt * plan.tile_k + c;
      if (in_idx >= plan.k) continue;
      const double v = w(in_idx, out_idx);
      switch (pass.encoding) {
        case TilePass::Encoding::kOffset:
          block(r, c) = plan.mapping.to_unit(v);
          break;
        case TilePass::Encoding::kPositive:
          block(r, c) = std::max(0.0, v) / plan.mapping.scale;
          break;
        case TilePass::Encoding::kNegative:
          block(r, c) = std::max(0.0, -v) / plan.mapping.scale;
          break;
      }
    }
  }
  return block;
}

TilePassResult run_tile_pass(core::TensorCore& core, const TilePlan& plan,
                             std::size_t pass_index, const Matrix& x_norm,
                             const PhotonicBackendOptions& options) {
  expects(core.rows() == plan.tile_m && core.cols() == plan.tile_k,
          "core geometry must match the tile plan");
  expects(plan.weights != nullptr && pass_index < plan.passes.size(),
          "pass index out of range for the tile plan");
  const TilePass& pass = plan.passes[pass_index];

  TilePassResult result;
  result.reload_time =
      core.load_weights_normalized(plan.weights->encoded[pass_index]);
  result.contribution = Matrix(plan.samples, plan.tile_m, 0.0);

  // Gather this pass's input slice once — samples x tile_k, zero-padded at
  // the tile edge — along with the per-sample input sums the offset
  // encoding's digital correction needs.
  Matrix block(plan.samples, plan.tile_k, 0.0);
  std::vector<double> input_sums(plan.samples, 0.0);
  const std::size_t k_begin = pass.kt * plan.tile_k;
  const std::size_t k_count = std::min(plan.tile_k, plan.k - k_begin);
  for (std::size_t s = 0; s < plan.samples; ++s) {
    double input_sum = 0.0;
    for (std::size_t c = 0; c < k_count; ++c) {
      const double v = x_norm(s, k_begin + c);
      block(s, c) = v;
      input_sum += v;
    }
    input_sums[s] = input_sum;
  }

  // Row value t_r ~= sum_c in_c * w_unit_rc / tile_k (normalized).  The
  // whole batch streams through the residency in one call; under
  // quantization the readout gain is programmed once for the pass instead
  // of being toggled around every sample.
  Matrix t;
  if (options.quantize_output) {
    core.set_readout_gain(options.adc_range_gain);
    t = core.multiply_batch(block);
    core.set_readout_gain(1.0);
  } else {
    t = core.multiply_analog_batch(block);
  }

  const bool offset_correct = pass.encoding == TilePass::Encoding::kOffset;
  for (std::size_t s = 0; s < plan.samples; ++s) {
    for (std::size_t r = 0; r < plan.tile_m; ++r) {
      const std::size_t out_idx = pass.mt * plan.tile_m + r;
      if (out_idx >= plan.m) continue;
      const double t_r = options.quantize_output
                             ? t(s, r) / options.adc_range_gain
                             : t(s, r);
      const double unit_dot = t_r * static_cast<double>(plan.tile_k);
      // Offset encoding: sum w * in = scale * (2 * unit_dot - sum in).
      // Differential encoding: the pass directly yields scale * unit_dot.
      const double dot =
          offset_correct
              ? plan.mapping.scale * (2.0 * unit_dot - input_sums[s])
              : plan.mapping.scale * unit_dot;
      result.contribution(s, r) = pass.sign * plan.x_scale * dot;
    }
  }
  return result;
}

void accumulate_pass(Matrix& y, const TilePlan& plan, const TilePass& pass,
                     const Matrix& contribution) {
  expects(y.rows() == plan.samples && y.cols() == plan.m,
          "result shape must match the tile plan");
  for (std::size_t s = 0; s < plan.samples; ++s) {
    for (std::size_t r = 0; r < plan.tile_m; ++r) {
      const std::size_t out_idx = pass.mt * plan.tile_m + r;
      if (out_idx >= plan.m) continue;
      y(s, out_idx) += contribution(s, r);
    }
  }
}

}  // namespace ptc::nn
