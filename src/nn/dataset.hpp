#ifndef PTC_NN_DATASET_HPP
#define PTC_NN_DATASET_HPP

#include <cstddef>
#include <vector>

#include "common/linalg.hpp"
#include "common/rng.hpp"

/// Synthetic 8x8 glyph dataset — an offline stand-in for the MNIST-class
/// digit workloads photonic accelerator papers evaluate on.  Ten canonical
/// digit glyphs are perturbed with pixel noise and +-1 pixel shifts, giving
/// a task that is easy in float and measurably sensitive to the 3-bit
/// weight / 3-bit ADC quantization of the photonic path.
namespace ptc::nn {

struct Dataset {
  Matrix inputs;                      ///< n_samples x 64, values in [0, 1]
  std::vector<std::size_t> labels;    ///< n_samples, values 0..9

  std::size_t size() const { return labels.size(); }
};

inline constexpr std::size_t glyph_side = 8;
inline constexpr std::size_t glyph_pixels = glyph_side * glyph_side;
inline constexpr std::size_t glyph_classes = 10;

/// The canonical (noise-free) glyph for a digit class, as an 8x8 matrix.
Matrix glyph(std::size_t digit);

/// Generates `n` samples: random class, +-1 pixel circular shift, additive
/// uniform pixel noise of amplitude `noise` (clamped to [0, 1]).
Dataset make_dataset(std::size_t n, Rng& rng, double noise = 0.15);

}  // namespace ptc::nn

#endif  // PTC_NN_DATASET_HPP
