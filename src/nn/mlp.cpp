#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/expects.hpp"
#include "graph/executor.hpp"
#include "graph/models.hpp"

namespace ptc::nn {

Mlp::Mlp(std::size_t in, std::size_t hidden, std::size_t out, Rng& rng)
    : layer1_(in, hidden), layer2_(hidden, out) {
  // He initialization for the ReLU layer, Xavier-ish for the output.
  const double s1 = std::sqrt(2.0 / static_cast<double>(in));
  const double s2 = std::sqrt(1.0 / static_cast<double>(hidden));
  for (double& v : layer1_.w.data()) v = rng.normal(0.0, s1);
  for (double& v : layer2_.w.data()) v = rng.normal(0.0, s2);
  compiled_ = graph::compile(graph());
}

graph::Graph Mlp::graph() const {
  return graph::mlp_graph(layer1_.w, layer1_.b, layer2_.w, layer2_.b);
}

Matrix Mlp::forward(MatmulBackend& backend, const Matrix& x) const {
  return graph::run(compiled_, backend, x);
}

std::vector<std::size_t> Mlp::predict(MatmulBackend& backend,
                                      const Matrix& x) const {
  return argmax_rows(forward(backend, x));
}

double Mlp::accuracy(MatmulBackend& backend, const Dataset& data) const {
  const auto predictions = predict(backend, data.inputs);
  std::size_t correct = 0;
  for (std::size_t s = 0; s < data.size(); ++s) {
    if (predictions[s] == data.labels[s]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double Mlp::train_epoch(const Dataset& data, double learning_rate,
                        std::size_t batch_size, Rng& rng) {
  expects(batch_size >= 1, "batch size must be >= 1");
  FloatBackend backend;
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates shuffle with the deterministic RNG.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  double loss_sum = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, data.size() - start);
    Matrix x(count, data.inputs.cols());
    std::vector<std::size_t> labels(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t src = order[start + i];
      labels[i] = data.labels[src];
      for (std::size_t c = 0; c < x.cols(); ++c)
        x(i, c) = data.inputs(src, c);
    }

    // Forward.
    const Matrix z1 = layer1_.forward(backend, x);
    const Matrix h = relu(z1);
    const Matrix logits = layer2_.forward(backend, h);
    const Matrix probs = softmax(logits);

    // Cross-entropy loss and output gradient (probs - onehot) / count.
    Matrix dlogits = probs;
    for (std::size_t i = 0; i < count; ++i) {
      loss_sum += -std::log(std::max(1e-12, probs(i, labels[i])));
      dlogits(i, labels[i]) -= 1.0;
    }
    dlogits *= 1.0 / static_cast<double>(count);

    // Backward through layer2.
    const Matrix dw2 = ptc::matmul(h.transposed(), dlogits);
    const Matrix dh = ptc::matmul(dlogits, layer2_.w.transposed());
    // Backward through ReLU.
    Matrix dz1 = dh;
    for (std::size_t i = 0; i < dz1.rows(); ++i)
      for (std::size_t j = 0; j < dz1.cols(); ++j)
        if (z1(i, j) <= 0.0) dz1(i, j) = 0.0;
    const Matrix dw1 = ptc::matmul(x.transposed(), dz1);

    // SGD update.
    layer2_.w -= learning_rate * dw2;
    layer1_.w -= learning_rate * dw1;
    for (std::size_t j = 0; j < layer2_.b.size(); ++j) {
      double g = 0.0;
      for (std::size_t i = 0; i < count; ++i) g += dlogits(i, j);
      layer2_.b[j] -= learning_rate * g;
    }
    for (std::size_t j = 0; j < layer1_.b.size(); ++j) {
      double g = 0.0;
      for (std::size_t i = 0; i < count; ++i) g += dz1(i, j);
      layer1_.b[j] -= learning_rate * g;
    }
    ++batches;
  }
  // The weights changed: relower the schedule over the new values.
  compiled_ = graph::compile(graph());
  return loss_sum / static_cast<double>(data.size());
}

}  // namespace ptc::nn
