#ifndef PTC_NN_MLP_HPP
#define PTC_NN_MLP_HPP

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "nn/layers.hpp"

/// Two-layer MLP (dense -> ReLU -> dense) with a plain SGD trainer.
/// Training runs in float; inference runs through any backend, which is how
/// the digit-classifier example compares float vs photonic accuracy.
namespace ptc::nn {

class Mlp {
 public:
  /// Architecture: in -> hidden (ReLU) -> out.
  Mlp(std::size_t in, std::size_t hidden, std::size_t out, Rng& rng);

  /// Logits for a batch through the given backend.
  Matrix forward(MatmulBackend& backend, const Matrix& x) const;

  /// Predicted class per sample.
  std::vector<std::size_t> predict(MatmulBackend& backend,
                                   const Matrix& x) const;

  /// Fraction of correct predictions on the dataset.
  double accuracy(MatmulBackend& backend, const Dataset& data) const;

  /// One epoch of minibatch SGD with cross-entropy loss (float only).
  /// Returns the mean loss over the epoch.
  double train_epoch(const Dataset& data, double learning_rate,
                     std::size_t batch_size, Rng& rng);

  const DenseLayer& layer1() const { return layer1_; }
  const DenseLayer& layer2() const { return layer2_; }

 private:
  DenseLayer layer1_;
  DenseLayer layer2_;
};

}  // namespace ptc::nn

#endif  // PTC_NN_MLP_HPP
