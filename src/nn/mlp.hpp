#ifndef PTC_NN_MLP_HPP
#define PTC_NN_MLP_HPP

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "graph/compile.hpp"
#include "graph/ir.hpp"
#include "nn/dataset.hpp"
#include "nn/layers.hpp"

/// Two-layer MLP (dense -> ReLU -> dense) with a plain SGD trainer.
/// Training runs in float; inference lowers the model through the graph
/// compiler (see graph/compile.hpp) and executes the compiled schedule on
/// any backend — bit-identical to the direct DenseLayer path, which is how
/// the digit-classifier example compares float vs photonic accuracy.
namespace ptc::nn {

class Mlp {
 public:
  /// Architecture: in -> hidden (ReLU) -> out.
  Mlp(std::size_t in, std::size_t hidden, std::size_t out, Rng& rng);

  /// The model as a dataflow graph over its current weights:
  /// input -> dense -> relu -> dense.
  graph::Graph graph() const;

  /// Logits for a batch through the given backend, via the compiled graph
  /// schedule (compiled eagerly at construction and after each training
  /// epoch, so forward() is read-only and thread-compatible).
  Matrix forward(MatmulBackend& backend, const Matrix& x) const;

  /// Predicted class per sample.
  std::vector<std::size_t> predict(MatmulBackend& backend,
                                   const Matrix& x) const;

  /// Fraction of correct predictions on the dataset.
  double accuracy(MatmulBackend& backend, const Dataset& data) const;

  /// One epoch of minibatch SGD with cross-entropy loss (float only).
  /// Returns the mean loss over the epoch.
  double train_epoch(const Dataset& data, double learning_rate,
                     std::size_t batch_size, Rng& rng);

  const DenseLayer& layer1() const { return layer1_; }
  const DenseLayer& layer2() const { return layer2_; }

 private:
  DenseLayer layer1_;
  DenseLayer layer2_;
  /// Lowered schedule over the current weights; rebuilt after training.
  graph::CompiledGraph compiled_;
};

}  // namespace ptc::nn

#endif  // PTC_NN_MLP_HPP
