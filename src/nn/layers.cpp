#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out)
    : w(in, out), b(out, 0.0) {}

Matrix DenseLayer::forward(MatmulBackend& backend, const Matrix& x) const {
  expects(x.cols() == w.rows(), "dense layer input width mismatch");
  Matrix y = backend.matmul(x, w);
  for (std::size_t s = 0; s < y.rows(); ++s)
    for (std::size_t j = 0; j < y.cols(); ++j) y(s, j) += b[j];
  return y;
}

Matrix relu(Matrix x) {
  for (double& v : x.data()) v = std::max(0.0, v);
  return x;
}

Matrix softmax(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t s = 0; s < out.rows(); ++s) {
    double row_max = out(s, 0);
    for (std::size_t j = 1; j < out.cols(); ++j)
      row_max = std::max(row_max, out(s, j));
    double sum = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j) {
      out(s, j) = std::exp(out(s, j) - row_max);
      sum += out(s, j);
    }
    for (std::size_t j = 0; j < out.cols(); ++j) out(s, j) /= sum;
  }
  return out;
}

std::vector<std::size_t> argmax_rows(const Matrix& m) {
  expects(m.cols() >= 1, "argmax of empty rows");
  std::vector<std::size_t> out(m.rows(), 0);
  for (std::size_t s = 0; s < m.rows(); ++s) {
    for (std::size_t j = 1; j < m.cols(); ++j) {
      if (m(s, j) > m(s, out[s])) out[s] = j;
    }
  }
  return out;
}

Matrix im2col(const Matrix& image, std::size_t kernel) {
  expects(kernel >= 1 && kernel <= image.rows() && kernel <= image.cols(),
          "kernel larger than the image");
  const std::size_t out_h = image.rows() - kernel + 1;
  const std::size_t out_w = image.cols() - kernel + 1;
  Matrix patches(out_h * out_w, kernel * kernel);
  for (std::size_t i = 0; i < out_h; ++i) {
    for (std::size_t j = 0; j < out_w; ++j) {
      std::size_t col = 0;
      for (std::size_t di = 0; di < kernel; ++di)
        for (std::size_t dj = 0; dj < kernel; ++dj)
          patches(i * out_w + j, col++) = image(i + di, j + dj);
    }
  }
  return patches;
}

Matrix conv2d(MatmulBackend& backend, const Matrix& image,
              const Matrix& kernel) {
  expects(kernel.rows() == kernel.cols(), "kernel must be square");
  const std::size_t k = kernel.rows();
  const std::size_t out_h = image.rows() - k + 1;
  const std::size_t out_w = image.cols() - k + 1;

  const Matrix patches = im2col(image, k);
  Matrix kernel_col(k * k, 1);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) kernel_col(idx++, 0) = kernel(i, j);

  const Matrix flat = backend.matmul(patches, kernel_col);
  Matrix out(out_h, out_w);
  for (std::size_t i = 0; i < out_h; ++i)
    for (std::size_t j = 0; j < out_w; ++j) out(i, j) = flat(i * out_w + j, 0);
  return out;
}

}  // namespace ptc::nn
