#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out)
    : w(in, out), b(out, 0.0) {}

Matrix DenseLayer::forward(MatmulBackend& backend, const Matrix& x) const {
  expects(x.cols() == w.rows(), "dense layer input width mismatch");
  Matrix y = backend.matmul(x, w);
  for (std::size_t s = 0; s < y.rows(); ++s)
    for (std::size_t j = 0; j < y.cols(); ++j) y(s, j) += b[j];
  return y;
}

Matrix relu(Matrix x) {
  for (double& v : x.data()) v = std::max(0.0, v);
  return x;
}

Matrix softmax(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t s = 0; s < out.rows(); ++s) {
    double row_max = out(s, 0);
    for (std::size_t j = 1; j < out.cols(); ++j)
      row_max = std::max(row_max, out(s, j));
    double sum = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j) {
      out(s, j) = std::exp(out(s, j) - row_max);
      sum += out(s, j);
    }
    for (std::size_t j = 0; j < out.cols(); ++j) out(s, j) /= sum;
  }
  return out;
}

void softmax_chunks(Matrix& value, std::size_t chunk) {
  expects(chunk >= 1 && value.cols() % chunk == 0,
          "softmax chunk must divide the row width");
  for (std::size_t s = 0; s < value.rows(); ++s) {
    for (std::size_t base = 0; base < value.cols(); base += chunk) {
      double chunk_max = value(s, base);
      for (std::size_t j = 1; j < chunk; ++j)
        chunk_max = std::max(chunk_max, value(s, base + j));
      double sum = 0.0;
      for (std::size_t j = 0; j < chunk; ++j) {
        value(s, base + j) = std::exp(value(s, base + j) - chunk_max);
        sum += value(s, base + j);
      }
      for (std::size_t j = 0; j < chunk; ++j) value(s, base + j) /= sum;
    }
  }
}

void layernorm_chunks(Matrix& value, std::size_t chunk,
                      const std::vector<double>& gain,
                      const std::vector<double>& bias) {
  expects(chunk >= 2 && value.cols() % chunk == 0,
          "layernorm chunk must divide the row width and be >= 2");
  expects(gain.size() == chunk && bias.size() == chunk,
          "layernorm gain/bias must match the chunk width");
  for (std::size_t s = 0; s < value.rows(); ++s) {
    for (std::size_t base = 0; base < value.cols(); base += chunk) {
      double mean = 0.0;
      for (std::size_t j = 0; j < chunk; ++j) mean += value(s, base + j);
      mean /= static_cast<double>(chunk);
      double var = 0.0;
      for (std::size_t j = 0; j < chunk; ++j) {
        const double d = value(s, base + j) - mean;
        var += d * d;
      }
      var /= static_cast<double>(chunk);
      const double inv = 1.0 / std::sqrt(var + kLayerNormEpsilon);
      for (std::size_t j = 0; j < chunk; ++j) {
        value(s, base + j) =
            gain[j] * ((value(s, base + j) - mean) * inv) + bias[j];
      }
    }
  }
}

void gelu_inplace(Matrix& value) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
  constexpr double kSqrt2OverPi = 0.7978845608028654;
  for (double& v : value.data()) {
    v = 0.5 * v * (1.0 + std::tanh(kSqrt2OverPi * (v + 0.044715 * v * v * v)));
  }
}

void causal_mask_chunks(Matrix& value, std::size_t chunk, double scale) {
  // Large finite negative rather than -inf: exp(x - max) underflows to an
  // exact 0.0 without ever producing inf - inf NaNs in the max-subtract.
  constexpr double kMaskedLogit = -1e30;
  expects(chunk >= 1 && value.cols() % chunk == 0,
          "causal mask chunk must divide the row width");
  const std::size_t positions = value.cols() / chunk;
  expects(positions == chunk, "causal mask needs a square {t, t} value");
  for (std::size_t s = 0; s < value.rows(); ++s) {
    for (std::size_t p = 0; p < positions; ++p) {
      for (std::size_t j = 0; j < chunk; ++j) {
        double& v = value.data()[s * value.cols() + p * chunk + j];
        v = j <= p ? v * scale : kMaskedLogit;
      }
    }
  }
}

Matrix signed_matmul(MatmulBackend& backend, const Matrix& x, const Matrix& w,
                     WeightPlanCache* cache) {
  Matrix pos(x.rows(), x.cols());
  Matrix neg(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    const double v = x.data()[i];
    pos.data()[i] = v > 0.0 ? v : 0.0;
    neg.data()[i] = v < 0.0 ? -v : 0.0;
  }
  Matrix y = cache != nullptr ? backend.matmul_cached(pos, w, *cache)
                              : backend.matmul(pos, w);
  y -= cache != nullptr ? backend.matmul_cached(neg, w, *cache)
                        : backend.matmul(neg, w);
  return y;
}

std::vector<std::size_t> argmax_rows(const Matrix& m) {
  expects(m.cols() >= 1, "argmax of empty rows");
  std::vector<std::size_t> out(m.rows(), 0);
  for (std::size_t s = 0; s < m.rows(); ++s) {
    for (std::size_t j = 1; j < m.cols(); ++j) {
      if (m(s, j) > m(s, out[s])) out[s] = j;
    }
  }
  return out;
}

Matrix im2col(const Matrix& image, std::size_t kernel) {
  expects(kernel >= 1 && kernel <= image.rows() && kernel <= image.cols(),
          "kernel larger than the image");
  const std::size_t out_h = image.rows() - kernel + 1;
  const std::size_t out_w = image.cols() - kernel + 1;
  Matrix patches(out_h * out_w, kernel * kernel);
  for (std::size_t i = 0; i < out_h; ++i) {
    for (std::size_t j = 0; j < out_w; ++j) {
      std::size_t col = 0;
      for (std::size_t di = 0; di < kernel; ++di)
        for (std::size_t dj = 0; dj < kernel; ++dj)
          patches(i * out_w + j, col++) = image(i + di, j + dj);
    }
  }
  return patches;
}

Matrix conv2d(MatmulBackend& backend, const Matrix& image,
              const Matrix& kernel) {
  expects(kernel.rows() == kernel.cols(), "kernel must be square");
  const std::size_t k = kernel.rows();
  const std::size_t out_h = image.rows() - k + 1;
  const std::size_t out_w = image.cols() - k + 1;

  const Matrix patches = im2col(image, k);
  Matrix kernel_col(k * k, 1);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) kernel_col(idx++, 0) = kernel(i, j);

  const Matrix flat = backend.matmul(patches, kernel_col);
  Matrix out(out_h, out_w);
  for (std::size_t i = 0; i < out_h; ++i)
    for (std::size_t j = 0; j < out_w; ++j) out(i, j) = flat(i * out_w + j, 0);
  return out;
}

}  // namespace ptc::nn
