#ifndef PTC_NN_BACKEND_HPP
#define PTC_NN_BACKEND_HPP

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/linalg.hpp"
#include "core/tensor_core.hpp"

namespace ptc::telemetry {
class Tracer;
}  // namespace ptc::telemetry

/// Pluggable matrix-multiply execution backends: a float reference and the
/// photonic tensor core.  Networks talk to the backend interface, so the
/// same model runs digitally or on the simulated hardware.
namespace ptc::nn {

struct WeightPlan;

/// Content-keyed store of weight-dependent tile plans (see nn/tiling.hpp).
/// Planning a tiled matmul splits into a weight half — signed mapping, pass
/// list, encoded unit-weight blocks — and an input half (batch size,
/// activation scale).  The weight half is cached here so serving
/// steady-state pays zero re-planning and zero re-encoding per dispatch.
///
/// Entries are keyed by tile geometry, encoding mode, and the *contents* of
/// the weight matrix: a changed weight (new model version, a training step)
/// can never be served a stale plan — the equality probe misses and the
/// plan is rebuilt.  Thread-safe; share one cache per weight tensor (the
/// graph compiler attaches one to every accelerator step) or per backend.
class WeightPlanCache {
 public:
  /// Plans are dropped least-recently-used beyond `capacity` entries.
  explicit WeightPlanCache(std::size_t capacity = 8);

  /// Returns the cached plan for (w, geometry, encoding), building it on
  /// the first call and after any change to w's contents.
  std::shared_ptr<const WeightPlan> get(const Matrix& w, std::size_t tile_m,
                                        std::size_t tile_k, bool differential);

  /// Forgets every cached plan.
  void invalidate();

  /// Number of plan builds performed (misses), for tests and diagnostics.
  std::size_t builds() const;

 private:
  mutable std::mutex mu_;
  /// Most-recently-used first.
  std::vector<std::shared_ptr<const WeightPlan>> entries_;
  std::size_t capacity_;
  std::size_t builds_ = 0;
};

class MatmulBackend {
 public:
  virtual ~MatmulBackend() = default;

  /// Computes x (s x k) times w (k x m) -> (s x m).  `x` must be
  /// non-negative (intensity-encoded); `w` may be signed.
  virtual Matrix matmul(const Matrix& x, const Matrix& w) = 0;

  /// Like matmul, with a caller-owned plan cache for the weight-dependent
  /// tiling work (the graph executor passes each step's cache).  Backends
  /// that do not tile ignore the cache.
  virtual Matrix matmul_cached(const Matrix& x, const Matrix& w,
                               WeightPlanCache& cache) {
    (void)cache;
    return matmul(x, w);
  }

  virtual const char* name() const = 0;

  /// Telemetry hooks: backends with a modeled hardware clock and an
  /// attached span tracer expose them so the graph executor can wrap each
  /// schedule step in a span.  The default (digital backends, no sink) is
  /// the zero-overhead no-op path.
  virtual telemetry::Tracer* tracer() const { return nullptr; }
  /// Modeled-time cursor [s]; meaningful only when tracer() is attached.
  virtual double modeled_time() const { return 0.0; }
};

/// Exact floating-point reference.
class FloatBackend final : public MatmulBackend {
 public:
  Matrix matmul(const Matrix& x, const Matrix& w) override;
  const char* name() const override { return "float"; }
};

struct PhotonicBackendOptions {
  /// When true, row outputs pass through the 3-bit eoADC (full hardware
  /// path).  When false, the analog row value is read out directly —
  /// modelling a high-resolution ADC for accuracy ablations.
  bool quantize_output = true;
  /// Signed-weight handling.  false: offset encoding w -> (w+1)/2 with a
  /// digital -sum(x) correction (one pass, but an even level count cannot
  /// represent w = 0 exactly).  true: differential W+/W- double-pass — zero
  /// weights are exact and quantization bias largely cancels, at twice the
  /// tile loads (the standard photonic-IMC differential trick).
  bool differential_weights = false;
  /// Programmable readout gain (row-TIA ranging) applied while quantizing,
  /// so sparse dot products occupy the full eoADC range; codes are divided
  /// back by the gain digitally.  Must be >= 1.
  double adc_range_gain = 1.0;
};

/// Executes matmuls on the photonic tensor core by tiling: the weight
/// matrix is cut into rows x cols blocks (zero-padded at the edges), loaded
/// into the pSRAM via optical writes, and partial products are accumulated
/// digitally.  Signed weights use the offset encoding w -> (w+1)/2 with a
/// digital correction of -sum(x) per output.
class PhotonicBackend final : public MatmulBackend {
 public:
  PhotonicBackend(core::TensorCore& core,
                  const PhotonicBackendOptions& options = {});

  Matrix matmul(const Matrix& x, const Matrix& w) override;
  Matrix matmul_cached(const Matrix& x, const Matrix& w,
                       WeightPlanCache& cache) override;
  const char* name() const override { return "photonic"; }

  /// Number of weight-tile loads performed so far (each one is a full
  /// optical pSRAM reload — the operation the 20 GHz update rate makes
  /// cheap).
  std::size_t tile_loads() const { return tile_loads_; }

  /// Cumulative pSRAM reload latency across all tile loads [s].
  double reload_time() const { return reload_time_; }

 private:
  core::TensorCore& core_;
  PhotonicBackendOptions options_;
  WeightPlanCache plan_cache_;
  std::size_t tile_loads_ = 0;
  double reload_time_ = 0.0;
};

}  // namespace ptc::nn

#endif  // PTC_NN_BACKEND_HPP
