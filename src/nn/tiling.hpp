#ifndef PTC_NN_TILING_HPP
#define PTC_NN_TILING_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "common/linalg.hpp"
#include "core/tensor_core.hpp"
#include "nn/backend.hpp"
#include "nn/quant.hpp"

/// Matmul tiling shared by the single-core PhotonicBackend and the
/// multi-core runtime::Accelerator.
///
/// An (s x k) * (k x m) matmul decomposes into *passes*: one pSRAM residency
/// of one rows x cols weight block during which the whole input batch is
/// streamed through the core (the schedule that amortizes each 20 GHz
/// optical reload over the maximum number of 8 GS/s compute samples).
/// Every pass is independent of core state left by other passes, so passes
/// can execute on any core of an identical-device pool; summing the per-pass
/// contribution matrices in the canonical `TilePlan::passes` order
/// reproduces the sequential single-core accumulation bit for bit — the
/// determinism contract the runtime's tests pin down.
///
/// Planning splits into a weight half and an input half.  The weight half —
/// signed mapping, pass list, encoded unit-weight blocks — is a pure
/// function of (w, tile geometry, encoding) and is built once per weight
/// version as a WeightPlan, cached by nn::WeightPlanCache; per matmul only
/// the input half (batch size, activation scale) is computed.
namespace ptc::nn {

/// One weight-block residency.
struct TilePass {
  std::size_t mt = 0;  ///< output (column-of-w) tile index
  std::size_t kt = 0;  ///< inner (row-of-w) tile index
  /// How signed weights map onto the unsigned optical domain for this pass.
  enum class Encoding {
    kOffset,    ///< w -> (w/scale + 1)/2 with digital -sum(x) correction
    kPositive,  ///< differential W+ pass: max(0, w) / scale
    kNegative,  ///< differential W- pass: max(0, -w) / scale
  };
  Encoding encoding = Encoding::kOffset;
  double sign = 1.0;       ///< contribution sign (-1 for the W- pass)
  double pad_value = 0.5;  ///< encoding of the padding cells at tile edges
};

/// The weight-dependent half of a tiled matmul: everything that only
/// changes when the weights (or the tile geometry / encoding) change.
/// `passes` is in canonical order: mt-major, kt-minor, with the
/// differential W+ pass preceding W-; `encoded[i]` is the pre-encoded
/// [0, 1] unit-weight block pass i loads.
struct WeightPlan {
  std::size_t k = 0;       ///< inner dimension
  std::size_t m = 0;       ///< output dimension
  std::size_t tile_k = 0;  ///< core cols (inputs per tile)
  std::size_t tile_m = 0;  ///< core rows (outputs per tile)
  bool differential = false;
  SignedMapping mapping{};
  std::vector<TilePass> passes;
  std::vector<Matrix> encoded;  ///< per pass: tile_m x tile_k unit weights
  Matrix source;                ///< the weights this plan encodes (cache key)

  std::size_t k_tiles() const { return (k + tile_k - 1) / tile_k; }
  std::size_t m_tiles() const { return (m + tile_m - 1) / tile_m; }
};

/// Builds the weight half for an (s x k) times w (k x m) matmul on cores
/// with tile_m rows and tile_k cols.  Pure function of its arguments.
std::shared_ptr<const WeightPlan> build_weight_plan(const Matrix& w,
                                                    std::size_t tile_m,
                                                    std::size_t tile_k,
                                                    bool differential);

/// Full decomposition of one matmul: a shared weight half plus the
/// input-dependent fields.  `passes` is in canonical order (see WeightPlan).
struct TilePlan {
  std::size_t samples = 0;  ///< s: input vectors in the batch
  std::size_t k = 0;        ///< inner dimension
  std::size_t m = 0;        ///< output dimension
  std::size_t tile_k = 0;   ///< core cols (inputs per tile)
  std::size_t tile_m = 0;   ///< core rows (outputs per tile)
  double x_scale = 1.0;     ///< activation normalization scale
  SignedMapping mapping{};  ///< signed-weight mapping for the whole tensor
  std::vector<TilePass> passes;
  /// Weight half this plan was derived from (holds the encoded blocks).
  std::shared_ptr<const WeightPlan> weights;

  std::size_t k_tiles() const { return (k + tile_k - 1) / tile_k; }
  std::size_t m_tiles() const { return (m + tile_m - 1) / tile_m; }
};

/// Completes a cached weight plan into a full TilePlan for the batch `x`:
/// writes the normalized activations into `x_norm` (a fresh matrix — no
/// intermediate full copy) and records the scale.
TilePlan plan_from_weights(std::shared_ptr<const WeightPlan> weights,
                           const Matrix& x, Matrix& x_norm);

/// Builds the plan for x (s x k) times w (k x m) on cores with tile_m rows
/// and tile_k cols.  `x` is normalized to [0, 1] in place (the scale is
/// recorded in the plan).  `differential` selects the two-pass W+/W-
/// encoding over the single-pass offset encoding.  Convenience wrapper that
/// builds the weight half fresh; hot paths go through WeightPlanCache +
/// plan_from_weights instead.
TilePlan plan_tiled_matmul(Matrix& x, const Matrix& w, std::size_t tile_m,
                           std::size_t tile_k, bool differential);

/// Encodes the (tile_m x tile_k) weight block of `pass` into [0, 1] unit
/// weights, padding out-of-range cells with the pass pad value.
Matrix encode_weight_block(const WeightPlan& plan, const TilePass& pass,
                           const Matrix& w);

/// Output of one pass: the signed, scaled contribution of this weight block
/// to the result, plus the modeled pSRAM reload latency it cost.
struct TilePassResult {
  Matrix contribution;      ///< samples x tile_m
  double reload_time = 0.0; ///< [s]
};

/// Runs pass `pass_index` on `core`: loads the pre-encoded weight block and
/// streams the whole normalized batch through it in one call (readout gain
/// programmed once per pass, no per-sample allocations), returning the
/// contribution matrix.  Only the executing core's state is touched.
TilePassResult run_tile_pass(core::TensorCore& core, const TilePlan& plan,
                             std::size_t pass_index, const Matrix& x_norm,
                             const PhotonicBackendOptions& options);

/// Adds a pass contribution into the result matrix y (samples x m).
/// Accumulating in canonical pass order is bit-identical to the sequential
/// single-core loop.
void accumulate_pass(Matrix& y, const TilePlan& plan, const TilePass& pass,
                     const Matrix& contribution);

}  // namespace ptc::nn

#endif  // PTC_NN_TILING_HPP
