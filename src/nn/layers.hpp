#ifndef PTC_NN_LAYERS_HPP
#define PTC_NN_LAYERS_HPP

#include <cstddef>
#include <vector>

#include "common/linalg.hpp"
#include "nn/backend.hpp"

/// Network layers executing through a MatmulBackend, so the same model runs
/// on the float reference or the photonic tensor core.
namespace ptc::nn {

/// Fully connected layer y = x W + b.
struct DenseLayer {
  Matrix w;                ///< in x out
  std::vector<double> b;   ///< out

  DenseLayer(std::size_t in, std::size_t out);

  /// Forward pass through the given backend.
  Matrix forward(MatmulBackend& backend, const Matrix& x) const;
};

/// Element-wise ReLU.
Matrix relu(Matrix x);

/// Row-wise softmax.
Matrix softmax(const Matrix& logits);

/// Variance floor shared by every layernorm implementation in the repo, so
/// the graph executor and the incremental transformer decoder agree bitwise.
constexpr double kLayerNormEpsilon = 1e-5;

/// Softmax over each contiguous `chunk`-wide slice of every row, in place.
/// chunk == cols is exactly softmax() — the arithmetic (max-subtract, exp,
/// normalize, in index order) is identical, which keeps the graph
/// executor's rank-1 epilogue bit-for-bit.
void softmax_chunks(Matrix& value, std::size_t chunk);

/// Layer normalization over each `chunk`-wide slice of every row, in
/// place: shift to the chunk mean, scale by 1/sqrt(var + epsilon), then
/// apply per-feature gain and bias (both length == chunk).
void layernorm_chunks(Matrix& value, std::size_t chunk,
                      const std::vector<double>& gain,
                      const std::vector<double>& bias);

/// Elementwise GELU (tanh approximation), in place.
void gelu_inplace(Matrix& value);

/// Causal attention mask over flattened {t, t} score matrices stored as
/// rows of t chunks of width `chunk` == t: chunk p keeps entries j <= p
/// scaled by `scale` and forces j > p to a large negative logit (softmax
/// sends them to exactly zero).
void causal_mask_chunks(Matrix& value, std::size_t chunk, double scale);

/// y = x W for a signed activation x through a backend whose matmul
/// contract requires non-negative (intensity-encoded) inputs: differential
/// input streaming.  x splits into x+ = max(x, 0) and x- = max(-x, 0),
/// both halves stream through the same weight plan, and the results
/// recombine digitally as y = y+ - y- — the input-side mirror of the
/// differential W+/W- weight trick.  Uses `cache` for both passes when
/// given (the graph executor hands each step's plan cache).
Matrix signed_matmul(MatmulBackend& backend, const Matrix& x, const Matrix& w,
                     WeightPlanCache* cache = nullptr);

/// Index of the maximum element in each row.
std::vector<std::size_t> argmax_rows(const Matrix& m);

/// im2col for single-channel 2D convolution with a square kernel (valid
/// padding): returns (out_h * out_w) x (kernel * kernel) patches.
Matrix im2col(const Matrix& image, std::size_t kernel);

/// Single-channel valid 2D convolution via im2col + backend matmul.
Matrix conv2d(MatmulBackend& backend, const Matrix& image,
              const Matrix& kernel);

}  // namespace ptc::nn

#endif  // PTC_NN_LAYERS_HPP
