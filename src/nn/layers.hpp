#ifndef PTC_NN_LAYERS_HPP
#define PTC_NN_LAYERS_HPP

#include <cstddef>
#include <vector>

#include "common/linalg.hpp"
#include "nn/backend.hpp"

/// Network layers executing through a MatmulBackend, so the same model runs
/// on the float reference or the photonic tensor core.
namespace ptc::nn {

/// Fully connected layer y = x W + b.
struct DenseLayer {
  Matrix w;                ///< in x out
  std::vector<double> b;   ///< out

  DenseLayer(std::size_t in, std::size_t out);

  /// Forward pass through the given backend.
  Matrix forward(MatmulBackend& backend, const Matrix& x) const;
};

/// Element-wise ReLU.
Matrix relu(Matrix x);

/// Row-wise softmax.
Matrix softmax(const Matrix& logits);

/// Index of the maximum element in each row.
std::vector<std::size_t> argmax_rows(const Matrix& m);

/// im2col for single-channel 2D convolution with a square kernel (valid
/// padding): returns (out_h * out_w) x (kernel * kernel) patches.
Matrix im2col(const Matrix& image, std::size_t kernel);

/// Single-channel valid 2D convolution via im2col + backend matmul.
Matrix conv2d(MatmulBackend& backend, const Matrix& image,
              const Matrix& kernel);

}  // namespace ptc::nn

#endif  // PTC_NN_LAYERS_HPP
