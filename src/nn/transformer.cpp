#include "nn/transformer.hpp"

#include <cmath>
#include <utility>

#include "common/expects.hpp"
#include "nn/layers.hpp"

namespace ptc::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, double sigma,
                     Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal(0.0, sigma);
  return m;
}

std::size_t div_ceil(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Tile passes of one rows x cols weight load at the given tiling — the
/// same count graph::pass_profile derives per step.
std::size_t tile_passes(std::size_t rows, std::size_t cols, std::size_t tile_m,
                        std::size_t tile_k, bool differential) {
  return div_ceil(rows, tile_k) * div_ceil(cols, tile_m) *
         (differential ? 2 : 1);
}

}  // namespace

TransformerModel TransformerModel::random(const TransformerConfig& config,
                                          Rng& rng) {
  expects(config.heads >= 1 && config.d_model % config.heads == 0,
          "d_model must be divisible by the head count");
  expects(config.d_model >= 2, "d_model must be >= 2 (layernorm)");
  expects(config.vocab >= 2 && config.layers >= 1 && config.d_ff >= 1 &&
              config.max_seq >= 1,
          "transformer config dimensions must be positive");

  TransformerModel m;
  m.config_ = config;
  const std::size_t d = config.d_model;
  // Small-normal init keeps pre-layernorm activations and logits in a
  // comfortable eoADC range; the draw order below is part of the seeded
  // contract (tests pin outputs by seed).
  const double s_proj = 1.0 / std::sqrt(static_cast<double>(d));
  const double s_ff = 1.0 / std::sqrt(static_cast<double>(config.d_ff));
  m.token_table_ = random_matrix(config.vocab, d, 0.4, rng);
  m.pos_table_ = random_matrix(config.max_seq, d, 0.1, rng);
  m.layers_.resize(config.layers);
  for (TransformerLayer& layer : m.layers_) {
    layer.ln1_gain.assign(d, 1.0);
    layer.ln1_bias.assign(d, 0.0);
    layer.wq = random_matrix(d, d, s_proj, rng);
    layer.wk = random_matrix(d, d, s_proj, rng);
    layer.wv = random_matrix(d, d, s_proj, rng);
    layer.wo = random_matrix(d, d, s_proj, rng);
    layer.ln2_gain.assign(d, 1.0);
    layer.ln2_bias.assign(d, 0.0);
    layer.w_ff1 = random_matrix(d, config.d_ff, s_proj, rng);
    layer.b_ff1.assign(config.d_ff, 0.0);
    layer.w_ff2 = random_matrix(config.d_ff, d, s_ff, rng);
    layer.b_ff2.assign(d, 0.0);
  }
  m.lnf_gain_.assign(d, 1.0);
  m.lnf_bias_.assign(d, 0.0);
  m.unembed_ = random_matrix(d, config.vocab, s_proj, rng);
  return m;
}

graph::Graph TransformerModel::build_graph(std::size_t seq_len) const {
  expects(!layers_.empty(), "model has no layers (default-constructed?)");
  expects(seq_len >= 1 && seq_len <= config_.max_seq,
          "sequence length must fit the positional table");
  const std::size_t dk = config_.head_dim();
  const double scale = 1.0 / std::sqrt(static_cast<double>(dk));

  graph::Graph g;
  graph::Graph::NodeId x =
      g.embedding(g.input(graph::Shape{{seq_len}}), token_table_, pos_table_);
  for (const TransformerLayer& layer : layers_) {
    const auto h1 = g.layernorm(x, layer.ln1_gain, layer.ln1_bias);
    const auto q = g.matmul(h1, layer.wq);
    const auto k = g.matmul(h1, layer.wk);
    const auto v = g.matmul(h1, layer.wv);
    std::vector<graph::Graph::NodeId> heads;
    for (std::size_t head = 0; head < config_.heads; ++head) {
      const auto qh = g.slice(q, head * dk, dk);
      const auto kh = g.slice(k, head * dk, dk);
      const auto vh = g.slice(v, head * dk, dk);
      const auto scores = g.matmul_pair(qh, kh, /*transpose_b=*/true);
      const auto probs = g.softmax(g.causal_mask(scores, scale));
      heads.push_back(g.matmul_pair(probs, vh, /*transpose_b=*/false));
    }
    const auto merged = heads.size() == 1 ? heads[0] : g.concat(heads);
    x = g.add(x, g.matmul(merged, layer.wo));
    const auto h2 = g.layernorm(x, layer.ln2_gain, layer.ln2_bias);
    const auto f1 = g.gelu(g.bias(g.matmul(h2, layer.w_ff1), layer.b_ff1));
    const auto f2 = g.bias(g.matmul(f1, layer.w_ff2), layer.b_ff2);
    x = g.add(x, f2);
  }
  const auto xf = g.layernorm(x, lnf_gain_, lnf_bias_);
  g.mark_output(g.matmul(xf, unembed_));
  return g;
}

KvCache TransformerModel::make_cache() const {
  KvCache cache;
  cache.k.resize(layers_.size());
  cache.v.resize(layers_.size());
  return cache;
}

std::vector<double> TransformerModel::decode_step(MatmulBackend& backend,
                                                  KvCache& cache,
                                                  std::size_t token) const {
  const std::size_t d = config_.d_model;
  const std::size_t dk = config_.head_dim();
  expects(!layers_.empty(), "model has no layers (default-constructed?)");
  expects(token < config_.vocab, "token id out of vocabulary range");
  expects(cache.k.size() == layers_.size(), "cache layer count mismatch");
  expects(cache.length < config_.max_seq,
          "context exceeds the positional table");
  const std::size_t pos = cache.length;
  const std::size_t ctx = pos + 1;
  const double scale = 1.0 / std::sqrt(static_cast<double>(dk));

  Matrix x(1, d);
  for (std::size_t ch = 0; ch < d; ++ch)
    x(0, ch) = token_table_(token, ch) + pos_table_(pos, ch);

  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const TransformerLayer& layer = layers_[l];
    Matrix h = x;
    layernorm_chunks(h, d, layer.ln1_gain, layer.ln1_bias);
    const Matrix q = signed_matmul(backend, h, layer.wq);
    const Matrix k = signed_matmul(backend, h, layer.wk);
    const Matrix v = signed_matmul(backend, h, layer.wv);
    // Append this position's K/V rows before scoring: position pos attends
    // to every cached position including itself.
    for (std::size_t ch = 0; ch < d; ++ch) {
      cache.k[l].push_back(k(0, ch));
      cache.v[l].push_back(v(0, ch));
    }

    Matrix merged(1, d);
    for (std::size_t head = 0; head < config_.heads; ++head) {
      Matrix qh(1, dk);
      for (std::size_t c = 0; c < dk; ++c) qh(0, c) = q(0, head * dk + c);
      // Scores against K^T: the cached rows are this request's own
      // "weights", loaded fresh every step (never residency-warm).
      Matrix kt(dk, ctx);
      for (std::size_t c = 0; c < dk; ++c)
        for (std::size_t j = 0; j < ctx; ++j)
          kt(c, j) = cache.k[l][j * d + head * dk + c];
      Matrix scores = signed_matmul(backend, qh, kt);
      for (std::size_t j = 0; j < ctx; ++j) scores(0, j) *= scale;
      softmax_chunks(scores, ctx);
      Matrix vals(ctx, dk);
      for (std::size_t j = 0; j < ctx; ++j)
        for (std::size_t c = 0; c < dk; ++c)
          vals(j, c) = cache.v[l][j * d + head * dk + c];
      // Softmax probabilities are non-negative: plain intensity streaming,
      // exactly like the compiled graph's unsigned context product.
      const Matrix ctxh = backend.matmul(scores, vals);
      for (std::size_t c = 0; c < dk; ++c) merged(0, head * dk + c) = ctxh(0, c);
    }
    Matrix attn = signed_matmul(backend, merged, layer.wo);
    attn += x;
    x = std::move(attn);

    Matrix h2 = x;
    layernorm_chunks(h2, d, layer.ln2_gain, layer.ln2_bias);
    Matrix f = signed_matmul(backend, h2, layer.w_ff1);
    for (std::size_t j = 0; j < config_.d_ff; ++j) f(0, j) += layer.b_ff1[j];
    gelu_inplace(f);
    Matrix f2 = signed_matmul(backend, f, layer.w_ff2);
    for (std::size_t ch = 0; ch < d; ++ch) f2(0, ch) += layer.b_ff2[ch];
    f2 += x;
    x = std::move(f2);
  }
  cache.length = ctx;

  layernorm_chunks(x, d, lnf_gain_, lnf_bias_);
  const Matrix logits = signed_matmul(backend, x, unembed_);
  return logits.data();
}

std::vector<std::size_t> TransformerModel::generate(
    MatmulBackend& backend, const std::vector<std::size_t>& prompt,
    std::size_t max_new) const {
  expects(!prompt.empty(), "prompt must contain at least one token");
  KvCache cache = make_cache();
  std::vector<double> logits;
  for (const std::size_t token : prompt)
    logits = decode_step(backend, cache, token);
  std::vector<std::size_t> out = prompt;
  for (std::size_t n = 0; n < max_new; ++n) {
    // Greedy argmax, ties to the lowest index.
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.size(); ++j)
      if (logits[j] > logits[best]) best = j;
    out.push_back(best);
    if (n + 1 == max_new || cache.length >= config_.max_seq) break;
    logits = decode_step(backend, cache, best);
  }
  return out;
}

std::size_t TransformerModel::weight_passes(std::size_t tile_m,
                                            std::size_t tile_k,
                                            bool differential) const {
  const std::size_t d = config_.d_model;
  std::size_t passes = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    passes += 4 * tile_passes(d, d, tile_m, tile_k, differential);
    passes += tile_passes(d, config_.d_ff, tile_m, tile_k, differential);
    passes += tile_passes(config_.d_ff, d, tile_m, tile_k, differential);
  }
  passes += tile_passes(d, config_.vocab, tile_m, tile_k, differential);
  return passes;
}

std::size_t TransformerModel::attention_passes(std::size_t context_len,
                                               std::size_t tile_m,
                                               std::size_t tile_k,
                                               bool differential) const {
  expects(context_len >= 1, "attention over an empty context");
  const std::size_t dk = config_.head_dim();
  const std::size_t per_head =
      tile_passes(dk, context_len, tile_m, tile_k, differential) +
      tile_passes(context_len, dk, tile_m, tile_k, differential);
  return config_.layers * config_.heads * per_head;
}

}  // namespace ptc::nn
