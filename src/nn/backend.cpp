#include "nn/backend.hpp"

#include "common/expects.hpp"
#include "nn/tiling.hpp"

namespace ptc::nn {

Matrix FloatBackend::matmul(const Matrix& x, const Matrix& w) {
  return ptc::matmul(x, w);
}

PhotonicBackend::PhotonicBackend(core::TensorCore& core,
                                 const PhotonicBackendOptions& options)
    : core_(core), options_(options) {}

Matrix PhotonicBackend::matmul(const Matrix& x, const Matrix& w) {
  Matrix x_norm = x;
  const TilePlan plan =
      plan_tiled_matmul(x_norm, w, core_.rows(), core_.cols(),
                        options_.differential_weights);

  Matrix y(plan.samples, plan.m, 0.0);
  for (const TilePass& pass : plan.passes) {
    const TilePassResult result =
        run_tile_pass(core_, plan, pass, x_norm, w, options_);
    accumulate_pass(y, plan, pass, result.contribution);
    reload_time_ += result.reload_time;
    ++tile_loads_;
  }
  return y;
}

}  // namespace ptc::nn
