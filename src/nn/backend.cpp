#include "nn/backend.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/expects.hpp"
#include "nn/quant.hpp"

namespace ptc::nn {

Matrix FloatBackend::matmul(const Matrix& x, const Matrix& w) {
  return ptc::matmul(x, w);
}

PhotonicBackend::PhotonicBackend(core::TensorCore& core,
                                 const PhotonicBackendOptions& options)
    : core_(core), options_(options) {}

Matrix PhotonicBackend::matmul(const Matrix& x, const Matrix& w) {
  expects(x.cols() == w.rows(), "matmul inner dimensions must agree");
  const std::size_t samples = x.rows();
  const std::size_t k = w.rows();
  const std::size_t m = w.cols();
  const std::size_t tile_k = core_.cols();   // inputs per tile
  const std::size_t tile_m = core_.rows();   // outputs per tile

  // Normalize activations to [0, 1] and remember the scale.
  Matrix x_norm = x;
  const double x_scale = normalize_activations(x_norm);

  // Offset-encode signed weights into [0, 1].
  const SignedMapping mapping = signed_mapping_for(w);

  Matrix y(samples, m, 0.0);
  const std::size_t k_tiles = (k + tile_k - 1) / tile_k;
  const std::size_t m_tiles = (m + tile_m - 1) / tile_m;

  // Runs one pass over a weight block given a unit-encoder for the block
  // entries, accumulating `sign * scale * dot` into y.
  auto run_pass = [&](std::size_t mt, std::size_t kt,
                      const std::function<double(double)>& encode,
                      double pad_value, double sign, bool offset_correct) {
    Matrix block(tile_m, tile_k, pad_value);
    for (std::size_t r = 0; r < tile_m; ++r) {
      const std::size_t out_idx = mt * tile_m + r;
      if (out_idx >= m) continue;
      for (std::size_t c = 0; c < tile_k; ++c) {
        const std::size_t in_idx = kt * tile_k + c;
        if (in_idx >= k) continue;
        block(r, c) = encode(w(in_idx, out_idx));
      }
    }
    reload_time_ += core_.load_weights_normalized(block);
    ++tile_loads_;

    for (std::size_t s = 0; s < samples; ++s) {
      std::vector<double> input(tile_k, 0.0);
      double input_sum = 0.0;
      for (std::size_t c = 0; c < tile_k; ++c) {
        const std::size_t in_idx = kt * tile_k + c;
        if (in_idx < k) {
          input[c] = x_norm(s, in_idx);
          input_sum += input[c];
        }
      }
      // Row value t_r ~= sum_c in_c * w_unit_rc / tile_k (normalized).
      std::vector<double> t(core_.rows());
      if (options_.quantize_output) {
        core_.set_readout_gain(options_.adc_range_gain);
        const auto codes = core_.multiply(input);
        core_.set_readout_gain(1.0);
        const double max_code =
            static_cast<double>((1u << core_.adc(0).bits()) - 1);
        for (std::size_t r = 0; r < t.size(); ++r) {
          t[r] = static_cast<double>(codes[r]) / max_code /
                 options_.adc_range_gain;
        }
      } else {
        t = core_.multiply_analog(input);
      }
      for (std::size_t r = 0; r < tile_m; ++r) {
        const std::size_t out_idx = mt * tile_m + r;
        if (out_idx >= m) continue;
        const double unit_dot = t[r] * static_cast<double>(tile_k);
        // Offset encoding: sum w * in = scale * (2 * unit_dot - sum in).
        // Differential encoding: the pass directly yields scale * unit_dot.
        const double dot = offset_correct
                               ? mapping.scale * (2.0 * unit_dot - input_sum)
                               : mapping.scale * unit_dot;
        y(s, out_idx) += sign * x_scale * dot;
      }
    }
  };

  for (std::size_t mt = 0; mt < m_tiles; ++mt) {
    for (std::size_t kt = 0; kt < k_tiles; ++kt) {
      if (options_.differential_weights) {
        // W+ pass then W- pass; padded cells are exact zeros.
        run_pass(
            mt, kt,
            [&](double v) { return std::max(0.0, v) / mapping.scale; }, 0.0,
            +1.0, false);
        run_pass(
            mt, kt,
            [&](double v) { return std::max(0.0, -v) / mapping.scale; }, 0.0,
            -1.0, false);
      } else {
        // Offset encoding; padded cells carry the encoding of w = 0 (0.5)
        // but see zero input, so they contribute nothing.
        run_pass(mt, kt, [&](double v) { return mapping.to_unit(v); }, 0.5,
                 +1.0, true);
      }
    }
  }
  return y;
}

}  // namespace ptc::nn
