#include "nn/backend.hpp"

#include "common/expects.hpp"
#include "nn/tiling.hpp"

namespace ptc::nn {

Matrix FloatBackend::matmul(const Matrix& x, const Matrix& w) {
  return ptc::matmul(x, w);
}

PhotonicBackend::PhotonicBackend(core::TensorCore& core,
                                 const PhotonicBackendOptions& options)
    : core_(core), options_(options) {}

Matrix PhotonicBackend::matmul(const Matrix& x, const Matrix& w) {
  return matmul_cached(x, w, plan_cache_);
}

Matrix PhotonicBackend::matmul_cached(const Matrix& x, const Matrix& w,
                                      WeightPlanCache& cache) {
  Matrix x_norm;
  const TilePlan plan = plan_from_weights(
      cache.get(w, core_.rows(), core_.cols(), options_.differential_weights),
      x, x_norm);

  Matrix y(plan.samples, plan.m, 0.0);
  for (std::size_t i = 0; i < plan.passes.size(); ++i) {
    const TilePassResult result =
        run_tile_pass(core_, plan, i, x_norm, options_);
    accumulate_pass(y, plan, plan.passes[i], result.contribution);
    reload_time_ += result.reload_time;
    ++tile_loads_;
  }
  return y;
}

}  // namespace ptc::nn
