#ifndef PTC_NN_QUANT_HPP
#define PTC_NN_QUANT_HPP

#include <cstdint>
#include <vector>

#include "common/linalg.hpp"

/// Quantization schemes that map real-valued network tensors onto what the
/// photonic hardware can represent: non-negative analog intensities in
/// [0, 1] for activations, and n-bit unsigned pSRAM words for weights.
/// Signed weights use the offset trick w -> (w/scale + 1)/2, undone
/// digitally after the optical dot product.
namespace ptc::nn {

/// Uniform unsigned quantizer over [0, 1].
class UnsignedQuantizer {
 public:
  explicit UnsignedQuantizer(unsigned bits);

  unsigned bits() const { return bits_; }
  std::uint32_t levels() const { return (1u << bits_); }
  std::uint32_t max_code() const { return levels() - 1; }

  /// Quantizes x in [0, 1] to the nearest code.
  std::uint32_t quantize(double x) const;

  /// Code -> real value in [0, 1].
  double dequantize(std::uint32_t code) const;

  /// Worst-case quantization error, 1 / (2 * (2^n - 1)).
  double max_error() const;

 private:
  unsigned bits_;
};

/// Affine mapping of a signed tensor onto the unsigned optical domain.
struct SignedMapping {
  double scale = 1.0;  ///< max |w| of the original tensor

  /// w (|w| <= scale) -> [0, 1].
  double to_unit(double w) const;
  /// [0, 1] -> w.
  double from_unit(double u) const;
};

/// Computes the mapping for a tensor (scale = max abs value; 1 when all 0).
SignedMapping signed_mapping_for(const Matrix& w);

/// Maps a whole matrix into [0, 1] with the given mapping.
Matrix to_unit_matrix(const Matrix& w, const SignedMapping& mapping);

/// Normalization of a non-negative activation matrix to [0, 1].
/// Returns the scale (max element; 1 when all zero).
double normalize_activations(Matrix& x);

/// Normalized copy: writes x / scale into `out` (resized to x's shape)
/// without mutating x and without the intermediate full copy a
/// copy-then-normalize pays.  Bit-identical to normalize_activations on a
/// copy of x; returns the scale.
double normalized_activations(const Matrix& x, Matrix& out);

}  // namespace ptc::nn

#endif  // PTC_NN_QUANT_HPP
