#include "nn/dataset.hpp"

#include <algorithm>
#include <array>
#include <string_view>

#include "common/expects.hpp"

namespace ptc::nn {

namespace {

// 8x8 bitmap glyphs for digits 0..9 ('#' = 1, '.' = 0).
constexpr std::array<std::array<std::string_view, 8>, 10> glyph_art = {{
    {{"..####..", ".#....#.", "#......#", "#......#", "#......#", "#......#",
      ".#....#.", "..####.."}},
    {{"...##...", "..###...", ".#.#....", "...#....", "...#....", "...#....",
      "...#....", ".######."}},
    {{".#####..", "#.....#.", "......#.", ".....#..", "...##...", "..#.....",
      ".#......", "#######."}},
    {{".#####..", "......#.", "......#.", "..####..", "......#.", "......#.",
      "#.....#.", ".#####.."}},
    {{"....##..", "...#.#..", "..#..#..", ".#...#..", "#....#..", "#######.",
      ".....#..", ".....#.."}},
    {{"#######.", "#.......", "#.......", "######..", "......#.", "......#.",
      "#.....#.", ".#####.."}},
    {{"..####..", ".#......", "#.......", "######..", "#.....#.", "#.....#.",
      ".#....#.", "..####.."}},
    {{"#######.", "......#.", ".....#..", "....#...", "...#....", "..#.....",
      ".#......", "#......."}},
    {{".#####..", "#.....#.", "#.....#.", ".#####..", "#.....#.", "#.....#.",
      "#.....#.", ".#####.."}},
    {{".#####..", "#.....#.", "#.....#.", ".######.", "......#.", ".....#..",
      "....#...", ".###...."}},
}};

}  // namespace

Matrix glyph(std::size_t digit) {
  expects(digit < glyph_classes, "digit class out of range");
  Matrix g(glyph_side, glyph_side);
  for (std::size_t r = 0; r < glyph_side; ++r) {
    for (std::size_t c = 0; c < glyph_side; ++c) {
      g(r, c) = glyph_art[digit][r][c] == '#' ? 1.0 : 0.0;
    }
  }
  return g;
}

Dataset make_dataset(std::size_t n, Rng& rng, double noise) {
  expects(n >= 1, "dataset must be non-empty");
  expects(noise >= 0.0 && noise <= 1.0, "noise amplitude must be in [0, 1]");

  Dataset data;
  data.inputs = Matrix(n, glyph_pixels);
  data.labels.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const auto digit = static_cast<std::size_t>(rng.below(glyph_classes));
    data.labels[s] = digit;
    const Matrix g = glyph(digit);
    // +-1 pixel circular shift in each axis.
    const int dr = static_cast<int>(rng.below(3)) - 1;
    const int dc = static_cast<int>(rng.below(3)) - 1;
    for (std::size_t r = 0; r < glyph_side; ++r) {
      for (std::size_t c = 0; c < glyph_side; ++c) {
        const std::size_t src_r =
            (r + glyph_side - static_cast<std::size_t>((dr + 8) % 8)) %
            glyph_side;
        const std::size_t src_c =
            (c + glyph_side - static_cast<std::size_t>((dc + 8) % 8)) %
            glyph_side;
        double v = g(src_r, src_c) + rng.uniform(-noise, noise);
        data.inputs(s, r * glyph_side + c) = std::clamp(v, 0.0, 1.0);
      }
    }
  }
  return data;
}

}  // namespace ptc::nn
