#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::nn {

UnsignedQuantizer::UnsignedQuantizer(unsigned bits) : bits_(bits) {
  expects(bits >= 1 && bits <= 16, "bits must be in [1, 16]");
}

std::uint32_t UnsignedQuantizer::quantize(double x) const {
  expects(x >= -1e-9 && x <= 1.0 + 1e-9, "input must be normalized to [0, 1]");
  const double clamped = std::clamp(x, 0.0, 1.0);
  return static_cast<std::uint32_t>(
      std::lround(clamped * static_cast<double>(max_code())));
}

double UnsignedQuantizer::dequantize(std::uint32_t code) const {
  expects(code <= max_code(), "code out of range");
  return static_cast<double>(code) / static_cast<double>(max_code());
}

double UnsignedQuantizer::max_error() const {
  return 0.5 / static_cast<double>(max_code());
}

double SignedMapping::to_unit(double w) const {
  return 0.5 * (w / scale + 1.0);
}

double SignedMapping::from_unit(double u) const {
  return (2.0 * u - 1.0) * scale;
}

SignedMapping signed_mapping_for(const Matrix& w) {
  double max_abs = 0.0;
  for (double v : w.data()) max_abs = std::max(max_abs, std::fabs(v));
  return SignedMapping{max_abs > 0.0 ? max_abs : 1.0};
}

Matrix to_unit_matrix(const Matrix& w, const SignedMapping& mapping) {
  Matrix out = w;
  for (double& v : out.data()) v = std::clamp(mapping.to_unit(v), 0.0, 1.0);
  return out;
}

namespace {

/// Validated max-element scale of an activation matrix (1 when all zero).
double activation_scale(const Matrix& x) {
  double max_val = 0.0;
  for (double v : x.data()) {
    expects(v >= 0.0, "activations must be non-negative (intensity encoding)");
    max_val = std::max(max_val, v);
  }
  return max_val > 0.0 ? max_val : 1.0;
}

}  // namespace

double normalize_activations(Matrix& x) {
  const double scale = activation_scale(x);
  for (double& v : x.data()) v /= scale;
  return scale;
}

double normalized_activations(const Matrix& x, Matrix& out) {
  const double scale = activation_scale(x);
  out = Matrix(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    out.data()[i] = x.data()[i] / scale;
  }
  return scale;
}

}  // namespace ptc::nn
