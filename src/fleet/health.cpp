#include "fleet/health.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expects.hpp"

namespace ptc::fleet {

DriftEstimator::DriftEstimator(std::vector<double> kelvin,
                               std::vector<double> ratio,
                               const DriftEstimatorConfig& config)
    : config_(config) {
  expects(kelvin.size() == ratio.size() && kelvin.size() >= 2,
          "estimator curve needs >= 2 matched (kelvin, ratio) points");
  expects(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
          "EWMA alpha must be in (0, 1]");
  expects(config_.slope_window >= 2,
          "slope window needs at least two samples");
  // Strictly increasing envelope: inversion must be unique, so points that
  // fail to raise the ratio (flat bottom of the resonance notch, sampling
  // noise near 0 K) collapse onto their predecessor.
  kelvin_.push_back(kelvin.front());
  ratio_.push_back(ratio.front());
  for (std::size_t i = 1; i < kelvin.size(); ++i) {
    expects(kelvin[i] > kelvin[i - 1],
            "estimator curve kelvin grid must be strictly increasing");
    if (ratio[i] > ratio_.back()) {
      kelvin_.push_back(kelvin[i]);
      ratio_.push_back(ratio[i]);
    }
  }
  expects(kelvin_.size() >= 2,
          "probe response curve is flat — probe row not detuning-sensitive");
}

DriftEstimator DriftEstimator::characterize(core::TensorCore& core,
                                            double max_kelvin,
                                            std::size_t points,
                                            const DriftEstimatorConfig& config) {
  expects(max_kelvin > 0.0, "characterization range must be positive");
  expects(points >= 2, "characterization needs >= 2 points per branch");
  std::vector<double> grid(points);
  for (std::size_t i = 0; i < points; ++i) {
    grid[i] = max_kelvin * static_cast<double>(i) /
              static_cast<double>(points - 1);
  }
  std::vector<double> mirrored(points);
  for (std::size_t i = 0; i < points; ++i) mirrored[i] = -grid[i];
  // Heating and cooling shift the rings in opposite spectral directions
  // but both walk the probe off resonance; the estimator reports |K|, so
  // the curve is the mean of the two signed branches.
  const std::vector<double> plus = core.probe_response_curve(grid);
  const std::vector<double> minus = core.probe_response_curve(mirrored);
  std::vector<double> ratio(points);
  for (std::size_t i = 0; i < points; ++i) {
    ratio[i] = 0.5 * (plus[i] + minus[i]);
  }
  return DriftEstimator(std::move(grid), std::move(ratio), config);
}

void DriftEstimator::reset() {
  estimate_ = 0.0;
  raw_ = 0.0;
  observations_ = 0;
  window_.clear();
}

double DriftEstimator::invert(double ratio) const {
  if (ratio <= ratio_.front()) return kelvin_.front();
  if (ratio >= ratio_.back()) return kelvin_.back();
  // First curve point at or above the reading; the envelope is strictly
  // increasing, so the bracketing segment interpolates uniquely.
  const auto it = std::lower_bound(ratio_.begin(), ratio_.end(), ratio);
  const std::size_t j = static_cast<std::size_t>(it - ratio_.begin());
  const double r0 = ratio_[j - 1];
  const double r1 = ratio_[j];
  const double f = (ratio - r0) / (r1 - r0);
  return kelvin_[j - 1] + f * (kelvin_[j] - kelvin_[j - 1]);
}

void DriftEstimator::observe(double t, double ratio) {
  raw_ = invert(ratio);
  estimate_ = observations_ == 0
                  ? raw_
                  : estimate_ + config_.ewma_alpha * (raw_ - estimate_);
  ++observations_;
  window_.emplace_back(t, estimate_);
  while (window_.size() > config_.slope_window) window_.pop_front();
}

double DriftEstimator::slope() const {
  if (window_.size() < 2) return 0.0;
  const double n = static_cast<double>(window_.size());
  double t_mean = 0.0;
  double y_mean = 0.0;
  for (const auto& [t, y] : window_) {
    t_mean += t;
    y_mean += y;
  }
  t_mean /= n;
  y_mean /= n;
  double num = 0.0;
  double den = 0.0;
  for (const auto& [t, y] : window_) {
    num += (t - t_mean) * (y - y_mean);
    den += (t - t_mean) * (t - t_mean);
  }
  return den > 0.0 ? num / den : 0.0;
}

AnomalyDetector::AnomalyDetector(const AnomalyConfig& config)
    : config_(config) {
  expects(config_.window >= 2, "anomaly window needs >= 2 samples");
  expects(config_.min_samples >= 2,
          "anomaly detection needs >= 2 warm-up samples");
  expects(config_.threshold > 0.0, "anomaly threshold must be positive");
  expects(config_.slack >= 0.0, "CUSUM slack must be >= 0");
  expects(config_.min_sigma > 0.0, "variance floor must be positive");
}

void AnomalyDetector::reset() {
  window_.clear();
  sum_ = 0.0;
  sum_sq_ = 0.0;
  baseline_mean_ = 0.0;
  baseline_sigma_ = 0.0;
  baseline_frozen_ = false;
  cusum_hi_ = 0.0;
  cusum_lo_ = 0.0;
  score_ = 0.0;
  anomalous_ = false;
  observations_ = 0;
  // alarms_ survives reset()?  No: reset is "fresh run / fresh baseline".
  alarms_ = 0;
}

bool AnomalyDetector::observe(double /*t*/, double v) {
  ++observations_;
  if (config_.kind == AnomalyConfig::Kind::kZScore) {
    bool detect = false;
    if (window_.size() >= config_.min_samples) {
      // Score against the trailing window *before* this sample joins it,
      // so a step change cannot hide inside its own statistics.
      const double n = static_cast<double>(window_.size());
      const double mean = sum_ / n;
      const double var = std::max(0.0, sum_sq_ / n - mean * mean);
      const double sigma = std::max(std::sqrt(var), config_.min_sigma);
      score_ = std::abs(v - mean) / sigma;
      detect = score_ >= config_.threshold;
    } else {
      score_ = 0.0;
    }
    window_.push_back(v);
    sum_ += v;
    sum_sq_ += v * v;
    if (window_.size() > config_.window) {
      const double old = window_.front();
      window_.pop_front();
      sum_ -= old;
      sum_sq_ -= old * old;
    }
    const bool rising = detect && !anomalous_;
    anomalous_ = detect;
    if (rising) ++alarms_;
    return rising;
  }

  // CUSUM: accumulate standardized deviations against a baseline frozen
  // from the first `window` samples; alarm when either one-sided sum
  // crosses the decision interval, then restart the sums.
  if (!baseline_frozen_) {
    window_.push_back(v);
    sum_ += v;
    sum_sq_ += v * v;
    if (window_.size() >= config_.window) {
      const double n = static_cast<double>(window_.size());
      baseline_mean_ = sum_ / n;
      const double var =
          std::max(0.0, sum_sq_ / n - baseline_mean_ * baseline_mean_);
      baseline_sigma_ = std::max(std::sqrt(var), config_.min_sigma);
      baseline_frozen_ = true;
    }
    score_ = 0.0;
    anomalous_ = false;
    return false;
  }
  const double z = (v - baseline_mean_) / baseline_sigma_;
  cusum_hi_ = std::max(0.0, cusum_hi_ + z - config_.slack);
  cusum_lo_ = std::max(0.0, cusum_lo_ - z - config_.slack);
  score_ = std::max(cusum_hi_, cusum_lo_);
  const bool detect =
      score_ >= config_.threshold && observations_ >= config_.min_samples;
  anomalous_ = detect;
  if (detect) {
    ++alarms_;
    cusum_hi_ = 0.0;
    cusum_lo_ = 0.0;
  }
  return detect;
}

FleetHealthMonitor::FleetHealthMonitor(runtime::Accelerator& accelerator,
                                       const HealthConfig& config)
    : accelerator_(accelerator), config_(config), store_(config.series) {
  expects(config_.probe_samples >= 1,
          "a probe sweep must burn at least one ADC window");
  estimators_.reserve(accelerator_.core_count());
  detectors_.reserve(accelerator_.core_count());
  endurance_detectors_.reserve(accelerator_.core_count());
  for (std::size_t i = 0; i < accelerator_.core_count(); ++i) {
    estimators_.push_back(DriftEstimator::characterize(
        accelerator_.core(i), config_.curve_max_kelvin, config_.curve_points,
        config_.estimator));
    detectors_.emplace_back(config_.anomaly);
    endurance_detectors_.emplace_back(config_.endurance);
  }
  endurance_floor_fired_.assign(accelerator_.core_count(), 0);
}

void FleetHealthMonitor::set_metrics(telemetry::MetricsRegistry* metrics) {
  metrics_ = metrics;
}

void FleetHealthMonitor::set_tracer(telemetry::Tracer* tracer) {
  tracer_ = tracer;
}

void FleetHealthMonitor::reset() {
  for (DriftEstimator& estimator : estimators_) estimator.reset();
  for (AnomalyDetector& detector : detectors_) detector.reset();
  for (AnomalyDetector& detector : endurance_detectors_) detector.reset();
  endurance_floor_fired_.assign(endurance_floor_fired_.size(), 0);
  store_.clear();
  alerts_.clear();
  alerts_since_recalibration_ = 0;
  endurance_alarms_ = 0;
  samples_taken_ = 0;
  last_sample_time_ = 0.0;
}

std::string FleetHealthMonitor::channel_name(std::size_t core,
                                             const char* sensor) const {
  return "core" + std::to_string(core) + "/" + sensor;
}

void FleetHealthMonitor::sample(double t) {
  ++samples_taken_;
  last_sample_time_ = t;
  // One rising-edge alert; endurance alarms bypass the recalibration
  // counter — re-locking cannot un-wear pSRAM, so feeding them into the
  // recalibrate_on_anomaly trigger would buy downtime for nothing.
  const auto fire_alert = [this](double at, std::size_t core_index,
                                 std::string name, double value, double score,
                                 bool feeds_recalibration) {
    HealthAlert alert;
    alert.time = at;
    alert.core = core_index;
    alert.name = std::move(name);
    alert.value = value;
    alert.score = score;
    if (feeds_recalibration) ++alerts_since_recalibration_;
    if (tracer_ != nullptr) {
      tracer_->instant(telemetry::track::kServe, "health_alert", "slo", at,
                       {{"slo", alert.name.c_str()},
                        {"core", core_index},
                        {"value", value},
                        {"score", score}});
    }
    if (metrics_ != nullptr) {
      metrics_
          ->counter("slo_alerts_total", {{"slo", alert.name}},
                    "multi-window burn-rate alert firings")
          .inc();
    }
    alerts_.push_back(std::move(alert));
  };
  for (std::size_t i = 0; i < estimators_.size(); ++i) {
    // An evicted core is out of the serving rotation: the sweep does not
    // probe it, and (below) its stale estimate cannot drive fleet-wide
    // recalibration.  Readmission resumes sampling where it left off.
    if (accelerator_.core_evicted(i)) continue;
    core::TensorCore& core = accelerator_.core(i);
    const double ratio = core.probe_transmission();
    DriftEstimator& estimator = estimators_[i];
    estimator.observe(t, ratio);
    const double kelvin = estimator.estimate();
    // Heater duty the re-lock servo would command to cancel the estimated
    // detuning — the controller's own output, hence measurable.
    const double duty =
        std::min(1.0, heater_.heater_power_per_kelvin * kelvin /
                          heater_.max_heater_power);
    const double saturation = core.adc_saturation_rate();

    store_.channel(channel_name(i, "probe_transmission")).append(t, ratio);
    store_.channel(channel_name(i, "detuning_estimate_kelvin"))
        .append(t, kelvin);
    store_.channel(channel_name(i, "heater_duty")).append(t, duty);
    store_.channel(channel_name(i, "calibration_epoch"))
        .append(t, static_cast<double>(core.calibration_epoch()));
    store_.channel(channel_name(i, "psram_bit_flips"))
        .append(t, static_cast<double>(core.psram().bit_flips()));
    store_.channel(channel_name(i, "psram_max_cell_flips"))
        .append(t, static_cast<double>(core.psram().max_cell_flips()));
    store_.channel(channel_name(i, "adc_saturation_rate"))
        .append(t, saturation);

    if (metrics_ != nullptr) {
      const telemetry::LabelSet labels = {{"core", std::to_string(i)}};
      metrics_
          ->gauge("fleet_core_detuning_estimate", labels,
                  "sensor-derived |detuning| estimate per core [K]")
          .set(kelvin);
      metrics_
          ->gauge("fleet_core_probe_transmission", labels,
                  "pilot-tone probe transmission ratio per core")
          .set(ratio);
    }
    if (tracer_ != nullptr) {
      const int tid = telemetry::track::kCoreBase + static_cast<int>(i);
      tracer_->counter(tid, "probe_transmission", t, ratio);
      tracer_->counter(tid, "detuning_estimate_kelvin", t, kelvin);
    }

    AnomalyDetector& detector = detectors_[i];
    if (detector.observe(t, ratio)) {
      fire_alert(t, i, "core" + std::to_string(i) + "-probe-anomaly", ratio,
                 detector.score(), /*feeds_recalibration=*/true);
    }

    // pSRAM endurance: only meaningful on fleets that model wear-out
    // (core::FaultConfig::psram_endurance_median > 0).  The remaining
    // budget is a measurable — the controller counts its own writes
    // against the rated endurance — so the channel stays oracle-free.
    if (core.psram().endurance_enabled()) {
      const double remaining = core.psram().endurance_remaining();
      store_.channel(channel_name(i, "endurance_remaining"))
          .append(t, remaining);
      if (metrics_ != nullptr) {
        metrics_
            ->gauge("fleet_core_endurance_remaining",
                    {{"core", std::to_string(i)}},
                    "fraction of rated pSRAM write endurance left per core")
            .set(remaining);
      }
      AnomalyDetector& wear = endurance_detectors_[i];
      const bool rate_change = wear.observe(t, remaining);
      const bool floor_crossed =
          remaining < config_.endurance_floor && endurance_floor_fired_[i] == 0;
      if (floor_crossed) endurance_floor_fired_[i] = 1;
      if (rate_change || floor_crossed) {
        ++endurance_alarms_;
        fire_alert(t, i, "core" + std::to_string(i) + "-endurance", remaining,
                   wear.score(), /*feeds_recalibration=*/false);
      }
    }
  }
}

void FleetHealthMonitor::on_recalibration(double /*t*/) {
  // The re-lock pulls every probe back to ratio 1: estimator history and
  // anomaly baselines describe the pre-recalibration regime, so both
  // restart cleanly rather than chase a step change they caused.
  for (DriftEstimator& estimator : estimators_) estimator.reset();
  for (AnomalyDetector& detector : detectors_) detector.reset();
  alerts_since_recalibration_ = 0;
}

const DriftEstimator& FleetHealthMonitor::estimator(std::size_t core) const {
  expects(core < estimators_.size(), "core index out of range");
  return estimators_[core];
}

const AnomalyDetector& FleetHealthMonitor::detector(std::size_t core) const {
  expects(core < detectors_.size(), "core index out of range");
  return detectors_[core];
}

double FleetHealthMonitor::estimate(std::size_t core) const {
  expects(core < estimators_.size(), "core index out of range");
  return estimators_[core].estimate();
}

double FleetHealthMonitor::max_estimate() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < estimators_.size(); ++i) {
    // Evicted cores keep their last estimate but are out of the rotation;
    // letting a stale reading trigger fleet-wide downtime would charge the
    // survivors for a core that is not even serving.
    if (accelerator_.core_evicted(i)) continue;
    worst = std::max(worst, estimators_[i].estimate());
  }
  return worst;
}

}  // namespace ptc::fleet
