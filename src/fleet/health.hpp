#ifndef PTC_FLEET_HEALTH_HPP
#define PTC_FLEET_HEALTH_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "optics/thermal.hpp"
#include "runtime/accelerator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

/// Fleet health monitoring: per-core sensor channels sampled on modeled
/// time, online estimators that reconstruct thermal drift from what a real
/// deployment can measure, and rising-edge anomaly alerting — the
/// observability half of fault-tolerant fleet operations.
///
/// The point of this layer is what it does NOT read: the simulator's oracle
/// detuning (`Accelerator::max_abs_detuning`).  Every input is a physical
/// measurable — pilot-tone probe transmission through each core's reserved
/// calibration row, calibration epochs, pSRAM write-endurance counters, ADC
/// saturation rates — and the serving loop's `estimated_drift_threshold`
/// trigger closes the recalibration loop on the *estimate* alone.  The
/// oracle stays available to benches and tests as ground truth to score the
/// estimator against.
///
/// Determinism contract: sampling happens from the Server's event loop at
/// modeled instants, estimator state is a pure function of the observed
/// (t, value) sequence, and per-core iteration is in core order — so
/// estimates, alerts, and exports are bit-identical across host thread
/// counts.
namespace ptc::fleet {

struct DriftEstimatorConfig {
  /// EWMA smoothing factor on the inverted kelvin estimate in (0, 1];
  /// 1 disables smoothing.
  double ewma_alpha = 0.35;
  /// Trailing (t, estimate) samples the least-squares slope is fit over.
  std::size_t slope_window = 8;
};

/// Maps probe-transmission ratios back to estimated |detuning| [K] through
/// a measured characterization curve (core::TensorCore::probe_response_curve
/// swept at build time), then EWMA-smooths and tracks the drift slope.
///
/// The curve is the *averaged* response of the two signed branches
/// (heating and cooling detune the rings in opposite spectral directions
/// but raise the probe transmission on both), reduced to its strictly
/// increasing envelope so inversion is unique; readings are clamped to the
/// characterized range.
class DriftEstimator {
 public:
  /// `kelvin` ascending from 0; `ratio` the probe transmission at each
  /// point.  Points that do not strictly increase the ratio are dropped
  /// (monotone envelope).
  DriftEstimator(std::vector<double> kelvin, std::vector<double> ratio,
                 const DriftEstimatorConfig& config = {});

  /// Builds a core's estimator by sweeping its probe row over
  /// [-max_kelvin, +max_kelvin] in `points` steps per branch and averaging
  /// the branches.
  static DriftEstimator characterize(core::TensorCore& core,
                                     double max_kelvin, std::size_t points,
                                     const DriftEstimatorConfig& config = {});

  /// Forgets the EWMA / slope state (post-recalibration re-lock).
  void reset();

  /// One probe reading at modeled time `t`.
  void observe(double t, double ratio);

  /// Raw curve inversion of a ratio — exposed for tests and the console.
  double invert(double ratio) const;

  /// EWMA-smoothed |detuning| estimate [K] (0 before any observation).
  double estimate() const { return estimate_; }
  /// Last un-smoothed inversion [K].
  double raw() const { return raw_; }
  /// Least-squares d|detuning|/dt over the slope window [K/s].
  double slope() const;
  std::uint64_t observations() const { return observations_; }

  const std::vector<double>& curve_kelvin() const { return kelvin_; }
  const std::vector<double>& curve_ratio() const { return ratio_; }

 private:
  DriftEstimatorConfig config_;
  std::vector<double> kelvin_;  ///< strictly-increasing-ratio envelope
  std::vector<double> ratio_;
  double estimate_ = 0.0;
  double raw_ = 0.0;
  std::uint64_t observations_ = 0;
  std::deque<std::pair<double, double>> window_;  ///< (t, estimate)
};

struct AnomalyConfig {
  enum class Kind {
    kZScore,  ///< |value - rolling mean| / rolling std >= threshold
    kCusum,   ///< two-sided CUSUM vs a frozen baseline >= threshold
  };
  Kind kind = Kind::kZScore;
  /// Rolling-window length (z-score) or baseline sample count (CUSUM).
  std::size_t window = 32;
  /// Observations required before any detection fires.
  std::size_t min_samples = 8;
  /// Detection threshold in baseline standard deviations (z threshold, or
  /// the CUSUM decision interval h).
  double threshold = 4.0;
  /// CUSUM slack k [sigmas]: drifts slower than this per sample are
  /// absorbed (ignored by z-score).
  double slack = 0.5;
  /// Variance floor so a perfectly flat baseline cannot divide by zero.
  double min_sigma = 1e-12;
};

/// Online change detection over one scalar channel.  observe() returns
/// true only on the *rising edge* of the anomaly condition — the alerting
/// convention SLO monitors use, so firings plug into the same plumbing.
class AnomalyDetector {
 public:
  explicit AnomalyDetector(const AnomalyConfig& config = {});

  void reset();

  /// One sample; returns true when this observation newly trips detection.
  bool observe(double t, double v);

  /// True while the detection condition held at the last observation.
  bool anomalous() const { return anomalous_; }
  /// Last detection statistic [sigmas] (|z|, or the larger CUSUM sum).
  double score() const { return score_; }
  std::uint64_t alarms() const { return alarms_; }
  std::uint64_t observations() const { return observations_; }

  const AnomalyConfig& config() const { return config_; }

 private:
  AnomalyConfig config_;
  std::deque<double> window_;  ///< z-score rolling window
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  // CUSUM state: baseline frozen after `window` samples.
  double baseline_mean_ = 0.0;
  double baseline_sigma_ = 0.0;
  bool baseline_frozen_ = false;
  double cusum_hi_ = 0.0;
  double cusum_lo_ = 0.0;
  double score_ = 0.0;
  bool anomalous_ = false;
  std::uint64_t alarms_ = 0;
  std::uint64_t observations_ = 0;
};

/// One rising-edge health alert.
struct HealthAlert {
  double time = 0.0;     ///< modeled sample instant
  std::size_t core = 0;  ///< core whose channel tripped
  std::string name;      ///< alert name (the `slo` label on exports)
  double value = 0.0;    ///< channel reading at the firing
  double score = 0.0;    ///< detector statistic [sigmas]
};

struct HealthConfig {
  /// ADC sample windows each core's probe burns per sensor sweep — the
  /// probe-cost knob (runtime::Accelerator::probe_cost).
  std::size_t probe_samples = 4;
  /// Characterization sweep range [K] and points per signed branch.
  double curve_max_kelvin = 4.0;
  std::size_t curve_points = 33;
  DriftEstimatorConfig estimator{};
  /// Change detection on each core's probe-transmission channel.
  AnomalyConfig anomaly{};
  /// Change detection on each core's pSRAM endurance-remaining channel —
  /// CUSUM by default, because wear is a slow monotone ramp whose *rate
  /// change* (a cell population starting to fail) is the anomaly, not any
  /// single reading.  Only sampled on fleets that model endurance
  /// (core::FaultConfig::psram_endurance_median > 0).
  AnomalyConfig endurance{
      .kind = AnomalyConfig::Kind::kCusum,
      .window = 16,
      .min_samples = 8,
      .threshold = 8.0,
      .slack = 0.5,
      .min_sigma = 1e-12,
  };
  /// Hard floor on endurance remaining: crossing below it fires a
  /// `coreN-endurance` alert (rising edge) regardless of the detector —
  /// the end-of-life warning the operator acts on.
  double endurance_floor = 0.1;
  /// Ring geometry for every sensor channel.
  telemetry::TimeSeriesOptions series{};
};

/// Owns the per-core sensor channels, estimators, and detectors; the
/// Server samples it at the policy's probe cadence and consults
/// max_estimate() for the oracle-free recalibration trigger.  The operator
/// console answers FLEET:CORE<n>:HEALth? / HEALth:ALERts? from it.
class FleetHealthMonitor {
 public:
  FleetHealthMonitor(runtime::Accelerator& accelerator,
                     const HealthConfig& config = {});

  /// Telemetry sinks (nullptr detaches).  While attached, every sample
  /// publishes fleet_core_detuning_estimate{core} /
  /// fleet_core_probe_transmission{core} gauges and per-core trace counter
  /// tracks; alert firings emit `health_alert` instants and
  /// slo_alerts_total{slo} counters through the SLO plumbing.
  void set_metrics(telemetry::MetricsRegistry* metrics);
  void set_tracer(telemetry::Tracer* tracer);

  /// Forgets run state: estimators, detectors, series, alerts.  The
  /// characterization curves persist — they are device properties.
  void reset();

  /// One sensor sweep across the fleet at modeled time `t`: reads each
  /// core's probe transmission, epoch, pSRAM endurance counters, and ADC
  /// saturation rate into the time-series store, updates the estimators
  /// and detectors, and publishes to the attached sinks.  Reads sensors
  /// only — never the oracle detuning.
  void sample(double t);

  /// The serving loop recalibrated at `t`: estimator and detector state
  /// resets (the probe re-locks to ratio 1), pending anomaly flags clear.
  void on_recalibration(double t);

  std::size_t core_count() const { return estimators_.size(); }
  const DriftEstimator& estimator(std::size_t core) const;
  const AnomalyDetector& detector(std::size_t core) const;

  /// EWMA |detuning| estimate for one core / the worst across the fleet
  /// [K] — the Server's estimated_drift_threshold trigger input.  The max
  /// skips evicted cores: a core out of the serving rotation must not
  /// trigger fleet-wide recalibration downtime.
  double estimate(std::size_t core) const;
  double max_estimate() const;

  /// Endurance alarms fired since reset() (subset of alerts()).  These are
  /// deliberately excluded from alerts_since_recalibration(): re-locking
  /// cannot un-wear pSRAM, so they must not feed the recalibrate_on_anomaly
  /// trigger into a downtime loop.
  std::uint64_t endurance_alarms() const { return endurance_alarms_; }

  /// Sweeps performed since reset().
  std::uint64_t samples_taken() const { return samples_taken_; }
  /// Modeled time of the last sweep (0 before any).
  double last_sample_time() const { return last_sample_time_; }

  const std::vector<HealthAlert>& alerts() const { return alerts_; }
  std::uint64_t alerts_since_recalibration() const {
    return alerts_since_recalibration_;
  }

  const telemetry::TimeSeriesStore& store() const { return store_; }
  telemetry::TimeSeriesStore& store() { return store_; }

  const HealthConfig& config() const { return config_; }

 private:
  std::string channel_name(std::size_t core, const char* sensor) const;

  runtime::Accelerator& accelerator_;
  HealthConfig config_;
  std::vector<DriftEstimator> estimators_;
  std::vector<AnomalyDetector> detectors_;
  std::vector<AnomalyDetector> endurance_detectors_;
  std::vector<std::uint8_t> endurance_floor_fired_;  ///< rising-edge latch
  telemetry::TimeSeriesStore store_;
  std::vector<HealthAlert> alerts_;
  std::uint64_t alerts_since_recalibration_ = 0;
  std::uint64_t endurance_alarms_ = 0;
  std::uint64_t samples_taken_ = 0;
  double last_sample_time_ = 0.0;
  optics::ThermalTunerConfig heater_;  ///< duty model for the heater channel
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
};

}  // namespace ptc::fleet

#endif  // PTC_FLEET_HEALTH_HPP
