#include "optics/optical_signal.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace ptc::optics {

WdmSignal::WdmSignal(std::vector<ChannelPower> channels)
    : channels_(std::move(channels)) {
  for (const auto& ch : channels_) {
    expects(ch.wavelength > 0.0, "channel wavelength must be positive");
    expects(ch.power >= 0.0, "channel power must be non-negative");
  }
}

WdmSignal WdmSignal::single(double wavelength, double power) {
  WdmSignal s;
  s.add_channel(wavelength, power);
  return s;
}

const ChannelPower& WdmSignal::channel(std::size_t i) const {
  expects(i < channels_.size(), "channel index out of range");
  return channels_[i];
}

ChannelPower& WdmSignal::channel(std::size_t i) {
  expects(i < channels_.size(), "channel index out of range");
  return channels_[i];
}

void WdmSignal::add_channel(double wavelength, double power) {
  expects(wavelength > 0.0, "channel wavelength must be positive");
  expects(power >= 0.0, "channel power must be non-negative");
  channels_.push_back({wavelength, power});
}

double WdmSignal::total_power() const {
  double sum = 0.0;
  for (const auto& ch : channels_) sum += ch.power;
  return sum;
}

WdmSignal& WdmSignal::scale(double factor) {
  expects(factor >= 0.0, "scale factor must be non-negative");
  for (auto& ch : channels_) ch.power *= factor;
  return *this;
}

WdmSignal& WdmSignal::add(const WdmSignal& other) {
  constexpr double match_tol = 1e-15;  // 1 fm
  for (const auto& theirs : other.channels_) {
    bool merged = false;
    for (auto& ours : channels_) {
      if (std::fabs(ours.wavelength - theirs.wavelength) < match_tol) {
        ours.power += theirs.power;
        merged = true;
        break;
      }
    }
    if (!merged) channels_.push_back(theirs);
  }
  return *this;
}

}  // namespace ptc::optics
