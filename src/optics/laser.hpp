#ifndef PTC_OPTICS_LASER_HPP
#define PTC_OPTICS_LASER_HPP

#include "optics/optical_signal.hpp"

/// Laser sources.  Every optical watt delivered on chip costs
/// 1 / wall_plug_efficiency electrical watts; the paper uses a wall-plug
/// efficiency of 0.23 (ref. [47]) for all bias and write lasers, and we track
/// that in the energy roll-ups.
namespace ptc::optics {

/// Continuous-wave single-wavelength laser.
class CwLaser {
 public:
  /// wavelength [m], optical output power [W], wall-plug efficiency (0, 1].
  CwLaser(double wavelength, double power, double wall_plug_efficiency = 0.23);

  double wavelength() const { return wavelength_; }
  double power() const { return power_; }
  double wall_plug_efficiency() const { return wall_plug_efficiency_; }

  /// Electrical power drawn from the supply to sustain the optical output [W].
  double wall_power() const { return power_ / wall_plug_efficiency_; }

  /// Emitted signal (one channel at the laser wavelength).
  WdmSignal emit() const { return WdmSignal::single(wavelength_, power_); }

 private:
  double wavelength_;
  double power_;
  double wall_plug_efficiency_;
};

/// Gated write laser producing rectangular optical pulses, used to drive the
/// pSRAM write bitlines (0 dBm, 50 ps pulses in the paper).
class PulsedLaser {
 public:
  /// wavelength [m], peak power while gated on [W], wall-plug efficiency.
  PulsedLaser(double wavelength, double peak_power,
              double wall_plug_efficiency = 0.23);

  /// Schedules a pulse [t_start, t_start + width).
  void schedule_pulse(double t_start, double width);

  /// Removes all scheduled pulses.
  void clear();

  /// Instantaneous optical output power at time t [W].
  double power_at(double t) const;

  double wavelength() const { return wavelength_; }
  double peak_power() const { return peak_power_; }

  /// Total optical pulse energy scheduled so far [J].
  double scheduled_optical_energy() const;

  /// Electrical (wall-plug) energy for the scheduled pulses [J].
  double scheduled_wall_energy() const;

 private:
  struct Pulse {
    double start;
    double width;
  };
  double wavelength_;
  double peak_power_;
  double wall_plug_efficiency_;
  std::vector<Pulse> pulses_;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_LASER_HPP
