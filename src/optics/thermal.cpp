#include "optics/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::optics {

ThermalTuner::ThermalTuner(const ThermalTunerConfig& config) : config_(config) {
  expects(config.dlambda_dt > 0.0, "thermal coefficient must be positive");
  expects(config.heater_power_per_kelvin > 0.0,
          "heater efficiency must be positive");
  expects(config.max_heater_power > 0.0, "heater power limit must be positive");
}

void ThermalTuner::set_heater_power(double watts) {
  expects(watts >= 0.0, "heater power must be >= 0");
  heater_power_ = std::min(watts, config_.max_heater_power);
}

double ThermalTuner::temperature_rise() const {
  return heater_power_ / config_.heater_power_per_kelvin;
}

double ThermalTuner::resonance_shift() const {
  return config_.dlambda_dt * temperature_rise();
}

double ThermalTuner::power_for_shift(double dlambda) const {
  expects(dlambda >= 0.0, "heaters can only red-shift; dlambda must be >= 0");
  const double watts =
      dlambda / config_.dlambda_dt * config_.heater_power_per_kelvin;
  return std::min(watts, config_.max_heater_power);
}

ThermalDrift::ThermalDrift(double mean, double tau, double sigma)
    : mean_(mean), tau_(tau), sigma_(sigma), temperature_(mean) {
  expects(tau > 0.0, "relaxation time must be positive");
  expects(sigma >= 0.0, "sigma must be >= 0");
}

double ThermalDrift::step(double dt, Rng& rng) {
  expects(dt > 0.0, "dt must be positive");
  const double relax = std::exp(-dt / tau_);
  const double stationary_kick =
      sigma_ * std::sqrt(1.0 - relax * relax);
  temperature_ = mean_ + (temperature_ - mean_) * relax +
                 rng.normal(0.0, stationary_kick);
  return temperature_;
}

}  // namespace ptc::optics
