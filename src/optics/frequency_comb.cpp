#include "optics/frequency_comb.hpp"

#include "common/expects.hpp"
#include "common/units.hpp"

namespace ptc::optics {

FrequencyComb::FrequencyComb(WavelengthGrid grid, double power_per_line,
                             double wall_plug_efficiency)
    : grid_(std::move(grid)),
      power_per_line_(power_per_line),
      wall_plug_efficiency_(wall_plug_efficiency) {
  expects(power_per_line >= 0.0, "comb line power must be non-negative");
  expects(wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0,
          "wall-plug efficiency must be in (0, 1]");
}

WdmSignal FrequencyComb::emit() const {
  WdmSignal out;
  for (double w : grid_.wavelengths()) out.add_channel(w, power_per_line_);
  return out;
}

double FrequencyComb::wall_power() const {
  return power_per_line_ * static_cast<double>(grid_.size()) /
         wall_plug_efficiency_;
}

IntensityEncoder::IntensityEncoder(double insertion_loss_db, double extinction_db)
    : insertion_loss_db_(insertion_loss_db), extinction_db_(extinction_db) {
  expects(insertion_loss_db >= 0.0, "insertion loss must be >= 0 dB");
  expects(extinction_db > 0.0, "extinction ratio must be > 0 dB");
}

WdmSignal IntensityEncoder::encode(const WdmSignal& comb,
                                   const std::vector<double>& values) const {
  expects(values.size() == comb.size(),
          "encoder needs one value per comb line");
  const double loss = units::db_to_ratio(-insertion_loss_db_);
  const double floor = units::db_to_ratio(-extinction_db_);
  WdmSignal out = comb;
  for (std::size_t i = 0; i < values.size(); ++i) {
    expects(values[i] >= 0.0 && values[i] <= 1.0,
            "encoded values must be normalized to [0, 1]");
    // Finite extinction: transmission spans [floor, 1] instead of [0, 1].
    const double transmission = floor + (1.0 - floor) * values[i];
    out.channel(i).power *= loss * transmission;
  }
  return out;
}

}  // namespace ptc::optics
