#ifndef PTC_OPTICS_FREQUENCY_COMB_HPP
#define PTC_OPTICS_FREQUENCY_COMB_HPP

#include <vector>

#include "optics/optical_signal.hpp"
#include "optics/spectrum.hpp"

/// Optical frequency comb plus the intensity encoders that imprint the analog
/// input vector onto the comb lines (paper Sec. II-B: "the analog
/// intensity-encoded vector can be generated using an optical frequency
/// comb").
namespace ptc::optics {

/// Multi-line comb source: equally spaced lines of equal power.
class FrequencyComb {
 public:
  /// grid of line wavelengths, per-line optical power [W], wall-plug
  /// efficiency of the pump.
  FrequencyComb(WavelengthGrid grid, double power_per_line,
                double wall_plug_efficiency = 0.23);

  const WavelengthGrid& grid() const { return grid_; }
  double power_per_line() const { return power_per_line_; }

  /// All comb lines at full power.
  WdmSignal emit() const;

  /// Total electrical power to sustain the comb [W].
  double wall_power() const;

 private:
  WavelengthGrid grid_;
  double power_per_line_;
  double wall_plug_efficiency_;
};

/// Bank of intensity modulators that encodes a normalized analog vector
/// (values in [0, 1]) onto the comb lines.  A finite extinction ratio leaves
/// a floor of leakage power when the input is 0, and an insertion loss
/// attenuates all channels — both contribute to compute error in the macro.
class IntensityEncoder {
 public:
  /// insertion_loss_db >= 0; extinction_db > 0 (power ratio between fully-on
  /// and fully-off states).
  IntensityEncoder(double insertion_loss_db = 0.5, double extinction_db = 25.0);

  /// Applies values[i] to channel i of the comb output.  values must have the
  /// same length as the signal and lie in [0, 1].
  WdmSignal encode(const WdmSignal& comb, const std::vector<double>& values) const;

  double insertion_loss_db() const { return insertion_loss_db_; }
  double extinction_db() const { return extinction_db_; }

 private:
  double insertion_loss_db_;
  double extinction_db_;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_FREQUENCY_COMB_HPP
