#ifndef PTC_OPTICS_PN_PHASE_SHIFTER_HPP
#define PTC_OPTICS_PN_PHASE_SHIFTER_HPP

/// Plasma-dispersion pn-junction phase shifter embedded in the microrings.
///
/// Applying a voltage across the junction changes the free-carrier density in
/// the waveguide, shifting the effective index and hence the ring resonance.
/// The model captures the two behaviours the paper relies on:
///  * a signed, monotonic resonance shift around v = 0 (the eoADC encodes the
///    analog input as the junction voltage V_REF - V_IN and needs both red
///    and blue shifts, Fig. 3(a)), and
///  * a mildly compressive (square-root) large-signal characteristic, as the
///    depletion width grows with the square root of the junction drop.
namespace ptc::optics {

struct PnJunctionConfig {
  /// Small-signal resonance tuning efficiency d(lambda)/dV at v = 0 [m/V].
  double efficiency = 17e-12;
  /// Built-in potential [V]; sets the square-root compression knee.
  double built_in_potential = 0.9;
  /// Zero-bias junction capacitance [F].
  double junction_capacitance = 18e-15;
  /// Electro-optic response time constant [s] (depletion-mode: ~ps class).
  double response_time = 2e-12;
};

class PnPhaseShifter {
 public:
  explicit PnPhaseShifter(const PnJunctionConfig& config = {});

  /// Resonance wavelength shift for junction voltage v [m].  Odd-symmetric,
  /// equal to efficiency * v for small |v|, compressing as sqrt for large |v|.
  double resonance_shift(double v) const;

  /// Small-signal voltage-dependent junction capacitance [F] (depletion
  /// approximation, clamped near forward bias).
  double capacitance(double v) const;

  /// CV^2-type switching energy to move the junction from v_from to v_to [J].
  double switching_energy(double v_from, double v_to) const;

  const PnJunctionConfig& config() const { return config_; }

 private:
  PnJunctionConfig config_;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_PN_PHASE_SHIFTER_HPP
