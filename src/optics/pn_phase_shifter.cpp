#include "optics/pn_phase_shifter.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::optics {

PnPhaseShifter::PnPhaseShifter(const PnJunctionConfig& config) : config_(config) {
  expects(config.efficiency > 0.0, "tuning efficiency must be positive");
  expects(config.built_in_potential > 0.0, "built-in potential must be positive");
  expects(config.junction_capacitance > 0.0, "junction capacitance must be positive");
  expects(config.response_time > 0.0, "response time must be positive");
}

double PnPhaseShifter::resonance_shift(double v) const {
  // Odd-symmetric square-root compression with unit slope at v = 0:
  //   f(v) = sign(v) * 2*sqrt(Vbi) * (sqrt(Vbi + |v|) - sqrt(Vbi))
  // satisfies f'(0) = 1, so `efficiency` is exactly d(lambda)/dV at zero.
  const double vbi = config_.built_in_potential;
  const double mag = 2.0 * std::sqrt(vbi) * (std::sqrt(vbi + std::fabs(v)) -
                                             std::sqrt(vbi));
  return config_.efficiency * std::copysign(mag, v);
}

double PnPhaseShifter::capacitance(double v) const {
  // Depletion capacitance Cj = Cj0 / sqrt(1 + v_rev / Vbi); clamp the forward
  // excursion so the expression stays finite near v_rev = -Vbi.
  const double vbi = config_.built_in_potential;
  const double v_rev = std::max(-0.5 * vbi, v);
  return config_.junction_capacitance / std::sqrt(1.0 + v_rev / vbi);
}

double PnPhaseShifter::switching_energy(double v_from, double v_to) const {
  // Energy drawn from the driver to slew the (voltage-dependent) junction
  // capacitance; evaluated with the mean capacitance over the swing.
  const double c_mean = 0.5 * (capacitance(v_from) + capacitance(v_to));
  const double dv = v_to - v_from;
  return 0.5 * c_mean * dv * dv;
}

}  // namespace ptc::optics
