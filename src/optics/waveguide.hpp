#ifndef PTC_OPTICS_WAVEGUIDE_HPP
#define PTC_OPTICS_WAVEGUIDE_HPP

#include "optics/optical_signal.hpp"

/// Straight/routing waveguide with propagation loss and group delay.
namespace ptc::optics {

class Waveguide {
 public:
  /// length [m], propagation loss [dB/cm], group index (for delay).
  explicit Waveguide(double length, double loss_db_per_cm = 1.5,
                     double group_index = 4.0);

  /// Attenuates all channels by the propagation loss.
  WdmSignal propagate(const WdmSignal& in) const;

  /// Power transmission factor (0, 1].
  double transmission() const;

  /// Group delay through the guide [s].
  double delay() const;

  double length() const { return length_; }

 private:
  double length_;
  double loss_db_per_cm_;
  double group_index_;
};

/// Passive absorber terminating a waveguide; records the absorbed power so
/// power-conservation tests can account for every milliwatt.
class Absorber {
 public:
  /// Absorbs the signal, accumulating its total power.
  void absorb(const WdmSignal& in) { absorbed_power_ += in.total_power(); }

  /// Sum of absorbed signal powers so far [W] (powers, not energies: callers
  /// sample this between steady-state evaluations).
  double absorbed_power() const { return absorbed_power_; }

  void reset() { absorbed_power_ = 0.0; }

 private:
  double absorbed_power_ = 0.0;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_WAVEGUIDE_HPP
