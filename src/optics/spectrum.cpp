#include "optics/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::optics {

WavelengthGrid::WavelengthGrid(std::vector<double> wavelengths)
    : wavelengths_(std::move(wavelengths)) {
  expects(!wavelengths_.empty(), "wavelength grid cannot be empty");
  expects(std::is_sorted(wavelengths_.begin(), wavelengths_.end()) &&
              std::adjacent_find(wavelengths_.begin(), wavelengths_.end()) ==
                  wavelengths_.end(),
          "wavelength grid must be strictly increasing");
  expects(wavelengths_.front() > 0.0, "wavelengths must be positive");
}

WavelengthGrid WavelengthGrid::uniform(double first, double spacing,
                                       std::size_t count) {
  expects(count >= 1, "grid needs at least one channel");
  expects(spacing > 0.0, "grid spacing must be positive");
  std::vector<double> ws(count);
  for (std::size_t i = 0; i < count; ++i)
    ws[i] = first + spacing * static_cast<double>(i);
  return WavelengthGrid(std::move(ws));
}

double WavelengthGrid::wavelength(std::size_t channel) const {
  expects(channel < wavelengths_.size(), "channel index out of range");
  return wavelengths_[channel];
}

double WavelengthGrid::spacing() const {
  expects(wavelengths_.size() >= 2, "spacing needs >= 2 channels");
  const double s = wavelengths_[1] - wavelengths_[0];
  for (std::size_t i = 1; i + 1 < wavelengths_.size(); ++i) {
    const double d = wavelengths_[i + 1] - wavelengths_[i];
    expects(std::fabs(d - s) < 1e-15 + 1e-9 * s, "grid is not uniform");
  }
  return s;
}

std::size_t WavelengthGrid::nearest_channel(double wavelength) const {
  std::size_t best = 0;
  double best_dist = std::fabs(wavelengths_[0] - wavelength);
  for (std::size_t i = 1; i < wavelengths_.size(); ++i) {
    const double d = std::fabs(wavelengths_[i] - wavelength);
    if (d < best_dist) {
      best = i;
      best_dist = d;
    }
  }
  return best;
}

}  // namespace ptc::optics
