#include "optics/laser.hpp"

#include "common/expects.hpp"

namespace ptc::optics {

CwLaser::CwLaser(double wavelength, double power, double wall_plug_efficiency)
    : wavelength_(wavelength),
      power_(power),
      wall_plug_efficiency_(wall_plug_efficiency) {
  expects(wavelength > 0.0, "laser wavelength must be positive");
  expects(power >= 0.0, "laser power must be non-negative");
  expects(wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0,
          "wall-plug efficiency must be in (0, 1]");
}

PulsedLaser::PulsedLaser(double wavelength, double peak_power,
                         double wall_plug_efficiency)
    : wavelength_(wavelength),
      peak_power_(peak_power),
      wall_plug_efficiency_(wall_plug_efficiency) {
  expects(wavelength > 0.0, "laser wavelength must be positive");
  expects(peak_power >= 0.0, "laser power must be non-negative");
  expects(wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0,
          "wall-plug efficiency must be in (0, 1]");
}

void PulsedLaser::schedule_pulse(double t_start, double width) {
  expects(width > 0.0, "pulse width must be positive");
  pulses_.push_back({t_start, width});
}

void PulsedLaser::clear() { pulses_.clear(); }

double PulsedLaser::power_at(double t) const {
  for (const auto& p : pulses_) {
    if (t >= p.start && t < p.start + p.width) return peak_power_;
  }
  return 0.0;
}

double PulsedLaser::scheduled_optical_energy() const {
  double energy = 0.0;
  for (const auto& p : pulses_) energy += peak_power_ * p.width;
  return energy;
}

double PulsedLaser::scheduled_wall_energy() const {
  return scheduled_optical_energy() / wall_plug_efficiency_;
}

}  // namespace ptc::optics
