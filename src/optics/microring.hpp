#ifndef PTC_OPTICS_MICRORING_HPP
#define PTC_OPTICS_MICRORING_HPP

#include "optics/coupler.hpp"
#include "optics/pn_phase_shifter.hpp"

/// Microring resonator (MRR) — the workhorse device of the paper: it stores
/// the pSRAM state, performs the 1-bit multiplications, and quantizes the
/// eoADC input.
///
/// The model is the standard interferometric add-drop/all-pass transfer
/// function (e.g. Bogaerts et al., "Silicon microring resonators"):
///
///   phi(lambda)   = (2 pi / lambda) * [ n(lambda) * L + n_section * dL ]
///   T_thru (add-drop) = (t2^2 a^2 - 2 t1 t2 a cos phi + t1^2) / D
///   T_drop (add-drop) = (1 - t1^2)(1 - t2^2) a / D
///   T_thru (all-pass) = (a^2 - 2 t1 a cos phi + t1^2) / D1
///   D  = 1 - 2 t1 t2 a cos phi + (t1 t2 a)^2,   D1 with t2 = 1
///
/// with self-couplings t1/t2 derived from the physical gaps, single-pass
/// amplitude a from the propagation loss, and an effective index
///   n(lambda) = n_eff0 + dn/dlambda (lambda - lambda_design) + dn_tuning
/// whose dispersion term reproduces the group index (and hence the FSR), and
/// whose tuning term aggregates pn-junction bias, heater trim, ambient
/// temperature, and fabrication error — all expressed as equivalent
/// resonance shifts (delta_n = n_g * delta_lambda / lambda).
///
/// The resonance is *pinned*: at bias == pin_bias (and zero thermal/fab
/// offsets, dL = 0) one resonance falls exactly on design_wavelength.  dL
/// (the paper's "ring adjustment length", Fig. 6) adds optical path through a
/// section of calibrated index n_section, shifting the resonance by
/// (lambda / (n_g L)) * n_section * dL — n_section's default is fitted so
/// that dL = 68 nm yields the paper's 2.33 nm channel spacing.
namespace ptc::optics {

struct MicroringConfig {
  double radius = 7.5e-6;             ///< ring radius [m]
  double dl = 0.0;                    ///< ring length adjustment [m] (Fig. 6)
  double coupling_gap_thru = 200e-9;  ///< input-bus gap [m]
  double coupling_gap_drop = 200e-9;  ///< drop-bus gap [m]; ignored if !add_drop
  bool add_drop = true;               ///< false = all-pass (single bus)
  double design_wavelength = 1310e-9; ///< resonance pinned here [m]
  double pin_bias = 0.0;              ///< bias [V] at which the pin holds
  double n_eff = 2.4;                 ///< modal effective index (order count)
  double n_g = 3.8907;                ///< group index; sets the FSR
  double n_section = 4.7957;          ///< calibrated index of the dL section
  double loss_db_per_cm = 3.0;        ///< round-trip propagation loss
  PnJunctionConfig junction;          ///< electro-optic tuning model
  double dlambda_dt = 70e-12;         ///< ambient thermal sensitivity [m/K]
  CouplerConfig coupler;              ///< gap -> coupling mapping
};

class Microring {
 public:
  explicit Microring(const MicroringConfig& config);

  // --- electrical / environmental state -----------------------------------
  /// Sets the pn-junction bias [V] (instantaneous; drivers model dynamics).
  void set_bias(double v) { bias_ = v; }
  double bias() const { return bias_; }

  /// Ambient temperature deviation from nominal [K].
  void set_temperature_offset(double delta_kelvin) { dtemp_ = delta_kelvin; }
  double temperature_offset() const { return dtemp_; }

  /// Static heater trim expressed as a resonance red-shift [m].
  void set_heater_shift(double dlambda);
  double heater_shift() const { return heater_shift_; }

  /// Fabrication-induced resonance error [m] (Monte-Carlo variation).
  void set_resonance_error(double dlambda) { fab_error_ = dlambda; }
  double resonance_error() const { return fab_error_; }

  // --- spectral responses ---------------------------------------------------
  /// Power transmission input -> thru port at the given wavelength [0, 1].
  double thru_transmission(double wavelength) const;

  /// Power transmission input -> drop port (0 for all-pass rings).
  double drop_transmission(double wavelength) const;

  /// Fraction of input power absorbed in the ring (1 - thru - drop).
  double absorbed_fraction(double wavelength) const;

  /// Resonance wavelength nearest to `wavelength`, including every active
  /// tuning contribution [m].
  double resonance_near(double wavelength) const;

  /// Free spectral range at the given wavelength [m].
  double fsr(double wavelength) const;

  /// Full width at half depth of the thru-port notch nearest `wavelength`,
  /// measured numerically [m].
  double fwhm(double wavelength) const;

  /// Loaded quality factor at the resonance nearest `wavelength`.
  double q_factor(double wavelength) const;

  // --- derived device constants ---------------------------------------------
  double circumference() const { return circumference_; }
  double self_coupling_thru() const { return t1_; }
  double self_coupling_drop() const { return t2_; }
  double single_pass_amplitude() const { return amplitude_; }

  const MicroringConfig& config() const { return config_; }
  const PnPhaseShifter& junction() const { return junction_; }

 private:
  /// Aggregate resonance shift from bias/thermal/heater/fabrication [m].
  double tuning_shift() const;

  /// Round-trip phase at the given wavelength.
  double round_trip_phase(double wavelength) const;

  MicroringConfig config_;
  PnPhaseShifter junction_;
  double circumference_;
  double n_eff0_;      ///< pinned effective index at design wavelength
  double dn_dlambda_;  ///< modal dispersion, reproduces n_g
  double t1_;
  double t2_;
  double amplitude_;   ///< single-pass field amplitude a

  double bias_ = 0.0;
  double dtemp_ = 0.0;
  double heater_shift_ = 0.0;
  double fab_error_ = 0.0;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_MICRORING_HPP
