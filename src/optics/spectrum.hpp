#ifndef PTC_OPTICS_SPECTRUM_HPP
#define PTC_OPTICS_SPECTRUM_HPP

#include <cstddef>
#include <vector>

/// WDM wavelength grids.  The vector-multiply macro of the paper assigns four
/// wavelength channels (lambda_1..lambda_4, 2.33 nm apart) within one
/// microring free spectral range; this class owns that bookkeeping.
namespace ptc::optics {

class WavelengthGrid {
 public:
  /// Grid with explicit wavelengths [m]; must be strictly increasing.
  explicit WavelengthGrid(std::vector<double> wavelengths);

  /// Uniform grid of `count` channels starting at `first` [m], spaced by
  /// `spacing` [m].
  static WavelengthGrid uniform(double first, double spacing, std::size_t count);

  std::size_t size() const { return wavelengths_.size(); }
  double wavelength(std::size_t channel) const;
  const std::vector<double>& wavelengths() const { return wavelengths_; }

  /// Channel-to-channel spacing [m]; requires a uniform grid of >= 2 channels.
  double spacing() const;

  /// Index of the channel closest to the given wavelength.
  std::size_t nearest_channel(double wavelength) const;

 private:
  std::vector<double> wavelengths_;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_SPECTRUM_HPP
