#ifndef PTC_OPTICS_THERMAL_HPP
#define PTC_OPTICS_THERMAL_HPP

#include "common/rng.hpp"

/// Thermal effects on microrings.  MRRs are sensitive to temperature
/// (~70 pm/K in silicon); integrated heaters stabilize the operating point
/// (paper Sec. I, refs [37], [38]).  The Ornstein-Uhlenbeck drift process
/// feeds the Monte-Carlo robustness benches.
namespace ptc::optics {

struct ThermalTunerConfig {
  /// Resonance shift per kelvin [m/K].
  double dlambda_dt = 70e-12;
  /// Heater tuning power to shift by one kelvin [W/K].
  double heater_power_per_kelvin = 0.25e-3;
  /// Maximum heater power [W].
  double max_heater_power = 10e-3;
};

/// Integrated micro-heater: converts heater power into a resonance red-shift.
class ThermalTuner {
 public:
  explicit ThermalTuner(const ThermalTunerConfig& config = {});

  /// Sets the heater drive power [W]; clamped to [0, max].
  void set_heater_power(double watts);

  double heater_power() const { return heater_power_; }

  /// Temperature rise above ambient produced by the heater [K].
  double temperature_rise() const;

  /// Resonance shift produced by the heater [m].
  double resonance_shift() const;

  /// Heater power needed to shift the resonance by `dlambda` [W] (clamped).
  double power_for_shift(double dlambda) const;

  const ThermalTunerConfig& config() const { return config_; }

 private:
  ThermalTunerConfig config_;
  double heater_power_ = 0.0;
};

/// Mean-reverting ambient temperature fluctuation (Ornstein-Uhlenbeck):
/// dT = -(T - mean)/tau dt + sigma sqrt(2 dt / tau) N(0,1).
class ThermalDrift {
 public:
  /// mean [K], relaxation time tau [s], stationary std-dev sigma [K].
  ThermalDrift(double mean, double tau, double sigma);

  /// Advances the process by dt and returns the new temperature [K].
  double step(double dt, Rng& rng);

  double temperature() const { return temperature_; }
  void reset(double temperature) { temperature_ = temperature; }

 private:
  double mean_;
  double tau_;
  double sigma_;
  double temperature_;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_THERMAL_HPP
