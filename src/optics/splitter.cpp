#include "optics/splitter.hpp"

#include <cmath>

#include "common/expects.hpp"
#include "common/units.hpp"

namespace ptc::optics {

PowerSplitter::PowerSplitter(double ratio_to_port_a, double excess_loss_db)
    : ratio_a_(ratio_to_port_a), excess_loss_db_(excess_loss_db) {
  expects(ratio_to_port_a > 0.0 && ratio_to_port_a < 1.0,
          "split ratio must be in (0, 1)");
  expects(excess_loss_db >= 0.0, "excess loss must be >= 0 dB");
}

std::pair<WdmSignal, WdmSignal> PowerSplitter::split(const WdmSignal& in) const {
  const double survive = units::db_to_ratio(-excess_loss_db_);
  WdmSignal a = in;
  WdmSignal b = in;
  a.scale(survive * ratio_a_);
  b.scale(survive * (1.0 - ratio_a_));
  return {std::move(a), std::move(b)};
}

namespace {
bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

SplitterTree::SplitterTree(std::size_t n_outputs, double excess_loss_db_per_stage)
    : n_outputs_(n_outputs), excess_loss_db_per_stage_(excess_loss_db_per_stage) {
  expects(is_power_of_two(n_outputs), "splitter tree size must be a power of two");
  expects(excess_loss_db_per_stage >= 0.0, "excess loss must be >= 0 dB");
}

std::vector<WdmSignal> SplitterTree::split(const WdmSignal& in) const {
  std::size_t stages = 0;
  for (std::size_t n = n_outputs_; n > 1; n >>= 1) ++stages;
  const double survive =
      units::db_to_ratio(-excess_loss_db_per_stage_ * static_cast<double>(stages));
  WdmSignal leaf = in;
  leaf.scale(survive / static_cast<double>(n_outputs_));
  return std::vector<WdmSignal>(n_outputs_, leaf);
}

BinaryWeightedTaps::BinaryWeightedTaps(std::size_t n_taps,
                                       double excess_loss_db_per_stage)
    : n_taps_(n_taps), excess_loss_db_per_stage_(excess_loss_db_per_stage) {
  expects(n_taps >= 1, "need at least one tap");
  expects(excess_loss_db_per_stage >= 0.0, "excess loss must be >= 0 dB");
}

std::vector<WdmSignal> BinaryWeightedTaps::split(const WdmSignal& in) const {
  std::vector<WdmSignal> taps;
  taps.reserve(n_taps_);
  const PowerSplitter half(0.5, excess_loss_db_per_stage_);
  WdmSignal remainder = in;
  for (std::size_t k = 0; k < n_taps_; ++k) {
    auto [tap, rest] = half.split(remainder);
    taps.push_back(std::move(tap));
    remainder = std::move(rest);
  }
  // `remainder` (IN / 2^n) is terminated into a passive absorber.
  return taps;
}

double BinaryWeightedTaps::residual_fraction() const {
  return std::pow(0.5, static_cast<double>(n_taps_));
}

}  // namespace ptc::optics
