#ifndef PTC_OPTICS_COUPLER_HPP
#define PTC_OPTICS_COUPLER_HPP

/// Evanescent directional coupler model mapping a physical coupling gap to a
/// power coupling coefficient kappa^2.  Used to derive the microring
/// self-coupling terms from the geometry the paper quotes (200 nm gap on the
/// compute rings, 250 nm on the high-Q eoADC rings).
namespace ptc::optics {

struct CouplerConfig {
  /// Power coupling at reference_gap.
  double kappa_sq_at_reference = 0.05;
  /// Reference gap [m] where kappa_sq_at_reference holds.
  double reference_gap = 200e-9;
  /// Exponential decay length of the evanescent overlap [m].
  double decay_length = 35e-9;
};

class DirectionalCoupler {
 public:
  explicit DirectionalCoupler(const CouplerConfig& config = {});

  /// Power coupling coefficient kappa^2 in [0, 0.95] for the given gap [m].
  double power_coupling(double gap) const;

  /// Field self-coupling t = sqrt(1 - kappa^2) for the given gap [m].
  double self_coupling(double gap) const;

 private:
  CouplerConfig config_;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_COUPLER_HPP
