#include "optics/photodiode.hpp"

#include <cmath>
#include <numbers>

#include "common/constants.hpp"
#include "common/expects.hpp"

namespace ptc::optics {

Photodiode::Photodiode(const PhotodiodeConfig& config) : config_(config) {
  expects(config.responsivity > 0.0, "responsivity must be positive");
  expects(config.dark_current >= 0.0, "dark current must be >= 0");
  expects(config.bandwidth > 0.0, "bandwidth must be positive");
  expects(config.capacitance > 0.0, "capacitance must be positive");
}

double Photodiode::current(double optical_power) const {
  expects(optical_power >= 0.0, "optical power must be >= 0");
  return config_.responsivity * optical_power + config_.dark_current;
}

double Photodiode::noisy_current(double optical_power, double noise_bandwidth,
                                 Rng& rng) const {
  expects(noise_bandwidth > 0.0, "noise bandwidth must be positive");
  const double i_dc = current(optical_power);
  // Shot noise: sigma^2 = 2 q I B.
  const double shot_sigma =
      std::sqrt(2.0 * constants::q_e * i_dc * noise_bandwidth);
  // Thermal (Johnson) noise of the effective load resistance implied by the
  // RC bandwidth: R = 1 / (2 pi B C).
  const double r_load =
      1.0 / (2.0 * std::numbers::pi * config_.bandwidth * config_.capacitance);
  const double thermal_sigma = std::sqrt(
      4.0 * constants::k_b * constants::t_ambient * noise_bandwidth / r_load);
  const double noise =
      rng.normal(0.0, std::hypot(shot_sigma, thermal_sigma));
  return std::max(0.0, i_dc + noise);
}

double Photodiode::response_time_constant() const {
  return 1.0 / (2.0 * std::numbers::pi * config_.bandwidth);
}

BalancedPhotodiode::BalancedPhotodiode(const PhotodiodeConfig& config)
    : top_(config), bottom_(config) {}

double BalancedPhotodiode::net_current(double top_power,
                                       double bottom_power) const {
  // Dark currents cancel in the balanced configuration.
  return top_.current(top_power) - bottom_.current(bottom_power);
}

}  // namespace ptc::optics
