#ifndef PTC_OPTICS_PHOTODIODE_HPP
#define PTC_OPTICS_PHOTODIODE_HPP

#include "common/rng.hpp"

/// Photodiodes convert optical power into current; they are the opto-electric
/// interface of the pSRAM storage nodes, the multiply-accumulate summation,
/// and the eoADC thresholding blocks.
namespace ptc::optics {

struct PhotodiodeConfig {
  double responsivity = 1.0;       ///< [A/W], broadband per paper Sec. II-A
  double dark_current = 10e-9;     ///< [A]
  double bandwidth = 50e9;         ///< opto-electrical 3 dB bandwidth [Hz]
  double capacitance = 12e-15;     ///< junction capacitance [F]
};

class Photodiode {
 public:
  explicit Photodiode(const PhotodiodeConfig& config = {});

  /// DC photocurrent for the given incident optical power [A].
  double current(double optical_power) const;

  /// Photocurrent with shot noise (on photo+dark current) and thermal noise
  /// integrated over `noise_bandwidth` [Hz].  Deterministic given the RNG.
  double noisy_current(double optical_power, double noise_bandwidth,
                       Rng& rng) const;

  /// First-order time constant of the photocurrent response [s].
  double response_time_constant() const;

  const PhotodiodeConfig& config() const { return config_; }

 private:
  PhotodiodeConfig config_;
};

/// Balanced photodiode pair: output current is the difference between the
/// top (signal) and bottom (reference) photocurrents.  This is the eoADC's
/// opto-electric thresholding element (paper Fig. 3(b)).
class BalancedPhotodiode {
 public:
  explicit BalancedPhotodiode(const PhotodiodeConfig& config = {});

  /// Net current: positive when the top (signal) power exceeds the bottom
  /// (reference) power [A].
  double net_current(double top_power, double bottom_power) const;

  const Photodiode& top() const { return top_; }
  const Photodiode& bottom() const { return bottom_; }

 private:
  Photodiode top_;
  Photodiode bottom_;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_PHOTODIODE_HPP
