#ifndef PTC_OPTICS_OPTICAL_SIGNAL_HPP
#define PTC_OPTICS_OPTICAL_SIGNAL_HPP

#include <cstddef>
#include <vector>

/// Incoherent multi-wavelength optical power signals.
///
/// WDM channels in the tensor core carry mutually incoherent carriers
/// (distinct comb lines), so per-channel *power* — not field amplitude — is
/// the correct state variable, exactly as in the paper's methodology of
/// simulating one wavelength at a time and summing photocurrents linearly.
namespace ptc::optics {

/// One wavelength channel carrying optical power.
struct ChannelPower {
  double wavelength = 0.0;  ///< vacuum wavelength [m]
  double power = 0.0;       ///< optical power [W], >= 0
};

/// A bundle of wavelength channels travelling in one waveguide.
class WdmSignal {
 public:
  WdmSignal() = default;

  /// Builds a signal from explicit channels (wavelengths need not be sorted).
  explicit WdmSignal(std::vector<ChannelPower> channels);

  /// Single-wavelength convenience factory.
  static WdmSignal single(double wavelength, double power);

  std::size_t size() const { return channels_.size(); }
  bool empty() const { return channels_.empty(); }

  const ChannelPower& channel(std::size_t i) const;
  ChannelPower& channel(std::size_t i);
  const std::vector<ChannelPower>& channels() const { return channels_; }

  /// Appends one channel.  Power must be >= 0.
  void add_channel(double wavelength, double power);

  /// Sum of all channel powers [W].
  double total_power() const;

  /// Multiplies every channel power by `factor` (>= 0).
  WdmSignal& scale(double factor);

  /// Adds the power of `other` channel-by-channel.  Channels are matched by
  /// wavelength (within 1 fm); unmatched channels are appended.
  WdmSignal& add(const WdmSignal& other);

 private:
  std::vector<ChannelPower> channels_;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_OPTICAL_SIGNAL_HPP
