#ifndef PTC_OPTICS_SPLITTER_HPP
#define PTC_OPTICS_SPLITTER_HPP

#include <utility>
#include <vector>

#include "optics/optical_signal.hpp"

/// Optical power splitters.  The compute macro uses a cascaded 50:50 chain to
/// produce the binary-scaled input copies IN/2, IN/4, ..., IN/2^n that give
/// each weight bit its significance (paper Sec. II-B / ref. [45]).
namespace ptc::optics {

/// 1x2 power splitter with configurable split ratio and excess loss.
class PowerSplitter {
 public:
  /// ratio_to_port_a in (0, 1): fraction of the (post-loss) power sent to the
  /// first output; excess_loss_db >= 0 is dissipated.
  explicit PowerSplitter(double ratio_to_port_a = 0.5, double excess_loss_db = 0.1);

  /// Splits a signal into the two output ports.
  std::pair<WdmSignal, WdmSignal> split(const WdmSignal& in) const;

  double ratio_to_port_a() const { return ratio_a_; }
  double excess_loss_db() const { return excess_loss_db_; }

 private:
  double ratio_a_;
  double excess_loss_db_;
};

/// Balanced 1xN splitter tree built from 1x2 stages; each output carries
/// total/N (times the accumulated excess loss of log2(N) stages).
class SplitterTree {
 public:
  /// n_outputs must be a power of two.
  explicit SplitterTree(std::size_t n_outputs, double excess_loss_db_per_stage = 0.1);

  std::vector<WdmSignal> split(const WdmSignal& in) const;

  std::size_t n_outputs() const { return n_outputs_; }

 private:
  std::size_t n_outputs_;
  double excess_loss_db_per_stage_;
};

/// Cascade of n 50:50 splitters producing binary-weighted taps:
/// tap k (k = 0 .. n-1) carries IN / 2^(k+1); the residual IN / 2^n after the
/// last stage is terminated into an absorber.  Tap 0 (IN/2) feeds the MSB row
/// of the multiply macro.
class BinaryWeightedTaps {
 public:
  explicit BinaryWeightedTaps(std::size_t n_taps, double excess_loss_db_per_stage = 0.1);

  /// Returns n_taps signals; taps[k] == in * 2^-(k+1) (ignoring excess loss).
  std::vector<WdmSignal> split(const WdmSignal& in) const;

  /// Power left in the terminated residual branch for a unit input, i.e.
  /// 2^-n ignoring excess loss.  Exposed for power-accounting tests.
  double residual_fraction() const;

  std::size_t n_taps() const { return n_taps_; }

 private:
  std::size_t n_taps_;
  double excess_loss_db_per_stage_;
};

}  // namespace ptc::optics

#endif  // PTC_OPTICS_SPLITTER_HPP
