#include "optics/coupler.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::optics {

DirectionalCoupler::DirectionalCoupler(const CouplerConfig& config)
    : config_(config) {
  expects(config.kappa_sq_at_reference > 0.0 && config.kappa_sq_at_reference < 1.0,
          "reference coupling must be in (0, 1)");
  expects(config.reference_gap > 0.0, "reference gap must be positive");
  expects(config.decay_length > 0.0, "decay length must be positive");
}

double DirectionalCoupler::power_coupling(double gap) const {
  expects(gap >= 0.0, "coupler gap must be >= 0");
  const double kappa_sq =
      config_.kappa_sq_at_reference *
      std::exp(-(gap - config_.reference_gap) / config_.decay_length);
  // The exponential fit is only valid for weak coupling; clamp for tiny gaps.
  return std::clamp(kappa_sq, 0.0, 0.95);
}

double DirectionalCoupler::self_coupling(double gap) const {
  return std::sqrt(1.0 - power_coupling(gap));
}

}  // namespace ptc::optics
