#include "optics/microring.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/expects.hpp"
#include "common/units.hpp"

namespace ptc::optics {

namespace {
constexpr double two_pi = 2.0 * std::numbers::pi;
}

Microring::Microring(const MicroringConfig& config)
    : config_(config), junction_(config.junction) {
  expects(config.radius > 0.0, "ring radius must be positive");
  expects(config.dl >= 0.0, "ring length adjustment must be >= 0");
  expects(config.design_wavelength > 0.0, "design wavelength must be positive");
  expects(config.n_eff > 1.0 && config.n_g >= 1.0, "invalid modal indices");
  expects(config.loss_db_per_cm >= 0.0, "loss must be >= 0");

  circumference_ = two_pi * config.radius;

  // Pin one resonance exactly at design_wavelength for dl = 0 and
  // bias = pin_bias: choose the azimuthal order m from the nominal index,
  // then back out the index that makes m * lambda_design an exact round trip.
  const double m = std::round(config.n_eff * circumference_ /
                              config.design_wavelength);
  expects(m >= 1.0, "ring is too small to support a resonance");
  n_eff0_ = m * config.design_wavelength / circumference_;

  // Dispersion chosen so the configured group index (and hence FSR) holds:
  // n_g = n_eff - lambda * dn/dlambda.
  dn_dlambda_ = (n_eff0_ - config.n_g) / config.design_wavelength;

  const DirectionalCoupler coupler(config.coupler);
  t1_ = coupler.self_coupling(config.coupling_gap_thru);
  t2_ = config.add_drop ? coupler.self_coupling(config.coupling_gap_drop) : 1.0;

  const double loss_db =
      config.loss_db_per_cm * (circumference_ + config.dl) * 100.0;
  amplitude_ = std::sqrt(units::db_to_ratio(-loss_db));
}

void Microring::set_heater_shift(double dlambda) {
  expects(dlambda >= 0.0, "heaters can only red-shift the resonance");
  heater_shift_ = dlambda;
}

double Microring::tuning_shift() const {
  const double electro_optic = junction_.resonance_shift(bias_) -
                               junction_.resonance_shift(config_.pin_bias);
  const double thermal = config_.dlambda_dt * dtemp_;
  return electro_optic + thermal + heater_shift_ + fab_error_;
}

double Microring::round_trip_phase(double wavelength) const {
  // Tuning is expressed as a resonance shift; the equivalent index change is
  // delta_n = n_g * delta_lambda / lambda (group index because a resonance
  // displacement is a group-delay quantity).
  const double dn_tuning =
      config_.n_g * tuning_shift() / config_.design_wavelength;
  const double n_eff = n_eff0_ +
                       dn_dlambda_ * (wavelength - config_.design_wavelength) +
                       dn_tuning;
  const double optical_path =
      n_eff * circumference_ + config_.n_section * config_.dl;
  return two_pi * optical_path / wavelength;
}

double Microring::thru_transmission(double wavelength) const {
  expects(wavelength > 0.0, "wavelength must be positive");
  const double a = amplitude_;
  const double cos_phi = std::cos(round_trip_phase(wavelength));
  if (config_.add_drop) {
    const double t1t2a = t1_ * t2_ * a;
    const double d = 1.0 - 2.0 * t1t2a * cos_phi + t1t2a * t1t2a;
    const double numer =
        t2_ * t2_ * a * a - 2.0 * t1t2a * cos_phi + t1_ * t1_;
    return std::clamp(numer / d, 0.0, 1.0);
  }
  const double ta = t1_ * a;
  const double d = 1.0 - 2.0 * ta * cos_phi + ta * ta;
  const double numer = a * a - 2.0 * ta * cos_phi + t1_ * t1_;
  return std::clamp(numer / d, 0.0, 1.0);
}

double Microring::drop_transmission(double wavelength) const {
  expects(wavelength > 0.0, "wavelength must be positive");
  if (!config_.add_drop) return 0.0;
  const double a = amplitude_;
  const double cos_phi = std::cos(round_trip_phase(wavelength));
  const double t1t2a = t1_ * t2_ * a;
  const double d = 1.0 - 2.0 * t1t2a * cos_phi + t1t2a * t1t2a;
  const double numer = (1.0 - t1_ * t1_) * (1.0 - t2_ * t2_) * a;
  return std::clamp(numer / d, 0.0, 1.0);
}

double Microring::absorbed_fraction(double wavelength) const {
  return std::clamp(
      1.0 - thru_transmission(wavelength) - drop_transmission(wavelength), 0.0,
      1.0);
}

double Microring::resonance_near(double wavelength) const {
  // Solve n(lambda) L + n_section dL = m lambda by fixed-point iteration;
  // the index varies slowly, so a handful of iterations suffices.
  const double dn_tuning =
      config_.n_g * tuning_shift() / config_.design_wavelength;
  auto optical_path = [&](double lam) {
    const double n_eff = n_eff0_ +
                         dn_dlambda_ * (lam - config_.design_wavelength) +
                         dn_tuning;
    return n_eff * circumference_ + config_.n_section * config_.dl;
  };
  const double m = std::round(optical_path(wavelength) / wavelength);
  double lam = wavelength;
  for (int i = 0; i < 20; ++i) {
    const double next = optical_path(lam) / m;
    if (std::fabs(next - lam) < 1e-18) return next;
    lam = next;
  }
  return lam;
}

double Microring::fsr(double wavelength) const {
  const double group_path =
      config_.n_g * circumference_ + config_.n_section * config_.dl;
  return wavelength * wavelength / group_path;
}

double Microring::fwhm(double wavelength) const {
  const double res = resonance_near(wavelength);
  const double t_min = thru_transmission(res);
  // Baseline: a quarter FSR off resonance is effectively out of the notch.
  const double t_max = thru_transmission(res + 0.25 * fsr(res));
  ensures(t_max > t_min, "thru response has no notch to measure");
  const double half_level = 0.5 * (t_max + t_min);

  auto cross = [&](double direction) {
    double lo = 0.0;                 // at notch centre: T < half_level
    double hi = 0.25 * fsr(res);     // far out: T > half_level
    for (int i = 0; i < 60; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (thru_transmission(res + direction * mid) < half_level) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  };
  return cross(+1.0) + cross(-1.0);
}

double Microring::q_factor(double wavelength) const {
  const double res = resonance_near(wavelength);
  return res / fwhm(res);
}

}  // namespace ptc::optics
