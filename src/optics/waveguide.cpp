#include "optics/waveguide.hpp"

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "common/units.hpp"

namespace ptc::optics {

Waveguide::Waveguide(double length, double loss_db_per_cm, double group_index)
    : length_(length),
      loss_db_per_cm_(loss_db_per_cm),
      group_index_(group_index) {
  expects(length >= 0.0, "waveguide length must be >= 0");
  expects(loss_db_per_cm >= 0.0, "waveguide loss must be >= 0");
  expects(group_index >= 1.0, "group index must be >= 1");
}

WdmSignal Waveguide::propagate(const WdmSignal& in) const {
  WdmSignal out = in;
  out.scale(transmission());
  return out;
}

double Waveguide::transmission() const {
  const double loss_db = loss_db_per_cm_ * length_ * 100.0;  // m -> cm
  return units::db_to_ratio(-loss_db);
}

double Waveguide::delay() const {
  return group_index_ * length_ / constants::c0;
}

}  // namespace ptc::optics
