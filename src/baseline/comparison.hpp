#ifndef PTC_BASELINE_COMPARISON_HPP
#define PTC_BASELINE_COMPARISON_HPP

#include <vector>

#include "core/performance.hpp"

/// Table I of the paper: behavioral architecture models of the published
/// photonic IMC macros the tensor core is compared against.  Each model
/// derives its throughput from the architecture's own arithmetic (device
/// counts x rates from the cited publications) rather than quoting a bare
/// number, so the comparison's *mechanism* is explicit — see the per-model
/// notes below and DESIGN.md section 1.
namespace ptc::baseline {

/// Ref. [33]: Lin et al., thin-film lithium niobate photonic tensor core.
/// EO modulation enables 60 GHz in-situ weight updates but the demonstrated
/// core is small, capping throughput near 0.12 TOPS (120 GOPS).
core::PerformanceReport tfln_mzi_core();

/// Ref. [48]: Du et al., scalable parallel photonic processing unit.
/// Weights held by an FPGA-controlled multi-channel DC supply (< 0.5 GHz
/// effective update), 0.93 TOPS at 0.83 TOPS/W.
core::PerformanceReport parallel_ppu();

/// Ref. [49]: Xu et al., 11 TOPS time-wavelength interleaved convolutional
/// accelerator; weights set by a Finisar WaveShaper with ~500 ms settling
/// (2 Hz update).
core::PerformanceReport conv_accelerator();

/// Ref. [50]: Zhou et al., in-memory photonic dot-product engine with
/// electrically programmable PCM weight banks: 10 TOPS/W, ~1 GHz write.
core::PerformanceReport pcm_dot_product_engine();

/// Ref. [51]: Ouyang et al., reconfigurable silicon photonic tensor
/// processing core: 3.98 TOPS at 1.97 TOPS/W, DC-supply weight control.
core::PerformanceReport reconfigurable_core();

/// All Table I rows including "This Work" (computed from the given tensor
/// core configuration), in the paper's row order.
std::vector<core::PerformanceReport> table1_rows(
    const core::TensorCoreConfig& this_work = {});

}  // namespace ptc::baseline

#endif  // PTC_BASELINE_COMPARISON_HPP
