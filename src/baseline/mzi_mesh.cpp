#include "baseline/mzi_mesh.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "common/units.hpp"

namespace ptc::baseline {

namespace {
using Complex = std::complex<double>;
}

double MziElement::theta() const {
  return std::atan2(std::abs(t01), std::abs(t00));
}

MziMesh::MziMesh(std::size_t modes) : modes_(modes) {
  expects(modes >= 2, "mesh needs at least two modes");
  input_phases_.assign(modes, Complex{1.0, 0.0});
}

void MziMesh::program_unitary(const CMatrix& u, double tol) {
  expects(u.rows() == modes_ && u.cols() == modes_,
          "unitary size must match the mesh");
  expects(is_unitary(u, tol), "matrix is not unitary");

  // Left-multiply adjacent-mode Givens rotations to diagonalize:
  //   G_K ... G_1 U = D   =>   U = G_1^d ... G_K^d D,
  // so propagation applies D first, then the daggered rotations in reverse
  // elimination order.
  CMatrix work = u;
  std::vector<MziElement> eliminations;
  for (std::size_t col = 0; col + 1 < modes_; ++col) {
    for (std::size_t row = modes_ - 1; row > col; --row) {
      const Complex a = work(row - 1, col);
      const Complex b = work(row, col);
      const double r = std::sqrt(std::norm(a) + std::norm(b));
      if (r < 1e-14 || std::abs(b) < 1e-14) continue;
      // R = (1/r) [[conj(a), conj(b)], [-b, a]] zeroes the (row, col) entry.
      const Complex r00 = std::conj(a) / r;
      const Complex r01 = std::conj(b) / r;
      const Complex r10 = -b / r;
      const Complex r11 = a / r;
      for (std::size_t c = 0; c < modes_; ++c) {
        const Complex x = work(row - 1, c);
        const Complex y = work(row, c);
        work(row - 1, c) = r00 * x + r01 * y;
        work(row, c) = r10 * x + r11 * y;
      }
      MziElement g;
      g.mode = row - 1;
      g.t00 = r00;
      g.t01 = r01;
      g.t10 = r10;
      g.t11 = r11;
      eliminations.push_back(g);
    }
  }

  for (std::size_t k = 0; k < modes_; ++k) input_phases_[k] = work(k, k);

  elements_.clear();
  elements_.reserve(eliminations.size());
  for (auto it = eliminations.rbegin(); it != eliminations.rend(); ++it) {
    MziElement dagger;
    dagger.mode = it->mode;
    dagger.t00 = std::conj(it->t00);
    dagger.t01 = std::conj(it->t10);
    dagger.t10 = std::conj(it->t01);
    dagger.t11 = std::conj(it->t11);
    elements_.push_back(dagger);
  }
}

CMatrix MziMesh::realized_unitary() const {
  CMatrix u = CMatrix::identity(modes_);
  // Columns of U are the propagation of basis vectors.
  for (std::size_t col = 0; col < modes_; ++col) {
    std::vector<Complex> basis(modes_, Complex{});
    basis[col] = 1.0;
    const auto out = propagate(basis);
    for (std::size_t row = 0; row < modes_; ++row) u(row, col) = out[row];
  }
  return u;
}

std::vector<Complex> MziMesh::propagate(const std::vector<Complex>& in) const {
  expects(in.size() == modes_, "input vector size must match the mesh");
  const double loss_amplitude =
      std::pow(10.0, -loss_db_per_mzi_ / 20.0);
  std::vector<Complex> field(modes_);
  for (std::size_t k = 0; k < modes_; ++k) field[k] = input_phases_[k] * in[k];
  for (const auto& e : elements_) {
    const Complex x = field[e.mode];
    const Complex y = field[e.mode + 1];
    field[e.mode] = loss_amplitude * (e.t00 * x + e.t01 * y);
    field[e.mode + 1] = loss_amplitude * (e.t10 * x + e.t11 * y);
  }
  return field;
}

void MziMesh::set_insertion_loss_db(double db_per_mzi) {
  expects(db_per_mzi >= 0.0, "insertion loss must be >= 0 dB");
  loss_db_per_mzi_ = db_per_mzi;
}

MziMatrixProcessor::MziMatrixProcessor(std::size_t modes)
    : modes_(modes), mesh_u_(modes), mesh_v_dagger_(modes) {
  attenuations_.assign(modes, 1.0);
}

namespace {

/// Builds a unitary CMatrix from (possibly rank-deficient) real orthonormal
/// columns, completing missing directions by Gram-Schmidt on standard basis
/// vectors.
CMatrix unitary_from_columns(const Matrix& m) {
  const std::size_t n = m.rows();
  std::vector<std::vector<double>> cols;
  auto norm_of = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x * x;
    return std::sqrt(s);
  };
  for (std::size_t j = 0; j < m.cols() && cols.size() < n; ++j) {
    std::vector<double> c(n);
    for (std::size_t i = 0; i < n; ++i) c[i] = m(i, j);
    if (norm_of(c) > 0.5) cols.push_back(std::move(c));
  }
  // Complete with standard basis vectors.
  for (std::size_t candidate = 0; candidate < n && cols.size() < n;
       ++candidate) {
    std::vector<double> c(n, 0.0);
    c[candidate] = 1.0;
    for (const auto& existing : cols) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += existing[i] * c[i];
      for (std::size_t i = 0; i < n; ++i) c[i] -= dot * existing[i];
    }
    const double nrm = norm_of(c);
    if (nrm > 1e-6) {
      for (double& x : c) x /= nrm;
      cols.push_back(std::move(c));
    }
  }
  ensures(cols.size() == n, "failed to complete an orthonormal basis");
  CMatrix u(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) u(i, j) = cols[j][i];
  return u;
}

}  // namespace

void MziMatrixProcessor::program(const Matrix& w) {
  expects(w.rows() == modes_ && w.cols() == modes_,
          "matrix size must match the processor");
  const Svd decomposition = svd(w);

  const double s_max =
      *std::max_element(decomposition.s.begin(), decomposition.s.end());
  expects(s_max > 0.0, "cannot program the zero matrix");
  scale_ = s_max;
  for (std::size_t k = 0; k < modes_; ++k) {
    attenuations_[k] = decomposition.s[k] / s_max;  // passive: <= 1
  }

  mesh_u_.program_unitary(unitary_from_columns(decomposition.u));
  mesh_v_dagger_.program_unitary(
      unitary_from_columns(decomposition.v).dagger());
}

std::vector<double> MziMatrixProcessor::multiply(
    const std::vector<double>& x) const {
  expects(x.size() == modes_, "input size must match the processor");
  std::vector<Complex> field(modes_);
  for (std::size_t k = 0; k < modes_; ++k) field[k] = x[k];
  field = mesh_v_dagger_.propagate(field);
  for (std::size_t k = 0; k < modes_; ++k) field[k] *= attenuations_[k];
  field = mesh_u_.propagate(field);
  std::vector<double> out(modes_);
  for (std::size_t k = 0; k < modes_; ++k) out[k] = scale_ * field[k].real();
  return out;
}

std::size_t MziMatrixProcessor::mzi_count() const {
  return mesh_u_.mzi_count() + mesh_v_dagger_.mzi_count() + modes_;
}

std::size_t MziMatrixProcessor::mzi_count_for(std::size_t n) {
  // Two Reck meshes (n(n-1)/2 each) plus n attenuators.
  return n * (n - 1) + n;
}

}  // namespace ptc::baseline
