#ifndef PTC_BASELINE_MZI_MESH_HPP
#define PTC_BASELINE_MZI_MESH_HPP

#include <complex>
#include <vector>

#include "common/linalg.hpp"

/// Programmable Mach-Zehnder interferometer mesh — a functional model of the
/// MZI-based photonic compute cores the paper compares against (Sec. I,
/// refs [32]-[34]; Table I row [33]).
///
/// Any N x N unitary factors into a cascade of 2x2 unitaries acting on
/// adjacent modes (complex Givens rotations) plus output phase shifters —
/// the Reck/Clements result that underlies every MZI processor.  Each 2x2
/// element is one MZI with an internal phase theta (splitting ratio) and an
/// external phase phi.  Arbitrary (non-unitary) matrices are programmed as
/// U * diag(s) * V^dagger via the SVD, with the diagonal realized as
/// per-mode attenuators.
///
/// The model exposes the two costs that motivate the paper's MRR+pSRAM
/// approach: the O(N^2) MZI count (device area) and the per-element
/// reprogramming time.
namespace ptc::baseline {

/// One 2x2 element of the mesh acting on modes (mode, mode + 1).
struct MziElement {
  std::size_t mode = 0;        ///< lower of the two coupled modes
  std::complex<double> t00{1.0, 0.0}, t01{0.0, 0.0};
  std::complex<double> t10{0.0, 0.0}, t11{1.0, 0.0};

  /// Internal phase setting theta (splitting angle) of the equivalent MZI.
  double theta() const;
};

/// Unitary mesh of adjacent-mode MZIs (Reck-style triangular arrangement).
class MziMesh {
 public:
  explicit MziMesh(std::size_t modes);

  std::size_t modes() const { return modes_; }
  std::size_t mzi_count() const { return elements_.size(); }

  /// Programs the mesh to realize the given unitary.  Throws when `u` is not
  /// unitary within `tol`.
  void program_unitary(const CMatrix& u, double tol = 1e-8);

  /// The unitary currently realized by the mesh (product of its elements).
  CMatrix realized_unitary() const;

  /// Propagates a complex field vector through the mesh.
  std::vector<std::complex<double>> propagate(
      const std::vector<std::complex<double>>& in) const;

  /// Per-MZI insertion loss [dB] applied during propagation.
  void set_insertion_loss_db(double db_per_mzi);
  double insertion_loss_db() const { return loss_db_per_mzi_; }

  const std::vector<MziElement>& elements() const { return elements_; }

 private:
  std::size_t modes_;
  std::vector<MziElement> elements_;  ///< applied in order, input -> output
  std::vector<std::complex<double>> input_phases_;  ///< unit-modulus, applied first
  double loss_db_per_mzi_ = 0.0;
};

/// Full matrix processor: W = U diag(s) V^dagger programmed on two meshes
/// and an attenuator column, computing y = W x with optical field encoding.
class MziMatrixProcessor {
 public:
  explicit MziMatrixProcessor(std::size_t modes);

  /// Programs an arbitrary real matrix (modes x modes).  Singular values are
  /// normalized so the largest attenuator is lossless (optical passivity);
  /// results are rescaled on readout.
  void program(const Matrix& w);

  /// Computes W x (real in, real out, field-amplitude encoded).
  std::vector<double> multiply(const std::vector<double>& x) const;

  std::size_t mzi_count() const;

  /// Device count comparison hook: MZIs needed for N x N vs the paper's
  /// MRR count (N rings per WDM bus).
  static std::size_t mzi_count_for(std::size_t n);

 private:
  std::size_t modes_;
  MziMesh mesh_u_;
  MziMesh mesh_v_dagger_;
  std::vector<double> attenuations_;
  double scale_ = 1.0;
};

}  // namespace ptc::baseline

#endif  // PTC_BASELINE_MZI_MESH_HPP
