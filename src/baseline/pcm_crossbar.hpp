#ifndef PTC_BASELINE_PCM_CROSSBAR_HPP
#define PTC_BASELINE_PCM_CROSSBAR_HPP

#include <cstdint>
#include <vector>

#include "common/linalg.hpp"

/// Phase-change-material photonic crossbar — a functional model of the
/// PCM-based in-memory photonic engines the paper compares against (Sec. I,
/// refs [28], [30], [31], [36]; Table I row [50]).
///
/// Weights are stored as the optical transmittance of a PCM patch on each
/// crossing (amorphous = transparent, crystalline = absorbing).  Reads are
/// fast and passive — the PCM holds its state with zero static power, the
/// architecture's genuine strength — but *writes* require melt-quench /
/// recrystallization pulse trains that are slow (~100 ns per multi-level
/// update here; the electrically-programmable variant of [50] reaches
/// ~1 GHz single-pulse writes) and energy-hungry, and endurance is finite.
/// This is the update-rate wall that motivates the paper's pSRAM approach
/// (20 GHz, unlimited endurance).
namespace ptc::baseline {

struct PcmCrossbarConfig {
  std::size_t rows = 16;
  std::size_t cols = 16;
  double t_min = 0.05;              ///< crystalline transmittance
  double t_max = 0.95;              ///< amorphous transmittance
  unsigned levels = 16;             ///< programmable transmittance levels
  double write_pulse_time = 100e-9; ///< per multi-level update [s]
  double write_energy = 18e-12;     ///< per update [J] (melt-quench class)
  double fast_write_rate = 1e9;     ///< single-pulse electrical write [Hz] ([50])
  std::uint64_t endurance = 100'000'000;  ///< updates before failure (~1e8)
  /// Resistance/transmittance drift coefficient: t(t_age) multiplies by
  /// (1 - drift_nu * log10(1 + t_age / 1 s)).
  double drift_nu = 0.02;
};

class PcmCrossbar {
 public:
  explicit PcmCrossbar(const PcmCrossbarConfig& config = {});

  std::size_t rows() const { return config_.rows; }
  std::size_t cols() const { return config_.cols; }

  /// Programs normalized weights in [0, 1]; each changed cell consumes one
  /// write (energy, latency, endurance).  Returns the programming time [s].
  double program(const Matrix& weights);

  /// Transmittance of a cell right after programming (quantized to levels).
  double transmittance(std::size_t row, std::size_t col) const;

  /// Incoherent crossbar read: y_r = sum_c T_rc * x_c, with optional aging
  /// time applied to model PCM drift [s since programming].
  std::vector<double> multiply(const std::vector<double>& x,
                               double age_seconds = 0.0) const;

  /// Total write energy consumed so far [J].
  double write_energy_consumed() const { return write_energy_consumed_; }

  /// Largest per-cell update count so far (endurance tracking).
  std::uint64_t max_cell_updates() const;

  /// True when any cell exceeded its endurance budget.
  bool worn_out() const;

  const PcmCrossbarConfig& config() const { return config_; }

 private:
  PcmCrossbarConfig config_;
  std::vector<double> transmittances_;    // row-major
  std::vector<std::uint64_t> update_counts_;
  double write_energy_consumed_ = 0.0;
};

}  // namespace ptc::baseline

#endif  // PTC_BASELINE_PCM_CROSSBAR_HPP
