#include "baseline/pcm_crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::baseline {

PcmCrossbar::PcmCrossbar(const PcmCrossbarConfig& config) : config_(config) {
  expects(config.rows >= 1 && config.cols >= 1, "crossbar must be non-empty");
  expects(config.t_min >= 0.0 && config.t_max <= 1.0 &&
              config.t_min < config.t_max,
          "transmittance window must satisfy 0 <= t_min < t_max <= 1");
  expects(config.levels >= 2, "need at least two programmable levels");
  transmittances_.assign(config.rows * config.cols, config.t_max);
  update_counts_.assign(config.rows * config.cols, 0);
}

double PcmCrossbar::program(const Matrix& weights) {
  expects(weights.rows() == config_.rows && weights.cols() == config_.cols,
          "weight matrix shape mismatch");
  std::size_t changed = 0;
  const double level_step = 1.0 / static_cast<double>(config_.levels - 1);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      const double w = weights(r, c);
      expects(w >= 0.0 && w <= 1.0, "weights must be normalized to [0, 1]");
      const double quantized =
          std::round(w / level_step) * level_step;
      const double target =
          config_.t_min + (config_.t_max - config_.t_min) * quantized;
      double& cell = transmittances_[r * config_.cols + c];
      if (std::fabs(cell - target) > 1e-12) {
        cell = target;
        ++update_counts_[r * config_.cols + c];
        write_energy_consumed_ += config_.write_energy;
        ++changed;
      }
    }
  }
  // Cells within a row are written sequentially; rows in parallel.
  const double writes_per_row =
      std::ceil(static_cast<double>(changed) / static_cast<double>(config_.rows));
  return writes_per_row * config_.write_pulse_time;
}

double PcmCrossbar::transmittance(std::size_t row, std::size_t col) const {
  expects(row < config_.rows && col < config_.cols, "cell index out of range");
  return transmittances_[row * config_.cols + col];
}

std::vector<double> PcmCrossbar::multiply(const std::vector<double>& x,
                                          double age_seconds) const {
  expects(x.size() == config_.cols, "input size must equal cols");
  expects(age_seconds >= 0.0, "age must be >= 0");
  const double drift =
      1.0 - config_.drift_nu * std::log10(1.0 + age_seconds);
  std::vector<double> y(config_.rows, 0.0);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < config_.cols; ++c) {
      acc += transmittances_[r * config_.cols + c] * drift * x[c];
    }
    y[r] = acc;
  }
  return y;
}

std::uint64_t PcmCrossbar::max_cell_updates() const {
  return *std::max_element(update_counts_.begin(), update_counts_.end());
}

bool PcmCrossbar::worn_out() const {
  return max_cell_updates() > config_.endurance;
}

}  // namespace ptc::baseline
