#include "baseline/comparison.hpp"

namespace ptc::baseline {

core::PerformanceReport tfln_mzi_core() {
  core::PerformanceReport r;
  r.name = "TFLN MZI core [33]";
  // 4x4-class coherent core at ~15 GBd symbol rate:
  // 4 MACs/symbol * 2 op/MAC * 15e9 = 0.12 TOPS.
  const double macs = 4.0;
  const double rate = 15e9;
  r.throughput_tops = macs * 2.0 * rate / 1e12;
  r.efficiency_tops_w = 0.0;  // not reported in the source
  r.weight_update_hz = 60e9;  // EO weight modulation
  r.update_note = "thin-film LiNbO3 EO modulation";
  return r;
}

core::PerformanceReport parallel_ppu() {
  core::PerformanceReport r;
  r.name = "Parallel PPU [48]";
  r.throughput_tops = 0.93;
  r.efficiency_tops_w = 0.83;
  r.weight_update_hz = 0.5e9;  // < 0.5 GHz
  r.update_note = "FPGA-controlled multi-channel DC supply";
  return r;
}

core::PerformanceReport conv_accelerator() {
  core::PerformanceReport r;
  r.name = "Conv accelerator [49]";
  // Time-wavelength interleaving: ~90 comb lines at 62.9 GBd effective:
  // throughput quoted at 11 TOPS.
  r.throughput_tops = 11.0;
  r.efficiency_tops_w = 0.0;  // not reported
  r.weight_update_hz = 2.0;   // WaveShaper settling ~500 ms
  r.update_note = "Finisar WaveShaper 4000S, 500 ms settling";
  return r;
}

core::PerformanceReport pcm_dot_product_engine() {
  core::PerformanceReport r;
  r.name = "PCM dot-product engine [50]";
  r.throughput_tops = 0.0;  // not reported
  r.efficiency_tops_w = 10.0;
  r.weight_update_hz = 1e9;  // single-pulse electrical PCM write
  r.update_note = "PCM write speed";
  return r;
}

core::PerformanceReport reconfigurable_core() {
  core::PerformanceReport r;
  r.name = "Reconfigurable core [51]";
  r.throughput_tops = 3.98;
  r.efficiency_tops_w = 1.97;
  r.weight_update_hz = 0.5e9;  // < 0.5 GHz
  r.update_note = "FPGA-controlled multi-channel DC supply";
  return r;
}

std::vector<core::PerformanceReport> table1_rows(
    const core::TensorCoreConfig& this_work) {
  std::vector<core::PerformanceReport> rows;
  rows.push_back(tfln_mzi_core());
  rows.push_back(parallel_ppu());
  rows.push_back(conv_accelerator());
  rows.push_back(pcm_dot_product_engine());
  rows.push_back(reconfigurable_core());
  rows.push_back(core::PerformanceModel(this_work).report());
  return rows;
}

}  // namespace ptc::baseline
