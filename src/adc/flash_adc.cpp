#include "adc/flash_adc.hpp"

#include "common/expects.hpp"

namespace ptc::adc {

FlashAdc::FlashAdc(const FlashAdcConfig& config) : config_(config) {
  expects(config.bits >= 1 && config.bits <= 10, "bits must be in [1, 10]");
  expects(config.v_full_scale > 0.0, "full scale must be positive");
  expects(config.sample_rate > 0.0, "sample rate must be positive");

  Rng rng(config.offset_seed);
  const std::size_t n = comparator_count();
  comparators_.reserve(n);
  thresholds_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    if (config.include_offsets) {
      comparators_.emplace_back(config.comparator, rng);
    } else {
      comparators_.emplace_back(config.comparator);
    }
    thresholds_.push_back(static_cast<double>(k + 1) * lsb());
  }
  thermometer_.assign(n, false);
}

double FlashAdc::lsb() const {
  return config_.v_full_scale / static_cast<double>(1u << config_.bits);
}

unsigned FlashAdc::convert(double v_in) {
  unsigned count = 0;
  for (std::size_t k = 0; k < comparators_.size(); ++k) {
    thermometer_[k] = comparators_[k].decide(v_in, thresholds_[k]);
    if (thermometer_[k]) ++count;
  }
  // A well-formed thermometer code's ones-count *is* the binary code; using
  // the count also tolerates bubble errors from comparator offsets.
  return count;
}

double FlashAdc::electrical_power() const {
  const double comparator_power =
      static_cast<double>(comparator_count()) *
      (config_.comparator.static_power +
       config_.comparator.energy_per_decision * config_.sample_rate);
  return comparator_power + config_.ladder_power + config_.encoder_power +
         config_.clock_power;
}

double FlashAdc::energy_per_conversion() const {
  return electrical_power() / config_.sample_rate;
}

}  // namespace ptc::adc
