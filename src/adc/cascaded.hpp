#ifndef PTC_ADC_CASCADED_HPP
#define PTC_ADC_CASCADED_HPP

#include "core/eoadc.hpp"

/// Cascaded (subranging) eoADC — the paper's precision extension:
/// "higher precision can be achieved ... by cascading multiple lower-bit
/// ADCs with shift-and-add operations" (Sec. II-C).
///
/// A coarse p1-bit eoADC resolves the top bits; a residue amplifier
/// subtracts the coarse reconstruction and scales the remainder by 2^p1
/// back onto the full-scale range, where a fine p2-bit eoADC resolves the
/// bottom bits.  The output is (coarse << p2) + fine — a (p1 + p2)-bit
/// converter from two low-bit 1-hot slices, pipelined at the slice rate.
namespace ptc::adc {

struct CascadedAdcConfig {
  core::EoAdcConfig coarse{};   ///< stage-1 slice (default 3-bit)
  core::EoAdcConfig fine{};     ///< stage-2 slice (default 3-bit)
  /// Residue subtract-and-amplify block: static power [W].
  double residue_amp_power = 2e-3;
  /// Gain error of the residue amplifier (1.0 = ideal 2^p1).
  double residue_gain_error = 0.0;
};

class CascadedEoAdc {
 public:
  explicit CascadedEoAdc(const CascadedAdcConfig& config = {});

  /// Total resolution p1 + p2 bits.
  unsigned bits() const;
  unsigned max_code() const { return (1u << bits()) - 1; }

  /// Effective LSB referred to the input [V].
  double lsb() const;

  /// Converts an input on [0, v_full_scale] to a (p1+p2)-bit code.
  unsigned convert(double v_in);

  /// Residue voltage presented to the fine stage for a given input [V]
  /// (after subtract-and-amplify; clamped to the fine stage's range).
  double residue(double v_in);

  /// Pipelined sample rate: one result per coarse-slice period [Hz].
  double sample_rate() const;

  /// Total power: both slices + residue amplifier [W].
  double total_power() const;

  double energy_per_conversion() const;

  core::EoAdc& coarse_stage() { return coarse_; }
  core::EoAdc& fine_stage() { return fine_; }

  const CascadedAdcConfig& config() const { return config_; }

 private:
  CascadedAdcConfig config_;
  core::EoAdc coarse_;
  core::EoAdc fine_;
};

}  // namespace ptc::adc

#endif  // PTC_ADC_CASCADED_HPP
