#ifndef PTC_ADC_IDEAL_ADC_HPP
#define PTC_ADC_IDEAL_ADC_HPP

/// Ideal mid-rise quantizer used as the golden reference in tests and
/// accuracy benches.
namespace ptc::adc {

class IdealAdc {
 public:
  /// bits >= 1, v_full_scale > 0.
  IdealAdc(unsigned bits, double v_full_scale);

  unsigned bits() const { return bits_; }
  double lsb() const;
  unsigned max_code() const { return (1u << bits_) - 1; }

  /// code = clamp(floor(v / LSB), 0, 2^p - 1).
  unsigned convert(double v_in) const;

  /// Bin-centre reconstruction of a code [V].
  double reconstruct(unsigned code) const;

 private:
  unsigned bits_;
  double v_full_scale_;
};

}  // namespace ptc::adc

#endif  // PTC_ADC_IDEAL_ADC_HPP
