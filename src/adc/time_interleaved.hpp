#ifndef PTC_ADC_TIME_INTERLEAVED_HPP
#define PTC_ADC_TIME_INTERLEAVED_HPP

#include <vector>

#include "core/eoadc.hpp"

/// Time-interleaved eoADC — the speed extension the paper proposes in
/// Sec. II-C ("this single-slice design can be extended using a
/// time-interleaved configuration to further enhance speed").  K identical
/// eoADC slices sample round-robin, multiplying the aggregate rate by K at
/// the cost of K slice powers plus a mux/clock-skew overhead; per-slice gain
/// mismatch can be injected to study the classic interleaving spur problem
/// (refs [41]-[43]).
namespace ptc::adc {

struct TimeInterleavedConfig {
  std::size_t slices = 2;
  core::EoAdcConfig slice{};
  double mux_power = 0.5e-3;          ///< interleaving mux + retiming [W]
  double gain_mismatch_sigma = 0.0;   ///< per-slice input gain error (std)
  std::uint64_t mismatch_seed = 7;
};

class TimeInterleavedEoAdc {
 public:
  explicit TimeInterleavedEoAdc(const TimeInterleavedConfig& config = {});

  std::size_t slices() const { return adcs_.size(); }
  unsigned bits() const { return config_.slice.bits; }

  /// Converts one sample; slices are selected round-robin.
  unsigned convert(double v_in);

  /// Index of the slice that will handle the next sample.
  std::size_t next_slice() const { return next_; }

  /// Aggregate sample rate: slices * slice rate [Hz].
  double sample_rate() const;

  /// Total power: slices * slice power + mux overhead [W].
  double total_power() const;

  double energy_per_conversion() const;

  core::EoAdc& slice_adc(std::size_t k);

 private:
  TimeInterleavedConfig config_;
  std::vector<core::EoAdc> adcs_;
  std::vector<double> gains_;
  std::size_t next_ = 0;
};

}  // namespace ptc::adc

#endif  // PTC_ADC_TIME_INTERLEAVED_HPP
