#include "adc/time_interleaved.hpp"

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace ptc::adc {

TimeInterleavedEoAdc::TimeInterleavedEoAdc(const TimeInterleavedConfig& config)
    : config_(config) {
  expects(config.slices >= 1 && config.slices <= 16,
          "slice count must be in [1, 16]");
  expects(config.gain_mismatch_sigma >= 0.0, "mismatch sigma must be >= 0");

  Rng rng(config.mismatch_seed);
  adcs_.reserve(config.slices);
  gains_.reserve(config.slices);
  for (std::size_t k = 0; k < config.slices; ++k) {
    adcs_.emplace_back(config.slice);
    gains_.push_back(1.0 + rng.normal(0.0, config.gain_mismatch_sigma));
  }
}

unsigned TimeInterleavedEoAdc::convert(double v_in) {
  const std::size_t slice = next_;
  next_ = (next_ + 1) % adcs_.size();
  return adcs_[slice].code(v_in * gains_[slice]);
}

double TimeInterleavedEoAdc::sample_rate() const {
  return static_cast<double>(adcs_.size()) * adcs_.front().sample_rate();
}

double TimeInterleavedEoAdc::total_power() const {
  return static_cast<double>(adcs_.size()) * adcs_.front().total_power() +
         config_.mux_power;
}

double TimeInterleavedEoAdc::energy_per_conversion() const {
  return total_power() / sample_rate();
}

core::EoAdc& TimeInterleavedEoAdc::slice_adc(std::size_t k) {
  expects(k < adcs_.size(), "slice index out of range");
  return adcs_[k];
}

}  // namespace ptc::adc
