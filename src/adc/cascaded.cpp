#include "adc/cascaded.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace ptc::adc {

CascadedEoAdc::CascadedEoAdc(const CascadedAdcConfig& config)
    : config_(config), coarse_(config.coarse), fine_(config.fine) {
  expects(config.coarse.v_full_scale == config.fine.v_full_scale,
          "stages must share a full-scale range");
  expects(config.residue_amp_power >= 0.0, "amplifier power must be >= 0");
}

unsigned CascadedEoAdc::bits() const {
  return coarse_.bits() + fine_.bits();
}

double CascadedEoAdc::lsb() const {
  return config_.coarse.v_full_scale / static_cast<double>(1u << bits());
}

double CascadedEoAdc::residue(double v_in) {
  const unsigned coarse_code = coarse_.code(v_in);
  const double reconstructed =
      static_cast<double>(coarse_code) * coarse_.lsb();
  const double gain = static_cast<double>(std::size_t{1} << coarse_.bits()) *
                      (1.0 + config_.residue_gain_error);
  const double res = (v_in - reconstructed) * gain;
  return std::clamp(res, 0.0, config_.fine.v_full_scale);
}

unsigned CascadedEoAdc::convert(double v_in) {
  const unsigned coarse_code = coarse_.code(v_in);
  const unsigned fine_code = fine_.code(residue(v_in));
  return (coarse_code << fine_.bits()) + fine_code;
}

double CascadedEoAdc::sample_rate() const {
  // The residue path pipelines: stage 2 digitizes sample n while stage 1
  // acquires sample n+1, so throughput equals the slice rate.
  return std::min(coarse_.sample_rate(), fine_.sample_rate());
}

double CascadedEoAdc::total_power() const {
  return coarse_.total_power() + fine_.total_power() +
         config_.residue_amp_power;
}

double CascadedEoAdc::energy_per_conversion() const {
  return total_power() / sample_rate();
}

}  // namespace ptc::adc
