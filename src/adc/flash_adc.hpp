#ifndef PTC_ADC_FLASH_ADC_HPP
#define PTC_ADC_FLASH_ADC_HPP

#include <cstdint>
#include <vector>

#include "circuit/comparator.hpp"
#include "common/rng.hpp"

/// Electrical thermometer-coded flash ADC — the conventional high-speed
/// architecture the eoADC is contrasted against (paper Sec. II-C, refs
/// [39], [40]).  2^p - 1 comparators evaluate the input against a resistor
/// ladder *every conversion*; at multi-GS/s rates each comparator needs a
/// high-bandwidth preamp and burns static power, which is exactly the cost
/// the 1-hot eoADC sidesteps by activating a single thresholding block.
namespace ptc::adc {

struct FlashAdcConfig {
  unsigned bits = 3;
  double v_full_scale = 4.0;
  double sample_rate = 8e9;  ///< [Hz]
  circuit::ComparatorConfig comparator{
      .offset_sigma = 2e-3,
      .noise_sigma = 0.5e-3,
      .energy_per_decision = 120e-15,
      .static_power = 1.55e-3,  // GS/s-class comparator incl. preamp
      .decision_time = 40e-12,
  };
  double ladder_power = 1.0e-3;   ///< reference resistor ladder [W]
  double encoder_power = 1.0e-3;  ///< thermometer-to-binary encoder [W]
  double clock_power = 3.0e-3;    ///< S/H + clock distribution [W]
  std::uint64_t offset_seed = 42;
  bool include_offsets = false;   ///< draw comparator offsets at random
};

class FlashAdc {
 public:
  explicit FlashAdc(const FlashAdcConfig& config = {});

  unsigned bits() const { return config_.bits; }
  std::size_t comparator_count() const { return (1u << config_.bits) - 1; }
  double lsb() const;

  /// Converts the input; every comparator fires (thermometer code).
  unsigned convert(double v_in);

  /// Thermometer pattern of the last conversion (for tests).
  const std::vector<bool>& last_thermometer() const { return thermometer_; }

  /// Comparator activations per conversion — 2^p - 1, versus the eoADC's 1.
  std::size_t activations_per_conversion() const {
    return comparator_count();
  }

  double electrical_power() const;
  double sample_rate() const { return config_.sample_rate; }
  double energy_per_conversion() const;

  const FlashAdcConfig& config() const { return config_; }

 private:
  FlashAdcConfig config_;
  std::vector<circuit::Comparator> comparators_;
  std::vector<double> thresholds_;
  std::vector<bool> thermometer_;
};

}  // namespace ptc::adc

#endif  // PTC_ADC_FLASH_ADC_HPP
