#include "adc/ideal_adc.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace ptc::adc {

IdealAdc::IdealAdc(unsigned bits, double v_full_scale)
    : bits_(bits), v_full_scale_(v_full_scale) {
  expects(bits >= 1 && bits <= 16, "bits must be in [1, 16]");
  expects(v_full_scale > 0.0, "full scale must be positive");
}

double IdealAdc::lsb() const {
  return v_full_scale_ / static_cast<double>(1u << bits_);
}

unsigned IdealAdc::convert(double v_in) const {
  const auto code = static_cast<long>(std::floor(v_in / lsb()));
  return static_cast<unsigned>(
      std::clamp<long>(code, 0, static_cast<long>(max_code())));
}

double IdealAdc::reconstruct(unsigned code) const {
  expects(code <= max_code(), "code out of range");
  return (static_cast<double>(code) + 0.5) * lsb();
}

}  // namespace ptc::adc
