#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>
#include <fstream>

#include "sim/events.hpp"
#include "sim/montecarlo.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"

namespace {

using namespace ptc;
using namespace ptc::sim;

TEST(Trace, RecordAndQuery) {
  Trace t;
  t.record(0.0, 0.0);
  t.record(1.0, 1.0);
  t.record(2.0, 0.5);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.value_at(0.5), 0.5);   // interpolated
  EXPECT_DOUBLE_EQ(t.value_at(-1.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(t.value_at(9.0), 0.5);
  EXPECT_DOUBLE_EQ(t.final_value(), 0.5);
  EXPECT_DOUBLE_EQ(t.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(t.max_value(), 1.0);
}

TEST(Trace, RejectsOutOfOrder) {
  Trace t;
  t.record(1.0, 0.0);
  EXPECT_THROW(t.record(0.5, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(t.record(1.0, 1.0));  // equal time allowed
}

TEST(Trace, FirstCrossingInterpolation) {
  Trace t;
  t.record(0.0, 0.0);
  t.record(1.0, 2.0);
  const auto rising = t.first_crossing(1.0, true);
  ASSERT_TRUE(rising.has_value());
  EXPECT_NEAR(*rising, 0.5, 1e-12);
  EXPECT_FALSE(t.first_crossing(1.0, false).has_value());
  EXPECT_FALSE(t.first_crossing(5.0, true).has_value());
}

TEST(Trace, CrossingAfterTime) {
  Trace t;
  for (int i = 0; i <= 20; ++i) {
    t.record(0.1 * i, std::sin(0.1 * i * 6.28318));
  }
  const auto c1 = t.first_crossing(0.0, false, 0.2);
  ASSERT_TRUE(c1.has_value());
  EXPECT_GT(*c1, 0.2);
}

TEST(Trace, SettledAt) {
  Trace t;
  t.record(0.0, 0.0);
  t.record(1.0, 1.7);
  t.record(2.0, 1.8);
  t.record(3.0, 1.79);
  EXPECT_TRUE(t.settled_at(1.8, 0.05, 1.5));
  EXPECT_FALSE(t.settled_at(1.8, 0.05, 0.5));
  EXPECT_FALSE(t.settled_at(1.8, 0.05, 10.0));  // nothing after 10
}

TEST(TraceSet, NamedTracesAndCsv) {
  TraceSet set;
  set.at("q").record(0.0, 0.0);
  set.at("q").record(1.0, 1.8);
  set.at("qb").record(0.0, 1.8);
  set.at("qb").record(1.0, 0.0);
  EXPECT_TRUE(set.contains("q"));
  EXPECT_FALSE(set.contains("x"));
  EXPECT_EQ(set.names().size(), 2u);
  EXPECT_THROW(set.get("missing"), std::invalid_argument);

  const std::string path = ::testing::TempDir() + "/ptc_traces.csv";
  set.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time,q,qb");
  std::remove(path.c_str());
}

TEST(PulseSchedule, WindowsAndBaseline) {
  PulseSchedule sched(0.0);
  sched.add_pulse(10e-12, 50e-12, 1e-3);
  sched.add_pulse(100e-12, 10e-12, 2e-3);
  EXPECT_DOUBLE_EQ(sched.value_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sched.value_at(30e-12), 1e-3);
  EXPECT_DOUBLE_EQ(sched.value_at(105e-12), 2e-3);
  EXPECT_DOUBLE_EQ(sched.value_at(200e-12), 0.0);
  EXPECT_EQ(sched.pulse_count(), 2u);
  EXPECT_NEAR(sched.last_event_time(), 110e-12, 1e-18);
  EXPECT_THROW(sched.add_pulse(0.0, 0.0, 1.0), std::invalid_argument);
}

TEST(PiecewiseLinear, InterpolatesKnots) {
  PiecewiseLinearSource src;
  src.add_knot(0.0, 0.0);
  src.add_knot(1.0, 4.0);
  EXPECT_DOUBLE_EQ(src.value_at(0.25), 1.0);
  EXPECT_DOUBLE_EQ(src.value_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(src.value_at(2.0), 4.0);
  EXPECT_THROW(src.add_knot(0.5, 1.0), std::invalid_argument);
}

TEST(Sweep, OneAndTwoDimensional) {
  const auto points = sweep_1d({1.0, 2.0, 3.0}, [](double x) { return x * x; });
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[2].value, 9.0);

  const auto grid =
      sweep_2d({1.0, 2.0}, {10.0, 20.0},
               [](double a, double b) { return a + b; });
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_DOUBLE_EQ(grid[3].value, 22.0);
}

TEST(Sweep, ParallelVariantsMatchSequentialInGridOrder) {
  runtime::ThreadPool pool(4);
  const std::vector<double> grid{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  auto metric = [](double x) { return x * x - 1.0; };
  const auto seq = sweep_1d(grid, metric);
  const auto par = sweep_1d_parallel(pool, grid, metric);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i].parameter, seq[i].parameter);
    EXPECT_DOUBLE_EQ(par[i].value, seq[i].value);
  }

  auto metric2 = [](double a, double b) { return a * 10.0 + b; };
  const std::vector<double> ga{1.0, 2.0, 3.0};
  const std::vector<double> gb{0.5, 0.25};
  const auto seq2 = sweep_2d(ga, gb, metric2);
  const auto par2 = sweep_2d_parallel(pool, ga, gb, metric2);
  ASSERT_EQ(par2.size(), seq2.size());
  for (std::size_t i = 0; i < seq2.size(); ++i) {
    EXPECT_DOUBLE_EQ(par2[i].parameter_a, seq2[i].parameter_a);
    EXPECT_DOUBLE_EQ(par2[i].parameter_b, seq2[i].parameter_b);
    EXPECT_DOUBLE_EQ(par2[i].value, seq2[i].value);
  }
}

TEST(Sweep, ParallelHandlesEmptyGrid) {
  runtime::ThreadPool pool(2);
  EXPECT_TRUE(sweep_1d_parallel(pool, {}, [](double x) { return x; }).empty());
}

TEST(MonteCarlo, DeterministicAndIndependent) {
  auto trial = [](Rng& rng) { return rng.normal(10.0, 2.0); };
  const auto a = run_monte_carlo(500, 42, trial);
  const auto b = run_monte_carlo(500, 42, trial);
  EXPECT_EQ(a.samples, b.samples);  // same seed, same results
  EXPECT_NEAR(a.mean, 10.0, 0.3);
  EXPECT_NEAR(a.std_dev, 2.0, 0.3);
  EXPECT_EQ(a.trials, 500u);
  const auto c = run_monte_carlo(500, 43, trial);
  EXPECT_NE(a.samples[0], c.samples[0]);  // different seed differs
}

TEST(MonteCarlo, YieldWithPassPredicate) {
  auto trial = [](Rng& rng) { return rng.uniform(); };
  const auto summary = run_monte_carlo(
      2000, 7, trial, [](double x) { return x < 0.25; });
  EXPECT_NEAR(summary.yield, 0.25, 0.05);
  EXPECT_THROW(run_monte_carlo(0, 1, trial), std::invalid_argument);
}

}  // namespace
