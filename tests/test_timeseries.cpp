// Ring-buffer time-series store (telemetry/timeseries.hpp): tiered
// downsampling keeps exact min / max and count-weighted means through every
// fold, only the coarsest tier ever discards history, and the JSON export
// is byte-stable — the properties the fleet-health channels rely on.
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "telemetry/timeseries.hpp"

namespace ptc::telemetry {
namespace {

TimeSeriesOptions tiny(std::size_t capacity, std::size_t fold,
                       std::size_t tiers) {
  TimeSeriesOptions options;
  options.capacity = capacity;
  options.fold = fold;
  options.tiers = tiers;
  return options;
}

TEST(TimeSeries, RawSamplesRetainExactValuesBelowCapacity) {
  TimeSeries series(tiny(8, 2, 2));
  const std::vector<double> values = {3.0, -1.5, 0.25, 7.0};
  for (std::size_t i = 0; i < values.size(); ++i) {
    series.append(1e-9 * static_cast<double>(i), values[i]);
  }
  ASSERT_EQ(series.tier(0).size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const SeriesSample& s = series.tier(0)[i];
    EXPECT_EQ(s.min, values[i]);
    EXPECT_EQ(s.max, values[i]);
    EXPECT_EQ(s.mean, values[i]);
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.t0, s.t1);
  }
  EXPECT_EQ(series.last_value(), 7.0);
  EXPECT_DOUBLE_EQ(series.last_time(), 3e-9);
  EXPECT_EQ(series.appended(), 4u);
  EXPECT_EQ(series.dropped(), 0u);
}

TEST(TimeSeries, FoldAtCapacityBoundaryIsExact) {
  // Capacity 4, fold 2: the 5th append folds the two oldest raw samples
  // into one tier-1 aggregate with their exact min / max / mean.
  TimeSeries series(tiny(4, 2, 2));
  const std::vector<double> values = {5.0, 1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < values.size(); ++i) {
    series.append(static_cast<double>(i), values[i]);
  }
  ASSERT_EQ(series.tier(0).size(), 3u);  // {2, 3} remained + the new 4
  ASSERT_EQ(series.tier(1).size(), 1u);
  const SeriesSample& fold = series.tier(1).front();
  EXPECT_EQ(fold.min, 1.0);
  EXPECT_EQ(fold.max, 5.0);
  EXPECT_EQ(fold.mean, 3.0);  // (5 + 1) / 2
  EXPECT_EQ(fold.count, 2u);
  EXPECT_EQ(fold.t0, 0.0);
  EXPECT_EQ(fold.t1, 1.0);
  EXPECT_EQ(series.dropped(), 0u);
}

TEST(TimeSeries, ExactlyCapacitySamplesDoNotFold) {
  TimeSeries series(tiny(4, 2, 2));
  for (int i = 0; i < 4; ++i) series.append(i, i);
  EXPECT_EQ(series.tier(0).size(), 4u);
  EXPECT_TRUE(series.tier(1).empty());
}

TEST(TimeSeries, CascadeReachesCoarserTiersWithSquaredFoldCounts) {
  // fold = 2 twice over: every tier-2 aggregate absorbs 4 raw samples.
  TimeSeries series(tiny(2, 2, 3));
  const std::size_t n = 64;
  for (std::size_t i = 0; i < n; ++i) {
    series.append(static_cast<double>(i), static_cast<double>(i));
  }
  ASSERT_FALSE(series.tier(2).empty());
  for (const SeriesSample& s : series.tier(2)) {
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.max - s.min, 3.0);           // 4 consecutive integers
    EXPECT_EQ(s.mean, s.min + 1.5);          // their exact mean
    EXPECT_EQ(s.t1 - s.t0, 3.0);
  }
}

TEST(TimeSeries, OnlyTheCoarsestTierDropsAndCountsDropped) {
  // Single tier: a plain ring buffer; drops surface in dropped().
  TimeSeries series(tiny(4, 2, 1));
  for (int i = 0; i < 7; ++i) series.append(i, i);
  EXPECT_EQ(series.tier(0).size(), 4u);
  EXPECT_EQ(series.appended(), 7u);
  EXPECT_EQ(series.dropped(), 3u);
  // The survivors are the newest samples.
  EXPECT_EQ(series.tier(0).front().min, 3.0);
  EXPECT_EQ(series.tier(0).back().min, 6.0);
}

TEST(TimeSeries, RetainedPlusDroppedConservesAppended) {
  TimeSeries series(tiny(3, 3, 2));
  for (int i = 0; i < 200; ++i) series.append(i, std::sin(0.1 * i));
  std::uint64_t retained = 0;
  for (std::size_t k = 0; k < series.tier_count(); ++k) {
    for (const SeriesSample& s : series.tier(k)) retained += s.count;
  }
  EXPECT_EQ(retained + series.dropped(), series.appended());
}

TEST(TimeSeries, RetainedSummaryTracksExactExtremesWhileRetained) {
  TimeSeries series(tiny(4, 2, 3));
  // A spike early in the stream survives folding with its exact value
  // until its aggregate falls off the coarsest tier.
  series.append(0.0, 100.0);
  for (int i = 1; i <= 10; ++i) series.append(i, 1.0);
  const SeriesSample summary = series.retained_summary();
  EXPECT_EQ(summary.max, 100.0);
  EXPECT_EQ(summary.min, 1.0);
  EXPECT_EQ(summary.count, 11u);
  EXPECT_DOUBLE_EQ(summary.mean, (100.0 + 10.0) / 11.0);
}

TEST(TimeSeries, RejectsDecreasingTimestampsAndBadGeometry) {
  TimeSeries series(tiny(4, 2, 2));
  series.append(1.0, 0.0);
  EXPECT_THROW(series.append(0.5, 0.0), std::invalid_argument);
  series.append(1.0, 1.0);  // equal timestamps are allowed
  EXPECT_THROW(TimeSeries(tiny(4, 1, 2)), std::invalid_argument);
  EXPECT_THROW(TimeSeries(tiny(1, 2, 2)), std::invalid_argument);
  EXPECT_THROW(TimeSeries(tiny(4, 2, 0)), std::invalid_argument);
  EXPECT_THROW(series.tier(2), std::invalid_argument);
}

TEST(TimeSeriesStore, ChannelsAreStableAndSortedByName) {
  TimeSeriesStore store(tiny(4, 2, 2));
  TimeSeries& b = store.channel("core1/probe");
  TimeSeries& a = store.channel("core0/probe");
  a.append(0.0, 1.0);
  b.append(0.0, 2.0);
  EXPECT_TRUE(store.contains("core0/probe"));
  EXPECT_FALSE(store.contains("core2/probe"));
  EXPECT_EQ(store.size(), 2u);
  const std::vector<std::string> names = store.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "core0/probe");
  EXPECT_EQ(names[1], "core1/probe");
  // The reference handed out first still points at the same channel.
  EXPECT_EQ(&store.channel("core1/probe"), &b);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(TimeSeriesStore, JsonExportIsByteStableAndParses) {
  TimeSeriesStore store(tiny(2, 2, 2));
  TimeSeries& ch = store.channel("probe");
  ch.append(0.0, 1.0);
  ch.append(1e-9, 3.0);
  ch.append(2e-9, 5.0);  // folds {1, 3} into tier 1
  const std::string text = store.to_json();
  EXPECT_EQ(text,
            "{\"channels\":{\"probe\":{\"appended\":3,\"dropped\":0,"
            "\"tiers\":[[{\"t0\":2e-09,\"t1\":2e-09,\"min\":5,\"max\":5,"
            "\"mean\":5,\"count\":1}],[{\"t0\":0,\"t1\":1e-09,\"min\":1,"
            "\"max\":3,\"mean\":2,\"count\":2}]]}}}");
  const json::Value doc = json::parse(text);
  EXPECT_EQ(doc.at("channels").at("probe").at("appended").as_number(), 3.0);
  // Identical appends into a fresh store reproduce the bytes exactly.
  TimeSeriesStore again(tiny(2, 2, 2));
  TimeSeries& ch2 = again.channel("probe");
  ch2.append(0.0, 1.0);
  ch2.append(1e-9, 3.0);
  ch2.append(2e-9, 5.0);
  EXPECT_EQ(again.to_json(), text);
}

}  // namespace
}  // namespace ptc::telemetry
