// Fleet health (fleet/health.hpp): the drift estimator inverts pilot-tone
// probe transmission back to kelvin within a pinned tolerance of the
// simulator's oracle, anomaly detection fires on rising edges only, and the
// serving loop's estimated_drift_threshold trigger closes the
// recalibration loop oracle-free — bit-identically on any host thread
// count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "fleet/health.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace ptc;
using fleet::AnomalyConfig;
using fleet::AnomalyDetector;
using fleet::DriftEstimator;
using fleet::DriftEstimatorConfig;
using fleet::FleetHealthMonitor;
using fleet::HealthConfig;

// ---------------------------------------------------------------------------
// DriftEstimator
// ---------------------------------------------------------------------------

TEST(DriftEstimator, InvertsInterpolatesAndClampsOnTheEnvelope) {
  // The flat point (2 -> 3.0 not above 3.0) collapses out of the envelope.
  DriftEstimator estimator({0.0, 1.0, 2.0, 3.0}, {1.0, 3.0, 3.0, 7.0});
  EXPECT_EQ(estimator.curve_kelvin().size(), 3u);
  EXPECT_DOUBLE_EQ(estimator.invert(1.0), 0.0);
  EXPECT_DOUBLE_EQ(estimator.invert(2.0), 0.5);   // midway on [1, 3]
  EXPECT_DOUBLE_EQ(estimator.invert(5.0), 2.0);   // midway on [3, 7] -> [1, 3]
  EXPECT_DOUBLE_EQ(estimator.invert(0.5), 0.0);   // clamps below
  EXPECT_DOUBLE_EQ(estimator.invert(99.0), 3.0);  // clamps above
}

TEST(DriftEstimator, EwmaSmoothsAndSlopeFitsTheTrend) {
  DriftEstimatorConfig config;
  config.ewma_alpha = 0.5;
  config.slope_window = 4;
  DriftEstimator estimator({0.0, 1.0}, {1.0, 2.0}, config);
  estimator.observe(0.0, 1.2);  // raw 0.2; first observation seeds the EWMA
  EXPECT_DOUBLE_EQ(estimator.raw(), 0.2);
  EXPECT_DOUBLE_EQ(estimator.estimate(), 0.2);
  estimator.observe(1.0, 1.6);  // raw 0.6 -> EWMA 0.4
  EXPECT_DOUBLE_EQ(estimator.estimate(), 0.4);
  // A linear ratio ramp gives a positive, roughly constant slope.
  for (int i = 2; i < 8; ++i) {
    estimator.observe(static_cast<double>(i), 1.0 + 0.1 * i);
  }
  EXPECT_GT(estimator.slope(), 0.0);
  estimator.reset();
  EXPECT_EQ(estimator.estimate(), 0.0);
  EXPECT_EQ(estimator.observations(), 0u);
}

TEST(DriftEstimator, RejectsBadCurvesAndConfigs) {
  EXPECT_THROW(DriftEstimator({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(DriftEstimator({0.0, 1.0}, {1.0, 1.0}),
               std::invalid_argument);  // flat curve
  EXPECT_THROW(DriftEstimator({1.0, 0.0}, {1.0, 2.0}),
               std::invalid_argument);  // kelvin not increasing
  DriftEstimatorConfig bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(DriftEstimator({0.0, 1.0}, {1.0, 2.0}, bad),
               std::invalid_argument);
}

TEST(DriftEstimator, CharacterizedCurveInvertsTheLiveProbeNearTheOracle) {
  core::TensorCoreConfig config;
  config.variation.seed = 11;
  core::TensorCore core(config);
  DriftEstimator estimator = DriftEstimator::characterize(core, 2.0, 65);

  // probe_transmission reads 1 when locked and rises with |detuning| in
  // both directions.
  EXPECT_DOUBLE_EQ(core.probe_transmission(), 1.0);
  double previous = 1.0;
  for (double k = 0.1; k <= 0.5; k += 0.1) {
    core.set_thermal_detuning(k);
    const double ratio = core.probe_transmission();
    EXPECT_GT(ratio, previous);
    previous = ratio;
  }

  // Pinned tolerance: inverting the live reading recovers |K| within 10%
  // (the residual is the averaged heating/cooling branch asymmetry).
  for (double k : {0.15, 0.3, 0.6, 1.2, -0.15, -0.3, -0.6, -1.2}) {
    core.set_thermal_detuning(k);
    const double estimate = estimator.invert(core.probe_transmission());
    EXPECT_NEAR(estimate, std::abs(k), 0.1 * std::abs(k))
        << "at oracle detuning " << k;
  }
  core.set_thermal_detuning(0.0);
}

// ---------------------------------------------------------------------------
// AnomalyDetector
// ---------------------------------------------------------------------------

AnomalyConfig zscore_config() {
  AnomalyConfig config;
  config.kind = AnomalyConfig::Kind::kZScore;
  config.window = 16;
  config.min_samples = 4;
  config.threshold = 4.0;
  return config;
}

TEST(AnomalyDetector, ZScoreFiresOnRisingEdgeOnly) {
  AnomalyDetector detector(zscore_config());
  // Warm-up: a gently varying baseline (nonzero variance).
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(detector.observe(i, 1.0 + 0.01 * (i % 2)));
  }
  // Step change: fires exactly once, then holds anomalous without refiring.
  EXPECT_TRUE(detector.observe(8.0, 5.0));
  EXPECT_TRUE(detector.anomalous());
  EXPECT_GE(detector.score(), 4.0);
  EXPECT_FALSE(detector.observe(9.0, 5.0));
  EXPECT_EQ(detector.alarms(), 1u);
  detector.reset();
  EXPECT_FALSE(detector.anomalous());
  EXPECT_EQ(detector.alarms(), 0u);
}

TEST(AnomalyDetector, ZScoreStaysSilentBeforeMinSamples) {
  AnomalyDetector detector(zscore_config());
  EXPECT_FALSE(detector.observe(0.0, 0.0));
  EXPECT_FALSE(detector.observe(1.0, 1e9));  // huge, but still warming up
  EXPECT_EQ(detector.score(), 0.0);
}

TEST(AnomalyDetector, CusumAccumulatesSlowDriftAndResetsOnAlarm) {
  AnomalyConfig config;
  config.kind = AnomalyConfig::Kind::kCusum;
  config.window = 8;        // baseline freezes after 8 samples
  config.min_samples = 8;
  config.threshold = 5.0;   // decision interval h [sigmas]
  config.slack = 0.5;       // absorbs sub-slack drift
  AnomalyDetector detector(config);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(detector.observe(i, 1.0 + 0.01 * (i % 2)));
  }
  // A per-sample shift below the slack never accumulates.
  for (int i = 8; i < 40; ++i) {
    EXPECT_FALSE(detector.observe(i, 1.005));
  }
  // A sustained shift of a few sigma accumulates across samples and fires
  // even though no single sample is extreme.
  bool fired = false;
  for (int i = 40; i < 60 && !fired; ++i) {
    fired = detector.observe(i, 1.03);
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(detector.alarms(), 1u);
  // The decision sums reset on the alarm: the next sample does not refire.
  EXPECT_FALSE(detector.observe(60.0, 1.0));
}

// ---------------------------------------------------------------------------
// FleetHealthMonitor
// ---------------------------------------------------------------------------

runtime::AcceleratorConfig fleet_config(std::size_t threads) {
  runtime::AcceleratorConfig config;
  config.cores = 4;
  config.threads = threads;
  config.variation.seed = 42;
  config.drift.sigma = 1.0;
  config.drift.tau = 4e-6;
  return config;
}

TEST(FleetHealthMonitor, SamplesChannelsAndTracksTheOracleWithinTolerance) {
  runtime::AcceleratorConfig config = fleet_config(1);
  config.drift.sigma = 0.0;  // detunings set manually below
  runtime::Accelerator accelerator(config);
  HealthConfig health_config;
  FleetHealthMonitor monitor(accelerator, health_config);
  ASSERT_EQ(monitor.core_count(), 4u);

  const std::vector<double> detunings = {0.05, -0.2, 0.4, 0.0};
  for (std::size_t i = 0; i < detunings.size(); ++i) {
    accelerator.core(i).set_thermal_detuning(detunings[i]);
  }
  monitor.sample(1e-9);
  EXPECT_EQ(monitor.samples_taken(), 1u);
  EXPECT_DOUBLE_EQ(monitor.last_sample_time(), 1e-9);

  for (std::size_t i = 0; i < detunings.size(); ++i) {
    const double oracle = std::abs(detunings[i]);
    // One sample: the EWMA seeds at the raw inversion.  Pinned tolerance
    // 10% relative + 0.04 K absolute — transmission is quadratic in the
    // detuning near lock, so inversion resolution floors out near zero.
    EXPECT_NEAR(monitor.estimate(i), oracle, 0.1 * oracle + 0.04)
        << "core " << i;
  }
  EXPECT_NEAR(monitor.max_estimate(), 0.4, 0.05);

  // Every sensor channel exists, per core.
  for (const char* sensor :
       {"probe_transmission", "detuning_estimate_kelvin", "heater_duty",
        "calibration_epoch", "psram_bit_flips", "psram_max_cell_flips",
        "adc_saturation_rate"}) {
    for (std::size_t i = 0; i < 4; ++i) {
      const std::string name =
          "core" + std::to_string(i) + "/" + sensor;
      EXPECT_TRUE(monitor.store().contains(name)) << name;
    }
  }

  // on_recalibration clears the run state but keeps the curves.
  monitor.on_recalibration(2e-9);
  EXPECT_EQ(monitor.estimate(2), 0.0);
  EXPECT_EQ(monitor.alerts_since_recalibration(), 0u);
  EXPECT_GE(monitor.estimator(2).curve_kelvin().size(), 2u);
}

TEST(FleetHealthMonitor, PublishesGaugesCountersAndAlertSchema) {
  runtime::AcceleratorConfig config = fleet_config(1);
  config.drift.sigma = 0.0;
  runtime::Accelerator accelerator(config);
  HealthConfig health_config;
  health_config.anomaly.min_samples = 2;
  health_config.anomaly.window = 8;
  FleetHealthMonitor monitor(accelerator, health_config);
  telemetry::MetricsRegistry metrics;
  telemetry::Tracer tracer;
  monitor.set_metrics(&metrics);
  monitor.set_tracer(&tracer);

  // A flat baseline, then a step on core 1's probe channel -> one alert.
  for (int i = 0; i < 4; ++i) {
    monitor.sample(1e-9 * (i + 1));
  }
  accelerator.core(1).set_thermal_detuning(1.5);
  monitor.sample(5e-9);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].core, 1u);
  EXPECT_EQ(monitor.alerts()[0].name, "core1-probe-anomaly");
  EXPECT_EQ(monitor.alerts_since_recalibration(), 1u);

  EXPECT_TRUE(metrics.contains("fleet_core_detuning_estimate",
                               {{"core", "1"}}));
  EXPECT_TRUE(metrics.contains("fleet_core_probe_transmission",
                               {{"core", "1"}}));
  EXPECT_EQ(
      metrics.counter("slo_alerts_total", {{"slo", "core1-probe-anomaly"}})
          .value(),
      1.0);

  // The alert instant passes the trace linter's health_alert arg schema.
  const std::vector<std::string> problems =
      telemetry::lint_chrome_trace(tracer.chrome_json());
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(FleetHealthMonitor, EnduranceAlarmFiresOnceAndBypassesRecalibration) {
  // A fleet that models pSRAM wear-out: endurance_remaining is a sensor
  // channel, crossing the floor raises a coreN-endurance alert exactly
  // once, and the alarm never feeds the recalibration trigger (re-locking
  // heaters cannot un-wear bitcells).
  runtime::AcceleratorConfig config = fleet_config(1);
  config.drift.sigma = 0.0;
  config.fault.seed = 17;
  config.fault.psram_endurance_median = 6.0;  // dies within a few reloads
  runtime::Accelerator accelerator(config);
  HealthConfig health_config;
  FleetHealthMonitor monitor(accelerator, health_config);
  telemetry::MetricsRegistry metrics;
  monitor.set_metrics(&metrics);

  monitor.sample(1e-9);
  EXPECT_EQ(monitor.endurance_alarms(), 0u);
  EXPECT_TRUE(metrics.contains("fleet_core_endurance_remaining",
                               {{"core", "0"}}));

  // Wear every core past the floor with fresh weight loads.
  Rng rng(3);
  nn::PhotonicBackendOptions options;
  for (int i = 0; i < 24; ++i) {
    // 16 tiles per matmul: every core streams fresh weights each pass.
    accelerator.matmul(random_activations(2, 64, rng),
                       random_signed(64, 64, rng), options);
  }
  ASSERT_LT(accelerator.core(0).psram().endurance_remaining(),
            health_config.endurance_floor);
  monitor.sample(2e-9);
  EXPECT_GE(monitor.endurance_alarms(), 4u);  // every core crossed
  bool found = false;
  for (const fleet::HealthAlert& alert : monitor.alerts()) {
    if (alert.name == "core0-endurance") found = true;
  }
  EXPECT_TRUE(found);
  // Endurance alarms bypass the recalibrate_on_anomaly trigger.
  EXPECT_EQ(monitor.alerts_since_recalibration(), 0u);

  // Rising edge only: the floor latch keeps later samples quiet.
  const std::uint64_t after_crossing = monitor.endurance_alarms();
  monitor.sample(3e-9);
  monitor.sample(4e-9);
  EXPECT_EQ(monitor.endurance_alarms(), after_crossing);
}

TEST(FleetHealthMonitor, EvictedCoresAreSkippedAndLeaveMaxEstimate) {
  // An evicted core's stale estimate must not keep triggering fleet-wide
  // recalibration, and sampling must not probe hardware that is out of
  // the rotation.
  runtime::AcceleratorConfig config = fleet_config(1);
  config.drift.sigma = 0.0;
  runtime::Accelerator accelerator(config);
  FleetHealthMonitor monitor(accelerator, HealthConfig{});

  accelerator.core(2).set_thermal_detuning(0.5);
  monitor.sample(1e-9);
  EXPECT_GT(monitor.max_estimate(), 0.3);

  accelerator.evict_core(2);
  EXPECT_LT(monitor.max_estimate(), 0.1);  // stale estimate masked

  // Samples taken while evicted leave the core's channels untouched.
  const std::uint64_t probe_points =
      monitor.store().channel("core2/probe_transmission").appended();
  monitor.sample(2e-9);
  EXPECT_EQ(monitor.store().channel("core2/probe_transmission").appended(),
            probe_points);

  accelerator.readmit_core(2);
  EXPECT_GT(monitor.max_estimate(), 0.3);  // back in the rotation
}

// ---------------------------------------------------------------------------
// Serving-loop integration: the oracle-free trigger
// ---------------------------------------------------------------------------

serve::ServeReport run_probing(std::size_t threads,
                               const serve::BatchPolicy& policy,
                               std::vector<double>* estimates = nullptr) {
  runtime::Accelerator accelerator(fleet_config(threads));
  serve::ModelRegistry registry(accelerator);
  Rng rng(2025);
  registry.add("vision", nn::Mlp(32, 24, 10, rng));
  serve::Server server(registry);
  const serve::LoadGenerator generator(
      {{.name = "mobile", .model = "vision", .rate = 100e6, .requests = 96}},
      7);
  serve::ServeReport report = server.run(generator.generate(registry), policy);
  if (estimates != nullptr) {
    estimates->clear();
    for (std::size_t i = 0; i < accelerator.core_count(); ++i) {
      estimates->push_back(server.health()->estimate(i));
    }
  }
  return report;
}

TEST(ServerHealth, EstimatedTriggerClosesTheLoopOracleFree) {
  serve::BatchPolicy policy{.max_batch = 8, .max_wait = 25e-9,
                            .probe_period = 30e-9,
                            .estimated_drift_threshold = 0.25};
  const serve::ServeReport report = run_probing(1, policy);
  EXPECT_GT(report.probes, 0u);
  EXPECT_GT(report.recalibrations, 0u);
  EXPECT_GT(report.probe_time, 0.0);
  EXPECT_LT(report.probe_overhead(), 0.05);
  // Probe accounting conserves through the fleet attribution row.
  const serve::TenantCost* fleet_row =
      report.tenant_cost(serve::TenantCost::kFleetTenant);
  ASSERT_NE(fleet_row, nullptr);
  EXPECT_EQ(fleet_row->probes, report.probes);
  EXPECT_EQ(fleet_row->probe_seconds, report.probe_time);
  // A threshold trigger was active, so every re-lock logged its lag.
  EXPECT_GT(report.trigger_lag.count, 0u);
  EXPECT_GT(report.trigger_lag.max, 0.0);
}

TEST(ServerHealth, EstimatedTriggerRequiresProbing) {
  runtime::Accelerator accelerator(fleet_config(1));
  serve::ModelRegistry registry(accelerator);
  Rng rng(2025);
  registry.add("vision", nn::Mlp(32, 24, 10, rng));
  serve::Server server(registry);
  const serve::LoadGenerator generator(
      {{.name = "mobile", .model = "vision", .rate = 100e6, .requests = 4}},
      7);
  serve::BatchPolicy policy{.max_batch = 8, .max_wait = 25e-9,
                            .estimated_drift_threshold = 0.25};
  EXPECT_THROW(server.run(generator.generate(registry), policy),
               std::invalid_argument);
  policy.estimated_drift_threshold = 0.0;
  policy.recalibrate_on_anomaly = true;
  EXPECT_THROW(server.run(generator.generate(registry), policy),
               std::invalid_argument);
}

TEST(ServerHealth, ProbingRunsAreBitIdenticalAcrossHostThreadCounts) {
  serve::BatchPolicy policy{.max_batch = 8, .max_wait = 25e-9,
                            .probe_period = 30e-9,
                            .estimated_drift_threshold = 0.25};
  std::vector<double> estimates1;
  const serve::ServeReport r1 = run_probing(1, policy, &estimates1);
  for (std::size_t threads : {2u, 8u}) {
    std::vector<double> estimates;
    const serve::ServeReport r = run_probing(threads, policy, &estimates);
    EXPECT_EQ(r.completed, r1.completed) << threads;
    EXPECT_EQ(r.recalibrations, r1.recalibrations) << threads;
    EXPECT_EQ(r.probes, r1.probes) << threads;
    EXPECT_EQ(r.health_alerts, r1.health_alerts) << threads;
    // Bitwise, not approximate: memcmp on the doubles.
    EXPECT_EQ(std::memcmp(&r.makespan, &r1.makespan, sizeof(double)), 0)
        << threads;
    EXPECT_EQ(std::memcmp(&r.probe_time, &r1.probe_time, sizeof(double)), 0)
        << threads;
    ASSERT_EQ(estimates.size(), estimates1.size());
    EXPECT_EQ(std::memcmp(estimates.data(), estimates1.data(),
                          estimates.size() * sizeof(double)),
              0)
        << threads;
    EXPECT_EQ(std::memcmp(&r.trigger_lag.mean, &r1.trigger_lag.mean,
                          sizeof(double)),
              0)
        << threads;
  }
}

TEST(ServerHealth, EstimateTracksTheOracleThroughADriftingRun) {
  // After a run with drift, the final per-core estimates sit within a
  // pinned tolerance of the oracle detuning *at the last probe instant*.
  serve::BatchPolicy policy{.max_batch = 8, .max_wait = 25e-9,
                            .probe_period = 30e-9,
                            .estimated_drift_threshold = 1e9};  // never fires
  runtime::Accelerator accelerator(fleet_config(1));
  serve::ModelRegistry registry(accelerator);
  Rng rng(2025);
  registry.add("vision", nn::Mlp(32, 24, 10, rng));
  serve::Server server(registry);
  const serve::LoadGenerator generator(
      {{.name = "mobile", .model = "vision", .rate = 100e6, .requests = 96}},
      7);
  server.run(generator.generate(registry), policy);
  const fleet::FleetHealthMonitor* health = server.health();
  ASSERT_NE(health, nullptr);
  EXPECT_GT(health->samples_taken(), 10u);
  // Roll the oracle back to the last probe instant and compare per core.
  // (advance_to is monotone, so re-advancing to the same instant is a
  // no-op that leaves the oracle exactly where the probe read it.)
  accelerator.advance_to(health->last_sample_time());
  for (std::size_t i = 0; i < accelerator.core_count(); ++i) {
    const double oracle = std::abs(accelerator.core(i).thermal_detuning());
    // EWMA smoothing lags a drifting walk: allow 50% relative + 0.05 K.
    EXPECT_NEAR(health->estimate(i), oracle, 0.5 * oracle + 0.05)
        << "core " << i;
  }
}

}  // namespace
