#include <gtest/gtest.h>

#include "circuit/rom_decoder.hpp"

namespace {

using namespace ptc::circuit;

std::vector<bool> pattern(unsigned bits, unsigned mask) {
  std::vector<bool> p(std::size_t{1} << bits, false);
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = (mask >> i) & 1u;
  return p;
}

class RomBits : public ::testing::TestWithParam<unsigned> {};

TEST_P(RomBits, OneHotPatternsDecodeToChannelIndex) {
  const unsigned bits = GetParam();
  CeilingRomDecoder rom(bits);
  for (unsigned ch = 0; ch < rom.channel_count(); ++ch) {
    const auto d = rom.decode(pattern(bits, 1u << ch));
    EXPECT_EQ(d.code, ch);
    EXPECT_TRUE(d.any_active);
    EXPECT_FALSE(d.boundary);
    EXPECT_FALSE(d.fault);
  }
}

TEST_P(RomBits, AdjacentPairsApplyCeiling) {
  const unsigned bits = GetParam();
  CeilingRomDecoder rom(bits);
  for (unsigned ch = 0; ch + 1 < rom.channel_count(); ++ch) {
    const auto d = rom.decode(pattern(bits, (1u << ch) | (1u << (ch + 1))));
    EXPECT_EQ(d.code, ch + 1);  // ceiling: the higher code wins
    EXPECT_TRUE(d.boundary);
    EXPECT_FALSE(d.fault);
  }
}

TEST_P(RomBits, NonAdjacentPairsAreFaults) {
  const unsigned bits = GetParam();
  if (bits < 2) GTEST_SKIP() << "needs >= 4 channels";
  CeilingRomDecoder rom(bits);
  const auto d = rom.decode(pattern(bits, 0b101));
  EXPECT_TRUE(d.fault);
  EXPECT_TRUE(d.any_active);
  EXPECT_EQ(d.code, 2u);  // still reports the highest active
}

TEST_P(RomBits, AllZerosReportsInactive) {
  const unsigned bits = GetParam();
  CeilingRomDecoder rom(bits);
  const auto d = rom.decode(pattern(bits, 0));
  EXPECT_FALSE(d.any_active);
  EXPECT_FALSE(d.boundary);
  EXPECT_FALSE(d.fault);
  EXPECT_EQ(d.code, 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, RomBits, ::testing::Values(1, 2, 3, 4));

TEST(RomDecoder, PaperFig9Cases) {
  // 3-bit eoADC: B2 alone -> 001; B7 alone -> 110; B4+B5 -> 100.
  CeilingRomDecoder rom(3);
  EXPECT_EQ(rom.decode(pattern(3, 1u << 1)).code, 0b001u);
  EXPECT_EQ(rom.decode(pattern(3, 1u << 6)).code, 0b110u);
  const auto boundary = rom.decode(pattern(3, (1u << 3) | (1u << 4)));
  EXPECT_EQ(boundary.code, 0b100u);
  EXPECT_TRUE(boundary.boundary);
}

TEST(RomDecoder, TripleActivationIsFault) {
  CeilingRomDecoder rom(3);
  const auto d = rom.decode(pattern(3, 0b00000111));
  EXPECT_TRUE(d.fault);
}

TEST(RomDecoder, EnergyCountsDecodes) {
  CeilingRomDecoder rom(3);
  for (int i = 0; i < 10; ++i) rom.decode(pattern(3, 1));
  EXPECT_EQ(rom.decode_count(), 10u);
  EXPECT_NEAR(rom.consumed_energy(), 10 * 45e-15, 1e-18);
}

TEST(RomDecoder, ExhaustiveConsistencyThreeBits) {
  // Brute-force every 8-channel pattern against a reference decode.
  CeilingRomDecoder rom(3);
  for (unsigned mask = 0; mask < 256; ++mask) {
    const auto d = rom.decode(pattern(3, mask));
    unsigned count = 0, highest = 0, first = 8;
    for (unsigned ch = 0; ch < 8; ++ch) {
      if (mask & (1u << ch)) {
        ++count;
        highest = ch;
        if (first == 8) first = ch;
      }
    }
    EXPECT_EQ(d.any_active, count > 0);
    EXPECT_EQ(d.code, count == 0 ? 0u : highest);
    EXPECT_EQ(d.boundary, count == 2 && highest == first + 1);
    EXPECT_EQ(d.fault, count > 2 || (count == 2 && highest != first + 1));
  }
}

TEST(RomDecoder, RejectsBadConfig) {
  EXPECT_THROW(CeilingRomDecoder(0), std::invalid_argument);
  EXPECT_THROW(CeilingRomDecoder(5), std::invalid_argument);
  CeilingRomDecoder rom(3);
  EXPECT_THROW(rom.decode(std::vector<bool>(4)), std::invalid_argument);
}

}  // namespace
